// AS business-relationship table (the role CAIDA's inferences play in the
// paper's Section 5.3 ownership heuristics).
//
// Built from generator ground truth; `perturb()` introduces a configurable
// error rate so the ownership pipeline can be evaluated under realistic
// inference noise.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/asn.h"
#include "stats/rng.h"
#include "topology/topology.h"

namespace s2s::bgp {

/// Relationship of `a` toward `b`.
enum class Rel : std::uint8_t {
  kCustomer,  ///< a is a customer of b
  kProvider,  ///< a is a provider of b
  kPeer,      ///< settlement-free peers
};

class RelationshipTable {
 public:
  RelationshipTable() = default;

  static RelationshipTable from_topology(const topology::Topology& topo);

  /// Relationship of `a` toward `b`; nullopt when the pair is not adjacent
  /// (or unknown to the inference).
  std::optional<Rel> rel(net::Asn a, net::Asn b) const;

  bool is_customer_of(net::Asn a, net::Asn b) const {
    return rel(a, b) == Rel::kCustomer;
  }
  bool is_provider_of(net::Asn a, net::Asn b) const {
    return rel(a, b) == Rel::kProvider;
  }
  bool are_peers(net::Asn a, net::Asn b) const {
    return rel(a, b) == Rel::kPeer;
  }

  void add(net::Asn a, net::Asn b, Rel a_to_b);

  /// Simulates inference error: with probability `flip_prob` per adjacency,
  /// misclassify (c2p becomes p2p and vice versa); with probability
  /// `drop_prob`, forget the adjacency entirely.
  void perturb(stats::Rng& rng, double flip_prob, double drop_prob);

  std::size_t size() const noexcept { return table_.size() / 2; }

 private:
  static std::uint64_t key(net::Asn a, net::Asn b) {
    return (std::uint64_t{a.value()} << 32) | b.value();
  }
  std::unordered_map<std::uint64_t, Rel> table_;
};

}  // namespace s2s::bgp
