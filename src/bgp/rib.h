// BGP routing-information-base view: IP -> origin-AS mapping.
//
// Built from the topology's address plan, including only *announced*
// prefixes — unannounced infrastructure space (IXP LANs, internal blocks)
// correctly yields "no mapping", reproducing the paper's
// "missing AS-level data" rows in Table 1.
#pragma once

#include <optional>

#include "bgp/trie.h"
#include "net/asn.h"
#include "net/ip.h"
#include "topology/topology.h"

namespace s2s::bgp {

class Rib {
 public:
  Rib() = default;

  /// Loads every announced prefix from the topology.
  static Rib from_topology(const topology::Topology& topo);

  void insert(const net::Prefix4& prefix, net::Asn origin) {
    trie4_.insert(prefix, origin.value());
  }
  void insert(const net::Prefix6& prefix, net::Asn origin) {
    trie6_.insert(prefix, origin.value());
  }

  /// Origin AS of the longest matching announced prefix; nullopt when the
  /// address is not covered (the paper's unmapped-hop case).
  std::optional<net::Asn> origin(const net::IPAddr& addr) const;
  std::optional<net::Asn> origin(net::IPv4Addr addr) const;
  std::optional<net::Asn> origin(const net::IPv6Addr& addr) const;

  std::size_t size4() const noexcept { return trie4_.size(); }
  std::size_t size6() const noexcept { return trie6_.size(); }

 private:
  Trie4 trie4_;
  Trie6 trie6_;
};

}  // namespace s2s::bgp
