#include "bgp/relationships.h"

#include <algorithm>
#include <vector>

namespace s2s::bgp {

RelationshipTable RelationshipTable::from_topology(
    const topology::Topology& topo) {
  RelationshipTable table;
  for (const auto& adj : topo.adjacencies) {
    const net::Asn asn_a = topo.ases[adj.a].asn;
    const net::Asn asn_b = topo.ases[adj.b].asn;
    if (adj.rel == topology::Relationship::kCustomerToProvider) {
      table.add(asn_a, asn_b, Rel::kCustomer);
    } else {
      table.add(asn_a, asn_b, Rel::kPeer);
    }
  }
  return table;
}

void RelationshipTable::add(net::Asn a, net::Asn b, Rel a_to_b) {
  table_[key(a, b)] = a_to_b;
  Rel b_to_a = Rel::kPeer;
  if (a_to_b == Rel::kCustomer) b_to_a = Rel::kProvider;
  if (a_to_b == Rel::kProvider) b_to_a = Rel::kCustomer;
  table_[key(b, a)] = b_to_a;
}

std::optional<Rel> RelationshipTable::rel(net::Asn a, net::Asn b) const {
  const auto it = table_.find(key(a, b));
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void RelationshipTable::perturb(stats::Rng& rng, double flip_prob,
                                double drop_prob) {
  // Collect unordered pairs once (each adjacency is stored twice).
  std::vector<std::pair<net::Asn, net::Asn>> pairs;
  for (const auto& [k, v] : table_) {
    const net::Asn a(static_cast<std::uint32_t>(k >> 32));
    const net::Asn b(static_cast<std::uint32_t>(k & 0xffffffffu));
    if (a.value() < b.value()) pairs.emplace_back(a, b);
  }
  std::sort(pairs.begin(), pairs.end());  // deterministic RNG consumption
  for (const auto& [a, b] : pairs) {
    const double draw = rng.uniform();
    if (draw < drop_prob) {
      table_.erase(key(a, b));
      table_.erase(key(b, a));
    } else if (draw < drop_prob + flip_prob) {
      const Rel current = table_.at(key(a, b));
      // c2p <-> p2p confusion, the dominant error mode in practice.
      const Rel flipped =
          current == Rel::kPeer
              ? (rng.chance(0.5) ? Rel::kCustomer : Rel::kProvider)
              : Rel::kPeer;
      add(a, b, flipped);
    }
  }
}

}  // namespace s2s::bgp
