// Binary (unibit) prefix trie with longest-prefix-match lookup.
//
// This is the IP-to-ASN mapping core: the paper maps every traceroute hop
// to "the origin AS of the longest matching prefix observed in BGP".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/prefix.h"

namespace s2s::bgp {

/// Trie over `Prefix` (net::Prefix4 or net::Prefix6) storing a `Value` per
/// prefix. Inserting the same prefix twice overwrites the value.
template <typename Prefix, typename Addr, typename Value, int MaxBits>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  void insert(const Prefix& prefix, const Value& value) {
    std::size_t node = 0;
    for (int bit = 0; bit < prefix.length(); ++bit) {
      const int b = net::address_bit(prefix.address(), bit) ? 1 : 0;
      if (nodes_[node].child[b] < 0) {
        nodes_[node].child[b] = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      node = static_cast<std::size_t>(nodes_[node].child[b]);
    }
    if (nodes_[node].value < 0) {
      nodes_[node].value = static_cast<std::int32_t>(values_.size());
      values_.push_back(value);
      ++prefix_count_;
    } else {
      values_[static_cast<std::size_t>(nodes_[node].value)] = value;
    }
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  std::optional<Value> lookup(const Addr& addr) const {
    std::optional<Value> best;
    std::size_t node = 0;
    for (int bit = 0; bit <= MaxBits; ++bit) {
      if (nodes_[node].value >= 0) {
        best = values_[static_cast<std::size_t>(nodes_[node].value)];
      }
      if (bit == MaxBits) break;
      const int b = net::address_bit(addr, bit) ? 1 : 0;
      if (nodes_[node].child[b] < 0) break;
      node = static_cast<std::size_t>(nodes_[node].child[b]);
    }
    return best;
  }

  std::size_t size() const noexcept { return prefix_count_; }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t value = -1;
  };
  std::vector<Node> nodes_;
  std::vector<Value> values_;
  std::size_t prefix_count_ = 0;
};

using Trie4 = PrefixTrie<net::Prefix4, net::IPv4Addr, std::uint32_t, 32>;
using Trie6 = PrefixTrie<net::Prefix6, net::IPv6Addr, std::uint32_t, 128>;

}  // namespace s2s::bgp
