#include "bgp/rib.h"

namespace s2s::bgp {

Rib Rib::from_topology(const topology::Topology& topo) {
  Rib rib;
  for (const auto& entry : topo.prefixes4) {
    if (entry.announced) rib.insert(entry.prefix, entry.origin);
  }
  for (const auto& entry : topo.prefixes6) {
    if (entry.announced) rib.insert(entry.prefix, entry.origin);
  }
  return rib;
}

std::optional<net::Asn> Rib::origin(net::IPv4Addr addr) const {
  const auto v = trie4_.lookup(addr);
  if (!v) return std::nullopt;
  return net::Asn(*v);
}

std::optional<net::Asn> Rib::origin(const net::IPv6Addr& addr) const {
  const auto v = trie6_.lookup(addr);
  if (!v) return std::nullopt;
  return net::Asn(*v);
}

std::optional<net::Asn> Rib::origin(const net::IPAddr& addr) const {
  return addr.is_v4() ? origin(addr.v4()) : origin(addr.v6());
}

}  // namespace s2s::bgp
