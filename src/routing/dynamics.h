// Routing dynamics: per-adjacency outage processes.
//
// Each AS adjacency accumulates outage intervals over the campaign. An
// "outage" models anything that withdraws the adjacency from the routing
// plane: hard link/session failures, maintenance, or long-lived policy
// de-preferences (traffic engineering, peering disputes).
//
// Two empirical regularities drive the model, both needed to reproduce the
// paper's Figures 3-6:
//   * Outage frequency is heavily skewed: most adjacencies are stable for
//     months (the paper's 18%/16% of timelines saw no change in 16 months)
//     while a few flap repeatedly (the tail of Figure 3b). We draw a
//     per-adjacency rate multiplier from a wide lognormal.
//   * Repair time anti-correlates with impact: outages that force traffic
//     onto much slower paths get fixed in hours (operators notice);
//     benign shifts can persist for weeks or months. Mean repair time
//     decays exponentially with the adjacency's "severity" (the mean RTT
//     regression its loss causes), which paints the short-lived/high-
//     impact diagonal of the paper's Figures 4 and 5.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/timebase.h"
#include "routing/valley_free.h"
#include "stats/rng.h"

namespace s2s::routing {

struct DynamicsConfig {
  double campaign_days = 485.0;  ///< horizon covered by the schedule
  /// Mean outages per adjacency over the whole campaign (before the
  /// per-adjacency multiplier).
  double mean_outages_per_adjacency = 1.8;
  /// Sigma of the lognormal rate multiplier (mean normalized to 1).
  double rate_sigma = 2.0;
  /// Mean repair time = min + span * exp(-severity_ms / severity_scale).
  double repair_min_hours = 2.0;
  double repair_span_hours = 24.0 * 30.0;
  double severity_scale_ms = 15.0;
  /// Lognormal spread of individual outage durations around the mean.
  double duration_sigma = 0.8;
  /// Plane coupling: most outages hit shared infrastructure (both planes).
  double both_planes_prob = 0.70;
  double v4_only_prob = 0.20;  ///< remainder is IPv6-only

  // --- oscillating adjacencies ---
  // A small set of adjacencies alternates between preferred and
  // de-preferred for weeks at a time (traffic engineering, transit cost
  // balancing, simmering peering disputes). Pairs routed across them spend
  // large fractions of the campaign on their secondary path — the paper's
  // Figure 3a shows 20% of timelines whose most popular AS path holds for
  // less than half the study.
  double oscillate_fraction = 0.50;
  double oscillate_up_days_min = 25.0, oscillate_up_days_max = 90.0;
  double oscillate_down_days_min = 25.0, oscillate_down_days_max = 90.0;
  /// Only adjacencies that carry primary paths (severity > 0) and whose
  /// loss costs less than this oscillate — nobody tolerates months-long
  /// flips onto a far slower path, and unused adjacencies flip invisibly.
  double oscillate_max_severity_ms = 18.0;
};

/// A closed-open outage interval in one or both protocol planes.
struct Outage {
  net::SimTime start;
  net::SimTime end;
  bool v4 = true;
  bool v6 = true;
};

class OutageSchedule {
 public:
  /// `severity_ms(adjacency)` is the mean RTT regression (ms) that losing
  /// the adjacency causes across the pairs whose primary path uses it.
  OutageSchedule(const topology::Topology& topo, const DynamicsConfig& config,
                 const std::function<double(topology::AdjacencyId)>& severity_ms,
                 stats::Rng rng);

  /// True iff the adjacency is withdrawn from the given plane at `t`.
  bool is_down(topology::AdjacencyId id, net::Family family,
               net::SimTime t) const;

  /// Fills `out[adjacency] = is_down(adjacency, family, t)`.
  void failed_mask(net::Family family, net::SimTime t,
                   AdjacencyMask& out) const;

  /// Raw outage list (unmerged) for diagnostics and tests.
  const std::vector<Outage>& outages(topology::AdjacencyId id) const {
    return raw_[id];
  }
  std::size_t total_outages() const;

 private:
  struct Interval {
    std::int64_t start;
    std::int64_t end;
  };
  /// Merged, sorted, non-overlapping down intervals per plane.
  static bool covered(const std::vector<Interval>& intervals, std::int64_t t);

  std::vector<std::vector<Outage>> raw_;
  std::vector<std::vector<Interval>> down4_;
  std::vector<std::vector<Interval>> down6_;
};

}  // namespace s2s::routing
