#include "routing/candidates.h"

#include <algorithm>
#include <map>
#include <set>

namespace s2s::routing {

using topology::AdjacencyId;
using topology::AsId;
using topology::Topology;

Candidate make_candidate(const Topology& topo, const RouteTable& table,
                         std::vector<AsId> path, bool primary) {
  Candidate c;
  c.route_class = table.route_class[path.front()];
  c.primary = primary;
  c.adjs.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    c.adjs.push_back(*topo.find_adjacency(path[i], path[i + 1]));
  }
  c.path = std::move(path);
  return c;
}

bool candidate_preferred(const Topology& topo, const Candidate& a,
                         const Candidate& b) {
  if (a.route_class != b.route_class) return a.route_class < b.route_class;
  if (a.length() != b.length()) return a.length() < b.length();
  const std::size_t n = std::min(a.path.size(), b.path.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto asn_a = topo.ases[a.path[i]].asn;
    const auto asn_b = topo.ases[b.path[i]].asn;
    if (asn_a != asn_b) return asn_a < asn_b;
  }
  return a.path.size() < b.path.size();
}

CandidateTable::CandidateTable(
    const ValleyFreeRouter& router, net::Family family,
    std::span<const std::pair<AsId, AsId>> pairs)
    : family_(family) {
  const Topology& topo = router.topo();

  // Group sources by destination so each destination's tables are computed
  // once (std::map for deterministic processing order).
  std::map<AsId, std::vector<AsId>> by_dest;
  for (const auto& [src, dst] : pairs) {
    by_dest[dst].push_back(src);
    sets_.try_emplace(as_pair_key(src, dst));
  }

  AdjacencyMask mask(topo.adjacencies.size(), false);
  for (auto& [dest, srcs] : by_dest) {
    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());

    const RouteTable base = router.compute(dest, family);

    // Primary paths, and which sources traverse which adjacency.
    std::map<AdjacencyId, std::vector<AsId>> users;
    for (AsId src : srcs) {
      auto path = router.extract(base, src);
      if (!path) continue;  // destination unreachable in this plane
      Candidate primary = make_candidate(topo, base, std::move(*path), true);
      for (AdjacencyId adj : primary.adjs) users[adj].push_back(src);
      sets_[as_pair_key(src, dest)].candidates.push_back(std::move(primary));
    }

    // One failure scenario per adjacency used by any primary path.
    for (const auto& [adj, using_srcs] : users) {
      mask[adj] = true;
      const RouteTable alt_table = router.compute(dest, family, &mask);
      mask[adj] = false;
      for (AsId src : using_srcs) {
        auto path = router.extract(alt_table, src);
        if (!path) continue;  // no policy-compliant alternate
        Candidate alt =
            make_candidate(topo, alt_table, std::move(*path), false);
        auto& set = sets_[as_pair_key(src, dest)].candidates;
        const bool duplicate =
            std::any_of(set.begin(), set.end(), [&](const Candidate& c) {
              return c.path == alt.path;
            });
        if (!duplicate) set.push_back(std::move(alt));
      }
    }

    // Order: primary first, then alternates by BGP-like preference.
    for (AsId src : srcs) {
      auto& set = sets_[as_pair_key(src, dest)].candidates;
      std::stable_sort(set.begin(), set.end(),
                       [&](const Candidate& a, const Candidate& b) {
                         if (a.primary != b.primary) return a.primary;
                         return candidate_preferred(topo, a, b);
                       });
    }
  }
}

const CandidateSet* CandidateTable::find(AsId src, AsId dst) const {
  const auto it = sets_.find(as_pair_key(src, dst));
  return it == sets_.end() ? nullptr : &it->second;
}

std::size_t CandidateTable::total_candidates() const {
  std::size_t total = 0;
  for (const auto& [key, set] : sets_) total += set.candidates.size();
  return total;
}

}  // namespace s2s::routing
