// Candidate AS paths per ordered server-AS pair.
//
// For every (source AS, destination AS) pair used by a measurement
// campaign, we precompute the primary valley-free path plus the best
// alternate for the failure of each adjacency on that primary path.
// At simulation time, the active route under a set of failed adjacencies
// is the most-preferred candidate that avoids all failures; multi-failure
// corner cases fall back to an exact recomputation (see simnet::Network).
//
// This mirrors how BGP converges to the next-best policy-compliant path
// when a link or session fails, while keeping per-epoch resolution O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "routing/valley_free.h"

namespace s2s::routing {

struct Candidate {
  std::vector<topology::AsId> path;           ///< src .. dest (inclusive)
  std::vector<topology::AdjacencyId> adjs;    ///< adjacency per AS hop
  RouteClass route_class = RouteClass::kNone; ///< class at the source
  /// True for the no-failure primary path.
  bool primary = false;

  std::uint16_t length() const {
    return static_cast<std::uint16_t>(adjs.size());
  }
  /// True iff no adjacency of this path is in the failed mask.
  bool avoids(const AdjacencyMask& failed) const {
    for (auto a : adjs) {
      if (failed[a]) return false;
    }
    return true;
  }
};

/// Candidates for one ordered (src AS, dst AS) pair, most preferred first.
struct CandidateSet {
  std::vector<Candidate> candidates;

  /// Most preferred candidate avoiding `failed`, or nullptr.
  const Candidate* resolve(const AdjacencyMask& failed) const {
    for (const Candidate& c : candidates) {
      if (c.avoids(failed)) return &c;
    }
    return nullptr;
  }
};

/// Ordered (source AS, destination AS) pair.
using AsPairKey = std::uint64_t;
inline AsPairKey as_pair_key(topology::AsId src, topology::AsId dst) {
  return (std::uint64_t{src} << 32) | dst;
}

class CandidateTable {
 public:
  /// Builds candidate sets for all ordered pairs, in the given protocol
  /// plane. Pairs whose destination is unreachable get an empty set.
  CandidateTable(const ValleyFreeRouter& router, net::Family family,
                 std::span<const std::pair<topology::AsId, topology::AsId>> pairs);

  const CandidateSet* find(topology::AsId src, topology::AsId dst) const;

  net::Family family() const noexcept { return family_; }

  /// Total candidates across all pairs (diagnostics).
  std::size_t total_candidates() const;

  /// Calls `fn(srcAs, dstAs, set)` for every pair.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, set] : sets_) {
      fn(static_cast<topology::AsId>(key >> 32),
         static_cast<topology::AsId>(key & 0xffffffffu), set);
    }
  }

 private:
  net::Family family_;
  std::unordered_map<AsPairKey, CandidateSet> sets_;
};

/// Builds a Candidate from an extracted AS path and a route table.
Candidate make_candidate(const topology::Topology& topo,
                         const RouteTable& table,
                         std::vector<topology::AsId> path, bool primary);

/// Preference order used to sort alternates: route class, then length,
/// then lexicographic ASN path (deterministic).
bool candidate_preferred(const topology::Topology& topo, const Candidate& a,
                         const Candidate& b);

}  // namespace s2s::routing
