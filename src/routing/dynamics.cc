#include "routing/dynamics.h"

#include <algorithm>
#include <cmath>

namespace s2s::routing {

using topology::AdjacencyId;

namespace {

std::vector<std::pair<std::int64_t, std::int64_t>> merge_intervals(
    std::vector<std::pair<std::int64_t, std::int64_t>> spans) {
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& s : spans) {
    if (!merged.empty() && s.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, s.second);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

}  // namespace

OutageSchedule::OutageSchedule(
    const topology::Topology& topo, const DynamicsConfig& config,
    const std::function<double(AdjacencyId)>& severity_ms, stats::Rng rng) {
  const std::size_t n = topo.adjacencies.size();
  raw_.resize(n);
  down4_.resize(n);
  down6_.resize(n);

  const double horizon_s = config.campaign_days * 86400.0;
  // Lognormal multiplier with mean 1: mu = -sigma^2/2.
  const double rate_mu = -config.rate_sigma * config.rate_sigma / 2.0;

  for (AdjacencyId id = 0; id < n; ++id) {
    std::vector<std::pair<std::int64_t, std::int64_t>> spans4, spans6;

    // Oscillating adjacency: alternating preferred/de-preferred phases,
    // restricted to low-impact adjacencies.
    if (rng.chance(config.oscillate_fraction) &&
        severity_ms(id) > 1e-9 &&
        severity_ms(id) <= config.oscillate_max_severity_ms) {
      const double plane_draw = rng.uniform();
      const bool v4 =
          plane_draw < config.both_planes_prob + config.v4_only_prob;
      const bool v6 = plane_draw < config.both_planes_prob ||
                      plane_draw >=
                          config.both_planes_prob + config.v4_only_prob;
      double t = rng.uniform(0.0, config.oscillate_up_days_max) * 86400.0;
      while (t < horizon_s) {
        const double down_len =
            rng.uniform(config.oscillate_down_days_min,
                        config.oscillate_down_days_max) *
            86400.0;
        const auto start = static_cast<std::int64_t>(t);
        const auto end = static_cast<std::int64_t>(
            std::min(t + down_len, horizon_s));
        Outage outage;
        outage.start = net::SimTime(start);
        outage.end = net::SimTime(end);
        outage.v4 = v4;
        outage.v6 = v6;
        raw_[id].push_back(outage);
        if (v4) spans4.emplace_back(start, end);
        if (v6) spans6.emplace_back(start, end);
        t += down_len + rng.uniform(config.oscillate_up_days_min,
                                    config.oscillate_up_days_max) *
                            86400.0;
      }
    }

    const double multiplier = rng.lognormal(rate_mu, config.rate_sigma);
    const double mean_count =
        config.mean_outages_per_adjacency * multiplier;
    const int count = std::poisson_distribution<int>(mean_count)(rng);

    const double sev = std::max(0.0, severity_ms(id));
    const double mean_repair_h =
        config.repair_min_hours +
        config.repair_span_hours *
            std::exp(-sev / config.severity_scale_ms);
    // Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
    const double dur_mu = std::log(mean_repair_h * 3600.0) -
                          config.duration_sigma * config.duration_sigma / 2.0;

    for (int k = 0; k < count; ++k) {
      const auto start =
          static_cast<std::int64_t>(rng.uniform() * horizon_s);
      const auto duration = static_cast<std::int64_t>(
          rng.lognormal(dur_mu, config.duration_sigma));
      const std::int64_t end =
          std::min(start + std::max<std::int64_t>(duration, 60),
                   static_cast<std::int64_t>(horizon_s));
      Outage outage;
      outage.start = net::SimTime(start);
      outage.end = net::SimTime(end);
      const double plane_draw = rng.uniform();
      outage.v4 = plane_draw < config.both_planes_prob + config.v4_only_prob;
      outage.v6 = plane_draw < config.both_planes_prob ||
                  plane_draw >=
                      config.both_planes_prob + config.v4_only_prob;
      raw_[id].push_back(outage);
      if (outage.v4) spans4.emplace_back(start, end);
      if (outage.v6) spans6.emplace_back(start, end);
    }
    for (const auto& [s, e] : merge_intervals(std::move(spans4))) {
      down4_[id].push_back({s, e});
    }
    for (const auto& [s, e] : merge_intervals(std::move(spans6))) {
      down6_[id].push_back({s, e});
    }
  }
}

bool OutageSchedule::covered(const std::vector<Interval>& intervals,
                             std::int64_t t) {
  // Intervals are sorted and disjoint; find the last starting at or before t.
  const auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t,
      [](std::int64_t value, const Interval& iv) { return value < iv.start; });
  if (it == intervals.begin()) return false;
  return t < std::prev(it)->end;
}

bool OutageSchedule::is_down(AdjacencyId id, net::Family family,
                             net::SimTime t) const {
  const auto& planes =
      family == net::Family::kIPv4 ? down4_[id] : down6_[id];
  return covered(planes, t.seconds());
}

void OutageSchedule::failed_mask(net::Family family, net::SimTime t,
                                 AdjacencyMask& out) const {
  out.assign(raw_.size(), false);
  for (AdjacencyId id = 0; id < raw_.size(); ++id) {
    out[id] = is_down(id, family, t);
  }
}

std::size_t OutageSchedule::total_outages() const {
  std::size_t total = 0;
  for (const auto& list : raw_) total += list.size();
  return total;
}

}  // namespace s2s::routing
