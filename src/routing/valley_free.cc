#include "routing/valley_free.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace s2s::routing {

using topology::AdjacencyId;
using topology::Adjacency;
using topology::AsId;
using topology::Relationship;
using topology::Topology;

ValleyFreeRouter::ValleyFreeRouter(const Topology& topo) : topo_(topo) {
  neighbors4_.resize(topo.ases.size());
  neighbors6_.resize(topo.ases.size());
  for (AdjacencyId id = 0; id < topo.adjacencies.size(); ++id) {
    const Adjacency& adj = topo.adjacencies[id];
    int8_t role_for_a = 0;  // b as seen from a
    int8_t role_for_b = 0;  // a as seen from b
    if (adj.rel == Relationship::kCustomerToProvider) {
      role_for_a = -1;  // a's neighbor b is a's provider
      role_for_b = +1;  // b's neighbor a is b's customer
    }
    neighbors4_[adj.a].push_back({adj.b, id, role_for_a});
    neighbors4_[adj.b].push_back({adj.a, id, role_for_b});
    if (adj.ipv6) {
      neighbors6_[adj.a].push_back({adj.b, id, role_for_a});
      neighbors6_[adj.b].push_back({adj.a, id, role_for_b});
    }
  }
  // Deterministic relaxation order (by neighbor ASN).
  auto sort_all = [&](std::vector<std::vector<Neighbor>>& lists) {
    for (auto& list : lists) {
      std::sort(list.begin(), list.end(),
                [&](const Neighbor& x, const Neighbor& y) {
                  return topo.ases[x.as].asn < topo.ases[y.as].asn;
                });
    }
  };
  sort_all(neighbors4_);
  sort_all(neighbors6_);
}

bool ValleyFreeRouter::in_plane(AdjacencyId id, net::Family family) const {
  return family == net::Family::kIPv4 || topo_.adjacencies[id].ipv6;
}

RouteTable ValleyFreeRouter::compute(AsId dest, net::Family family,
                                     const AdjacencyMask* failed) const {
  const std::size_t n = topo_.ases.size();
  constexpr std::uint16_t kInf = std::numeric_limits<std::uint16_t>::max();

  RouteTable table;
  table.dest = dest;
  table.family = family;
  table.route_class.assign(n, RouteClass::kNone);
  table.length.assign(n, kInf);
  table.next_hop.assign(n, topology::kInvalidId);
  table.via.assign(n, topology::kInvalidId);

  auto blocked = [&](AdjacencyId id) {
    return failed != nullptr && (*failed)[id];
  };
  // Deterministic tie-break on equal (class, length): lowest next-hop ASN
  // on IPv4, highest on IPv6. Operators pick v6 egress policies
  // independently of v4, which is why dual-stack paths frequently differ
  // even between the same endpoints (paper Section 6).
  const bool prefer_low = family == net::Family::kIPv4;
  auto better_neighbor = [&](AsId cand, AsId incumbent) {
    const auto a = topo_.ases[cand].asn;
    const auto b = topo_.ases[incumbent].asn;
    return prefer_low ? a < b : b < a;
  };

  // ---- Phase A: customer routes (BFS up provider edges from dest) ----
  // An AS p learns a customer route via its customer n when n's own route
  // is customer-learned (or n is the destination itself).
  table.route_class[dest] = RouteClass::kCustomer;
  table.length[dest] = 0;
  std::vector<AsId> frontier = {dest};
  std::vector<AsId> next;
  std::uint16_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (AsId nhop : frontier) {
      for (const Neighbor& nb : neighbors(nhop, family)) {
        // nb.role == -1: nb.as is nhop's provider; nhop is nb.as's customer.
        if (nb.role != -1 || blocked(nb.adj)) continue;
        AsId p = nb.as;
        if (table.route_class[p] == RouteClass::kCustomer) {
          // Already settled; same-level tie-break on next-hop ASN.
          if (table.length[p] == level &&
              better_neighbor(nhop, table.next_hop[p])) {
            table.next_hop[p] = nhop;
            table.via[p] = nb.adj;
          }
          continue;
        }
        table.route_class[p] = RouteClass::kCustomer;
        table.length[p] = level;
        table.next_hop[p] = nhop;
        table.via[p] = nb.adj;
        next.push_back(p);
      }
    }
    frontier.swap(next);
  }

  // ---- Phase B: peer routes (one hop across a p2p edge) ----
  // x learns a peer route via peer n when n's best route is customer-type.
  // Applied only where no customer route exists (customer > peer).
  struct PeerCand {
    std::uint16_t length = kInf;
    AsId next = topology::kInvalidId;
    AdjacencyId via = topology::kInvalidId;
  };
  std::vector<PeerCand> peer(n);
  for (AsId x = 0; x < n; ++x) {
    if (table.route_class[x] == RouteClass::kCustomer) continue;
    for (const Neighbor& nb : neighbors(x, family)) {
      if (nb.role != 0 || blocked(nb.adj)) continue;
      if (table.route_class[nb.as] != RouteClass::kCustomer) continue;
      const auto cand_len = static_cast<std::uint16_t>(table.length[nb.as] + 1);
      PeerCand& cur = peer[x];
      if (cand_len < cur.length ||
          (cand_len == cur.length && cur.next != topology::kInvalidId &&
           better_neighbor(nb.as, cur.next))) {
        cur = {cand_len, nb.as, nb.adj};
      }
    }
  }
  for (AsId x = 0; x < n; ++x) {
    if (peer[x].next == topology::kInvalidId) continue;
    table.route_class[x] = RouteClass::kPeer;
    table.length[x] = peer[x].length;
    table.next_hop[x] = peer[x].next;
    table.via[x] = peer[x].via;
  }

  // ---- Phase C: provider routes (bucket BFS down customer edges) ----
  // A provider exports its best route (of any class) to its customers.
  // Seeds are every AS holding a customer or peer route; propagation
  // continues down chains of c2p edges.
  std::priority_queue<std::pair<std::uint32_t, AsId>,
                      std::vector<std::pair<std::uint32_t, AsId>>,
                      std::greater<>>
      heap;
  for (AsId x = 0; x < n; ++x) {
    if (table.route_class[x] != RouteClass::kNone) {
      heap.emplace(table.length[x], x);
    }
  }
  while (!heap.empty()) {
    const auto [len, x] = heap.top();
    heap.pop();
    if (len > table.length[x]) continue;  // stale entry
    for (const Neighbor& nb : neighbors(x, family)) {
      // nb.role == +1: nb.as is x's customer, so x exports everything to it.
      if (nb.role != +1 || blocked(nb.adj)) continue;
      const AsId c = nb.as;
      if (table.route_class[c] == RouteClass::kCustomer ||
          table.route_class[c] == RouteClass::kPeer) {
        continue;  // better class already present
      }
      const auto cand_len = static_cast<std::uint16_t>(table.length[x] + 1);
      const bool improves =
          table.route_class[c] == RouteClass::kNone ||
          cand_len < table.length[c] ||
          (cand_len == table.length[c] && better_neighbor(x, table.next_hop[c]));
      if (!improves) continue;
      table.route_class[c] = RouteClass::kProvider;
      table.length[c] = cand_len;
      table.next_hop[c] = x;
      table.via[c] = nb.adj;
      heap.emplace(cand_len, c);
    }
  }

  return table;
}

std::optional<std::vector<AsId>> ValleyFreeRouter::extract(
    const RouteTable& table, AsId src) const {
  if (!table.reachable(src)) return std::nullopt;
  std::vector<AsId> path;
  AsId cur = src;
  path.push_back(cur);
  while (cur != table.dest) {
    cur = table.next_hop[cur];
    path.push_back(cur);
    if (path.size() > topo_.ases.size()) return std::nullopt;  // defensive
  }
  return path;
}

}  // namespace s2s::routing
