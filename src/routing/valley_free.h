// Per-destination valley-free (Gao-Rexford) route computation.
//
// Standard BGP policy model:
//   * export rules: an AS exports everything to its customers, but only its
//     own prefixes and customer-learned routes to peers and providers;
//   * selection: customer routes over peer routes over provider routes,
//     then shortest AS-path, then lowest next-hop ASN (deterministic).
//
// compute() runs the classic three-phase propagation (customer BFS up,
// one-hop peer step, provider BFS down) in O(V + E) per destination, with
// an optional mask of failed adjacencies and a per-family (IPv4/IPv6)
// adjacency plane.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/asn.h"
#include "net/ip.h"
#include "topology/topology.h"

namespace s2s::routing {

/// failed[adjacency] == true removes that AS adjacency from the plane.
using AdjacencyMask = std::vector<bool>;

/// Route class in preference order (smaller is better); kNone = unreachable.
enum class RouteClass : std::uint8_t {
  kCustomer = 1,
  kPeer = 2,
  kProvider = 3,
  kNone = 255,
};

/// Routes from every AS toward one destination AS.
struct RouteTable {
  topology::AsId dest = topology::kInvalidId;
  net::Family family = net::Family::kIPv4;
  std::vector<RouteClass> route_class;       // per AS
  std::vector<std::uint16_t> length;         // AS hops to dest
  std::vector<topology::AsId> next_hop;      // neighbor toward dest
  std::vector<topology::AdjacencyId> via;    // adjacency to that neighbor

  bool reachable(topology::AsId src) const {
    return route_class[src] != RouteClass::kNone;
  }
};

class ValleyFreeRouter {
 public:
  explicit ValleyFreeRouter(const topology::Topology& topo);

  /// Computes the route table toward `dest` in the given protocol plane.
  /// `failed` (optional) masks adjacencies out of the plane.
  RouteTable compute(topology::AsId dest, net::Family family,
                     const AdjacencyMask* failed = nullptr) const;

  /// AS-level path src -> ... -> dest from a table; nullopt if unreachable.
  std::optional<std::vector<topology::AsId>> extract(const RouteTable& table,
                                                     topology::AsId src) const;

  /// True iff the adjacency exists in the given protocol plane.
  bool in_plane(topology::AdjacencyId id, net::Family family) const;

  const topology::Topology& topo() const noexcept { return topo_; }

 private:
  struct Neighbor {
    topology::AsId as;
    topology::AdjacencyId adj;
    /// Role of the neighbor relative to the owning AS:
    /// +1 the neighbor is our customer, 0 peer, -1 the neighbor is our
    /// provider.
    int8_t role;
  };

  const std::vector<Neighbor>& neighbors(topology::AsId as,
                                         net::Family family) const {
    return family == net::Family::kIPv4 ? neighbors4_[as] : neighbors6_[as];
  }

  const topology::Topology& topo_;
  std::vector<std::vector<Neighbor>> neighbors4_;
  std::vector<std::vector<Neighbor>> neighbors6_;
};

}  // namespace s2s::routing
