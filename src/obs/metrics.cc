#include "obs/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "obs/log.h"

namespace s2s::obs {

namespace {

/// Registry serials are never reused, so a stale thread-local cache can
/// never alias a new registry at a recycled address.
std::atomic<std::uint64_t> g_next_serial{1};

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate inside bucket i: [lo, hi].
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : bounds.back();
    if (hi <= lo) return hi;
    const double frac =
        counts[i] == 0
            ? 0.0
            : (target - before) / static_cast<double>(counts[i]);
    return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double HistogramSnapshot::approx_mean() const {
  if (total == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : bounds.back();
    sum += static_cast<double>(counts[i]) * 0.5 * (lo + hi);
  }
  return sum / static_cast<double>(total);
}

MetricsRegistry::MetricsRegistry()
    : serial_(g_next_serial.fetch_add(1, std::memory_order_relaxed)) {}

Counter MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = defs_.find(name);
  if (it != defs_.end()) {
    if (it->second.kind != Kind::kCounter) {
      logf(LogLevel::kWarn, "metric '%s' re-registered with a new kind",
           name.c_str());
      return {};
    }
    return Counter(this, it->second.base);
  }
  if (next_slot_ + 1 > kMaxSlots) {
    logf(LogLevel::kWarn, "metric slots exhausted; '%s' is a no-op",
         name.c_str());
    return {};
  }
  MetricDef def{Kind::kCounter, next_slot_, 1, {}};
  next_slot_ += 1;
  defs_.emplace(name, std::move(def));
  return Counter(this, next_slot_ - 1);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto def = defs_.find(name);
  if (def != defs_.end() && def->second.kind != Kind::kGauge) {
    logf(LogLevel::kWarn, "metric '%s' re-registered with a new kind",
         name.c_str());
    return {};
  }
  if (def == defs_.end()) defs_.emplace(name, MetricDef{Kind::kGauge, 0, 0, {}});
  return Gauge(&gauges_[name]);  // map node addresses are stable
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = defs_.find(name);
  if (it != defs_.end()) {
    if (it->second.kind != Kind::kHistogram) {
      logf(LogLevel::kWarn, "metric '%s' re-registered with a new kind",
           name.c_str());
      return {};
    }
    return Histogram(this, it->second.base, &it->second.bounds);
  }
  const auto width = static_cast<std::uint32_t>(bounds.size() + 1);
  if (bounds.empty() || next_slot_ + width > kMaxSlots) {
    logf(LogLevel::kWarn, "histogram '%s' rejected (empty bounds or slots "
         "exhausted); handle is a no-op", name.c_str());
    return {};
  }
  MetricDef def{Kind::kHistogram, next_slot_, width, std::move(bounds)};
  next_slot_ += width;
  const auto [pos, inserted] = defs_.emplace(name, std::move(def));
  (void)inserted;
  return Histogram(this, pos->second.base, &pos->second.bounds);
}

const std::vector<double>& MetricsRegistry::latency_us_bounds() {
  static const std::vector<double> bounds = {
      1,    3,     10,    30,     100,    300,     1000,   3000,
      1e4,  3e4,   1e5,   3e5,    1e6,    3e6,     1e7};
  return bounds;
}

const std::vector<double>& MetricsRegistry::rtt_ms_bounds() {
  static const std::vector<double> bounds = {1,   2,   5,    10,   20,  40,
                                             80,  160, 320,  640,  1280, 2000};
  return bounds;
}

MetricsRegistry::Shard* MetricsRegistry::attach_thread(ThreadCache& cache) {
  // Slow path: one map lookup per (thread, registry) switch. The map is
  // keyed by serial so entries for dead registries can never collide.
  thread_local std::unordered_map<std::uint64_t, Shard*> by_serial;
  const auto it = by_serial.find(serial_);
  Shard* shard;
  if (it != by_serial.end()) {
    shard = it->second;
  } else {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shards_.push_back(std::move(owned));
    }
    by_serial.emplace(serial_, shard);
  }
  cache.serial = serial_;
  cache.shard = shard;
  return shard;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, def] : defs_) {
    switch (def.kind) {
      case Kind::kCounter: {
        std::uint64_t sum = 0;
        for (const auto& shard : shards_) {
          sum += shard->slots[def.base].load(std::memory_order_relaxed);
        }
        snap.counters.emplace(name, sum);
        break;
      }
      case Kind::kGauge: {
        const auto cell = gauges_.find(name);
        snap.gauges.emplace(
            name, cell == gauges_.end()
                      ? 0.0
                      : cell->second.load(std::memory_order_relaxed));
        break;
      }
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = def.bounds;
        h.counts.assign(def.width, 0);
        for (const auto& shard : shards_) {
          for (std::uint32_t i = 0; i < def.width; ++i) {
            h.counts[i] +=
                shard->slots[def.base + i].load(std::memory_order_relaxed);
          }
        }
        for (const auto c : h.counts) h.total += c;
        snap.histograms.emplace(name, std::move(h));
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : gauges_) {
    cell.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace s2s::obs
