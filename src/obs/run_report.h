// Machine-readable run reports: one versioned JSON document per run.
//
// A RunReport merges the three observability surfaces into one artifact
// written at the end of a campaign/survey/bench run:
//   * MetricsRegistry snapshot (counters, gauges, histograms),
//   * per-stage span timings aggregated by path from a TraceCollector,
//   * the pipeline's DataQualityReport counters (passed in as a plain
//     name->count map so this layer stays below core).
//
// Schema versioning policy (DESIGN.md section 8): `schema_version` bumps
// on any incompatible change (key removal/retyping); adding keys is
// compatible and does not bump. Consumers (CI validator, perf-trajectory
// tooling) must reject versions they do not know.
//
// v2 (DESIGN.md section 13): histograms gain an "overflow" key (samples
// past the last finite bound, i.e. where quantile() clamps), and two
// optional top-level maps join: "windowed" (last-N-seconds latency
// views) and "slo" (threshold good/total counters). v1 documents parse
// as v2 minus the new keys; the version bumped because consumers keying
// SLO dashboards off these maps must not silently read a v1 file.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/windowed.h"

namespace s2s::obs {

inline constexpr int kRunReportSchemaVersion = 2;

struct RunReport {
  int schema_version = kRunReportSchemaVersion;
  std::string tool;     ///< binary or stage that produced the run
  double wall_ms = 0.0; ///< end-to-end wall time, when known

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  struct SpanStat {
    std::uint32_t depth = 0;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double self_ms = 0.0;
  };
  /// Aggregated span timings keyed by span path ("a/b/c").
  std::map<std::string, SpanStat> spans;

  /// DataQualityReport counters (e.g. "invalid_rtt"), possibly merged
  /// across stores; empty when the run has no quality accounting.
  std::map<std::string, std::uint64_t> data_quality;

  /// Last-N-seconds latency views keyed by metric name (serving daemons
  /// fill these from their WindowedHistograms at shutdown). Optional —
  /// batch tools leave them empty.
  std::map<std::string, WindowedSnapshot> windowed;
  /// SLO good/total counters keyed by metric name. Optional.
  std::map<std::string, SloStat> slo;

  std::size_t metric_count() const {
    return counters.size() + gauges.size() + histograms.size();
  }
  /// Spans that live under a parent (path contains '/').
  std::size_t nested_span_count() const;

  std::string to_json() const;
  static std::optional<RunReport> parse(std::string_view json_text);
};

/// Captures the current state of a registry + collector into a report.
/// wall_ms is taken from the span of the earliest start to the latest
/// end; callers may overwrite it. data_quality starts empty.
RunReport build_run_report(
    std::string tool,
    const MetricsRegistry& registry = MetricsRegistry::global(),
    const TraceCollector& collector = TraceCollector::global());

/// Writes `text` to `path` atomically enough for CI (tmp file + rename
/// is overkill here; a failed write returns false and logs).
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace s2s::obs
