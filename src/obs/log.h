// Leveled diagnostics for library code.
//
// Library code must never print unconditionally: a store ingesting a
// hundred-million-record campaign cannot own the process's stderr, and
// tests need silence. Every diagnostic therefore goes through this sink:
// it is leveled (debug < info < warn < error), filtered before any
// formatting work happens, and redirectable — tests install a capturing
// sink or set the level to kOff, embedders forward to their own logger.
// The default sink writes "s2s TIMESTAMP [LEVEL] message" lines to
// stderr, where TIMESTAMP is UTC wall-clock (2026-08-08T12:34:56.789Z)
// so daemon logs correlate with external monitoring without guessing
// the host timezone.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace s2s::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold only; never attached to a message
};

std::string_view to_string(LogLevel level);

/// Minimum level that reaches the sink (default kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// True iff a message at `level` would reach the sink; callers building
/// expensive diagnostics should gate on this first.
bool log_enabled(LogLevel level);

/// Replaces the sink; an empty function restores the stderr default.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

/// Sends a preformatted message (no trailing newline needed).
void log_message(LogLevel level, std::string_view message);

/// The default sink's line prefix for `now_ms` milliseconds since the
/// Unix epoch: "2026-08-08T12:34:56.789Z" (UTC, fixed width). Exposed so
/// tests can pin the format without scraping stderr.
std::string log_timestamp_utc(std::int64_t now_ms);

/// printf-style convenience; formatting is skipped when filtered out.
[[gnu::format(printf, 2, 3)]]
void logf(LogLevel level, const char* fmt, ...);

}  // namespace s2s::obs
