#include "obs/windowed.h"

#include <algorithm>
#include <chrono>

namespace s2s::obs {

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     int window_seconds, int slots,
                                     ClockFn clock)
    : clock_(clock ? std::move(clock) : ClockFn(&steady_now_ms)) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  bounds_ = std::move(bounds);
  slot_count_ = std::max(slots, 1);
  window_seconds = std::max(window_seconds, 1);
  slot_ms_ = std::max<std::int64_t>(
      static_cast<std::int64_t>(window_seconds) * 1000 / slot_count_, 1);
  slots_.reserve(static_cast<std::size_t>(slot_count_));
  for (int i = 0; i < slot_count_; ++i) {
    slots_.push_back(std::make_unique<Slot>(bounds_.size() + 1));
  }
}

void WindowedHistogram::record(double v) {
  const std::int64_t tick = now_tick();
  Slot& slot = *slots_[static_cast<std::size_t>(
      tick % static_cast<std::int64_t>(slot_count_))];
  if (slot.tick.load(std::memory_order_acquire) != tick) {
    // First write of this tick into a recycled slot: zero it once, under
    // the mutex, then publish the new tick so peers skip straight to the
    // fetch_add.
    const std::lock_guard<std::mutex> lock(rotate_mutex_);
    if (slot.tick.load(std::memory_order_relaxed) != tick) {
      for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
      slot.tick.store(tick, std::memory_order_release);
    }
  }
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  slot.counts[i].fetch_add(1, std::memory_order_relaxed);
}

WindowedSnapshot WindowedHistogram::snapshot() const {
  WindowedSnapshot snap;
  snap.window_s = window_seconds();
  snap.hist.bounds = bounds_;
  snap.hist.counts.assign(bounds_.size() + 1, 0);
  const std::int64_t tick = now_tick();
  const std::int64_t oldest = tick - static_cast<std::int64_t>(slot_count_) + 1;
  for (const auto& slot : slots_) {
    const std::int64_t slot_tick = slot->tick.load(std::memory_order_acquire);
    if (slot_tick < oldest || slot_tick > tick) continue;
    for (std::size_t i = 0; i < snap.hist.counts.size(); ++i) {
      snap.hist.counts[i] +=
          slot->counts[i].load(std::memory_order_relaxed);
    }
  }
  for (const auto c : snap.hist.counts) snap.hist.total += c;
  return snap;
}

}  // namespace s2s::obs
