#include "obs/run_report.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "obs/log.h"

namespace s2s::obs {

namespace {

void write_u64_map(json::Writer& w, const char* key,
                   const std::map<std::string, std::uint64_t>& map) {
  w.key(key).begin_object();
  for (const auto& [name, v] : map) w.key(name).value(v);
  w.end_object();
}

bool read_u64_map(const json::Value& parent, const char* key,
                  std::map<std::string, std::uint64_t>& out) {
  const auto* obj = parent.find(key);
  if (obj == nullptr || !obj->is_object()) return false;
  for (const auto& [name, v] : obj->object) {
    if (!v.is_number()) return false;
    out.emplace(name, v.as_u64());
  }
  return true;
}

}  // namespace

std::size_t RunReport::nested_span_count() const {
  return static_cast<std::size_t>(
      std::count_if(spans.begin(), spans.end(), [](const auto& kv) {
        return kv.first.find('/') != std::string::npos;
      }));
}

std::string RunReport::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema_version").value(schema_version);
  w.key("tool").value(tool);
  w.key("wall_ms").value(wall_ms);

  w.key("metrics").begin_object();
  write_u64_map(w, "counters", counters);
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const auto c : h.counts) w.value(c);
    w.end_array();
    w.key("total").value(h.total);
    w.key("overflow").value(h.overflow());
    w.key("p50").value(h.quantile(0.50));
    w.key("p99").value(h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();  // metrics

  w.key("spans").begin_object();
  for (const auto& [path, s] : spans) {
    w.key(path).begin_object();
    w.key("depth").value(static_cast<std::int64_t>(s.depth));
    w.key("count").value(s.count);
    w.key("total_ms").value(s.total_ms);
    w.key("self_ms").value(s.self_ms);
    w.end_object();
  }
  w.end_object();

  write_u64_map(w, "data_quality", data_quality);

  w.key("windowed").begin_object();
  for (const auto& [name, win] : windowed) {
    w.key(name).begin_object();
    w.key("window_s").value(win.window_s);
    w.key("bounds").begin_array();
    for (const double b : win.hist.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const auto c : win.hist.counts) w.value(c);
    w.end_array();
    w.key("total").value(win.hist.total);
    w.key("p50").value(win.hist.quantile(0.50));
    w.key("p99").value(win.hist.quantile(0.99));
    w.end_object();
  }
  w.end_object();

  w.key("slo").begin_object();
  for (const auto& [name, s] : slo) {
    w.key(name).begin_object();
    w.key("threshold_us").value(s.threshold_us);
    w.key("good").value(s.good);
    w.key("total").value(s.total);
    w.key("good_ratio").value(s.good_ratio());
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

std::optional<RunReport> RunReport::parse(std::string_view json_text) {
  const auto root = json::parse(json_text);
  if (!root || !root->is_object()) return std::nullopt;
  RunReport report;

  const auto* version = root->find("schema_version");
  const auto* tool = root->find("tool");
  if (version == nullptr || !version->is_number() || tool == nullptr ||
      !tool->is_string()) {
    return std::nullopt;
  }
  report.schema_version = static_cast<int>(version->as_i64());
  report.tool = tool->string;
  if (const auto* wall = root->find("wall_ms"); wall && wall->is_number()) {
    report.wall_ms = wall->number;
  }

  const auto* metrics = root->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return std::nullopt;
  if (!read_u64_map(*metrics, "counters", report.counters)) {
    return std::nullopt;
  }
  if (const auto* gauges = metrics->find("gauges");
      gauges && gauges->is_object()) {
    for (const auto& [name, v] : gauges->object) {
      if (!v.is_number()) return std::nullopt;
      report.gauges.emplace(name, v.number);
    }
  } else {
    return std::nullopt;
  }
  const auto* hists = metrics->find("histograms");
  if (hists == nullptr || !hists->is_object()) return std::nullopt;
  for (const auto& [name, h] : hists->object) {
    const auto* bounds = h.find("bounds");
    const auto* counts = h.find("counts");
    if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
        !counts->is_array() ||
        counts->array.size() != bounds->array.size() + 1) {
      return std::nullopt;
    }
    HistogramSnapshot snap;
    for (const auto& b : bounds->array) {
      if (!b.is_number()) return std::nullopt;
      snap.bounds.push_back(b.number);
    }
    for (const auto& c : counts->array) {
      if (!c.is_number()) return std::nullopt;
      snap.counts.push_back(c.as_u64());
      snap.total += snap.counts.back();
    }
    report.histograms.emplace(name, std::move(snap));
  }

  const auto* spans = root->find("spans");
  if (spans == nullptr || !spans->is_object()) return std::nullopt;
  for (const auto& [path, s] : spans->object) {
    const auto* depth = s.find("depth");
    const auto* count = s.find("count");
    const auto* total = s.find("total_ms");
    const auto* self = s.find("self_ms");
    if (depth == nullptr || !depth->is_number() || count == nullptr ||
        !count->is_number() || total == nullptr || !total->is_number() ||
        self == nullptr || !self->is_number()) {
      return std::nullopt;
    }
    report.spans.emplace(
        path, SpanStat{static_cast<std::uint32_t>(depth->as_u64()),
                       count->as_u64(), total->number, self->number});
  }

  if (!read_u64_map(*root, "data_quality", report.data_quality)) {
    return std::nullopt;
  }

  // v2 additions; absent in v1 documents, so both maps are optional.
  if (const auto* win = root->find("windowed"); win && win->is_object()) {
    for (const auto& [name, v] : win->object) {
      const auto* window_s = v.find("window_s");
      const auto* bounds = v.find("bounds");
      const auto* counts = v.find("counts");
      if (window_s == nullptr || !window_s->is_number() || bounds == nullptr ||
          !bounds->is_array() || counts == nullptr || !counts->is_array() ||
          counts->array.size() != bounds->array.size() + 1) {
        return std::nullopt;
      }
      WindowedSnapshot snap;
      snap.window_s = window_s->number;
      for (const auto& b : bounds->array) {
        if (!b.is_number()) return std::nullopt;
        snap.hist.bounds.push_back(b.number);
      }
      for (const auto& c : counts->array) {
        if (!c.is_number()) return std::nullopt;
        snap.hist.counts.push_back(c.as_u64());
        snap.hist.total += snap.hist.counts.back();
      }
      report.windowed.emplace(name, std::move(snap));
    }
  }
  if (const auto* slo = root->find("slo"); slo && slo->is_object()) {
    for (const auto& [name, v] : slo->object) {
      const auto* threshold = v.find("threshold_us");
      const auto* good = v.find("good");
      const auto* total = v.find("total");
      if (threshold == nullptr || !threshold->is_number() || good == nullptr ||
          !good->is_number() || total == nullptr || !total->is_number()) {
        return std::nullopt;
      }
      report.slo.emplace(
          name, SloStat{threshold->number, good->as_u64(), total->as_u64()});
    }
  }
  return report;
}

RunReport build_run_report(std::string tool, const MetricsRegistry& registry,
                           const TraceCollector& collector) {
  RunReport report;
  report.tool = std::move(tool);

  auto snap = registry.snapshot();
  report.counters = std::move(snap.counters);
  report.gauges = std::move(snap.gauges);
  report.histograms = std::move(snap.histograms);

  std::int64_t first_us = 0, last_us = 0;
  bool any = false;
  for (const auto& e : collector.events()) {
    if (!any || e.start_us < first_us) first_us = e.start_us;
    if (!any || e.start_us + e.dur_us > last_us) {
      last_us = e.start_us + e.dur_us;
    }
    any = true;
  }
  if (any) report.wall_ms = static_cast<double>(last_us - first_us) / 1000.0;

  for (const auto& [path, s] : collector.aggregate()) {
    report.spans.emplace(path, RunReport::SpanStat{s.depth, s.count,
                                                   s.total_ms, s.self_ms});
  }
  return report;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    logf(LogLevel::kError, "cannot open '%s' for writing", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) logf(LogLevel::kError, "short write to '%s'", path.c_str());
  return ok;
}

}  // namespace s2s::obs
