// Prometheus / OpenMetrics text exposition of a MetricsSnapshot.
//
// The live serving path exposes its registry through `kMetricsDump`
// (DESIGN.md section 13); this renderer produces the text format every
// scraper understands:
//
//   # TYPE s2s_svc_requests_total counter
//   s2s_svc_requests_total 12345
//   # TYPE s2s_svc_latency_us_pair_rtt histogram
//   s2s_svc_latency_us_pair_rtt_bucket{le="1"} 0
//   ...
//   s2s_svc_latency_us_pair_rtt_bucket{le="+Inf"} 73
//   s2s_svc_latency_us_pair_rtt_sum 80321.5
//   s2s_svc_latency_us_pair_rtt_count 73
//
// Metric names are sanitized ('.' and any other illegal character
// become '_'); counters gain the conventional `_total` suffix; bucket
// counts are emitted cumulatively with the mandatory `+Inf` bucket, and
// `_sum` is the midpoint estimate (the registry deliberately does not
// track per-sample sums — see metrics.h). Windowed histograms and SLO
// stats are appended as gauges (`<name>_p50` / `_p99` / `_count` /
// `_window_s`, `<name>_good_ratio` / `_threshold_us`) so a scrape
// carries the last-N-seconds view next to the lifetime one.
// tools/check_metrics_text.py validates this format in CI.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/windowed.h"

namespace s2s::obs {

/// A metric name with every illegal character replaced by '_'
/// (Prometheus names match [a-zA-Z_:][a-zA-Z0-9_:]*).
std::string prometheus_name(const std::string& name);

std::string to_prometheus_text(
    const MetricsSnapshot& snapshot,
    const std::map<std::string, WindowedSnapshot>& windowed = {},
    const std::map<std::string, SloStat>& slo = {});

}  // namespace s2s::obs
