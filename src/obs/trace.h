// Pipeline trace spans: RAII timers with parent/child nesting.
//
// A TraceSpan marks a stage of the pipeline (a campaign run, one epoch,
// an analysis pass); spans opened while another span is live on the same
// thread become its children, so the collected events form a forest that
// exports directly as Chrome trace-event JSON ("X" complete events —
// load chrome://tracing or https://ui.perfetto.dev and drop the file in)
// and aggregates into a compact text flamegraph keyed by span path
// ("campaign.traceroute/epoch").
//
// Spans are for stage granularity, not per-record loops: closing a span
// takes one mutex acquisition to append the finished event. Per-record
// instrumentation belongs in MetricsRegistry counters/histograms.
// ScopedTimer bridges the two: an RAII guard that records its elapsed
// microseconds into a Histogram, for hot sections that want a latency
// distribution without a trace event per iteration.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace s2s::obs {

/// One finished span.
///
/// trace_id / span_id / parent_span_id carry the cross-process request
/// identity (DESIGN.md section 13): a client call span mints a trace id,
/// ships it over the wire inside the S2SQ trace-context prefix, and the
/// server's request span adopts it — so one chrome://tracing export
/// shows both halves of a request stitched by id. All three are 0 when
/// tracing is purely local (pipeline stage spans).
struct SpanEvent {
  std::string name;
  std::string path;  ///< "/"-joined ancestor names, root first
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;      ///< 0 = root span
  std::int64_t start_us = 0;    ///< since the collector epoch
  std::int64_t dur_us = 0;
  std::uint64_t trace_id = 0;       ///< request identity; 0 = untraced
  std::uint64_t span_id = 0;        ///< this span, unique per collector
  std::uint64_t parent_span_id = 0; ///< 0 = root of its trace
  std::string note;                 ///< free-form annotation ("won", ...)
};

class TraceSpan;

class TraceCollector {
 public:
  /// Completed-event cap; past it, events are dropped and counted (a
  /// runaway per-item span loop degrades the trace, never the process).
  static constexpr std::size_t kMaxEvents = 1 << 16;

  TraceCollector();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all collected events and restarts the time origin.
  void clear();

  std::vector<SpanEvent> events() const;
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t now_us() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}]}.
  std::string to_chrome_json() const;

  /// Per-path aggregate over all finished spans.
  struct PathStat {
    std::uint32_t depth = 0;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double self_ms = 0.0;  ///< total minus direct children
  };
  std::map<std::string, PathStat> aggregate() const;

  /// Indented text summary, one line per path, children under parents.
  std::string flamegraph() const;

  /// Append a pre-built event (same cap/drop policy as span commit).
  /// For retroactive phases that were never live as a stack span — e.g.
  /// the server emits queue_wait after the fact, once the dequeue
  /// timestamp is known.
  void emit_event(SpanEvent event) { commit(std::move(event)); }

  /// Collector-unique span id (never 0). Also mints trace ids for spans
  /// that start a new trace.
  std::uint64_t new_span_id() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  static TraceCollector& global();

 private:
  friend class TraceSpan;
  void commit(SpanEvent event);

  std::atomic<std::uint64_t> next_span_id_{1};

  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
};

/// RAII span. Construct on the stack; destruction commits the event.
/// Construction while the collector is disabled is a no-op and does not
/// link into the nesting chain.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     TraceCollector& collector = TraceCollector::global());
  /// Span with an explicit trace identity — the server side of a traced
  /// request: `trace_id` and `parent_span_id` arrive over the wire, and
  /// this span becomes the remote parent's child. trace_id 0 starts a
  /// fresh trace (a new id is minted), which is how client call spans
  /// originate one.
  TraceSpan(std::string_view name, std::uint64_t trace_id,
            std::uint64_t parent_span_id,
            TraceCollector& collector = TraceCollector::global());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const std::string& path() const noexcept { return path_; }
  std::uint64_t trace_id() const noexcept { return trace_id_; }
  std::uint64_t span_id() const noexcept { return span_id_; }
  std::uint32_t depth() const noexcept { return depth_; }

  /// Annotation committed with the event ("won" / "lost" on hedges).
  void set_note(std::string note) { note_ = std::move(note); }

 private:
  TraceCollector* collector_ = nullptr;  ///< null when disabled
  TraceSpan* parent_ = nullptr;
  std::string name_;
  std::string path_;
  std::string note_;
  std::uint32_t depth_ = 0;
  std::int64_t start_us_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
};

/// Records elapsed microseconds into `hist` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace s2s::obs
