#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace s2s::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) out_ += ',';
    has_item_.back() = true;
  }
}

Writer& Writer::begin_object() {
  separate();
  out_ += '{';
  has_item_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  has_item_.pop_back();
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  separate();
  out_ += '[';
  has_item_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  has_item_.pop_back();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view name) {
  separate();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  separate();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

Writer& Writer::value(double v) {
  separate();
  if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to null
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      out_ += probe;
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  separate();
  out_ += "null";
  return *this;
}

const Value* Value::find(std::string_view name) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string(name));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos + 4 > text.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    pos += 4;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return false;
            append_utf8(out, cp);  // BMP only; surrogates pass through raw
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 64) return false;
    skip_ws();
    if (eof()) return false;
    const char c = peek();
    if (c == '{') {
      ++pos;
      out.kind = Value::Kind::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return false;
        Value member;
        if (!parse_value(member, depth + 1)) return false;
        out.object.emplace(std::move(key), std::move(member));
        skip_ws();
        if (consume(',')) continue;
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Value::Kind::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value item;
        if (!parse_value(item, depth + 1)) return false;
        out.array.push_back(std::move(item));
        skip_ws();
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.string);
    }
    if (consume_word("true")) {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (consume_word("false")) {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (consume_word("null")) {
      out.kind = Value::Kind::kNull;
      return true;
    }
    // Number: copy the candidate span into a NUL-terminated buffer first
    // (the view is not guaranteed NUL-terminated), then let strtod judge.
    char buf[64];
    std::size_t n = 0;
    while (pos + n < text.size() && n + 1 < sizeof(buf)) {
      const char d = text[pos + n];
      if (!((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
            d == 'e' || d == 'E')) {
        break;
      }
      buf[n++] = d;
    }
    buf[n] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end == buf || !std::isfinite(v)) return false;
    pos += static_cast<std::size_t>(end - buf);
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return true;
  }
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  Parser p{text};
  Value root;
  if (!p.parse_value(root, 0)) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;
  return root;
}

}  // namespace s2s::obs::json
