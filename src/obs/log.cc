#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <string>

namespace s2s::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;
LogSink& sink_slot() {
  static LogSink sink;  // empty = stderr default
  return sink;
}

void default_sink(LogLevel level, std::string_view message) {
  const auto now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const std::string stamp = log_timestamp_utc(now_ms);
  std::fprintf(stderr, "s2s %s [%.*s] %.*s\n", stamp.c_str(),
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace

std::string log_timestamp_utc(std::int64_t now_ms) {
  const std::time_t secs = static_cast<std::time_t>(now_ms / 1000);
  const int ms = static_cast<int>(now_ms % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ms);
  return buf;
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, std::string_view message) {
  if (!log_enabled(level) || level == LogLevel::kOff) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_slot()) {
    sink_slot()(level, message);
  } else {
    default_sink(level, message);
  }
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level) || level == LogLevel::kOff) return;
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n < 0) return;
  log_message(level,
              std::string_view(buf, std::min(sizeof(buf) - 1,
                                             static_cast<std::size_t>(n))));
}

}  // namespace s2s::obs
