#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace s2s::obs {

namespace {

/// Innermost live span on this thread (across all collectors; a span
/// only adopts the parent when it belongs to the same collector).
thread_local TraceSpan* t_top = nullptr;
TraceSpan** top_slot() { return &t_top; }

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

std::string hex_id(std::uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::int64_t TraceCollector::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<SpanEvent> TraceCollector::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceCollector::commit(SpanEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::string TraceCollector::to_chrome_json() const {
  const auto snapshot = events();
  json::Writer w;
  w.begin_object().key("traceEvents").begin_array();
  for (const auto& e : snapshot) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("s2s");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<std::int64_t>(e.start_us));
    w.key("dur").value(static_cast<std::int64_t>(e.dur_us));
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.key("args").begin_object();
    w.key("path").value(e.path);
    w.key("depth").value(static_cast<std::int64_t>(e.depth));
    if (e.trace_id != 0) {
      w.key("trace_id").value(hex_id(e.trace_id));
      w.key("span_id").value(hex_id(e.span_id));
      if (e.parent_span_id != 0) {
        w.key("parent_span_id").value(hex_id(e.parent_span_id));
      }
    }
    if (!e.note.empty()) w.key("note").value(e.note);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  return w.str();
}

std::map<std::string, TraceCollector::PathStat> TraceCollector::aggregate()
    const {
  std::map<std::string, PathStat> stats;
  for (const auto& e : events()) {
    auto& s = stats[e.path];
    s.depth = e.depth;
    s.count += 1;
    s.total_ms += static_cast<double>(e.dur_us) / 1000.0;
  }
  // self = total - direct children (identified by parent path).
  for (auto& [path, stat] : stats) {
    stat.self_ms = stat.total_ms;
  }
  for (const auto& [path, stat] : stats) {
    const auto cut = path.rfind('/');
    if (cut == std::string::npos) continue;
    const auto parent = stats.find(path.substr(0, cut));
    if (parent != stats.end()) parent->second.self_ms -= stat.total_ms;
  }
  return stats;
}

std::string TraceCollector::flamegraph() const {
  const auto stats = aggregate();
  std::string out;
  // std::map iterates paths lexicographically, which interleaves every
  // subtree directly under its parent ('/' sorts low in span names).
  for (const auto& [path, s] : stats) {
    const auto leaf = path.rfind('/');
    const std::string name =
        leaf == std::string::npos ? path : path.substr(leaf + 1);
    out.append(2 * s.depth, ' ');
    out += name;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %llux  %.3f ms (self %.3f ms)\n",
                  static_cast<unsigned long long>(s.count), s.total_ms,
                  std::max(0.0, s.self_ms));
    out += buf;
  }
  if (dropped() > 0) {
    out += "(+" + std::to_string(dropped()) + " spans dropped past cap)\n";
  }
  return out;
}

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = new TraceCollector();  // never dies
  return *collector;
}

TraceSpan::TraceSpan(std::string_view name, TraceCollector& collector) {
  if (!collector.enabled()) return;
  collector_ = &collector;
  name_ = name;
  TraceSpan** top = top_slot();
  parent_ = *top;
  if (parent_ != nullptr && parent_->collector_ == collector_) {
    path_ = parent_->path_ + "/" + name_;
    depth_ = parent_->depth_ + 1;
    trace_id_ = parent_->trace_id_;
    parent_span_id_ = parent_->span_id_;
  } else {
    path_ = name_;
    depth_ = 0;
  }
  span_id_ = collector.new_span_id();
  start_us_ = collector.now_us();
  *top = this;
}

TraceSpan::TraceSpan(std::string_view name, std::uint64_t trace_id,
                     std::uint64_t parent_span_id, TraceCollector& collector)
    : TraceSpan(name, collector) {
  if (collector_ == nullptr) return;
  trace_id_ = trace_id != 0 ? trace_id : collector_->new_span_id();
  if (parent_span_id != 0) parent_span_id_ = parent_span_id;
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  TraceSpan** top = top_slot();
  if (*top == this) *top = parent_;
  SpanEvent event;
  event.name = std::move(name_);
  event.path = std::move(path_);
  event.tid = this_thread_tid();
  event.depth = depth_;
  event.start_us = start_us_;
  event.dur_us = collector_->now_us() - start_us_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  event.note = std::move(note_);
  collector_->commit(std::move(event));
}

}  // namespace s2s::obs
