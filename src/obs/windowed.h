// Windowed latency histograms: p50/p99 over the last N seconds, not
// over the process lifetime.
//
// A long-running daemon's lifetime histogram converges to a blur: an
// hour of calm buries a minute of p99 pain. A WindowedHistogram keeps a
// ring of fixed-bucket histograms, one per coarse tick (window_seconds /
// slots), and rotates lazily on the write path: a recording thread that
// observes a stale slot zeroes it (under a mutex taken only on
// rotation) and claims it for the current tick. snapshot() merges the
// slots that fall inside the window, yielding the same
// HistogramSnapshot shape the registry produces — quantiles, overflow
// accounting and JSON emission all come along for free.
//
// Concurrency: bucket increments are relaxed atomic adds, so the write
// path costs the same as a registry Histogram. The merged snapshot is a
// pure function of the multiset of (tick, value) records — NOT of the
// thread that recorded them — which is what makes the 1-vs-8-thread
// byte-identity test meaningful. Rotation zeroing is serialized by a
// mutex; with a real clock a racing writer straddling a tick boundary
// can misattribute a sample to the adjacent tick (harmless for a
// trend dashboard), with an injected fake clock stepped between
// phases the behavior is exactly deterministic.
//
// The clock is injectable (monotonic milliseconds) so tests can drive
// rotation deterministically; the default reads steady_clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace s2s::obs {

/// One merged view over the live slots of a WindowedHistogram.
struct WindowedSnapshot {
  double window_s = 0.0;  ///< nominal window the merge covers
  HistogramSnapshot hist; ///< samples recorded inside the window
};

/// SLO threshold accounting for one request type: `good` samples met the
/// threshold, `total` were measured. good/total is the success ratio;
/// 1 - good/total over a window is the burn rate numerator.
struct SloStat {
  double threshold_us = 0.0;
  std::uint64_t good = 0;
  std::uint64_t total = 0;

  double good_ratio() const {
    return total == 0 ? 1.0
                      : static_cast<double>(good) / static_cast<double>(total);
  }
};

class WindowedHistogram {
 public:
  /// Monotonic clock in milliseconds. The default reads steady_clock;
  /// tests inject a fake to drive rotation deterministically.
  using ClockFn = std::function<std::int64_t()>;

  /// `bounds` as in MetricsRegistry::histogram (ascending upper edges;
  /// one extra overflow bucket is added). The window is divided into
  /// `slots` ticks; finer slots smooth the rotation cliff at the cost
  /// of slots * (bounds + 1) atomics.
  WindowedHistogram(std::vector<double> bounds, int window_seconds = 60,
                    int slots = 6, ClockFn clock = {});
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Lock-free except on the first write of a new tick.
  void record(double v);

  /// Merge of every slot inside the window ending now.
  WindowedSnapshot snapshot() const;

  double window_seconds() const {
    return static_cast<double>(slot_ms_) * static_cast<double>(slot_count_) /
           1000.0;
  }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Slot {
    std::atomic<std::int64_t> tick{-1};  ///< -1 = never written
    std::vector<std::atomic<std::uint64_t>> counts;
    explicit Slot(std::size_t buckets) : counts(buckets) {
      for (auto& c : counts) c.store(0, std::memory_order_relaxed);
    }
  };

  std::int64_t now_tick() const { return clock_() / slot_ms_; }

  std::vector<double> bounds_;
  std::int64_t slot_ms_ = 10000;
  int slot_count_ = 6;
  ClockFn clock_;
  mutable std::mutex rotate_mutex_;  ///< serializes slot zeroing only
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace s2s::obs
