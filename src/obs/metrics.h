// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Instrumentation has to be safe to leave in the record-ingest hot loops
// (hundreds of millions of adds per campaign), so the write path is
// lock-free: each thread owns a shard of plain uint64 slots and handles
// update it with relaxed atomics — uncontended, cacheline-local, a few
// nanoseconds. Snapshots merge every shard under the registration mutex;
// they are monotone-consistent (each slot is read atomically) but not a
// point-in-time cut across slots, which is the standard trade for a
// wait-free write path.
//
// Naming scheme: "s2s.<subsystem>.<name>" (see DESIGN.md section 8).
// Handles are cheap value types; resolve them once (constructor, start of
// run) and increment forever. A default-constructed handle is a no-op,
// as is any handle while its registry is disabled — that switch is what
// the bench overhead comparison toggles.
//
// Lifetime: a registry must outlive every thread that touches its
// handles; the process-wide global() registry trivially satisfies this.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace s2s::obs {

/// Merged view of one histogram: `counts[i]` is the number of samples
/// <= bounds[i] (and > bounds[i-1]); the final bucket is the overflow.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< ascending upper bounds
  std::vector<std::uint64_t> counts;   ///< size = bounds.size() + 1
  std::uint64_t total = 0;

  /// Quantile estimate by linear interpolation inside the hit bucket
  /// (the overflow bucket reports the last finite bound). NaN-free:
  /// returns 0 for an empty histogram.
  double quantile(double q) const;
  /// Mean estimate from bucket midpoints (sum is not tracked per sample
  /// to keep the write path to a single fetch_add).
  double approx_mean() const;
  /// Samples beyond the last finite bound. A nonzero overflow means
  /// quantile() is clamped there — RunReport surfaces this so a capped
  /// p99 is never mistaken for a real one.
  std::uint64_t overflow() const { return counts.empty() ? 0 : counts.back(); }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::size_t distinct_metrics() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

class MetricsRegistry;

/// Monotone counter handle. Copyable; default-constructed = no-op.
class Counter {
 public:
  Counter() = default;
  inline void inc(std::uint64_t n = 1) const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t slot)
      : reg_(reg), slot_(slot) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins instantaneous value (records/sec, fleet sizes, ...).
/// Gauges are registry-level (sets are rare; no shard needed).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. record() is one bounds scan plus one
/// relaxed fetch_add on the calling thread's shard.
class Histogram {
 public:
  Histogram() = default;
  inline void record(double v) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t base,
            const std::vector<double>* bounds)
      : reg_(reg), base_(base), bounds_(bounds) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t base_ = 0;
  const std::vector<double>* bounds_ = nullptr;  ///< owned by the registry
};

class MetricsRegistry {
 public:
  /// uint64 slots per thread shard; counters take one, a histogram takes
  /// bounds+1. Registration past the cap yields no-op handles (and a
  /// warning through obs::Log) rather than UB.
  static constexpr std::size_t kMaxSlots = 4096;

  MetricsRegistry();
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-create by name; a name keeps its first kind forever
  /// (a kind mismatch returns a no-op handle and warns).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  /// Canonical bucket edges for microsecond latencies (1us..10s, ~x3).
  static const std::vector<double>& latency_us_bounds();
  /// Canonical bucket edges for RTT milliseconds (1ms..2s, ~x2).
  static const std::vector<double>& rtt_ms_bounds();

  /// Disabled registries turn every handle into a checked no-op; this is
  /// the "no-op registry" arm of the overhead benchmark.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Merge every shard into one snapshot. Safe concurrently with writes.
  MetricsSnapshot snapshot() const;

  /// Zeroes every slot and gauge; names and handles stay valid.
  void reset();

  /// Process-wide registry used by default across the pipeline.
  static MetricsRegistry& global();

  struct Shard {
    std::vector<std::atomic<std::uint64_t>> slots;
    Shard() : slots(kMaxSlots) {
      for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    }
  };

  /// The calling thread's shard (created and registered on first use).
  inline Shard* local_shard();

 private:
  struct ThreadCache {
    std::uint64_t serial = 0;
    Shard* shard = nullptr;
  };

  enum class Kind { kCounter, kGauge, kHistogram };
  struct MetricDef {
    Kind kind;
    std::uint32_t base = 0;   ///< first slot (counter/histogram)
    std::uint32_t width = 1;  ///< slots used
    std::vector<double> bounds;
  };

  Shard* attach_thread(ThreadCache& cache);

  const std::uint64_t serial_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  ///< guards defs_, gauges_, shards_
  std::map<std::string, MetricDef> defs_;       // node-stable addresses
  std::map<std::string, std::atomic<double>> gauges_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t next_slot_ = 0;
};

inline void Counter::inc(std::uint64_t n) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->local_shard()->slots[slot_].fetch_add(n, std::memory_order_relaxed);
}

inline void Histogram::record(double v) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  const auto& bounds = *bounds_;
  std::uint32_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  reg_->local_shard()->slots[base_ + i].fetch_add(
      1, std::memory_order_relaxed);
}

inline MetricsRegistry::Shard* MetricsRegistry::local_shard() {
  thread_local ThreadCache cache;
  if (cache.serial == serial_) return cache.shard;
  return attach_thread(cache);
}

}  // namespace s2s::obs
