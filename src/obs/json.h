// Minimal JSON emit/parse for the observability layer.
//
// RunReports and trace files are machine-readable JSON; this module is
// the whole dependency. The Writer produces compact, correctly escaped
// output with explicit begin/end structure calls; the parser is a strict
// recursive-descent reader of the same subset (objects, arrays, strings,
// finite numbers, booleans, null) used by the round-trip tests and the
// CI report validator. Not a general-purpose JSON library: no comments,
// no trailing commas, numbers go through double (exact for integers up
// to 2^53, which covers every counter this layer emits).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace s2s::obs::json {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string escape(std::string_view s);

/// Streaming writer; calls must describe a well-formed document
/// (object/array nesting balanced, key() before every object value).
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(std::string_view name);
  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

  const std::string& str() const noexcept { return out_; }

 private:
  void separate();

  std::string out_;
  std::vector<bool> has_item_;  ///< per open scope: a value was emitted
  bool after_key_ = false;
};

/// Parsed JSON value (tree form).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_bool() const noexcept { return kind == Kind::kBool; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_object() const noexcept { return kind == Kind::kObject; }

  std::uint64_t as_u64() const noexcept {
    return number < 0 ? 0 : static_cast<std::uint64_t>(number + 0.5);
  }
  std::int64_t as_i64() const noexcept {
    return static_cast<std::int64_t>(number);
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view name) const;
};

/// Strict parse of a complete document; nullopt on any syntax error or
/// trailing garbage.
std::optional<Value> parse(std::string_view text);

}  // namespace s2s::obs::json
