#include "obs/prometheus.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace s2s::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips doubles; integers render without an exponent up
  // to 2^53, which covers every counter.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void type_line(std::string& out, const std::string& name, const char* kind) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += kind;
  out += '\n';
}

void sample(std::string& out, const std::string& name, std::uint64_t v) {
  out += name;
  out += ' ';
  append_u64(out, v);
  out += '\n';
}

void sample(std::string& out, const std::string& name, double v) {
  out += name;
  out += ' ';
  append_number(out, v);
  out += '\n';
}

void histogram_block(std::string& out, const std::string& name,
                     const HistogramSnapshot& h) {
  type_line(out, name, "histogram");
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += i < h.counts.size() ? h.counts[i] : 0;
    out += name;
    out += "_bucket{le=\"";
    append_number(out, h.bounds[i]);
    out += "\"} ";
    append_u64(out, cumulative);
    out += '\n';
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  append_u64(out, h.total);
  out += '\n';
  sample(out, name + "_sum", h.approx_mean() * static_cast<double>(h.total));
  sample(out, name + "_count", h.total);
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':' ||
                    (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    out += ok ? c : '_';
  }
  return out.empty() ? "_" : out;
}

std::string to_prometheus_text(
    const MetricsSnapshot& snapshot,
    const std::map<std::string, WindowedSnapshot>& windowed,
    const std::map<std::string, SloStat>& slo) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    std::string n = prometheus_name(name);
    const char suffix[] = "_total";
    if (n.size() < sizeof(suffix) - 1 ||
        std::strcmp(n.c_str() + n.size() - (sizeof(suffix) - 1), suffix) !=
            0) {
      n += suffix;
    }
    type_line(out, n, "counter");
    sample(out, n, v);
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = prometheus_name(name);
    type_line(out, n, "gauge");
    sample(out, n, v);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    histogram_block(out, prometheus_name(name), h);
  }
  for (const auto& [name, w] : windowed) {
    const std::string n = prometheus_name(name);
    type_line(out, n + "_p50", "gauge");
    sample(out, n + "_p50", w.hist.quantile(0.50));
    type_line(out, n + "_p99", "gauge");
    sample(out, n + "_p99", w.hist.quantile(0.99));
    type_line(out, n + "_count", "gauge");
    sample(out, n + "_count", w.hist.total);
    type_line(out, n + "_window_s", "gauge");
    sample(out, n + "_window_s", w.window_s);
  }
  for (const auto& [name, s] : slo) {
    const std::string n = prometheus_name(name);
    type_line(out, n + "_threshold_us", "gauge");
    sample(out, n + "_threshold_us", s.threshold_us);
    type_line(out, n + "_good_ratio", "gauge");
    sample(out, n + "_good_ratio", s.good_ratio());
  }
  return out;
}

}  // namespace s2s::obs
