// Streaming mean/variance accumulator (Welford's online algorithm) with
// a parallel merge (Chan et al.), used by the live ingest path to keep
// per-pair RTT moments updatable in O(1) per record and mergeable across
// shards without storing samples.
#pragma once

#include <cmath>
#include <cstdint>

namespace s2s::stats {

class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Folds another accumulator in (Chan's pairwise update). Merging an
  /// empty accumulator is a no-op; merging into an empty one copies.
  Welford& merge(const Welford& other) noexcept {
    if (other.n_ == 0) return *this;
    if (n_ == 0) {
      *this = other;
      return *this;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    return *this;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (n in the denominator); 0 for fewer than two
  /// samples so callers never divide by zero.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace s2s::stats
