// Order statistics and moment summaries over samples of doubles.
#pragma once

#include <span>
#include <vector>

namespace s2s::stats {

/// Returns the q-quantile (q in [0,1]) of the samples using linear
/// interpolation between order statistics (type-7, the numpy default).
/// Precondition: samples non-empty.
double quantile(std::span<const double> samples, double q);

/// Convenience wrappers used throughout the paper's analyses.
double percentile(std::span<const double> samples, double pct);  // pct in [0,100]
double median(std::span<const double> samples);

double mean(std::span<const double> samples);
/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> samples);

/// All the per-bucket summaries the routing analysis needs in one pass
/// over a *sorted* copy of the samples.
struct Summary {
  std::size_t count = 0;
  double min = 0, max = 0;
  double p5 = 0, p10 = 0, p25 = 0, p50 = 0, p75 = 0, p90 = 0, p95 = 0;
  double mean = 0;
  double stddev = 0;
};

/// Computes the summary; returns a zeroed Summary for empty input.
Summary summarize(std::span<const double> samples);

/// Sorts a copy of the samples (helper for repeated quantile queries).
std::vector<double> sorted(std::span<const double> samples);

/// Quantile on samples already sorted ascending (no copy).
double quantile_sorted(std::span<const double> sorted_samples, double q);

}  // namespace s2s::stats
