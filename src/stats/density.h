// Histograms and Gaussian kernel density estimates (paper Figure 9 is a
// density plot of congestion overhead).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace s2s::stats {

/// A fixed-width histogram over [lo, hi); samples outside are clamped into
/// the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Center x-value of a bin.
  double bin_center(std::size_t bin) const;
  /// Normalized density for a bin (fraction / bin width).
  double density(std::size_t bin) const;

  std::string to_tsv() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Gaussian KDE evaluated on a regular grid.
struct KdePoint {
  double x;
  double density;
};

/// Evaluates a Gaussian KDE of the samples at `grid_points` equally-spaced
/// x-values over [lo, hi]. `bandwidth` <= 0 selects Silverman's rule.
std::vector<KdePoint> kde(std::span<const double> samples, double lo,
                          double hi, std::size_t grid_points,
                          double bandwidth = 0.0);

/// Silverman's rule-of-thumb bandwidth for Gaussian kernels.
double silverman_bandwidth(std::span<const double> samples);

}  // namespace s2s::stats
