// Decile heat maps (paper Figures 4 and 5).
//
// Both axes are binned at the deciles of their own marginal distribution;
// adjacent deciles with identical values are merged (the paper's lifetime
// axis has 9 columns because the 0th and 10th percentiles coincide at the
// 3-hour sampling floor). Each cell holds the percentage of points falling
// in that (x-bin, y-bin) rectangle.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace s2s::stats {

class DecileHeatmap {
 public:
  struct Cell {
    double percent = 0.0;  ///< percentage of all points in this cell
  };

  /// Builds the heat map from paired points (x[i], y[i]).
  DecileHeatmap(std::span<const double> x, std::span<const double> y);

  std::size_t x_bins() const noexcept { return x_edges_.size() - 1; }
  std::size_t y_bins() const noexcept { return y_edges_.size() - 1; }

  /// Half-open bin intervals [edge(i), edge(i+1)).
  const std::vector<double>& x_edges() const noexcept { return x_edges_; }
  const std::vector<double>& y_edges() const noexcept { return y_edges_; }

  double percent(std::size_t xi, std::size_t yi) const;

  /// Sum of a row across all x-bins = percentage of points with y in that
  /// row's interval (the paper sums rows to report "10% of AS paths suffer
  /// >= 48.3 ms").
  double row_percent(std::size_t yi) const;

  std::size_t total_points() const noexcept { return total_; }

  /// Pretty table for bench output; labels use `fmt_x`/`fmt_y` on edges.
  std::string to_table(const std::string& x_label,
                       const std::string& y_label) const;

 private:
  std::vector<double> x_edges_;
  std::vector<double> y_edges_;
  std::vector<double> percent_;  // row-major [yi * x_bins + xi]
  std::size_t total_ = 0;
};

/// Decile edges (11 values from min to max) of the samples, with duplicate
/// consecutive edges merged; the result always brackets all samples.
std::vector<double> decile_edges(std::span<const double> samples);

}  // namespace s2s::stats
