#include "stats/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "stats/summary.h"

namespace s2s::stats {

std::vector<double> decile_edges(std::span<const double> samples) {
  if (samples.empty()) return {0.0, 1.0};
  const auto s = sorted(samples);
  std::vector<double> edges;
  edges.reserve(11);
  for (int i = 0; i <= 10; ++i) {
    const double e = quantile_sorted(s, static_cast<double>(i) / 10.0);
    if (edges.empty() || e > edges.back()) edges.push_back(e);
  }
  if (edges.size() < 2) edges.push_back(edges.front() + 1.0);
  // Widen the last edge a hair so max samples land inside the final
  // half-open bin.
  edges.back() = std::nextafter(edges.back(),
                                std::numeric_limits<double>::infinity());
  return edges;
}

namespace {

std::size_t bin_index(const std::vector<double>& edges, double v) {
  // Half-open bins [e_i, e_{i+1}); clamp outliers into the end bins.
  const auto it = std::upper_bound(edges.begin(), edges.end(), v);
  auto idx = static_cast<std::ptrdiff_t>(it - edges.begin()) - 1;
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(edges.size()) - 2);
  return static_cast<std::size_t>(idx);
}

}  // namespace

DecileHeatmap::DecileHeatmap(std::span<const double> x,
                             std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("DecileHeatmap: size mismatch");
  }
  x_edges_ = decile_edges(x);
  y_edges_ = decile_edges(y);
  percent_.assign(x_bins() * y_bins(), 0.0);
  total_ = x.size();
  if (total_ == 0) return;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t xi = bin_index(x_edges_, x[i]);
    const std::size_t yi = bin_index(y_edges_, y[i]);
    percent_[yi * x_bins() + xi] += 1.0;
  }
  const double scale = 100.0 / static_cast<double>(total_);
  for (auto& c : percent_) c *= scale;
}

double DecileHeatmap::percent(std::size_t xi, std::size_t yi) const {
  if (xi >= x_bins() || yi >= y_bins()) {
    throw std::out_of_range("DecileHeatmap::percent");
  }
  return percent_[yi * x_bins() + xi];
}

double DecileHeatmap::row_percent(std::size_t yi) const {
  double sum = 0.0;
  for (std::size_t xi = 0; xi < x_bins(); ++xi) sum += percent(xi, yi);
  return sum;
}

namespace {

// Lifetimes and RTT deltas get human units in the table headers.
std::string fmt_edge(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

}  // namespace

std::string DecileHeatmap::to_table(const std::string& x_label,
                                    const std::string& y_label) const {
  std::string out = y_label + " \\ " + x_label + "\n";
  char buf[64];
  out += "y-bin \\ x-bin";
  for (std::size_t xi = 0; xi < x_bins(); ++xi) {
    out += "\t[" + fmt_edge(x_edges_[xi]) + "," + fmt_edge(x_edges_[xi + 1]) +
           ")";
  }
  out += "\trow%\n";
  for (std::size_t yi = 0; yi < y_bins(); ++yi) {
    out += "[" + fmt_edge(y_edges_[yi]) + "," + fmt_edge(y_edges_[yi + 1]) +
           ")";
    for (std::size_t xi = 0; xi < x_bins(); ++xi) {
      std::snprintf(buf, sizeof(buf), "\t%.2f", percent(xi, yi));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "\t%.2f\n", row_percent(yi));
    out += buf;
  }
  return out;
}

}  // namespace s2s::stats
