// Spectral analysis used by the congestion detector (paper Section 5.1).
//
// The paper applies an FFT at frequency f = 1/day to each RTT time series
// and flags "consistent congestion" when the fraction of signal power that
// sits at (and immediately around) the diurnal frequency is at least 0.3.
//
// We provide: an iterative radix-2 complex FFT (for tests and power-of-two
// series), a Goertzel single-bin DFT (any series length), and the
// diurnal-power-ratio detector built from Goertzel + Parseval.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace s2s::stats {

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// Precondition: data.size() is a power of two (throws otherwise).
void fft_radix2(std::vector<std::complex<double>>& data, bool inverse = false);

/// DFT coefficient X_k of a real series at (possibly fractional) bin `k`
/// via the Goertzel recurrence: X_k = sum_n x[n] * exp(-2*pi*i*k*n/N).
std::complex<double> goertzel_bin(std::span<const double> series, double k);

/// Power spectrum |X_k|^2 for k = 0..N/2 of a real series, via radix-2 FFT
/// after zero-padding to a power of two (test/diagnostic helper).
std::vector<double> power_spectrum(std::span<const double> series);

/// Result of the diurnal-signal test.
struct DiurnalPower {
  double ratio = 0.0;        ///< power near f=1/day divided by total AC power
  double diurnal_power = 0;  ///< numerator
  double total_power = 0;    ///< denominator (Parseval, mean removed)
  int day_bin = 0;           ///< integer bin closest to 1 cycle/day
};

/// Computes the fraction of (mean-removed) signal power concentrated at the
/// 1/day frequency. `samples_per_day` is the sampling rate (e.g. 96 for the
/// paper's 15-minute pings, 8 for 3-hour traceroutes). Power is summed over
/// the day bin and its two neighbours ("around the frequency f", paper
/// Section 5.1). Series shorter than two days yield ratio 0.
DiurnalPower diurnal_power_ratio(std::span<const double> series,
                                 double samples_per_day);

/// The paper's detection threshold (footnote 2: "settled on 0.3").
inline constexpr double kDiurnalRatioThreshold = 0.3;

/// True iff the series carries a strong diurnal signal per the paper's rule.
bool has_strong_diurnal_pattern(std::span<const double> series,
                                double samples_per_day,
                                double threshold = kDiurnalRatioThreshold);

}  // namespace s2s::stats
