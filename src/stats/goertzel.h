// Sliding-window diurnal power for the live ingest path.
//
// The batch detector (fft.h) evaluates diurnal_power_ratio over a whole
// interpolated series; recomputing that from scratch on every appended
// epoch would cost O(history) per update. GoertzelWindow keeps the most
// recent `capacity` epochs in a ring, so a verdict refresh is O(window)
// regardless of how much history the archive has accumulated, and the
// single-bin DFT inside diurnal_power_ratio is the Goertzel recurrence
// rather than a full FFT.
//
// The window is value-deterministic: its contents depend only on the
// sequence of push() calls, never on timing or thread count, which is
// what lets the incremental verdict stay byte-identical to a batch
// refold of the same record stream (DESIGN.md section 16).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/fft.h"

namespace s2s::stats {

class GoertzelWindow {
 public:
  explicit GoertzelWindow(std::size_t capacity)
      : ring_(capacity > 0 ? capacity : 1, 0.0) {}

  void push(double v) noexcept {
    ring_[head_] = v;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return ring_.size(); }
  bool empty() const noexcept { return size_ == 0; }

  /// Window contents in push order (oldest first), followed by
  /// `trailing_copies` virtual repeats of the last pushed value — how the
  /// live path models a trailing observation gap without mutating state.
  /// The total length is capped at capacity (oldest samples fall off
  /// first, exactly as if the copies had been pushed).
  std::vector<double> materialize(std::size_t trailing_copies = 0) const {
    std::vector<double> out;
    out.reserve(size_ + trailing_copies);
    const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    if (!out.empty()) {
      const double last = out.back();
      for (std::size_t i = 0; i < trailing_copies; ++i) out.push_back(last);
      if (out.size() > ring_.size()) {
        out.erase(out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(out.size() -
                                                            ring_.size()));
      }
    }
    return out;
  }

  /// Diurnal power over the (gap-extended) window; same conventions as
  /// the batch detector — mean removal, day bin +/- 1, ratio 0 under two
  /// days of samples.
  DiurnalPower diurnal(double samples_per_day,
                       std::size_t trailing_copies = 0) const {
    const std::vector<double> series = materialize(trailing_copies);
    return diurnal_power_ratio(series, samples_per_day);
  }

 private:
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace s2s::stats
