#include "stats/ecdf.h"

#include <algorithm>
#include <cstdio>

#include "stats/summary.h"

namespace s2s::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : samples_(samples.begin(), samples.end()) {
  std::sort(samples_.begin(), samples_.end());
}

double Ecdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::below(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  // Shared interpolating convention (summary.h): the old nearest-rank
  // formula here (rank = q * size) was biased a full rank high — the
  // median of {1,2,3,4} came back as 3, not 2.5 — and disagreed with
  // every other quantile in the stats layer.
  return quantile_sorted(samples_, q);
}

std::vector<Ecdf::Point> Ecdf::curve(std::size_t n) const {
  std::vector<Point> points;
  if (samples_.empty() || n < 2) return points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n - 1);
    const double x = quantile(q);
    points.push_back({x, at(x)});
  }
  return points;
}

std::string Ecdf::to_tsv(std::size_t n) const {
  std::string out;
  char line[64];
  for (const auto& p : curve(n)) {
    std::snprintf(line, sizeof(line), "%.6g\t%.4f\n", p.x, p.f);
    out += line;
  }
  return out;
}

}  // namespace s2s::stats
