#include "stats/binned_ecdf.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace s2s::stats {

BinnedEcdf::BinnedEcdf(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("BinnedEcdf: need hi > lo and bins > 0");
  }
}

void BinnedEcdf::add(double value) {
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

BinnedEcdf& BinnedEcdf::merge(const BinnedEcdf& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("BinnedEcdf::merge: grid mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return *this;
}

double BinnedEcdf::at(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::min<std::ptrdiff_t>(
      bin, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  std::uint64_t below = 0;
  for (std::ptrdiff_t i = 0; i <= bin; ++i) {
    below += counts_[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double BinnedEcdf::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return lo_ + (static_cast<double>(i) + 1.0) * width_;
  }
  return hi_;
}

double BinnedEcdf::tail_at_least(double x) const {
  if (total_ == 0) return 0.0;
  const double below = at(x - width_);
  return 1.0 - below;
}

std::string BinnedEcdf::to_tsv(std::size_t max_lines) const {
  std::string out;
  if (total_ == 0 || max_lines == 0) return out;
  char line[64];
  const std::size_t stride = std::max<std::size_t>(1, counts_.size() / max_lines);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (i % stride != 0 && i + 1 != counts_.size()) continue;
    std::snprintf(line, sizeof(line), "%.6g\t%.4f\n",
                  lo_ + (static_cast<double>(i) + 1.0) * width_,
                  static_cast<double>(cum) / static_cast<double>(total_));
    out += line;
  }
  return out;
}

}  // namespace s2s::stats
