// Fixed-resolution ECDF accumulator.
//
// For distributions with hundreds of millions of samples (e.g. the paper's
// per-traceroute RTTv4-RTTv6 differences, 826M samples) an exact ECDF
// would not fit in memory; this accumulator bins samples on a fixed grid
// and answers F(x)/quantile queries with bin resolution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace s2s::stats {

class BinnedEcdf {
 public:
  /// Grid over [lo, hi] with `bins` equal-width bins; samples outside are
  /// clamped into the end bins.
  BinnedEcdf(double lo, double hi, std::size_t bins);

  void add(double value);

  /// Adds another accumulator's counts into this one. Both must share the
  /// same grid (lo, hi, bins) — built for merging per-shard partials of a
  /// parallel pass, where every partial is constructed identically.
  /// Throws std::invalid_argument on a grid mismatch.
  BinnedEcdf& merge(const BinnedEcdf& other);

  std::uint64_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Fraction of samples <= x (bin-resolution).
  double at(double x) const;
  /// Smallest grid value v with F(v) >= q.
  double quantile(double q) const;
  /// Fraction of samples with value >= x.
  double tail_at_least(double x) const;

  /// "x<TAB>F(x)" lines across the grid (skipping flat stretches).
  std::string to_tsv(std::size_t max_lines = 200) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace s2s::stats
