#include "stats/density.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

#include "stats/summary.h"

namespace s2s::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double value) {
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::to_tsv() const {
  std::string out;
  char line[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%.6g\t%.6g\n", bin_center(i),
                  density(i));
    out += line;
  }
  return out;
}

double silverman_bandwidth(std::span<const double> samples) {
  if (samples.size() < 2) return 1.0;
  const double sd = stddev(samples);
  const auto s = sorted(samples);
  const double iqr =
      quantile_sorted(s, 0.75) - quantile_sorted(s, 0.25);
  double scale = sd;
  if (iqr > 0.0) scale = std::min(sd, iqr / 1.349);
  if (scale <= 0.0) scale = sd > 0.0 ? sd : 1.0;
  return 0.9 * scale *
         std::pow(static_cast<double>(samples.size()), -0.2);
}

std::vector<KdePoint> kde(std::span<const double> samples, double lo,
                          double hi, std::size_t grid_points,
                          double bandwidth) {
  std::vector<KdePoint> out;
  if (samples.empty() || grid_points < 2 || !(hi > lo)) return out;
  const double h = bandwidth > 0.0 ? bandwidth : silverman_bandwidth(samples);
  const double norm =
      1.0 / (static_cast<double>(samples.size()) * h *
             std::sqrt(2.0 * std::numbers::pi));
  out.reserve(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(grid_points - 1);
    double sum = 0.0;
    for (double v : samples) {
      const double z = (x - v) / h;
      sum += std::exp(-0.5 * z * z);
    }
    out.push_back({x, norm * sum});
  }
  return out;
}

}  // namespace s2s::stats
