#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace s2s::stats {

std::vector<double> sorted(std::span<const double> samples) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return copy;
}

double quantile_sorted(std::span<const double> s, double q) {
  if (s.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q <= 0.0) return s.front();
  if (q >= 1.0) return s.back();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] + frac * (s[lo + 1] - s[lo]);
}

double quantile(std::span<const double> samples, double q) {
  return quantile_sorted(sorted(samples), q);
}

double percentile(std::span<const double> samples, double pct) {
  return quantile(samples, pct / 100.0);
}

double median(std::span<const double> samples) {
  return quantile(samples, 0.5);
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

double stddev(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double ss = 0.0;
  for (double v : samples) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

Summary summarize(std::span<const double> samples) {
  Summary out;
  if (samples.empty()) return out;
  const auto s = sorted(samples);
  out.count = s.size();
  out.min = s.front();
  out.max = s.back();
  out.p5 = quantile_sorted(s, 0.05);
  out.p10 = quantile_sorted(s, 0.10);
  out.p25 = quantile_sorted(s, 0.25);
  out.p50 = quantile_sorted(s, 0.50);
  out.p75 = quantile_sorted(s, 0.75);
  out.p90 = quantile_sorted(s, 0.90);
  out.p95 = quantile_sorted(s, 0.95);
  out.mean = mean(samples);
  out.stddev = stddev(samples);
  return out;
}

}  // namespace s2s::stats
