// Pearson correlation (paper Section 5.2: segment-to-end-to-end matching,
// threshold rho = 0.5).
#pragma once

#include <span>

namespace s2s::stats {

/// Pearson correlation coefficient between two equally-long series.
/// Returns 0 when either series is constant or sizes differ / are < 2.
double pearson(std::span<const double> x, std::span<const double> y);

/// The paper's segment-selection threshold.
inline constexpr double kPearsonThreshold = 0.5;

}  // namespace s2s::stats
