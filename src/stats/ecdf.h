// Empirical cumulative distribution functions.
//
// Most figures in the paper are ECDFs; this type evaluates F(x), inverts to
// quantiles, and renders a fixed set of (x, F(x)) points for bench output.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace s2s::stats {

class Ecdf {
 public:
  Ecdf() = default;
  /// Builds the ECDF over a copy of the samples.
  explicit Ecdf(std::span<const double> samples);

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// The q-quantile under the stats layer's shared interpolating
  /// convention (quantile_sorted: pos = q * (size - 1), linear between
  /// ranks), so Ecdf agrees with Summary and friends on the same data.
  double quantile(double q) const;

  /// Fraction of samples >= x (complementary CDF including ties).
  double tail_at_least(double x) const { return 1.0 - below(x); }
  /// Fraction of samples strictly below x.
  double below(double x) const;

  /// Sorted sample values (ascending); useful for custom sweeps.
  const std::vector<double>& values() const noexcept { return samples_; }

  /// Evaluation points for plotting: `n` quantile knots from q=0 to q=1.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> curve(std::size_t n = 101) const;

  /// Renders "x<TAB>F(x)" lines (gnuplot-friendly), one block per call.
  std::string to_tsv(std::size_t n = 101) const;

 private:
  std::vector<double> samples_;  // sorted ascending
};

}  // namespace s2s::stats
