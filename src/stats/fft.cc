#include "stats/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "stats/summary.h"

namespace s2s::stats {

void fft_radix2(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::complex<double> goertzel_bin(std::span<const double> series, double k) {
  const auto n = static_cast<double>(series.size());
  if (series.empty()) return {0.0, 0.0};
  const double omega = 2.0 * std::numbers::pi * k / n;
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0, s_prev2 = 0.0;
  for (double x : series) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  // Forward-DFT convention (exp(-i...)): X_k = s_{N-1} e^{i omega} - s_{N-2}.
  const std::complex<double> w(std::cos(omega), std::sin(omega));
  return s_prev * w - s_prev2;
}

std::vector<double> power_spectrum(std::span<const double> series) {
  std::size_t n = 1;
  while (n < series.size()) n <<= 1;
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (std::size_t i = 0; i < series.size(); ++i) data[i] = series[i];
  fft_radix2(data);
  std::vector<double> power(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) power[k] = std::norm(data[k]);
  return power;
}

DiurnalPower diurnalpower_impl(std::span<const double> series,
                               double samples_per_day) {
  DiurnalPower out;
  const std::size_t n = series.size();
  if (n == 0 || samples_per_day <= 0.0) return out;
  const double days = static_cast<double>(n) / samples_per_day;
  if (days < 2.0) return out;

  // Remove the mean so the DC term does not dominate total power.
  const double m = mean(series);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = series[i] - m;

  // Total AC power via Parseval: sum_k |X_k|^2 = N * sum_n x_n^2.
  double sum_sq = 0.0;
  for (double x : centered) sum_sq += x * x;
  const double total_power = static_cast<double>(n) * sum_sq;

  // The 1/day frequency falls at bin k = N / samples_per_day = #days.
  const int day_bin = static_cast<int>(std::lround(days));
  out.day_bin = day_bin;

  // Power "around" f: the day bin plus its immediate neighbours, counting
  // both the positive and the (conjugate-symmetric) negative frequency.
  // Distinct bins only exist up to Nyquist (k = n/2); beyond it they
  // alias onto bins already counted, and the Nyquist bin itself (n even)
  // is self-conjugate, so doubling it would count its power twice.
  const std::size_t nyquist = n / 2;
  double diurnal = 0.0;
  for (int k = day_bin - 1; k <= day_bin + 1; ++k) {
    if (k <= 0 || static_cast<std::size_t>(k) > nyquist) continue;
    const double power =
        std::norm(goertzel_bin(centered, static_cast<double>(k)));
    const bool self_conjugate =
        n % 2 == 0 && static_cast<std::size_t>(k) == nyquist;
    diurnal += self_conjugate ? power : 2.0 * power;
  }
  out.diurnal_power = diurnal;
  out.total_power = total_power;
  out.ratio = total_power > 0.0 ? std::min(1.0, diurnal / total_power) : 0.0;
  return out;
}

DiurnalPower diurnal_power_ratio(std::span<const double> series,
                                 double samples_per_day) {
  return diurnalpower_impl(series, samples_per_day);
}

bool has_strong_diurnal_pattern(std::span<const double> series,
                                double samples_per_day, double threshold) {
  return diurnal_power_ratio(series, samples_per_day).ratio >= threshold;
}

}  // namespace s2s::stats
