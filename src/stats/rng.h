// Deterministic random-number engine for the simulator.
//
// Everything in s2s that draws randomness takes an explicit Rng so that
// campaigns are reproducible from a single seed (benches print their seed).
// The engine is xoshiro256** seeded via SplitMix64, and satisfies
// std::uniform_random_bit_generator so the <random> distributions work.
#pragma once

#include <array>
#include <cstdint>
#include <random>

namespace s2s::stats {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed (SplitMix64 stream).
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// The full engine state, for checkpointing; restoring it with
  /// set_state() resumes the stream at exactly the same point.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// A fresh engine whose stream is independent of this one; use to give
  /// each subsystem (topology, dynamics, probing) its own stream so adding
  /// draws in one does not perturb the others.
  Rng fork(std::uint64_t stream_tag) {
    return Rng((*this)() ^ (stream_tag * 0x9e3779b97f4a7c15ULL));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }
  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }
  /// Standard normal via std::normal_distribution.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(*this);
  }
  /// Lognormal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(*this);
  }
  /// Exponential with the given mean.
  double exponential_mean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(*this);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace s2s::stats
