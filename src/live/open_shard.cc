#include "live/open_shard.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "io/mmap_file.h"

namespace s2s::live {

namespace {

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

OpenShardWriter::OpenShardWriter(const std::string& path,
                                 const OpenShardConfig& config)
    : path_(path) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    error_ = path_ + ": open failed";
    return;
  }
  io::BinWriterConfig wc;
  wc.block_records = config.block_records;
  writer_ = std::make_unique<io::BinRecordWriter>(out_, wc);
  if (!open_fsync_fd()) return;
  // Publish the empty shard (file header only, epoch -1) so a poller
  // that races the very first seal still reads a valid watermark.
  std::string err;
  if (!sync_and_publish(-1, err)) {
    error_ = err;
    return;
  }
  ok_ = true;
}

OpenShardWriter::~OpenShardWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<OpenShardWriter> OpenShardWriter::resume(
    const std::string& path, const OpenShardConfig& config,
    std::string& error) {
  Watermark wm;
  const WatermarkStatus status = read_watermark_file(path, wm);
  if (status == WatermarkStatus::kAbsent) {
    error = path + ": no watermark sidecar (not an open shard)";
    return nullptr;
  }
  if (status == WatermarkStatus::kInvalid) {
    error = watermark_path(path) + ": corrupt watermark sidecar";
    return nullptr;
  }

  std::vector<io::BlockIndexEntry> index;
  std::size_t blocks_end = io::kBinFileHeaderBytes;
  {
    io::MmapFile map;
    if (!map.open(path)) {
      error = path + ": " + map.error();
      return nullptr;
    }
    if (map.size() < wm.sealed_bytes) {
      error = path + ": file shorter than the sealed watermark — the "
              "durable prefix itself is torn";
      return nullptr;
    }
    // Re-verify every sealed block; resume must not build on damage the
    // sidecar cannot see (bit rot inside the sealed prefix).
    auto indexed = io::index_blocks(
        map.data(), static_cast<std::size_t>(wm.sealed_bytes));
    if (!indexed) {
      error = path + ": sealed prefix fails CRC validation";
      return nullptr;
    }
    index = std::move(*indexed);
    if (!index.empty()) {
      // The block region may end before sealed_bytes when finish()
      // already appended a footer; strip it so appending continues the
      // block stream.
      const auto* bytes = static_cast<const unsigned char*>(map.data());
      const auto& last = index.back();
      blocks_end = static_cast<std::size_t>(last.offset) +
                   io::kBinBlockHeaderBytes +
                   get_u32le(bytes + last.offset + 8);
    }
  }
  if (::truncate(path.c_str(), static_cast<off_t>(blocks_end)) != 0) {
    error = path + ": truncate to sealed boundary failed";
    return nullptr;
  }

  auto w = std::unique_ptr<OpenShardWriter>(new OpenShardWriter());
  w->path_ = path;
  w->out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!w->out_) {
    error = path + ": reopen failed";
    return nullptr;
  }
  w->out_.seekp(static_cast<std::streamoff>(blocks_end));
  for (const auto& e : index) w->base_records_ += e.record_count;
  io::BinWriterConfig wc;
  wc.block_records = config.block_records;
  wc.write_header = false;
  wc.resume_index = std::move(index);
  wc.resume_offset = blocks_end;
  w->writer_ = std::make_unique<io::BinRecordWriter>(w->out_, wc);
  if (!w->open_fsync_fd()) {
    error = w->error_;
    return nullptr;
  }
  // Republish immediately: if we truncated a footer, the old sidecar's
  // sealed_bytes would point past EOF.
  if (!w->sync_and_publish(wm.epoch, error)) return nullptr;
  w->ok_ = true;
  return w;
}

bool OpenShardWriter::open_fsync_fd() {
  fd_ = ::open(path_.c_str(), O_RDWR);
  if (fd_ < 0) {
    error_ = path_ + ": open for fsync failed";
    return false;
  }
  return true;
}

void OpenShardWriter::write(const probe::TracerouteRecord& record) {
  writer_->write(record);
}

void OpenShardWriter::write(const probe::PingRecord& record) {
  writer_->write(record);
}

bool OpenShardWriter::seal(std::int64_t epoch, std::string& error) {
  writer_->flush_block();
  return sync_and_publish(epoch, error);
}

bool OpenShardWriter::finish(std::string& error) {
  if (finished_) return true;
  writer_->finish();
  if (!sync_and_publish(watermark_.epoch, error)) return false;
  finished_ = true;
  return true;
}

bool OpenShardWriter::sync_and_publish(std::int64_t epoch,
                                       std::string& error) {
  out_.flush();
  if (!out_) {
    error = path_ + ": write failed";
    return false;
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    error = path_ + ": fsync failed";
    return false;
  }
  Watermark wm;
  wm.sealed_bytes = writer_->bytes_written();
  wm.blocks = writer_->blocks_written();
  wm.records = base_records_ + writer_->written();
  wm.epoch = epoch;
  if (!write_watermark_file(path_, wm, error)) return false;
  watermark_ = wm;
  return true;
}

}  // namespace s2s::live
