#include "live/incremental.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel_for.h"
#include "obs/metrics.h"

namespace s2s::live {

namespace {

obs::Counter obs_folded() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("s2s.live.records_folded");
  return c;
}

}  // namespace

IncrementalState::IncrementalState(const IncrementalConfig& config)
    : config_(config) {}

void IncrementalState::add(const probe::PingRecord& record) {
  if (!record.success || !std::isfinite(record.rtt_ms)) {
    ++records_dropped_;
    return;
  }
  const std::int64_t epoch = net::grid_epoch(record.time, config_.start_day,
                                             config_.interval_s);
  if (epoch < 0) {
    ++records_dropped_;
    return;
  }
  PairState& ps =
      pairs_
          .try_emplace(key(record.src, record.dst,
                           record.family == net::Family::kIPv6 ? 6 : 4),
                       config_)
          .first->second;
  if (epoch <= ps.last_epoch) {
    ++records_dropped_;  // duplicate or stale redelivery: first write wins
    return;
  }
  // Same 0.1 ms quantization as PingSeriesStore slots, so the sketches
  // see exactly the values the batch grid would.
  const double value =
      std::floor(std::min(6553.0, std::max(0.0, record.rtt_ms)) * 10.0) /
      10.0;
  if (ps.last_epoch >= 0) {
    // Interior gap: linear interpolation between the two observed
    // endpoints, exactly like to_ms_interpolated. Fills older than the
    // window would be evicted immediately, so start at the last
    // `window_epochs` positions.
    const std::int64_t span = epoch - ps.last_epoch;
    std::int64_t j = ps.last_epoch + 1;
    const std::int64_t horizon =
        epoch - static_cast<std::int64_t>(config_.window_epochs);
    if (j < horizon) j = horizon;
    for (; j < epoch; ++j) {
      const double frac = static_cast<double>(j - ps.last_epoch) /
                          static_cast<double>(span);
      ps.window.push(ps.last_value + frac * (value - ps.last_value));
    }
  } else if (epoch > 0) {
    // Leading gap: copy the first observation backward, like the batch
    // interpolation; cap at the window so huge offsets stay O(window).
    std::int64_t fills = epoch;
    if (fills > static_cast<std::int64_t>(config_.window_epochs)) {
      fills = static_cast<std::int64_t>(config_.window_epochs);
    }
    for (std::int64_t j = 0; j < fills; ++j) ps.window.push(value);
  }
  ps.window.push(value);
  ps.ecdf.add(value);
  ps.welford.add(value);
  ps.last_epoch = epoch;
  ps.last_value = value;
  ++ps.valid;
  ++records_folded_;
  obs_folded().inc();
}

void IncrementalState::advance_watermark(std::int64_t epoch) {
  watermark_epoch_ = std::max(watermark_epoch_, epoch);
}

IncrementalState::Verdict IncrementalState::eval(const PairState& ps) const {
  Verdict v;
  v.samples = ps.valid;
  const std::size_t horizon = epochs();
  v.missing_samples = horizon > ps.valid ? horizon - ps.valid : 0;
  const auto min_samples = static_cast<std::size_t>(
      config_.min_fraction * static_cast<double>(horizon));
  if (ps.valid == 0 || horizon < 2) {
    v.insufficient = true;
    return v;
  }
  v.insufficient = ps.valid < std::max<std::size_t>(min_samples, 2);
  v.variation_ms = ps.ecdf.quantile(0.95) - ps.ecdf.quantile(0.05);
  v.high_variation = v.variation_ms > config_.detect.variation_threshold_ms;
  // Trailing gap up to the watermark extends the window with virtual
  // copies of the last observation (the batch interpolation's trailing
  // rule), without mutating the fold state.
  const std::size_t trailing =
      watermark_epoch_ > ps.last_epoch
          ? static_cast<std::size_t>(watermark_epoch_ - ps.last_epoch)
          : 0;
  v.diurnal_ratio = ps.window.diurnal(samples_per_day(), trailing).ratio;
  v.strong_diurnal =
      v.diurnal_ratio >= config_.detect.diurnal_ratio_threshold;
  return v;
}

bool IncrementalState::verdict(std::uint32_t src, std::uint32_t dst,
                               std::uint8_t family, Verdict& out) const {
  const auto it = pairs_.find(key(src, dst, family));
  if (it == pairs_.end()) return false;
  out = eval(it->second);
  return true;
}

void IncrementalState::for_each(
    const std::function<void(std::uint32_t, std::uint32_t, std::uint8_t,
                             const Verdict&)>& fn) const {
  for (const auto& [k, ps] : pairs_) {
    fn(static_cast<std::uint32_t>(k >> 24),
       static_cast<std::uint32_t>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? std::uint8_t{6} : std::uint8_t{4}, eval(ps));
  }
}

IncrementalState::Summary IncrementalState::summarize(
    exec::ThreadPool* pool) const {
  Summary total;
  exec::sharded_reduce<Summary>(
      pool, exec::kAnalysisShards, "live.incremental.summarize",
      [&](std::size_t shard, Summary& partial) {
        for (const auto& [k, ps] : pairs_) {
          if (k % exec::kAnalysisShards != shard) continue;
          const Verdict v = eval(ps);
          ++partial.pairs;
          if (v.insufficient) continue;
          ++partial.assessed;
          if (v.high_variation) ++partial.high_variation;
          if (v.consistent_congestion()) ++partial.consistent;
        }
      },
      [&](const Summary& partial) {
        total.pairs += partial.pairs;
        total.assessed += partial.assessed;
        total.high_variation += partial.high_variation;
        total.consistent += partial.consistent;
      });
  return total;
}

}  // namespace s2s::live
