// Streaming congestion state for live archives (DESIGN.md section 16).
//
// The batch pipeline answers a congestion verdict by re-deriving
// everything from the full ping grid: interpolate, sort for percentiles,
// run the spectral detector over the whole history. On a live shard that
// recompute would repeat per appended epoch. IncrementalState instead
// folds the ping record stream — in archive order — into small mergeable
// per-pair sketches:
//
//   * Welford moments            (mean/variance, O(1) per record)
//   * BinnedEcdf                 (p95-p5 variation, O(1) per record)
//   * GoertzelWindow             (sliding diurnal power, O(window) per
//                                 verdict instead of O(history))
//
// The fold is a pure sequential function of the record stream: folding a
// sealed prefix and then the delta produces bit-identical state to
// folding everything at once (no merges, no thread scheduling on the
// ingest path). That is the incremental-vs-batch equivalence contract
// the live serving path is tested against — verdicts after N delta
// pickups are byte-identical to a single batch refold at the same
// watermark, at any thread width.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/congestion_detect.h"
#include "exec/pool.h"
#include "net/timebase.h"
#include "probe/records.h"
#include "stats/binned_ecdf.h"
#include "stats/goertzel.h"
#include "stats/welford.h"

namespace s2s::live {

struct IncrementalConfig {
  /// Ping sampling grid (must match the archive's campaign).
  double start_day = 0.0;
  std::int64_t interval_s = net::kFifteenMinutes;
  /// Detection thresholds; min_samples is derived per evaluation from
  /// `min_fraction` of the watermark's epoch count, like the batch path.
  core::CongestionDetectConfig detect;
  double min_fraction = 0.6;
  /// Sliding diurnal window in epochs (default: one week of 15-minute
  /// samples, the paper's analysis horizon).
  std::size_t window_epochs = 672;
  /// Quantile sketch grid; covers the ping store's 0.1 ms-quantized
  /// encodable range at 0.8 ms resolution.
  double ecdf_lo = 0.0;
  double ecdf_hi = 6553.6;
  std::size_t ecdf_bins = 8192;
};

class IncrementalState {
 public:
  explicit IncrementalState(const IncrementalConfig& config = {});

  // Deep-copyable: delta pickup clones the published state, folds the
  // new tail into the clone, and swaps it in RCU-style.
  IncrementalState(const IncrementalState&) = default;
  IncrementalState& operator=(const IncrementalState&) = default;

  /// Folds one ping record. Per pair, epochs must be strictly
  /// increasing: a record at or before the pair's last folded epoch is
  /// dropped (the streaming form of the store's first-write-wins rule).
  /// Interior gaps are linearly interpolated into the diurnal window at
  /// fold time — causal, because both gap endpoints are known once the
  /// right one arrives.
  void add(const probe::PingRecord& record);

  /// Advances the sealed-epoch horizon (monotone; lower values are
  /// ignored). Verdict denominators — missing samples, the minimum
  /// sample floor, trailing-gap extension — all derive from this, so
  /// an epoch with no records still changes verdicts.
  void advance_watermark(std::int64_t epoch);

  std::int64_t watermark_epoch() const noexcept { return watermark_epoch_; }
  /// Epochs covered by the watermark (watermark_epoch + 1, 0 before any).
  std::size_t epochs() const noexcept {
    return watermark_epoch_ < 0
               ? 0
               : static_cast<std::size_t>(watermark_epoch_) + 1;
  }
  std::size_t pairs_tracked() const noexcept { return pairs_.size(); }
  std::uint64_t records_folded() const noexcept { return records_folded_; }
  std::uint64_t records_dropped() const noexcept { return records_dropped_; }
  double samples_per_day() const {
    return 86400.0 / static_cast<double>(config_.interval_s);
  }
  const IncrementalConfig& config() const noexcept { return config_; }

  /// Mirrors core::SeriesVerdict for the serving path.
  struct Verdict {
    std::uint64_t samples = 0;
    std::uint64_t missing_samples = 0;
    bool insufficient = false;
    double variation_ms = 0.0;
    double diurnal_ratio = 0.0;
    bool high_variation = false;
    bool strong_diurnal = false;
    bool consistent_congestion() const {
      return high_variation && strong_diurnal;
    }
  };

  /// Evaluates one pair at the current watermark; false when the pair
  /// has never been seen.
  bool verdict(std::uint32_t src, std::uint32_t dst, std::uint8_t family,
               Verdict& out) const;

  /// Visits every tracked pair in ascending key order with its verdict.
  void for_each(const std::function<void(std::uint32_t src, std::uint32_t dst,
                                         std::uint8_t family,
                                         const Verdict&)>& fn) const;

  struct Summary {
    std::size_t pairs = 0;
    std::size_t assessed = 0;  ///< not insufficient
    std::size_t high_variation = 0;
    std::size_t consistent = 0;
  };

  /// Aggregate verdict counts. With a pool, pairs are evaluated in the
  /// fixed 64 analysis shards and merged in shard order — byte-identical
  /// totals at any thread count (the same contract as the batch survey).
  Summary summarize(exec::ThreadPool* pool = nullptr) const;

 private:
  struct PairState {
    stats::Welford welford;
    stats::BinnedEcdf ecdf;
    stats::GoertzelWindow window;
    std::int64_t last_epoch = -1;
    double last_value = 0.0;
    std::uint64_t valid = 0;

    PairState(const IncrementalConfig& c)
        : ecdf(c.ecdf_lo, c.ecdf_hi, c.ecdf_bins),
          window(c.window_epochs) {}
  };

  static std::uint64_t key(std::uint32_t src, std::uint32_t dst,
                           std::uint8_t family) {
    return (std::uint64_t{src} << 24) | (std::uint64_t{dst} << 4) |
           (family == 6 ? 1u : 0u);
  }

  Verdict eval(const PairState& ps) const;

  IncrementalConfig config_;
  std::int64_t watermark_epoch_ = -1;
  std::uint64_t records_folded_ = 0;
  std::uint64_t records_dropped_ = 0;
  /// Ordered by key so every iteration order is deterministic.
  std::map<std::uint64_t, PairState> pairs_;
};

}  // namespace s2s::live
