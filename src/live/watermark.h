// Watermark sidecar for append-while-serving `.s2sb` shards
// (DESIGN.md section 16).
//
// An open shard has no footer, so on its own a reader cannot tell a
// freshly sealed tail from a torn one. The writer therefore keeps a tiny
// CRC-guarded sidecar next to the archive (`<path>.wm`) recording the
// byte length of the durable sealed prefix and the last epoch it covers.
// The contract:
//
//   * the sidecar is updated only AFTER the data bytes it describes are
//     flushed and fsynced, and the update itself is atomic
//     (tmp + rename + directory fsync), so at every instant the sidecar
//     on disk describes a prefix whose blocks are all CRC-valid;
//   * readers (svc::Dataset, s2s_recconv info, crash recovery) bound
//     every read at `sealed_bytes` and never look at the tail beyond it —
//     which is how a reader or the serving daemon never observes a torn
//     tail, no matter when the writer dies.
#pragma once

#include <cstdint>
#include <string>

namespace s2s::live {

inline constexpr std::uint32_t kWatermarkMagic = 0x57533253u;  // "S2SW"
inline constexpr std::uint16_t kWatermarkVersion = 1;
/// Fixed sidecar size: magic + version + rsvd + 4 u64/i64 fields +
/// rsvd + crc.
inline constexpr std::size_t kWatermarkBytes = 48;

struct Watermark {
  std::uint64_t sealed_bytes = 0;  ///< durable prefix length, incl. header
  std::uint64_t blocks = 0;        ///< blocks inside the sealed prefix
  std::uint64_t records = 0;       ///< records inside the sealed prefix
  std::int64_t epoch = -1;         ///< last sealed epoch index; -1 = none

  bool operator==(const Watermark&) const = default;
};

enum class WatermarkStatus : std::uint8_t {
  kAbsent = 0,   ///< no sidecar: a plain batch archive
  kValid = 1,    ///< sidecar parsed and its CRC checks out
  kInvalid = 2,  ///< sidecar present but torn/corrupt — fail safe
};

/// `<archive path>.wm`.
std::string watermark_path(const std::string& archive_path);

/// Atomic sidecar update (tmp + fsync + rename + dir fsync). Call only
/// after the described data bytes are themselves durable.
bool write_watermark_file(const std::string& archive_path,
                          const Watermark& wm, std::string& error);

/// Reads and CRC-verifies the sidecar for `archive_path`.
WatermarkStatus read_watermark_file(const std::string& archive_path,
                                    Watermark& out);

/// Removes the sidecar (used when a shard is finalized into a plain
/// sealed archive). Missing file counts as success.
bool remove_watermark_file(const std::string& archive_path);

/// Serialization helpers, exposed for tests.
std::string encode_watermark(const Watermark& wm);
WatermarkStatus decode_watermark(const void* data, std::size_t size,
                                 Watermark& out);

}  // namespace s2s::live
