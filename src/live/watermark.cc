#include "live/watermark.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

#include "io/crc32c.h"

namespace s2s::live {

namespace {

void put_u16le(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t get_u16le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64le(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32le(p)) |
         (static_cast<std::uint64_t>(get_u32le(p + 4)) << 32);
}

/// fsync the directory containing `path` so a rename inside it is
/// durable (same discipline as AtomicArchiveWriter::commit).
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::string watermark_path(const std::string& archive_path) {
  return archive_path + ".wm";
}

std::string encode_watermark(const Watermark& wm) {
  std::string out;
  out.reserve(kWatermarkBytes);
  put_u32le(out, kWatermarkMagic);
  put_u16le(out, kWatermarkVersion);
  put_u16le(out, 0);  // reserved
  put_u64le(out, wm.sealed_bytes);
  put_u64le(out, wm.blocks);
  put_u64le(out, wm.records);
  put_u64le(out, static_cast<std::uint64_t>(wm.epoch));
  put_u32le(out, 0);  // reserved
  // CRC over everything after the magic (version through the reserved
  // word), so any torn or bit-flipped sidecar reads as kInvalid.
  put_u32le(out, io::crc32c(out.data() + 4, out.size() - 4));
  return out;
}

WatermarkStatus decode_watermark(const void* data, std::size_t size,
                                 Watermark& out) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  if (size != kWatermarkBytes || get_u32le(bytes) != kWatermarkMagic) {
    return WatermarkStatus::kInvalid;
  }
  if (get_u16le(bytes + 4) != kWatermarkVersion) {
    return WatermarkStatus::kInvalid;
  }
  const std::uint32_t want = get_u32le(bytes + kWatermarkBytes - 4);
  if (io::crc32c(bytes + 4, kWatermarkBytes - 8) != want) {
    return WatermarkStatus::kInvalid;
  }
  out.sealed_bytes = get_u64le(bytes + 8);
  out.blocks = get_u64le(bytes + 16);
  out.records = get_u64le(bytes + 24);
  out.epoch = static_cast<std::int64_t>(get_u64le(bytes + 32));
  return WatermarkStatus::kValid;
}

bool write_watermark_file(const std::string& archive_path,
                          const Watermark& wm, std::string& error) {
  const std::string path = watermark_path(archive_path);
  const std::string tmp = path + ".tmp";
  const std::string image = encode_watermark(wm);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      error = tmp + ": open failed";
      return false;
    }
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) {
      error = tmp + ": write failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = path + ": rename failed";
    std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

WatermarkStatus read_watermark_file(const std::string& archive_path,
                                    Watermark& out) {
  std::ifstream in(watermark_path(archive_path), std::ios::binary);
  if (!in) return WatermarkStatus::kAbsent;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return decode_watermark(bytes.data(), bytes.size(), out);
}

bool remove_watermark_file(const std::string& archive_path) {
  const std::string path = watermark_path(archive_path);
  return std::remove(path.c_str()) == 0 || errno == ENOENT;
}

}  // namespace s2s::live
