// Durable open-shard `.s2sb` writer (DESIGN.md section 16).
//
// A batch campaign writes a whole archive and commits it atomically; a
// live campaign instead appends to an OPEN shard the daemon is already
// serving. OpenShardWriter wraps io::BinRecordWriter with the durability
// protocol that makes that safe:
//
//   write()* -> seal(epoch): flush the open blocks, fsync the data file,
//   then atomically advance the watermark sidecar. Readers bound every
//   read at the sidecar's sealed_bytes, so a crash between any two steps
//   leaves at worst an invisible unsealed tail — never a torn read.
//
// finish() appends the footer index and seals it in (the shard becomes a
// normal indexed archive whose sidecar covers the whole file); resume()
// re-opens a crashed shard by truncating the unsealed tail and seeding
// the writer with the sealed prefix's block index, so the resumed file's
// block stream is byte-identical to an uninterrupted writer's.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "io/binrec.h"
#include "live/watermark.h"

namespace s2s::live {

struct OpenShardConfig {
  /// Records per block before an automatic flush (see BinWriterConfig).
  std::size_t block_records = 1024;
};

class OpenShardWriter {
 public:
  /// Creates `path` fresh (truncating) and publishes an empty watermark
  /// (sealed_bytes = file header, epoch -1) so pollers immediately see a
  /// valid — if empty — shard.
  explicit OpenShardWriter(const std::string& path,
                           const OpenShardConfig& config = {});
  ~OpenShardWriter();

  OpenShardWriter(const OpenShardWriter&) = delete;
  OpenShardWriter& operator=(const OpenShardWriter&) = delete;

  /// Re-opens a crashed (or merely paused) open shard: validates the
  /// sealed prefix named by the sidecar block by block, truncates
  /// whatever tail lies beyond it (a half-written block, a destructor
  /// footer), and returns a writer positioned at the watermark. Returns
  /// null when the sidecar is corrupt or the sealed prefix itself is
  /// damaged — that tail recovery cannot reach (run recover_archive and
  /// start a fresh shard instead).
  static std::unique_ptr<OpenShardWriter> resume(
      const std::string& path, const OpenShardConfig& config,
      std::string& error);

  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }
  const std::string& path() const noexcept { return path_; }

  void write(const probe::TracerouteRecord& record);
  void write(const probe::PingRecord& record);

  /// Durability point: closes the open blocks, fsyncs the data file, and
  /// atomically advances the sidecar to record `epoch` as the last
  /// sealed epoch. Everything written before this call is now visible to
  /// watermark-bounded readers; false (with `error`) leaves the previous
  /// watermark in force.
  bool seal(std::int64_t epoch, std::string& error);

  /// seal() + footer: the shard becomes a normal indexed archive. The
  /// sidecar is kept (sealed_bytes then covers the footer too) so a
  /// serving daemon's watermark poll sees the final state; call
  /// remove_watermark_file() to finalize it into a plain batch archive.
  bool finish(std::string& error);

  const Watermark& watermark() const noexcept { return watermark_; }
  /// Records accepted so far, including those a resumed prefix already
  /// held (what the next seal() will publish).
  std::uint64_t records() const noexcept {
    return base_records_ + (writer_ ? writer_->written() : 0);
  }

 private:
  OpenShardWriter() = default;  // for resume()
  bool open_fsync_fd();
  bool sync_and_publish(std::int64_t epoch, std::string& error);

  std::string path_;
  std::ofstream out_;
  int fd_ = -1;  ///< second handle on the data file, for fsync
  std::unique_ptr<io::BinRecordWriter> writer_;
  Watermark watermark_;
  std::uint64_t base_records_ = 0;  ///< records in a resumed prefix
  bool ok_ = false;
  bool finished_ = false;
  std::string error_;
};

}  // namespace s2s::live
