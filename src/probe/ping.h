// Simulated ICMP echo measurements over simnet::Network.
#pragma once

#include <optional>

#include "probe/noise.h"
#include "probe/records.h"
#include "simnet/network.h"
#include "stats/rng.h"

namespace s2s::probe {

struct PingConfig {
  NoiseConfig noise;
  double loss_prob = 0.01;  ///< per-ping loss beyond routing outages
};

class PingEngine {
 public:
  PingEngine(simnet::Network& net, const PingConfig& config, stats::Rng rng)
      : net_(net), config_(config), rng_(rng) {}

  /// Runs one ping. Returns nullopt when the family is not configured on
  /// either endpoint; otherwise a record (success=false on loss or when
  /// either direction is unroutable at t).
  std::optional<PingRecord> run(topology::ServerId src, topology::ServerId dst,
                                net::Family family, net::SimTime t);

  /// Engine RNG state, for campaign checkpointing.
  std::array<std::uint64_t, 4> rng_state() const noexcept {
    return rng_.state();
  }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) noexcept {
    rng_.set_state(s);
  }

 private:
  simnet::Network& net_;
  PingConfig config_;
  stats::Rng rng_;
};

}  // namespace s2s::probe
