#include "probe/ping.h"

namespace s2s::probe {

std::optional<PingRecord> PingEngine::run(topology::ServerId src,
                                          topology::ServerId dst,
                                          net::Family family, net::SimTime t) {
  const auto& topo = net_.topo();
  const auto& source = topo.servers.at(src);
  const auto& target = topo.servers.at(dst);
  if (family == net::Family::kIPv6 &&
      (!source.dual_stack() || !target.dual_stack())) {
    return std::nullopt;
  }

  PingRecord record;
  record.src = src;
  record.dst = dst;
  record.family = family;
  record.time = t;

  if (rng_.chance(config_.loss_prob)) return record;  // lost probe

  auto fwd = net_.resolve(src, dst, family, t);
  if (!fwd) return record;
  // Event overlay (maintenance windows, failed links): a blocked hop drops
  // the probe in transit. The check draws no randomness, so installing an
  // event schedule never perturbs the engine's RNG stream. The forward
  // path must be consumed before the reverse resolve (fallback scratch).
  if (net_.path_event_blocked(*fwd->path, family, t)) return record;
  const double fwd_one_way = net_.one_way_ms(*fwd->path, family, t);
  auto rev = net_.resolve(dst, src, family, t);
  if (!rev) return record;
  if (net_.path_event_blocked(*rev->path, family, t)) return record;
  const double rev_one_way = net_.one_way_ms(*rev->path, family, t);

  record.rtt_ms =
      fwd_one_way + rev_one_way + end_to_end_noise_ms(config_.noise, rng_);
  record.success = true;
  return record;
}

}  // namespace s2s::probe
