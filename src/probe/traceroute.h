// Simulated traceroute over simnet::Network.
//
// Reproduces the measurement-level behaviour the paper's pipeline has to
// cope with (Section 2.1):
//   * hop addresses are the ingress interfaces of the routers on the
//     forward path (gateway first, destination address last);
//   * silent routers and per-probe loss yield unresponsive hops ("*");
//   * probes that die mid-path (filtering, rate limiting, reachability
//     problems) yield incomplete traceroutes (~25% in the paper);
//   * classic traceroute varies the flow identifier per probe, so per-flow
//     load balancers can interleave parallel paths and manufacture
//     apparent AS loops (2.16% of IPv4, 5.5% of IPv6 traceroutes in the
//     paper); Paris traceroute holds the flow fixed and avoids this.
//
// The per-hop RTT model is symmetric along the forward path (2x the
// partial one-way delay plus both-direction queueing); the end-to-end hop
// uses the true forward + reverse one-way delays, so end-to-end series
// reflect reverse-path routing changes too. See DESIGN.md for the
// asymmetry discussion.
#pragma once

#include <optional>

#include "probe/noise.h"
#include "probe/records.h"
#include "simnet/network.h"
#include "stats/rng.h"

namespace s2s::probe {

struct TracerouteConfig {
  NoiseConfig noise;
  /// Probability the probe run dies before the destination (filtering /
  /// rate limiting / transient reachability), beyond routing outages.
  double stop_early_prob = 0.20;
  /// Classic-traceroute artifact rates (per traceroute, when a per-flow
  /// load balancer is plausible on the path).
  double classic_loop_prob_v4 = 0.028;
  double classic_loop_prob_v6 = 0.070;
  /// Substitute one internal hop with a sibling interface (IP-level churn
  /// without AS-level change).
  double classic_false_hop_prob = 0.03;
  int max_ttl = 64;
};

class TracerouteEngine {
 public:
  TracerouteEngine(simnet::Network& net, const TracerouteConfig& config,
                   stats::Rng rng);

  /// Runs one traceroute. Returns nullopt only when the requested family
  /// is not configured on either endpoint (no probe is even sent).
  std::optional<TracerouteRecord> run(topology::ServerId src,
                                      topology::ServerId dst,
                                      net::Family family, net::SimTime t,
                                      TracerouteMethod method);

  /// Engine RNG state, for campaign checkpointing: restoring it replays
  /// the probe stream from exactly the captured point.
  std::array<std::uint64_t, 4> rng_state() const noexcept {
    return rng_.state();
  }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) noexcept {
    rng_.set_state(s);
  }

 private:
  void apply_classic_artifacts(TracerouteRecord& record,
                               const simnet::RouterPath& fpath);

  simnet::Network& net_;
  TracerouteConfig config_;
  stats::Rng rng_;
  /// Internal links adjacent to each router (sibling-interface artifacts).
  std::vector<std::vector<topology::LinkId>> internal_by_router_;
};

}  // namespace s2s::probe
