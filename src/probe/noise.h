// Stochastic measurement noise shared by the ping and traceroute engines.
//
// Deterministic latency (propagation + diurnal queueing) comes from
// simnet::Network; everything transient lives here: measurement jitter,
// short queueing spikes (the "spikes above the baseline" of the paper's
// Figure 1), ICMP generation delay on routers, slow control planes, and
// probe loss.
#pragma once

#include <cmath>

#include "stats/rng.h"

namespace s2s::probe {

struct NoiseConfig {
  /// Lognormal jitter added to every RTT sample (sigma of underlying
  /// normal; median ~ exp(mu) = jitter_median_ms).
  double jitter_median_ms = 0.3;
  double jitter_sigma = 0.6;
  /// Transient congestion spike: probability per end-to-end sample and
  /// exponential mean of the added delay.
  double spike_prob = 0.015;
  double spike_mean_ms = 18.0;
  /// ICMP TTL-exceeded generation delay on intermediate routers.
  double hop_proc_min_ms = 0.05;
  double hop_proc_max_ms = 0.6;
  /// Routers occasionally answer from a slow control plane.
  double slow_path_prob = 0.01;
  double slow_path_mean_ms = 40.0;
  /// Per-probe loss (an otherwise responsive hop shows "*").
  double probe_loss_prob = 0.00005;
};

/// Noise on an end-to-end RTT sample (ping or final traceroute hop).
inline double end_to_end_noise_ms(const NoiseConfig& cfg, stats::Rng& rng) {
  double noise =
      rng.lognormal(std::log(cfg.jitter_median_ms), cfg.jitter_sigma);
  if (rng.chance(cfg.spike_prob)) {
    noise += rng.exponential_mean(cfg.spike_mean_ms);
  }
  return noise;
}

/// Noise on an intermediate traceroute hop's RTT sample.
inline double hop_noise_ms(const NoiseConfig& cfg, stats::Rng& rng) {
  double noise =
      rng.lognormal(std::log(cfg.jitter_median_ms), cfg.jitter_sigma) +
      rng.uniform(cfg.hop_proc_min_ms, cfg.hop_proc_max_ms);
  if (rng.chance(cfg.slow_path_prob)) {
    noise += rng.exponential_mean(cfg.slow_path_mean_ms);
  }
  if (rng.chance(cfg.spike_prob)) {
    noise += rng.exponential_mean(cfg.spike_mean_ms);
  }
  return noise;
}

}  // namespace s2s::probe
