#include "probe/campaign.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <exception>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace s2s::probe {

using topology::ServerId;

namespace {

/// Obs handles shared by both campaign kinds; resolved once per run().
struct CampaignObs {
  obs::Counter records;
  obs::Counter epochs;
  obs::Histogram epoch_us;
  obs::Histogram checkpoint_us;
  obs::Gauge records_per_sec;

  static CampaignObs make() {
    auto& reg = obs::MetricsRegistry::global();
    CampaignObs o;
    o.records = reg.counter("s2s.campaign.records");
    o.epochs = reg.counter("s2s.campaign.epochs");
    o.epoch_us = reg.histogram("s2s.campaign.epoch_us",
                               obs::MetricsRegistry::latency_us_bounds());
    o.checkpoint_us = reg.histogram("s2s.campaign.checkpoint_us",
                                    obs::MetricsRegistry::latency_us_bounds());
    o.records_per_sec = reg.gauge("s2s.campaign.records_per_sec");
    return o;
  }

  /// Records/sec over the whole run; elapsed measured by the caller.
  void finish(std::size_t records_delivered, double elapsed_s) const {
    if (elapsed_s > 0.0) {
      records_per_sec.set(static_cast<double>(records_delivered) / elapsed_s);
    }
  }
};

std::vector<std::pair<ServerId, ServerId>> with_reversed(
    std::span<const std::pair<ServerId, ServerId>> pairs) {
  std::vector<std::pair<ServerId, ServerId>> all(pairs.begin(), pairs.end());
  for (const auto& [a, b] : pairs) all.emplace_back(b, a);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

/// Installs a campaign's event overlay on the network for the duration of
/// run(), restoring whatever was installed before.
class ScopedEvents {
 public:
  ScopedEvents(simnet::Network& net, const simnet::EventSchedule* events)
      : net_(net), prev_(net.events()) {
    if (events != nullptr) net_.set_events(events);
  }
  ~ScopedEvents() { net_.set_events(prev_); }

  ScopedEvents(const ScopedEvents&) = delete;
  ScopedEvents& operator=(const ScopedEvents&) = delete;

 private:
  simnet::Network& net_;
  const simnet::EventSchedule* prev_;
};

/// Sort windows, drop empty ones, merge overlaps/adjacency, so down()
/// can binary-search on the start instant alone (an earlier long window
/// swallowing a later short one would otherwise be missed).
void normalize(std::vector<std::pair<std::int64_t, std::int64_t>>& list) {
  std::sort(list.begin(), list.end());
  std::size_t out = 0;
  for (const auto& w : list) {
    if (w.second <= w.first) continue;  // empty or inverted
    if (out > 0 && w.first <= list[out - 1].second) {
      list[out - 1].second = std::max(list[out - 1].second, w.second);
    } else {
      list[out++] = w;
    }
  }
  list.resize(out);
}

}  // namespace

DowntimeSchedule::DowntimeSchedule(std::size_t servers, double campaign_days,
                                   const DowntimeConfig& config,
                                   stats::Rng rng) {
  windows_.resize(servers);
  const int months = static_cast<int>(campaign_days / 30.0) + 1;
  for (auto& list : windows_) {
    for (int m = 0; m < months; ++m) {
      if (!rng.chance(config.monthly_window_prob)) continue;
      const double start_day =
          30.0 * m + rng.uniform(0.0, 30.0);
      const double length_days =
          rng.uniform(config.window_days_min, config.window_days_max);
      list.emplace_back(
          static_cast<std::int64_t>(start_day * 86400.0),
          static_cast<std::int64_t>((start_day + length_days) * 86400.0));
    }
    normalize(list);
  }
}

DowntimeSchedule::DowntimeSchedule(Windows windows)
    : windows_(std::move(windows)) {
  for (auto& list : windows_) normalize(list);
}

std::string CampaignCheckpoint::serialize() const {
  std::string out = "S2SCKPT 1 " + std::to_string(next_epoch);
  for (const auto word : rng_state) {
    out += ' ';
    out += std::to_string(word);
  }
  return out;
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::parse(
    std::string_view line) {
  constexpr std::string_view kMagic = "S2SCKPT 1 ";
  if (!line.starts_with(kMagic)) return std::nullopt;
  line.remove_prefix(kMagic.size());
  CampaignCheckpoint ckpt;
  std::uint64_t values[5];
  const char* ptr = line.data();
  const char* end = line.data() + line.size();
  for (auto& value : values) {
    if (ptr != line.data()) {
      if (ptr == end || *ptr != ' ') return std::nullopt;
      ++ptr;
    }
    const auto [next, ec] = std::from_chars(ptr, end, value);
    if (ec != std::errc{}) return std::nullopt;
    ptr = next;
  }
  if (ptr != end) return std::nullopt;
  ckpt.next_epoch = static_cast<std::size_t>(values[0]);
  for (int i = 0; i < 4; ++i) {
    ckpt.rng_state[static_cast<std::size_t>(i)] = values[i + 1];
  }
  return ckpt;
}

bool DowntimeSchedule::down(ServerId server, net::SimTime t) const {
  const auto& list = windows_.at(server);
  const auto it = std::upper_bound(
      list.begin(), list.end(), t.seconds(),
      [](std::int64_t v, const auto& w) { return v < w.first; });
  if (it == list.begin()) return false;
  return t.seconds() < std::prev(it)->second;
}

TracerouteCampaign::TracerouteCampaign(
    simnet::Network& net, const TracerouteCampaignConfig& config,
    std::span<const std::pair<ServerId, ServerId>> pairs)
    : net_(net),
      config_(config),
      pairs_(with_reversed(pairs)),
      downtime_(net.topo().servers.size(), config.start_day + config.days,
                config.downtime, stats::Rng(config.seed * 31 + 1)),
      engine_(net, config.traceroute, stats::Rng(config.seed * 31 + 2)) {
  net_.prepare(pairs_);
}

std::size_t TracerouteCampaign::epochs() const {
  return static_cast<std::size_t>(config_.days * 86400.0 /
                                  static_cast<double>(config_.interval_s));
}

CampaignRunResult TracerouteCampaign::run(const TraceSink& sink,
                                          const ProgressFn& progress,
                                          const CampaignCheckpoint* resume) {
  CampaignRunResult result;
  const std::size_t total = epochs();
  std::size_t first = 0;
  if (resume) {
    first = resume->next_epoch;
    engine_.set_rng_state(resume->rng_state);
  }
  const CampaignObs cobs = CampaignObs::make();
  const ScopedEvents scoped_events(net_, config_.events);
  const obs::TraceSpan run_span("campaign.traceroute");
  const auto run_start = std::chrono::steady_clock::now();
  const auto start_s =
      static_cast<std::int64_t>(config_.start_day * 86400.0);
  for (std::size_t epoch = first; epoch < total; ++epoch) {
    const obs::TraceSpan epoch_span("epoch");
    const obs::ScopedTimer epoch_timer(cobs.epoch_us);
    // Checkpoint at the epoch boundary: if the sink fails below, the
    // whole epoch is replayed on resume (at-least-once delivery).
    {
      const obs::ScopedTimer ckpt_timer(cobs.checkpoint_us);
      result.checkpoint.next_epoch = epoch;
      result.checkpoint.rng_state = engine_.rng_state();
    }
    const net::SimTime t(start_s +
                         static_cast<std::int64_t>(epoch) *
                             config_.interval_s);
    const bool v4_paris = config_.paris_switch_day >= 0.0 &&
                          t.days() >= config_.paris_switch_day;
    std::size_t epoch_records = 0;
    try {
      for (const auto& [src, dst] : pairs_) {
        if (downtime_.down(src, t) || downtime_.down(dst, t)) continue;
        if (config_.probe_ipv4) {
          const auto method = v4_paris ? TracerouteMethod::kParis
                                       : TracerouteMethod::kClassic;
          if (auto rec =
                  engine_.run(src, dst, net::Family::kIPv4, t, method)) {
            sink(*rec);
            ++result.records_delivered;
            ++epoch_records;
          }
        }
        if (config_.probe_ipv6) {
          if (auto rec = engine_.run(src, dst, net::Family::kIPv6, t,
                                     TracerouteMethod::kClassic)) {
            sink(*rec);
            ++result.records_delivered;
            ++epoch_records;
          }
        }
      }
    } catch (const std::exception& e) {
      result.aborted = true;
      result.error = e.what();
      cobs.records.inc(epoch_records);
      obs::logf(obs::LogLevel::kWarn,
                "traceroute campaign aborted at epoch %zu/%zu: %s", epoch,
                total, e.what());
      return result;
    }
    cobs.records.inc(epoch_records);
    cobs.epochs.inc();
    ++result.epochs_completed;
    if (config_.on_epoch) config_.on_epoch(epoch);
    if (progress) {
      progress(static_cast<double>(epoch + 1) / static_cast<double>(total));
    }
  }
  result.checkpoint.next_epoch = total;
  result.checkpoint.rng_state = engine_.rng_state();
  cobs.finish(result.records_delivered,
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            run_start)
                  .count());
  return result;
}

PingCampaign::PingCampaign(
    simnet::Network& net, const PingCampaignConfig& config,
    std::span<const std::pair<ServerId, ServerId>> pairs)
    : net_(net),
      config_(config),
      pairs_(with_reversed(pairs)),
      downtime_(net.topo().servers.size(), config.start_day + config.days,
                config.downtime, stats::Rng(config.seed * 31 + 1)),
      engine_(net, config.ping, stats::Rng(config.seed * 31 + 2)) {
  net_.prepare(pairs_);
}

std::size_t PingCampaign::epochs() const {
  return static_cast<std::size_t>(config_.days * 86400.0 /
                                  static_cast<double>(config_.interval_s));
}

CampaignRunResult PingCampaign::run(const PingSink& sink,
                                    const ProgressFn& progress,
                                    const CampaignCheckpoint* resume) {
  CampaignRunResult result;
  const std::size_t total = epochs();
  std::size_t first = 0;
  if (resume) {
    first = resume->next_epoch;
    engine_.set_rng_state(resume->rng_state);
  }
  const CampaignObs cobs = CampaignObs::make();
  const ScopedEvents scoped_events(net_, config_.events);
  const obs::TraceSpan run_span("campaign.ping");
  const auto run_start = std::chrono::steady_clock::now();
  const auto start_s =
      static_cast<std::int64_t>(config_.start_day * 86400.0);
  for (std::size_t epoch = first; epoch < total; ++epoch) {
    const obs::TraceSpan epoch_span("epoch");
    const obs::ScopedTimer epoch_timer(cobs.epoch_us);
    {
      const obs::ScopedTimer ckpt_timer(cobs.checkpoint_us);
      result.checkpoint.next_epoch = epoch;
      result.checkpoint.rng_state = engine_.rng_state();
    }
    const net::SimTime t(start_s +
                         static_cast<std::int64_t>(epoch) *
                             config_.interval_s);
    std::size_t epoch_records = 0;
    try {
      for (const auto& [src, dst] : pairs_) {
        if (downtime_.down(src, t) || downtime_.down(dst, t)) continue;
        if (config_.probe_ipv4) {
          if (auto rec = engine_.run(src, dst, net::Family::kIPv4, t)) {
            sink(*rec);
            ++result.records_delivered;
            ++epoch_records;
          }
        }
        if (config_.probe_ipv6) {
          if (auto rec = engine_.run(src, dst, net::Family::kIPv6, t)) {
            sink(*rec);
            ++result.records_delivered;
            ++epoch_records;
          }
        }
      }
    } catch (const std::exception& e) {
      result.aborted = true;
      result.error = e.what();
      cobs.records.inc(epoch_records);
      obs::logf(obs::LogLevel::kWarn,
                "ping campaign aborted at epoch %zu/%zu: %s", epoch, total,
                e.what());
      return result;
    }
    cobs.records.inc(epoch_records);
    cobs.epochs.inc();
    ++result.epochs_completed;
    if (config_.on_epoch) config_.on_epoch(epoch);
    if (progress) {
      progress(static_cast<double>(epoch + 1) / static_cast<double>(total));
    }
  }
  result.checkpoint.next_epoch = total;
  result.checkpoint.rng_state = engine_.rng_state();
  cobs.finish(result.records_delivered,
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            run_start)
                  .count());
  return result;
}

}  // namespace s2s::probe
