#include "probe/campaign.h"

#include <algorithm>

namespace s2s::probe {

using topology::ServerId;

namespace {

std::vector<std::pair<ServerId, ServerId>> with_reversed(
    std::span<const std::pair<ServerId, ServerId>> pairs) {
  std::vector<std::pair<ServerId, ServerId>> all(pairs.begin(), pairs.end());
  for (const auto& [a, b] : pairs) all.emplace_back(b, a);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace

DowntimeSchedule::DowntimeSchedule(std::size_t servers, double campaign_days,
                                   const DowntimeConfig& config,
                                   stats::Rng rng) {
  windows_.resize(servers);
  const int months = static_cast<int>(campaign_days / 30.0) + 1;
  for (auto& list : windows_) {
    for (int m = 0; m < months; ++m) {
      if (!rng.chance(config.monthly_window_prob)) continue;
      const double start_day =
          30.0 * m + rng.uniform(0.0, 30.0);
      const double length_days =
          rng.uniform(config.window_days_min, config.window_days_max);
      list.emplace_back(
          static_cast<std::int64_t>(start_day * 86400.0),
          static_cast<std::int64_t>((start_day + length_days) * 86400.0));
    }
    std::sort(list.begin(), list.end());
  }
}

bool DowntimeSchedule::down(ServerId server, net::SimTime t) const {
  const auto& list = windows_.at(server);
  const auto it = std::upper_bound(
      list.begin(), list.end(), t.seconds(),
      [](std::int64_t v, const auto& w) { return v < w.first; });
  if (it == list.begin()) return false;
  return t.seconds() < std::prev(it)->second;
}

TracerouteCampaign::TracerouteCampaign(
    simnet::Network& net, const TracerouteCampaignConfig& config,
    std::span<const std::pair<ServerId, ServerId>> pairs)
    : net_(net),
      config_(config),
      pairs_(with_reversed(pairs)),
      downtime_(net.topo().servers.size(), config.start_day + config.days,
                config.downtime, stats::Rng(config.seed * 31 + 1)),
      engine_(net, config.traceroute, stats::Rng(config.seed * 31 + 2)) {
  net_.prepare(pairs_);
}

std::size_t TracerouteCampaign::epochs() const {
  return static_cast<std::size_t>(config_.days * 86400.0 /
                                  static_cast<double>(config_.interval_s));
}

void TracerouteCampaign::run(const TraceSink& sink,
                             const ProgressFn& progress) {
  const std::size_t total = epochs();
  const auto start_s =
      static_cast<std::int64_t>(config_.start_day * 86400.0);
  for (std::size_t epoch = 0; epoch < total; ++epoch) {
    const net::SimTime t(start_s +
                         static_cast<std::int64_t>(epoch) *
                             config_.interval_s);
    const bool v4_paris = config_.paris_switch_day >= 0.0 &&
                          t.days() >= config_.paris_switch_day;
    for (const auto& [src, dst] : pairs_) {
      if (downtime_.down(src, t) || downtime_.down(dst, t)) continue;
      if (config_.probe_ipv4) {
        const auto method = v4_paris ? TracerouteMethod::kParis
                                     : TracerouteMethod::kClassic;
        if (auto rec = engine_.run(src, dst, net::Family::kIPv4, t, method)) {
          sink(*rec);
        }
      }
      if (config_.probe_ipv6) {
        if (auto rec = engine_.run(src, dst, net::Family::kIPv6, t,
                                   TracerouteMethod::kClassic)) {
          sink(*rec);
        }
      }
    }
    if (progress) {
      progress(static_cast<double>(epoch + 1) / static_cast<double>(total));
    }
  }
}

PingCampaign::PingCampaign(
    simnet::Network& net, const PingCampaignConfig& config,
    std::span<const std::pair<ServerId, ServerId>> pairs)
    : net_(net),
      config_(config),
      pairs_(with_reversed(pairs)),
      downtime_(net.topo().servers.size(), config.start_day + config.days,
                config.downtime, stats::Rng(config.seed * 31 + 1)),
      engine_(net, config.ping, stats::Rng(config.seed * 31 + 2)) {
  net_.prepare(pairs_);
}

std::size_t PingCampaign::epochs() const {
  return static_cast<std::size_t>(config_.days * 86400.0 /
                                  static_cast<double>(config_.interval_s));
}

void PingCampaign::run(const PingSink& sink, const ProgressFn& progress) {
  const std::size_t total = epochs();
  const auto start_s =
      static_cast<std::int64_t>(config_.start_day * 86400.0);
  for (std::size_t epoch = 0; epoch < total; ++epoch) {
    const net::SimTime t(start_s +
                         static_cast<std::int64_t>(epoch) *
                             config_.interval_s);
    for (const auto& [src, dst] : pairs_) {
      if (downtime_.down(src, t) || downtime_.down(dst, t)) continue;
      if (config_.probe_ipv4) {
        if (auto rec = engine_.run(src, dst, net::Family::kIPv4, t)) {
          sink(*rec);
        }
      }
      if (config_.probe_ipv6) {
        if (auto rec = engine_.run(src, dst, net::Family::kIPv6, t)) {
          sink(*rec);
        }
      }
    }
    if (progress) {
      progress(static_cast<double>(epoch + 1) / static_cast<double>(total));
    }
  }
}

}  // namespace s2s::probe
