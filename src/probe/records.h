// Measurement record types: exactly the data the paper's pipeline consumes.
#pragma once

#include <optional>
#include <vector>

#include "net/ip.h"
#include "net/timebase.h"
#include "topology/topology.h"

namespace s2s::probe {

/// Upper bound on a physically plausible RTT. Parsers and streaming
/// stores reject samples beyond it (a garbled digit can turn 42 ms into
/// 42e7 ms; accepting it would wreck every percentile downstream).
inline constexpr double kMaxPlausibleRttMs = 60'000.0;

/// Upper bound on a plausible record timestamp (~100 years of campaign
/// time). Together with the >= 0 floor this rejects corrupted epochs.
inline constexpr std::int64_t kMaxTimestampS = 100LL * 365 * 86400;

enum class TracerouteMethod : std::uint8_t {
  kClassic,  ///< per-probe flow ids; load-balancer artifacts possible
  kParis,    ///< fixed flow id; artifact-free paths
};

/// One traceroute hop. `addr` is empty for an unresponsive hop ("*").
struct Hop {
  std::optional<net::IPAddr> addr;
  double rtt_ms = 0.0;
};

struct TracerouteRecord {
  topology::ServerId src = topology::kInvalidId;
  topology::ServerId dst = topology::kInvalidId;
  net::Family family = net::Family::kIPv4;
  net::SimTime time;
  TracerouteMethod method = TracerouteMethod::kClassic;
  net::IPAddr src_addr;
  net::IPAddr dst_addr;
  std::vector<Hop> hops;
  /// True iff the last hop is the destination address.
  bool complete = false;

  /// End-to-end RTT (the last hop's RTT); only meaningful when complete.
  double end_to_end_rtt_ms() const {
    return hops.empty() ? 0.0 : hops.back().rtt_ms;
  }
};

struct PingRecord {
  topology::ServerId src = topology::kInvalidId;
  topology::ServerId dst = topology::kInvalidId;
  net::Family family = net::Family::kIPv4;
  net::SimTime time;
  double rtt_ms = 0.0;
  bool success = false;
};

}  // namespace s2s::probe
