// Measurement campaigns: the schedulers that generated the paper's data.
//
//   * Long-term traceroute campaign (Section 2.1): full mesh between
//     dual-stack servers, both directions, both protocols, every 3 hours
//     for 16 months. Classic traceroute throughout, except IPv4 switches
//     to Paris traceroute partway through (November 2014 = day ~304).
//   * Short-term ping campaign (Section 2.2): pairs pinged every 15
//     minutes for a week.
//   * Follow-up traceroute campaign (Section 5.2): 30-minute traceroutes
//     between diurnal-flagged pairs for ~3 weeks.
//
// Campaigns stream records to a sink; nothing is retained internally, so
// multi-hundred-million-probe runs stay within a fixed memory budget.
// Hardware/maintenance gaps are modeled by a per-server downtime schedule.
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "probe/ping.h"
#include "probe/traceroute.h"

namespace s2s::probe {

/// Maintenance and connectivity gaps at the measurement hosts; this is
/// what shrinks collected volume in long campaigns (paper Section 2.1).
struct DowntimeConfig {
  double monthly_window_prob = 0.30;  ///< chance of a window per month
  double window_days_min = 0.2;
  double window_days_max = 3.0;
};

class DowntimeSchedule {
 public:
  DowntimeSchedule(std::size_t servers, double campaign_days,
                   const DowntimeConfig& config, stats::Rng rng);

  bool down(topology::ServerId server, net::SimTime t) const;

 private:
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> windows_;
};

using TraceSink = std::function<void(const TracerouteRecord&)>;
using PingSink = std::function<void(const PingRecord&)>;
/// Called once per finished epoch with the completed fraction [0, 1].
using ProgressFn = std::function<void(double)>;

struct TracerouteCampaignConfig {
  double start_day = 0.0;
  double days = 485.0;
  std::int64_t interval_s = net::kThreeHours;
  /// Campaign day when IPv4 probing switches to Paris traceroute
  /// (negative = never, i.e. classic throughout).
  double paris_switch_day = 304.0;
  bool probe_ipv4 = true;
  bool probe_ipv6 = true;
  TracerouteConfig traceroute;
  DowntimeConfig downtime;
  std::uint64_t seed = 7;
};

class TracerouteCampaign {
 public:
  /// Prepares the network for `pairs` in both directions.
  TracerouteCampaign(simnet::Network& net,
                     const TracerouteCampaignConfig& config,
                     std::span<const std::pair<topology::ServerId,
                                               topology::ServerId>> pairs);

  /// Streams every traceroute of the campaign to `sink` in time order.
  void run(const TraceSink& sink, const ProgressFn& progress = {});

  std::size_t epochs() const;

 private:
  simnet::Network& net_;
  TracerouteCampaignConfig config_;
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs_;
  DowntimeSchedule downtime_;
  TracerouteEngine engine_;
};

struct PingCampaignConfig {
  double start_day = 417.0;  ///< paper: Feb 22, 2015 (day 417 of the study)
  double days = 7.0;
  std::int64_t interval_s = net::kFifteenMinutes;
  bool probe_ipv4 = true;
  bool probe_ipv6 = true;
  PingConfig ping;
  DowntimeConfig downtime;
  std::uint64_t seed = 11;
};

class PingCampaign {
 public:
  PingCampaign(simnet::Network& net, const PingCampaignConfig& config,
               std::span<const std::pair<topology::ServerId,
                                         topology::ServerId>> pairs);

  void run(const PingSink& sink, const ProgressFn& progress = {});

  std::size_t epochs() const;

 private:
  simnet::Network& net_;
  PingCampaignConfig config_;
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs_;
  DowntimeSchedule downtime_;
  PingEngine engine_;
};

}  // namespace s2s::probe
