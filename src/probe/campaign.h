// Measurement campaigns: the schedulers that generated the paper's data.
//
//   * Long-term traceroute campaign (Section 2.1): full mesh between
//     dual-stack servers, both directions, both protocols, every 3 hours
//     for 16 months. Classic traceroute throughout, except IPv4 switches
//     to Paris traceroute partway through (November 2014 = day ~304).
//   * Short-term ping campaign (Section 2.2): pairs pinged every 15
//     minutes for a week.
//   * Follow-up traceroute campaign (Section 5.2): 30-minute traceroutes
//     between diurnal-flagged pairs for ~3 weeks.
//
// Campaigns stream records to a sink; nothing is retained internally, so
// multi-hundred-million-probe runs stay within a fixed memory budget.
// Hardware/maintenance gaps are modeled by a per-server downtime schedule.
//
// Long runs are interruptible: run() returns a CampaignRunResult whose
// checkpoint (epoch index + engine RNG state) resumes the record stream
// at the exact point it stopped, and a throwing sink aborts the current
// epoch cleanly — the result reports how much was flushed and where to
// resume (the start of the aborted epoch, so delivery is at-least-once
// with epoch-boundary checkpoints).
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "probe/ping.h"
#include "probe/traceroute.h"

namespace s2s::probe {

/// Maintenance and connectivity gaps at the measurement hosts; this is
/// what shrinks collected volume in long campaigns (paper Section 2.1).
struct DowntimeConfig {
  double monthly_window_prob = 0.30;  ///< chance of a window per month
  double window_days_min = 0.2;
  double window_days_max = 3.0;
};

class DowntimeSchedule {
 public:
  using Windows =
      std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>>;

  DowntimeSchedule(std::size_t servers, double campaign_days,
                   const DowntimeConfig& config, stats::Rng rng);
  /// Explicit per-server [start_s, end_s) windows; they are normalized
  /// (sorted, overlaps merged, empty windows dropped) on construction.
  explicit DowntimeSchedule(Windows windows);

  /// True iff `server` is inside a maintenance window at t. Windows are
  /// half-open: down at the start instant, back up at the end instant.
  bool down(topology::ServerId server, net::SimTime t) const;

 private:
  Windows windows_;
};

using TraceSink = std::function<void(const TracerouteRecord&)>;
using PingSink = std::function<void(const PingRecord&)>;
/// Called once per finished epoch with the completed fraction [0, 1].
using ProgressFn = std::function<void(double)>;

/// Resume point for an interrupted campaign: the first epoch not yet
/// fully delivered plus the probe engine's RNG state at that epoch
/// boundary. Resuming replays nothing before and everything from
/// `next_epoch`, byte-identical to an uninterrupted run.
struct CampaignCheckpoint {
  std::size_t next_epoch = 0;
  std::array<std::uint64_t, 4> rng_state{};

  /// One-line text form ("S2SCKPT 1 <epoch> <s0> <s1> <s2> <s3>").
  std::string serialize() const;
  static std::optional<CampaignCheckpoint> parse(std::string_view line);
};

/// Outcome of a (possibly aborted) campaign run.
struct CampaignRunResult {
  std::size_t epochs_completed = 0;   ///< epochs fully delivered this run
  std::size_t records_delivered = 0;  ///< records the sink accepted
  bool aborted = false;               ///< the sink threw
  std::string error;                  ///< sink exception message
  /// Resume point: one past the last completed epoch (the aborted epoch
  /// itself when aborted, so its partial records are re-sent on resume).
  CampaignCheckpoint checkpoint;
};

struct TracerouteCampaignConfig {
  double start_day = 0.0;
  double days = 485.0;
  std::int64_t interval_s = net::kThreeHours;
  /// Campaign day when IPv4 probing switches to Paris traceroute
  /// (negative = never, i.e. classic throughout).
  double paris_switch_day = 304.0;
  bool probe_ipv4 = true;
  bool probe_ipv6 = true;
  TracerouteConfig traceroute;
  DowntimeConfig downtime;
  std::uint64_t seed = 7;
  /// Optional event-driven congestion overlay (simnet/events.h), installed
  /// on the network for the duration of run(). Not owned; must outlive it.
  const simnet::EventSchedule* events = nullptr;
  /// Called after each epoch's records have all reached the sink, with
  /// the epoch index just completed. Live ingest seals an open-shard
  /// block here — the epoch boundary is the durability unit.
  std::function<void(std::size_t)> on_epoch;
};

class TracerouteCampaign {
 public:
  /// Prepares the network for `pairs` in both directions.
  TracerouteCampaign(simnet::Network& net,
                     const TracerouteCampaignConfig& config,
                     std::span<const std::pair<topology::ServerId,
                                               topology::ServerId>> pairs);

  /// Streams every traceroute of the campaign to `sink` in time order.
  /// Pass `resume` to continue an interrupted run from its checkpoint.
  /// A sink that throws std::exception aborts the current epoch: the
  /// result reports how much was flushed and carries the resume point.
  CampaignRunResult run(const TraceSink& sink, const ProgressFn& progress = {},
                        const CampaignCheckpoint* resume = nullptr);

  std::size_t epochs() const;

 private:
  simnet::Network& net_;
  TracerouteCampaignConfig config_;
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs_;
  DowntimeSchedule downtime_;
  TracerouteEngine engine_;
};

struct PingCampaignConfig {
  double start_day = 417.0;  ///< paper: Feb 22, 2015 (day 417 of the study)
  double days = 7.0;
  std::int64_t interval_s = net::kFifteenMinutes;
  bool probe_ipv4 = true;
  bool probe_ipv6 = true;
  PingConfig ping;
  DowntimeConfig downtime;
  std::uint64_t seed = 11;
  /// Optional event-driven congestion overlay (simnet/events.h), installed
  /// on the network for the duration of run(). Not owned; must outlive it.
  const simnet::EventSchedule* events = nullptr;
  /// Called after each epoch's records have all reached the sink, with
  /// the epoch index just completed. Live ingest seals an open-shard
  /// block here — the epoch boundary is the durability unit.
  std::function<void(std::size_t)> on_epoch;
};

class PingCampaign {
 public:
  PingCampaign(simnet::Network& net, const PingCampaignConfig& config,
               std::span<const std::pair<topology::ServerId,
                                         topology::ServerId>> pairs);

  /// Same contract as TracerouteCampaign::run.
  CampaignRunResult run(const PingSink& sink, const ProgressFn& progress = {},
                        const CampaignCheckpoint* resume = nullptr);

  std::size_t epochs() const;

 private:
  simnet::Network& net_;
  PingCampaignConfig config_;
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs_;
  DowntimeSchedule downtime_;
  PingEngine engine_;
};

}  // namespace s2s::probe
