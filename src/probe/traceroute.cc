#include "probe/traceroute.h"

#include <algorithm>

namespace s2s::probe {

using simnet::RouterPath;
using topology::LinkId;
using topology::RouterId;
using topology::ServerId;

namespace {

net::IPAddr pick_addr(const topology::LinkEnd& end, net::Family family) {
  if (family == net::Family::kIPv4) return end.addr4;
  return *end.addr6;  // caller guarantees the link carries IPv6
}

}  // namespace

TracerouteEngine::TracerouteEngine(simnet::Network& net,
                                   const TracerouteConfig& config,
                                   stats::Rng rng)
    : net_(net), config_(config), rng_(rng) {
  const auto& topo = net_.topo();
  internal_by_router_.resize(topo.routers.size());
  for (LinkId id = 0; id < topo.links.size(); ++id) {
    const auto& link = topo.links[id];
    if (link.scope != topology::LinkScope::kInternal) continue;
    internal_by_router_[link.end_a.router].push_back(id);
    internal_by_router_[link.end_b.router].push_back(id);
  }
}

std::optional<TracerouteRecord> TracerouteEngine::run(ServerId src,
                                                      ServerId dst,
                                                      net::Family family,
                                                      net::SimTime t,
                                                      TracerouteMethod method) {
  const auto& topo = net_.topo();
  const auto& source = topo.servers.at(src);
  const auto& target = topo.servers.at(dst);
  const bool v6 = family == net::Family::kIPv6;
  if (v6 && (!source.dual_stack() || !target.dual_stack())) {
    return std::nullopt;  // no probe can be sent on this plane
  }

  TracerouteRecord record;
  record.src = src;
  record.dst = dst;
  record.family = family;
  record.time = t;
  record.method = method;
  record.src_addr = v6 ? net::IPAddr(*source.addr6) : net::IPAddr(source.addr4);
  record.dst_addr = v6 ? net::IPAddr(*target.addr6) : net::IPAddr(target.addr4);

  auto fwd = net_.resolve(src, dst, family, t);
  if (!fwd) {
    // No forward route: the gateway answers, then the probes die.
    record.hops.push_back(
        {v6 ? net::IPAddr(*source.gateway_addr6)
            : net::IPAddr(source.gateway_addr4),
         2.0 * simnet::RouterPathExpander::kAccessDelayMs +
             hop_noise_ms(config_.noise, rng_)});
    const int stars = 3 + static_cast<int>(rng_.below(5));
    for (int i = 0; i < stars; ++i) record.hops.push_back({std::nullopt, 0.0});
    return record;
  }
  // The fallback expansion lives in scratch storage invalidated by the
  // next resolve(); copy it before resolving the reverse direction.
  RouterPath fallback_copy;
  const RouterPath* fpath = fwd->path;
  if (fwd->from_fallback) {
    fallback_copy = *fwd->path;
    fpath = &fallback_copy;
  }
  const double fwd_one_way = net_.one_way_ms(*fpath, family, t);
  // Event overlay: a hop whose link an active event blocks (maintenance
  // window, failed link of a cascade) kills forward probes there — hops
  // before it answer, the run truncates at the gap limit below.
  const auto blocked_hop = net_.first_event_blocked_hop(*fpath, family, t);

  auto rev = net_.resolve(dst, src, family, t);
  if (!rev || net_.path_event_blocked(*rev->path, family, t)) {
    // Replies cannot return: the whole run reads as unresponsive.
    const int stars = 4 + static_cast<int>(rng_.below(6));
    for (int i = 0; i < stars; ++i) record.hops.push_back({std::nullopt, 0.0});
    return record;
  }
  const double rev_one_way = net_.one_way_ms(*rev->path, family, t);

  // Intermediate hops: the routers of the forward expansion.
  const std::size_t hop_limit =
      blocked_hop ? *blocked_hop : fpath->hops.size();
  for (std::size_t i = 0; i < hop_limit; ++i) {
    const auto& hop = fpath->hops[i];
    Hop out;
    const auto& router = topo.routers[hop.router];
    const bool responsive = rng_.uniform() < router.icmp_response_rate &&
                            !rng_.chance(config_.noise.probe_loss_prob);
    if (responsive) {
      if (i == 0) {
        out.addr = v6 ? net::IPAddr(*source.gateway_addr6)
                      : net::IPAddr(source.gateway_addr4);
      } else {
        const auto& link = topo.links[hop.link];
        out.addr = pick_addr(topo.near_end(link, hop.router), family);
      }
      out.rtt_ms = 2.0 * net_.partial_one_way_ms(*fpath, i, family, t) +
                   hop_noise_ms(config_.noise, rng_);
    }
    record.hops.push_back(std::move(out));
  }

  if (blocked_hop) {
    const int stars = 5;  // gap limit before the prober gives up
    for (int i = 0; i < stars; ++i) record.hops.push_back({std::nullopt, 0.0});
    return record;
  }

  if (method == TracerouteMethod::kClassic) {
    apply_classic_artifacts(record, *fpath);
  }

  // Filtering / rate limiting / transient loss kills some runs mid-path.
  if (rng_.chance(config_.stop_early_prob)) {
    const std::size_t keep = 1 + rng_.below(record.hops.size());
    record.hops.resize(keep);
    const int stars = 5;  // gap limit before the prober gives up
    for (int i = 0; i < stars; ++i) record.hops.push_back({std::nullopt, 0.0});
    return record;
  }

  // Destination hop: true forward + reverse one-way delays.
  Hop last;
  last.addr = record.dst_addr;
  last.rtt_ms =
      fwd_one_way + rev_one_way + end_to_end_noise_ms(config_.noise, rng_);
  record.hops.push_back(std::move(last));
  record.complete = true;
  return record;
}

void TracerouteEngine::apply_classic_artifacts(TracerouteRecord& record,
                                               const RouterPath& fpath) {
  const auto& topo = net_.topo();
  const double loop_prob = record.family == net::Family::kIPv4
                               ? config_.classic_loop_prob_v4
                               : config_.classic_loop_prob_v6;

  // IP-level churn first (it does not change hop alignment): one internal
  // hop answers from a sibling interface of the same router.
  if (rng_.chance(config_.classic_false_hop_prob)) {
    for (std::size_t i = 2; i < record.hops.size() &&
                            i < fpath.hops.size();
         ++i) {
      auto& hop = record.hops[i];
      if (!hop.addr) continue;
      const auto& step = fpath.hops[i];
      if (step.link == topology::kInvalidId ||
          topo.links[step.link].scope != topology::LinkScope::kInternal) {
        continue;
      }
      for (LinkId sibling : internal_by_router_[step.router]) {
        if (sibling == step.link) continue;
        const auto& other = topo.links[sibling];
        if (record.family == net::Family::kIPv6 && !other.ipv6) continue;
        hop.addr = pick_addr(topo.near_end(other, step.router), record.family);
        i = record.hops.size();  // done
        break;
      }
    }
  }

  // Apparent AS loop: a per-flow load balancer interleaves two parallel
  // paths, so an address from the previous AS shows up again after the AS
  // boundary (A B A ...).
  if (rng_.chance(loop_prob)) {
    for (std::size_t i = 2; i < record.hops.size() && i < fpath.hops.size();
         ++i) {
      if (!record.hops[i].addr || !record.hops[i - 1].addr) continue;
      const auto owner_prev = topo.routers[fpath.hops[i - 1].router].owner;
      const auto owner_cur = topo.routers[fpath.hops[i].router].owner;
      if (owner_prev == owner_cur) continue;
      Hop ghost;
      ghost.addr = *record.hops[i - 1].addr;
      ghost.rtt_ms = record.hops[i].rtt_ms + rng_.uniform(0.1, 2.0);
      record.hops.insert(
          record.hops.begin() + static_cast<std::ptrdiff_t>(i + 1),
          std::move(ghost));
      break;
    }
  }
}

}  // namespace s2s::probe
