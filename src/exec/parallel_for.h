// Sharded map-reduce on top of exec::ThreadPool.
//
// The analysis passes parallelize by sharding a store's key space with a
// FIXED shard count, computing an independent partial aggregate per
// shard, and merging the partials in ascending shard order once every
// shard finished. Because the shard count and the key->shard assignment
// never depend on the thread count, and each store visits a shard's keys
// in ascending key order (see for_each_shard on the stores), the merged
// result is byte-identical whether the shards ran on 1, 2, or 64
// threads. See DESIGN.md section 9 for the full contract.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace s2s::exec {

/// Shard count used by the converted analysis passes. Deliberately fixed
/// (not derived from the thread count): the partition of the key space —
/// and therefore the order of every merged list — must not change when
/// the thread count does. 64 shards keep 8-16 workers load-balanced via
/// dynamic claiming while staying cheap for the serial path.
inline constexpr std::size_t kAnalysisShards = 64;

/// Runs body(shard) for shard in [0, n_shards), on `pool` when given, or
/// inline in shard order when `pool` is null (the library default: every
/// existing caller that never asks for parallelism keeps the serial
/// path). Each shard executes under a TraceSpan named `span_name`, so
/// per-shard timing shows up in traces and run reports.
inline void parallel_for(ThreadPool* pool, std::size_t n_shards,
                         std::string_view span_name,
                         const std::function<void(std::size_t)>& body) {
  auto task = [&](std::size_t shard) {
    const obs::TraceSpan span(span_name);
    body(shard);
  };
  if (pool == nullptr) {
    // Inline serial path still ticks s2s.exec.tasks: the counter means
    // "shards executed", independent of how they were scheduled, so
    // metric snapshots compare equal across thread counts.
    const obs::Counter tasks =
        obs::MetricsRegistry::global().counter("s2s.exec.tasks");
    for (std::size_t shard = 0; shard < n_shards; ++shard) {
      task(shard);
      tasks.inc();
    }
    return;
  }
  pool->run(n_shards, task);
}

/// Sharded map-reduce: `body(shard, partial)` fills partials[shard] (in
/// parallel, disjoint slots), then `merge(partial)` folds them serially
/// in ascending shard order — the deterministic-merge half of the
/// byte-identical-output contract.
template <typename Partial, typename Body, typename Merge>
void sharded_reduce(ThreadPool* pool, std::size_t n_shards,
                    std::string_view span_name, Body&& body, Merge&& merge) {
  std::vector<Partial> partials(n_shards);
  parallel_for(pool, n_shards, span_name,
               [&](std::size_t shard) { body(shard, partials[shard]); });
  for (std::size_t shard = 0; shard < n_shards; ++shard) {
    merge(partials[shard]);
  }
}

}  // namespace s2s::exec
