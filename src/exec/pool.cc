#include "exec/pool.h"

#include <cerrno>
#include <cstdlib>
#include <set>
#include <string>

#include "obs/log.h"

namespace s2s::exec {

unsigned hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

namespace {

/// Sanity ceiling for S2S_THREADS: large values are typos or overflow,
/// not a real machine, and each worker pins a stack.
constexpr long kMaxEnvThreads = 4096;

/// Warns once per distinct bad value, and stops entirely after a few so
/// a hot loop resolving pools cannot flood the log.
void warn_bad_threads_env(const char* value) {
  static std::mutex mutex;
  static std::set<std::string> seen;
  const std::lock_guard<std::mutex> lock(mutex);
  if (seen.size() >= 8 || !seen.insert(value).second) return;
  obs::logf(obs::LogLevel::kWarn,
            "S2S_THREADS=\"%s\" is not a positive integer <= %ld; "
            "falling back to hardware concurrency (%u)",
            value, kMaxEnvThreads, hardware_threads());
}

}  // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("S2S_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && parsed > 0 &&
        parsed <= kMaxEnvThreads) {
      return static_cast<unsigned>(parsed);
    }
    warn_bad_threads_env(env);
  }
  return hardware_threads();
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(resolve_thread_count(threads)) {
  auto& reg = obs::MetricsRegistry::global();
  tasks_ = reg.counter("s2s.exec.tasks");
  queue_depth_ = reg.gauge("s2s.exec.queue_depth");
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain(const std::function<void(std::size_t)>& fn,
                       std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    queue_depth_.set(static_cast<double>(n - std::min(n, i + 1)));
    try {
      fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    tasks_.inc();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_serial = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (fn_ != nullptr && batch_serial_ != seen_serial);
      });
      if (shutdown_) return;
      seen_serial = batch_serial_;
      fn = fn_;
      n = n_;
    }
    drain(*fn, n);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    // Exact serial path: index order, no synchronization.
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
      tasks_.inc();
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    first_error_ = nullptr;
    ++batch_serial_;
    queue_depth_.set(static_cast<double>(n));
  }
  work_cv_.notify_all();
  drain(fn, n);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return completed_ == workers_.size(); });
    fn_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  queue_depth_.set(0.0);
  if (error) std::rethrow_exception(error);
}

}  // namespace s2s::exec
