// Chunked thread pool for the pair-level analysis passes.
//
// The paper's analyses (Sections 4-6) are embarrassingly parallel over
// server pairs: per-pair FFT congestion detection, per-pair segment
// correlation, per-pair dual-stack RTT deltas. The pool runs an index
// space [0, n) across persistent worker threads; indices are claimed
// dynamically through an atomic cursor, so an expensive shard (one pair
// with a long series) never stalls the cheap ones behind a static
// partition.
//
// Thread-count policy ("ThreadCount"): an explicit request wins; 0 means
// auto — the S2S_THREADS environment variable if set to a positive
// integer, otherwise std::thread::hardware_concurrency(). A pool of 1 is
// the exact serial path: run() executes inline on the caller in index
// order with no workers, no handoff, and no synchronization, so the
// single-threaded configuration is byte-for-byte the code the tests
// golden-compare against.
//
// Determinism contract: the pool guarantees only that every index runs
// exactly once and run() returns after all of them finished. Callers that
// need thread-count-independent output shard their key space with a FIXED
// shard count, compute per-shard partial aggregates, and merge them in
// shard order after run() returns — see exec/parallel_for.h and
// DESIGN.md section 9.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace s2s::exec {

/// std::thread::hardware_concurrency(), never 0.
unsigned hardware_threads();

/// Resolves the effective worker count: `requested` if positive, else the
/// S2S_THREADS environment variable, else hardware_threads(). Always >= 1.
/// S2S_THREADS must be a positive integer no larger than 4096; anything
/// else (non-numeric, zero, negative, overflow) is rejected with a
/// bounded log warning and falls back to hardware_threads().
unsigned resolve_thread_count(unsigned requested = 0);

class ThreadPool {
 public:
  /// `threads` is passed through resolve_thread_count(); the pool spawns
  /// threads-1 persistent workers (the caller of run() is the last lane).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept { return threads_; }

  /// Runs fn(i) for every i in [0, n) and blocks until all completed.
  /// With thread_count() == 1 (or n <= 1) this is an inline loop on the
  /// calling thread. A task that throws poisons the batch: remaining
  /// indices still run (workers cannot abandon claimed work safely), and
  /// the first exception is rethrown to the run() caller. Not reentrant:
  /// run() must not be called from inside a task of the same pool.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and executes indices of the current batch until exhausted.
  void drain(const std::function<void(std::size_t)>& fn, std::size_t n);

  const unsigned threads_;
  obs::Counter tasks_;       ///< s2s.exec.tasks, one per executed index
  obs::Gauge queue_depth_;   ///< s2s.exec.queue_depth, unclaimed indices

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait for a new batch
  std::condition_variable done_cv_;  ///< run() waits for batch completion
  std::uint64_t batch_serial_ = 0;   ///< bumps once per run() call
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};   ///< claim cursor for the batch
  std::size_t completed_ = 0;          ///< guarded by mutex_
  std::exception_ptr first_error_;     ///< guarded by mutex_
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace s2s::exec
