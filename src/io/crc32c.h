// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum every `.s2sb` block carries (DESIGN.md section 10). CRC32C
// rather than CRC32/Adler because its error-detection properties are the
// reason the format can promise "skips exactly the damaged blocks": every
// single-bit flip and every burst up to 32 bits in a block is guaranteed
// detected, so the corruption-matrix tests can assert *exact* equality
// between injected and detected faults. Software slicing-by-8
// implementation — no SSE4.2 dependency, identical output on every
// platform the campaign archives move between.
#pragma once

#include <cstddef>
#include <cstdint>

namespace s2s::io {

/// Continues a CRC32C over `size` bytes at `data`; pass the previous
/// return value as `crc` to checksum discontiguous regions (the block
/// header fields + payload share one CRC). Initial call: crc = 0.
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size);

/// One-shot convenience.
inline std::uint32_t crc32c(const void* data, std::size_t size) {
  return crc32c(0, data, size);
}

}  // namespace s2s::io
