// `.s2sb` — versioned little-endian binary columnar record format.
//
// The text format in records_io re-parses every epoch with strtod and IP
// string parsing on the ingest hot path; at paper scale (16-month
// full-mesh campaigns, short-term campaigns over millions of pairs) that
// parse is the bottleneck before the analysis stores ever see a sample.
// `.s2sb` stores the same records as per-block column segments:
//
//   File   := FileHeader Block* Footer?
//   FileHeader (16 B): magic "S2SB", u16 version=1, u16 flags=0, u64 rsvd
//   Block  := BlockHeader payload
//   BlockHeader (16 B): magic "S2BK", u8 kind (0=ping 1=trace), u8 rsvd,
//                       u16 record_count, u32 payload_bytes, u32 crc32c
//   Footer := magic "S2SF", entry[n] (32 B each: u64 offset,
//             i64 first_time_s, i64 last_time_s, u32 record_count,
//             u8 kind, u8[3] rsvd), tail (16 B: u32 entry_count,
//             u32 entries_crc32c, 8 B magic "S2SB_EOF")
//
// Block payloads are columnar: (src, dst, family) tuples are
// dictionary-coded per block, timestamps are zigzag-varint deltas, RTTs
// are fixed-point u32 columns in microsecond-granularity "thousandths of
// a millisecond" — exactly the %.3f precision of the text format, so a
// record decoded from either format quantizes identically in every store
// (an f32 column was rejected: its rounding differs from the text parse
// near .05 ms tenths boundaries and would break the cross-format
// byte-identical-analysis contract; see DESIGN.md section 10).
//
// The per-block CRC32C covers the header fields after the magic plus the
// payload, so every damaged block is detected and skipped exactly; the
// footer index gives O(1) seek to the block covering any epoch. Two
// reader arms — buffered std::istream and mmap zero-copy — funnel into
// the same Record callbacks as the text RecordReader, so text and binary
// archives are drop-in interchangeable at every call site.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "io/mmap_file.h"
#include "obs/metrics.h"
#include "probe/records.h"

namespace s2s::io {

// ---------------------------------------------------------------------------
// Format constants (DESIGN.md section 10 is the normative table).
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kBinFileMagic = 0x42533253u;   // "S2SB"
inline constexpr std::uint32_t kBinBlockMagic = 0x4B423253u;  // "S2BK"
inline constexpr std::uint32_t kBinFooterMagic = 0x46533253u; // "S2SF"
inline constexpr std::uint64_t kBinEofMagic =
    0x464F455F42533253ull;                                    // "S2SB_EOF"
inline constexpr std::uint16_t kBinVersion = 1;
inline constexpr std::size_t kBinFileHeaderBytes = 16;
inline constexpr std::size_t kBinBlockHeaderBytes = 16;
inline constexpr std::size_t kBinFooterEntryBytes = 32;
inline constexpr std::size_t kBinFooterTailBytes = 16;
/// Hard caps a reader enforces before trusting a block header.
inline constexpr std::size_t kMaxBlockRecords = 4096;
inline constexpr std::size_t kMaxBlockPayloadBytes = 1u << 26;
/// RTT column sentinel for a non-encodable (non-finite/out-of-range) RTT;
/// decoders reject the record, mirroring the text parser's strictness.
inline constexpr std::uint32_t kInvalidRttThousandths = 0xFFFFFFFFu;

enum class BlockKind : std::uint8_t { kPing = 0, kTraceroute = 1 };

/// Fixed-point RTT encoding shared by writer and decoder: thousandths of
/// a millisecond, round-half-away — the exact grid "%.3f" text uses.
inline std::uint32_t encode_rtt_thousandths(double ms);
/// Inverse; kInvalidRttThousandths and out-of-range values -> nullopt.
std::optional<double> decode_rtt_thousandths(std::uint32_t v);

/// Structural description of one block, from a forward scan of the image
/// (used by the corruption injector and the footer builder; offsets are
/// from the start of the file).
struct BlockRef {
  std::size_t header_offset = 0;
  std::size_t payload_offset = 0;
  std::size_t payload_bytes = 0;
  std::uint16_t record_count = 0;
  BlockKind kind = BlockKind::kPing;
};

/// Walks the blocks of an `.s2sb` image by header chaining (no CRC
/// checks; stops at the footer, EOF, or the first structurally
/// implausible header). Returns nullopt when the file header itself is
/// missing or unsupported.
std::optional<std::vector<BlockRef>> scan_blocks(const void* data,
                                                 std::size_t size);

/// One footer index entry (O(1) seek support: entries are fixed-width
/// and carry the block's time span).
struct BlockIndexEntry {
  std::uint64_t offset = 0;  ///< of the block header
  std::int64_t first_time_s = 0;
  std::int64_t last_time_s = 0;
  std::uint32_t record_count = 0;
  BlockKind kind = BlockKind::kPing;
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct BinWriterConfig {
  /// Records per block before an automatic flush (per kind; <= 4096).
  std::size_t block_records = 1024;
  /// Emit the 16-byte file header (off when appending blocks to an
  /// existing archive, e.g. on campaign checkpoint resume).
  bool write_header = true;
  /// Emit the footer index in finish(). Footerless archives stay fully
  /// readable (readers fall back to a sequential block walk); resumed
  /// campaign archives use this so an appended file is byte-identical to
  /// an uninterrupted run's block stream.
  bool write_footer = true;
  /// Open-shard resume (DESIGN.md section 16): seed the writer with the
  /// index of blocks already on disk, so a writer re-opened on a sealed
  /// prefix continues the block stream and its eventual footer covers
  /// the whole file. `resume_offset` is the byte size of that prefix
  /// (the position the stream is about to append at); bytes_written()
  /// continues from it. Used with `write_header = false`.
  std::vector<BlockIndexEntry> resume_index;
  std::size_t resume_offset = 0;
};

/// Streaming `.s2sb` writer with bounded memory: at most one open block
/// per record kind is buffered. Usable directly as a campaign sink;
/// call flush_block() at epoch/checkpoint boundaries so blocks align
/// with epochs (that is what makes the footer an epoch index and a
/// truncate-to-boundary resume byte-exact), then finish() once.
class BinRecordWriter {
 public:
  explicit BinRecordWriter(std::ostream& out, const BinWriterConfig& config = {});
  ~BinRecordWriter();

  BinRecordWriter(const BinRecordWriter&) = delete;
  BinRecordWriter& operator=(const BinRecordWriter&) = delete;

  void write(const probe::TracerouteRecord& record);
  void write(const probe::PingRecord& record);

  /// Closes the open block(s) — traceroute first, then ping, so the
  /// block order is a deterministic function of the record stream.
  void flush_block();

  /// flush_block() + footer; idempotent. The destructor calls it, but
  /// call it explicitly when the ostream can fail.
  void finish();

  std::size_t written() const noexcept { return written_; }
  std::size_t blocks_written() const noexcept { return index_.size(); }
  /// Bytes emitted so far (header + closed blocks [+ footer]); valid as
  /// a resume boundary right after a flush_block().
  std::size_t bytes_written() const noexcept { return bytes_written_; }

 private:
  void flush_kind(BlockKind kind);
  void emit_block(BlockKind kind, const std::string& payload,
                  std::size_t record_count, std::int64_t first_time,
                  std::int64_t last_time);

  std::ostream& out_;
  BinWriterConfig config_;
  std::vector<probe::TracerouteRecord> pending_traces_;
  std::vector<probe::PingRecord> pending_pings_;
  std::vector<BlockIndexEntry> index_;
  std::size_t written_ = 0;
  std::size_t bytes_written_ = 0;
  bool finished_ = false;
  obs::Counter obs_blocks_written_ =
      obs::MetricsRegistry::global().counter("s2s.io.binrec.blocks_written");
};

// ---------------------------------------------------------------------------
// Crash-consistent commit and torn-tail repair (DESIGN.md section 12)
// ---------------------------------------------------------------------------

/// Atomic file commit for archive writers: bytes stream to `path + ".tmp"`,
/// and commit() flushes, fsyncs the tmp file, renames it over `path`, and
/// fsyncs the containing directory. A crash at any point leaves either the
/// previous file or the new one under the final name — never a torn hybrid
/// (the tmp file a crash leaves behind is garbage-collected by the next
/// successful commit to the same path). The destructor aborts (unlinks the
/// tmp file) unless commit() succeeded.
class AtomicArchiveWriter {
 public:
  explicit AtomicArchiveWriter(const std::string& path);
  ~AtomicArchiveWriter();

  AtomicArchiveWriter(const AtomicArchiveWriter&) = delete;
  AtomicArchiveWriter& operator=(const AtomicArchiveWriter&) = delete;

  /// False when the tmp file could not be opened; error() says why.
  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }
  /// The stream a BinRecordWriter (or any writer) targets.
  std::ostream& stream() noexcept { return out_; }
  const std::string& tmp_path() const noexcept { return tmp_; }

  /// flush + fsync(tmp) + rename(tmp, path) + fsync(dir). Idempotent once
  /// successful; on failure the tmp file is removed and `error` explains.
  bool commit(std::string& error);
  /// Discards the tmp file; the target path is untouched.
  void abort() noexcept;

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  bool ok_ = false;
  bool committed_ = false;
  std::string error_;
};

/// Outcome of recover_archive().
struct RecoverResult {
  bool ok = false;        ///< the file now ingests clean
  bool repaired = false;  ///< ok and the file was rewritten (else untouched)
  std::size_t blocks_kept = 0;
  std::size_t records_kept = 0;
  std::size_t bytes_dropped = 0;  ///< damaged/stale tail bytes discarded
  std::string error;
};

/// Torn-tail repair: keeps the longest prefix of CRC-valid, decodable
/// blocks, drops everything after it (a half-written block from a crashed
/// writer, a mangled footer, trailing garbage), rebuilds the footer index
/// for the kept blocks, and commits the result atomically via
/// AtomicArchiveWriter. The block region of the repaired file is
/// byte-identical to a strict prefix of the intended archive, and the
/// rebuilt footer is byte-identical to what BinRecordWriter would have
/// emitted for those blocks. A file that is already sealed and intact is
/// left untouched (ok, not repaired); a clean footerless archive gains a
/// footer. Only the unrecoverable cases fail: unreadable file or
/// missing/unsupported file header.
RecoverResult recover_archive(const std::string& path);

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

using TraceRecordFn = std::function<void(const probe::TracerouteRecord&)>;
using PingRecordFn = std::function<void(const probe::PingRecord&)>;

/// Counters shared by both reader arms; the text RecordReader's
/// lines()/errors() analog at block granularity.
struct BinReadCounters {
  std::size_t blocks_read = 0;      ///< CRC-verified and decoded
  std::size_t corrupt_blocks = 0;   ///< skipped: bad CRC/header/structure
  std::size_t records_read = 0;     ///< delivered to a callback
  std::size_t records_rejected = 0; ///< per-record decode rejects (bad RTT)
  /// The walk hit EOF mid-header or mid-payload: the file is torn, not
  /// merely carrying damaged blocks. Tools that report archive health
  /// (s2s_recconv info) treat this as a hard failure.
  bool truncated = false;
};

/// CRC-verifying block indexer for a footerless image (an open shard's
/// sealed prefix): walks the blocks, checks every CRC, and returns the
/// exact index a footer would carry — the entries BinWriterConfig's
/// `resume_index` wants. nullopt when the file header is bad or any
/// block in the range fails its CRC / is torn (an open-shard resume must
/// not build on a damaged prefix; run recover_archive instead).
std::optional<std::vector<BlockIndexEntry>> index_blocks(const void* data,
                                                         std::size_t size);

/// Decodes only the blocks whose header starts in [begin_offset,
/// end_offset) — the delta-pickup arm: a live dataset that already
/// ingested the first W bytes re-decodes just the newly sealed tail.
/// Offsets must be block boundaries (begin_offset may be
/// kBinFileHeaderBytes for "from the first block"). Damaged blocks are
/// counted and skipped exactly like read_all.
void decode_block_range(const void* data, std::size_t size,
                        std::size_t begin_offset, std::size_t end_offset,
                        const TraceRecordFn& on_trace,
                        const PingRecordFn& on_ping,
                        BinReadCounters& counters);

/// Outcome of validating the optional footer index.
enum class FooterStatus : std::uint8_t {
  kAbsent = 0,   ///< no footer (footerless archive, or file torn before it)
  kValid = 1,    ///< entry CRC and offsets check out; index walk enabled
  kInvalid = 2,  ///< footer present but damaged (CRC/structure mismatch)
};

/// Buffered std::istream arm. Reads the file header eagerly (ok() /
/// error() report version problems before any block is touched), then
/// read_all() walks blocks with bounded memory: one payload buffer,
/// reused. Damaged blocks are counted and skipped — a corrupted
/// payload_bytes field triggers a byte-level resync scan to the next
/// block magic, so one injected fault is detected as exactly one
/// corrupt block.
class BinRecordReader {
 public:
  explicit BinRecordReader(std::istream& in);

  /// False when the stream is not an `.s2sb` file or the version is
  /// unsupported; read_all() then delivers nothing.
  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }
  std::uint16_t version() const noexcept { return version_; }

  template <typename TraceFn, typename PingFn>
  void read_all(TraceFn&& on_trace, PingFn&& on_ping) {
    read_all_impl(TraceRecordFn(std::forward<TraceFn>(on_trace)),
                  PingRecordFn(std::forward<PingFn>(on_ping)));
  }

  const BinReadCounters& counters() const noexcept { return counters_; }
  std::size_t blocks_read() const noexcept { return counters_.blocks_read; }
  std::size_t corrupt_blocks() const noexcept {
    return counters_.corrupt_blocks;
  }
  std::size_t records_read() const noexcept { return counters_.records_read; }

 private:
  void read_all_impl(const TraceRecordFn& on_trace,
                     const PingRecordFn& on_ping);

  std::istream& in_;
  bool ok_ = false;
  std::uint16_t version_ = 0;
  std::string error_;
  BinReadCounters counters_;
};

/// mmap zero-copy arm. Uses the footer index when it validates (exact
/// per-block offsets survive even header corruption); otherwise falls
/// back to the same sequential walk as the stream arm, over the mapped
/// bytes. Column segments are decoded in place — no line strings, no
/// payload copies.
class BinRecordMmapReader {
 public:
  explicit BinRecordMmapReader(const std::string& path);
  /// Borrow an already-mapped (or in-memory) image; `data` must outlive
  /// the reader. This is also the unit-test entry for in-memory images.
  BinRecordMmapReader(const void* data, std::size_t size);

  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }
  std::uint16_t version() const noexcept { return version_; }
  /// The raw mapped (or borrowed) image. Servers slice response payloads
  /// directly out of these bytes (svc::Dataset::archive_slice), so the
  /// pointers stay valid for the reader's lifetime.
  const unsigned char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  /// True when the footer index validated (read_all walks by index).
  bool has_index() const noexcept { return !index_.empty(); }
  const std::vector<BlockIndexEntry>& index() const noexcept {
    return index_;
  }
  /// Distinguishes a footerless archive (normal) from a damaged footer
  /// (the sequential-walk fallback still reads what it can, but the
  /// archive lost its integrity seal and O(1) seek).
  FooterStatus footer_status() const noexcept { return footer_status_; }

  template <typename TraceFn, typename PingFn>
  void read_all(TraceFn&& on_trace, PingFn&& on_ping) {
    read_all_impl(TraceRecordFn(std::forward<TraceFn>(on_trace)),
                  PingRecordFn(std::forward<PingFn>(on_ping)));
  }

  /// O(1)-seek arm: decodes only the blocks whose [first, last] time
  /// span intersects [t0_s, t1_s]. Requires the footer index (returns
  /// false without one — callers fall back to read_all + filtering).
  template <typename TraceFn, typename PingFn>
  bool read_time_range(std::int64_t t0_s, std::int64_t t1_s,
                       TraceFn&& on_trace, PingFn&& on_ping) {
    return read_range_impl(t0_s, t1_s,
                           TraceRecordFn(std::forward<TraceFn>(on_trace)),
                           PingRecordFn(std::forward<PingFn>(on_ping)));
  }

  const BinReadCounters& counters() const noexcept { return counters_; }
  std::size_t blocks_read() const noexcept { return counters_.blocks_read; }
  std::size_t corrupt_blocks() const noexcept {
    return counters_.corrupt_blocks;
  }
  std::size_t records_read() const noexcept { return counters_.records_read; }

 private:
  void init(const void* data, std::size_t size);
  void read_all_impl(const TraceRecordFn& on_trace,
                     const PingRecordFn& on_ping);
  bool read_range_impl(std::int64_t t0_s, std::int64_t t1_s,
                       const TraceRecordFn& on_trace,
                       const PingRecordFn& on_ping);
  void decode_at(std::size_t offset, const TraceRecordFn& on_trace,
                 const PingRecordFn& on_ping);

  MmapFile file_;  ///< owns the mapping for the path constructor
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool ok_ = false;
  std::uint16_t version_ = 0;
  std::string error_;
  std::vector<BlockIndexEntry> index_;
  FooterStatus footer_status_ = FooterStatus::kAbsent;
  BinReadCounters counters_;
};

// ---------------------------------------------------------------------------
// Format interchangeability helpers
// ---------------------------------------------------------------------------

/// True when the stream starts with the `.s2sb` magic followed by a
/// plausible version (1..255); the stream is rewound either way. This is
/// the sniff every ingest call site uses to accept text and binary
/// archives interchangeably — the version guard keeps text files that
/// merely begin with the magic bytes on the text arm.
bool is_binary_record_stream(std::istream& in);
bool is_binary_record_file(const std::string& path);

/// Result of a format-agnostic ingest pass (read_records_auto /
/// ingest_record_file): the union of the text reader's line counters and
/// the binary readers' block counters, whichever arm actually ran.
struct IngestResult {
  bool binary = false;       ///< which arm ran
  bool used_mmap = false;    ///< binary arm only
  bool ok = true;            ///< false: unreadable header/unsupported version
  std::string error;
  std::size_t records = 0;   ///< delivered to callbacks
  std::size_t malformed_lines = 0;   ///< text arm
  std::size_t blocks_read = 0;       ///< binary arm
  std::size_t corrupt_blocks = 0;    ///< binary arm
  std::size_t records_rejected = 0;  ///< binary arm
  bool truncated = false;            ///< binary arm: EOF hit mid-block
  /// Binary mmap arm only; the stream arm stops at the footer without
  /// validating it and leaves kAbsent.
  FooterStatus footer = FooterStatus::kAbsent;
};

/// Sniffs the format and streams every record to the callbacks: text
/// lines through io::RecordReader, binary blocks through
/// io::BinRecordReader. Campaigns, stores, benches and examples all
/// ingest through this seam, which is what makes the two formats
/// drop-in interchangeable.
IngestResult read_records_auto(std::istream& in, const TraceRecordFn& on_trace,
                               const PingRecordFn& on_ping);

/// File variant: binary files take the mmap zero-copy arm (set
/// `prefer_mmap = false` to force the buffered arm), text files stream.
IngestResult ingest_record_file(const std::string& path,
                                const TraceRecordFn& on_trace,
                                const PingRecordFn& on_ping,
                                bool prefer_mmap = true);

inline std::uint32_t encode_rtt_thousandths(double ms) {
  if (!(ms >= 0.0) || ms > probe::kMaxPlausibleRttMs) {
    return kInvalidRttThousandths;  // also catches NaN
  }
  return static_cast<std::uint32_t>(ms * 1000.0 + 0.5);
}

}  // namespace s2s::io
