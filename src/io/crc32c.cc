#include "io/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define S2S_CRC32C_HW 1
#endif

namespace s2s::io {

namespace {

#ifdef S2S_CRC32C_HW
/// SSE4.2's crc32 instruction implements exactly the Castagnoli
/// polynomial this format uses; ~an order of magnitude faster than the
/// table walk. Compiled with a target attribute (the build stays generic
/// x86-64) and selected at runtime behind a cpuid check.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::uint32_t crc, const unsigned char* p, std::size_t size) {
  std::uint64_t c = ~crc;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    size -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (size-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return ~c32;
}

bool crc32c_hw_available() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
#endif

/// Slicing-by-8 lookup tables, built once at first use. table[0] is the
/// classic byte-at-a-time table; table[k] advances a byte seen k positions
/// earlier, letting the hot loop fold 8 input bytes per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
#ifdef S2S_CRC32C_HW
  if (crc32c_hw_available()) return crc32c_hw(crc, p, size);
#endif
  const auto& t = tables().t;
  crc = ~crc;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    (static_cast<std::uint32_t>(p[1]) << 8) |
                                    (static_cast<std::uint32_t>(p[2]) << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace s2s::io
