// LEB128 varints and zigzag transforms for the `.s2sb` column encodings.
//
// Timestamps are stored as zigzag-varint deltas (a 3-hour campaign grid
// delta fits in 2 bytes instead of 8), dictionary indices and hop counts
// as plain varints. Decoding is bounds-checked against the payload span:
// a truncated or over-long varint is a structural decode failure, never a
// read past the block (the corruption tests run these paths under ASan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace s2s::io {

/// Appends `v` to `out` as an LEB128 varint (1-10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Maps signed to unsigned so small-magnitude deltas stay short.
inline constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_varint_signed(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Bounds-checked byte cursor over a block payload. Every get_* returns
/// false on exhaustion instead of reading past `end`; the caller treats
/// that as block corruption.
struct ByteCursor {
  const unsigned char* p = nullptr;
  const unsigned char* end = nullptr;

  ByteCursor(const void* data, std::size_t size)
      : p(static_cast<const unsigned char*>(data)), end(p + size) {}

  std::size_t remaining() const {
    return static_cast<std::size_t>(end - p);
  }

  bool get_varint(std::uint64_t& out) {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const unsigned char byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        out = v;
        return true;
      }
    }
    return false;  // over-long encoding (> 10 bytes)
  }

  bool get_varint_signed(std::int64_t& out) {
    std::uint64_t v = 0;
    if (!get_varint(v)) return false;
    out = unzigzag(v);
    return true;
  }

  bool get_bytes(void* out, std::size_t n) {
    if (remaining() < n) return false;
    __builtin_memcpy(out, p, n);
    p += n;
    return true;
  }

  bool get_u8(std::uint8_t& out) {
    if (p == end) return false;
    out = *p++;
    return true;
  }

  bool get_u32(std::uint32_t& out) {
    unsigned char b[4];
    if (!get_bytes(b, 4)) return false;
    out = static_cast<std::uint32_t>(b[0]) |
          (static_cast<std::uint32_t>(b[1]) << 8) |
          (static_cast<std::uint32_t>(b[2]) << 16) |
          (static_cast<std::uint32_t>(b[3]) << 24);
    return true;
  }
};

/// Little-endian fixed-width appends (the non-varint columns).
inline void put_u16le(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>(v >> 8));
}

inline void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline std::uint16_t get_u16le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t get_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace s2s::io
