// Text serialization for measurement records.
//
// Campaigns at paper scale are produced faster than they can be analyzed
// interactively; this module persists them as line-oriented TSV so that
// analyses can be re-run without re-simulating (and so real traceroute /
// ping data can be imported into the same pipeline).
//
// Formats (one record per line, '\t'-separated):
//   traceroute:  T <src> <dst> <family> <time_s> <method> <complete>
//                <src_addr> <dst_addr> <hop>[,<hop>...]
//     where <hop> is "addr:rtt_ms" or "*" for an unresponsive hop.
//   ping:        P <src> <dst> <family> <time_s> <success> <rtt_ms>
//
// Parsing is strict: a malformed line yields nullopt and the reader's
// error counter increments, but iteration continues (long campaign files
// survive a truncated tail). Strictness includes the numerics — NaN /
// infinite / negative / implausibly large RTTs and out-of-range
// timestamps are rejected rather than trusted to whatever the decimal
// parser produced, because a single flipped digit in a 10^8-line campaign
// file would otherwise wreck every percentile downstream. The reader
// additionally retains the first few malformed lines verbatim (with line
// numbers) so a corrupt campaign file is debuggable from its own report.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "probe/records.h"

namespace s2s::io {

std::string to_line(const probe::TracerouteRecord& record);
std::string to_line(const probe::PingRecord& record);

std::optional<probe::TracerouteRecord> parse_traceroute(std::string_view line);
std::optional<probe::PingRecord> parse_ping(std::string_view line);

/// Streaming writer usable as a campaign sink.
class RecordWriter {
 public:
  explicit RecordWriter(std::ostream& out) : out_(out) {}

  void write(const probe::TracerouteRecord& record);
  void write(const probe::PingRecord& record);
  std::size_t written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::size_t written_ = 0;
};

/// A malformed input line retained for diagnostics.
struct MalformedLine {
  std::size_t line_number = 0;  ///< 1-based position in the stream
  std::string text;             ///< truncated to kMaxSampleLength bytes
};

/// Streaming reader: dispatches each parsed record to the matching sink;
/// malformed lines are counted — and the first few retained verbatim —
/// but never fatal.
///
/// Retention is capped: only the first `max_samples` malformed lines are
/// kept (each truncated to kMaxSampleLength bytes) so a systematically
/// corrupt multi-gigabyte file cannot balloon memory; the full count is
/// always available via errors(). The same split is mirrored into the
/// global metrics registry as `s2s.io.malformed_retained` and
/// `s2s.io.malformed_dropped`, alongside `s2s.io.records_parsed`.
class RecordReader {
 public:
  /// Longest retained prefix of a malformed line.
  static constexpr std::size_t kMaxSampleLength = 160;

  /// Malformed-line accounting snapshot, for checkpoint/resume. A resumed
  /// reader must adopt the counts and the retained samples *together*:
  /// historically resume code copied `malformed()` into a fresh reader
  /// whose error counter restarted at zero, so `malformed_dropped()`
  /// (then computed as errors - retained) underflowed and the obs
  /// mirrors disagreed with the reader.
  struct State {
    std::size_t lines = 0;
    std::size_t errors = 0;
    std::size_t dropped = 0;  ///< malformed beyond the retention cap
    std::vector<MalformedLine> malformed;
  };

  explicit RecordReader(std::istream& in, std::size_t max_samples = 10)
      : in_(in), max_samples_(max_samples) {}

  template <typename TraceFn, typename PingFn>
  void read_all(TraceFn&& on_trace, PingFn&& on_ping) {
    std::string line;
    while (next_line(line)) {
      ++lines_;
      if (line.empty()) continue;
      if (line.front() == 'T') {
        if (auto rec = parse_traceroute(line)) {
          obs_parsed_.inc();
          on_trace(*rec);
        } else {
          note_malformed(line);
        }
      } else if (line.front() == 'P') {
        if (auto rec = parse_ping(line)) {
          obs_parsed_.inc();
          on_ping(*rec);
        } else {
          note_malformed(line);
        }
      } else {
        note_malformed(line);
      }
    }
  }

  /// Total lines consumed (including empty and malformed ones).
  std::size_t lines() const noexcept { return lines_; }
  std::size_t errors() const noexcept { return errors_; }
  /// The first `max_samples` malformed lines, for error reports.
  const std::vector<MalformedLine>& malformed() const noexcept {
    return malformed_;
  }
  /// Malformed lines kept as samples vs. counted-only past the cap.
  /// Tracked explicitly (not derived as errors - retained) so the split
  /// stays exact even when counts and samples were adopted separately.
  std::size_t malformed_retained() const noexcept { return malformed_.size(); }
  std::size_t malformed_dropped() const noexcept { return dropped_; }

  /// Snapshot of the malformed-line accounting, for a checkpoint.
  State state() const {
    return {lines_, errors_, dropped_, malformed_};
  }

  /// Adopts a checkpoint snapshot into this (typically fresh) reader,
  /// keeping counter and samples consistent by construction: the error
  /// count is re-derived as retained + dropped, so no combination of
  /// inputs can make malformed_dropped() disagree with the samples.
  /// With `replay_metrics` the obs mirrors are re-ticked for the adopted
  /// events — use it on cross-process resume, where the global metrics
  /// registry restarted with the process; leave it off for a same-process
  /// re-read, where those events were already counted once.
  void resume_from(State state, bool replay_metrics = false) {
    malformed_ = std::move(state.malformed);
    if (malformed_.size() > max_samples_) malformed_.resize(max_samples_);
    dropped_ = state.dropped;
    if (state.errors > malformed_.size() + dropped_) {
      // A snapshot from the pre-State era (errors tallied separately):
      // attribute the excess to the dropped side of the split.
      dropped_ = state.errors - malformed_.size();
    }
    errors_ = malformed_.size() + dropped_;
    lines_ = state.lines;
    if (replay_metrics) {
      obs_retained_.inc(malformed_.size());
      obs_dropped_.inc(dropped_);
    }
  }

 private:
  bool next_line(std::string& line);
  void note_malformed(const std::string& line);

  std::istream& in_;
  std::size_t max_samples_;
  std::size_t lines_ = 0;
  std::size_t errors_ = 0;
  std::size_t dropped_ = 0;
  std::vector<MalformedLine> malformed_;
  obs::Counter obs_parsed_ =
      obs::MetricsRegistry::global().counter("s2s.io.records_parsed");
  obs::Counter obs_retained_ =
      obs::MetricsRegistry::global().counter("s2s.io.malformed_retained");
  obs::Counter obs_dropped_ =
      obs::MetricsRegistry::global().counter("s2s.io.malformed_dropped");
};

}  // namespace s2s::io
