// Text serialization for measurement records.
//
// Campaigns at paper scale are produced faster than they can be analyzed
// interactively; this module persists them as line-oriented TSV so that
// analyses can be re-run without re-simulating (and so real traceroute /
// ping data can be imported into the same pipeline).
//
// Formats (one record per line, '\t'-separated):
//   traceroute:  T <src> <dst> <family> <time_s> <method> <complete>
//                <src_addr> <dst_addr> <hop>[,<hop>...]
//     where <hop> is "addr:rtt_ms" or "*" for an unresponsive hop.
//   ping:        P <src> <dst> <family> <time_s> <success> <rtt_ms>
//
// Parsing is strict: a malformed line yields nullopt and the reader's
// error counter increments, but iteration continues (long campaign files
// survive a truncated tail).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "probe/records.h"

namespace s2s::io {

std::string to_line(const probe::TracerouteRecord& record);
std::string to_line(const probe::PingRecord& record);

std::optional<probe::TracerouteRecord> parse_traceroute(std::string_view line);
std::optional<probe::PingRecord> parse_ping(std::string_view line);

/// Streaming writer usable as a campaign sink.
class RecordWriter {
 public:
  explicit RecordWriter(std::ostream& out) : out_(out) {}

  void write(const probe::TracerouteRecord& record);
  void write(const probe::PingRecord& record);
  std::size_t written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::size_t written_ = 0;
};

/// Streaming reader: dispatches each parsed record to the matching sink;
/// malformed lines are counted, not fatal.
class RecordReader {
 public:
  explicit RecordReader(std::istream& in) : in_(in) {}

  template <typename TraceFn, typename PingFn>
  void read_all(TraceFn&& on_trace, PingFn&& on_ping) {
    std::string line;
    while (next_line(line)) {
      if (line.empty()) continue;
      if (line.front() == 'T') {
        if (auto rec = parse_traceroute(line)) {
          on_trace(*rec);
        } else {
          ++errors_;
        }
      } else if (line.front() == 'P') {
        if (auto rec = parse_ping(line)) {
          on_ping(*rec);
        } else {
          ++errors_;
        }
      } else {
        ++errors_;
      }
    }
  }

  std::size_t errors() const noexcept { return errors_; }

 private:
  bool next_line(std::string& line);

  std::istream& in_;
  std::size_t errors_ = 0;
};

}  // namespace s2s::io
