// Read-only memory-mapped file, the zero-copy arm of BinRecordReader.
//
// On POSIX this is open + fstat + mmap(PROT_READ, MAP_PRIVATE); the block
// decoder then iterates column segments in place without materializing
// strings or copying payloads. On platforms without mmap the class
// degrades to reading the file into a heap buffer — same interface, same
// results, just not zero-copy — so nothing above this layer needs a
// platform gate.
#pragma once

#include <cstddef>
#include <string>

namespace s2s::io {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { close(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps `path` read-only. Returns false (and sets error()) on failure;
  /// an empty file maps successfully with size() == 0.
  bool open(const std::string& path);
  void close();

  bool is_open() const noexcept { return opened_; }
  const unsigned char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  /// True when the bytes are an actual mmap (false: heap fallback).
  bool mapped() const noexcept { return mapped_; }
  const std::string& error() const noexcept { return error_; }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  bool opened_ = false;
  std::string error_;
  std::string fallback_;  ///< owns the bytes when mmap is unavailable
};

}  // namespace s2s::io
