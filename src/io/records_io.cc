#include "io/records_io.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <vector>

#include "obs/log.h"

namespace s2s::io {

namespace {

const char* family_token(net::Family f) {
  return f == net::Family::kIPv4 ? "4" : "6";
}

std::optional<net::Family> parse_family(std::string_view token) {
  if (token == "4") return net::Family::kIPv4;
  if (token == "6") return net::Family::kIPv6;
  return std::nullopt;
}

/// Splits `line` on tabs into `out`; returns false if empty.
std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const auto next = line.find(sep, pos);
    if (next == std::string_view::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
  return fields;
}

template <typename T>
std::optional<T> parse_number(std::string_view token) {
  T value{};
  const auto* begin = token.data();
  const auto* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// RTT fields must be finite, non-negative and physically plausible;
/// from_chars happily accepts "nan", "inf" and "-3.0".
std::optional<double> parse_rtt_ms(std::string_view token) {
  const auto value = parse_number<double>(token);
  if (!value || !std::isfinite(*value) || *value < 0.0 ||
      *value > probe::kMaxPlausibleRttMs) {
    return std::nullopt;
  }
  return value;
}

/// Timestamps must sit inside the representable campaign range.
std::optional<std::int64_t> parse_time_s(std::string_view token) {
  const auto value = parse_number<std::int64_t>(token);
  if (!value || *value < 0 || *value > probe::kMaxTimestampS) {
    return std::nullopt;
  }
  return value;
}

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string to_line(const probe::TracerouteRecord& r) {
  std::string out = "T\t";
  out += std::to_string(r.src);
  out += '\t';
  out += std::to_string(r.dst);
  out += '\t';
  out += family_token(r.family);
  out += '\t';
  out += std::to_string(r.time.seconds());
  out += '\t';
  out += r.method == probe::TracerouteMethod::kParis ? "paris" : "classic";
  out += '\t';
  out += r.complete ? '1' : '0';
  out += '\t';
  out += r.src_addr.to_string();
  out += '\t';
  out += r.dst_addr.to_string();
  out += '\t';
  for (std::size_t i = 0; i < r.hops.size(); ++i) {
    if (i > 0) out += ',';
    if (r.hops[i].addr) {
      out += r.hops[i].addr->to_string();
      out += '@';
      out += format_ms(r.hops[i].rtt_ms);
    } else {
      out += '*';
    }
  }
  return out;
}

std::string to_line(const probe::PingRecord& r) {
  std::string out = "P\t";
  out += std::to_string(r.src);
  out += '\t';
  out += std::to_string(r.dst);
  out += '\t';
  out += family_token(r.family);
  out += '\t';
  out += std::to_string(r.time.seconds());
  out += '\t';
  out += r.success ? '1' : '0';
  out += '\t';
  out += format_ms(r.rtt_ms);
  return out;
}

std::optional<probe::TracerouteRecord> parse_traceroute(
    std::string_view line) {
  const auto fields = split(line, '\t');
  if (fields.size() != 10 || fields[0] != "T") return std::nullopt;
  probe::TracerouteRecord rec;
  const auto src = parse_number<std::uint32_t>(fields[1]);
  const auto dst = parse_number<std::uint32_t>(fields[2]);
  const auto family = parse_family(fields[3]);
  const auto time_s = parse_time_s(fields[4]);
  if (!src || !dst || !family || !time_s) return std::nullopt;
  rec.src = *src;
  rec.dst = *dst;
  rec.family = *family;
  rec.time = net::SimTime(*time_s);
  if (fields[5] == "paris") {
    rec.method = probe::TracerouteMethod::kParis;
  } else if (fields[5] == "classic") {
    rec.method = probe::TracerouteMethod::kClassic;
  } else {
    return std::nullopt;
  }
  if (fields[6] != "0" && fields[6] != "1") return std::nullopt;
  rec.complete = fields[6] == "1";
  const auto src_addr = net::IPAddr::parse(fields[7]);
  const auto dst_addr = net::IPAddr::parse(fields[8]);
  if (!src_addr || !dst_addr) return std::nullopt;
  rec.src_addr = *src_addr;
  rec.dst_addr = *dst_addr;

  if (!fields[9].empty()) {
    for (const auto hop_text : split(fields[9], ',')) {
      probe::Hop hop;
      if (hop_text != "*") {
        const auto at = hop_text.rfind('@');
        if (at == std::string_view::npos) return std::nullopt;
        const auto addr = net::IPAddr::parse(hop_text.substr(0, at));
        const auto rtt = parse_rtt_ms(hop_text.substr(at + 1));
        if (!addr || !rtt) return std::nullopt;
        hop.addr = *addr;
        hop.rtt_ms = *rtt;
      }
      rec.hops.push_back(std::move(hop));
    }
  }
  return rec;
}

std::optional<probe::PingRecord> parse_ping(std::string_view line) {
  const auto fields = split(line, '\t');
  if (fields.size() != 7 || fields[0] != "P") return std::nullopt;
  probe::PingRecord rec;
  const auto src = parse_number<std::uint32_t>(fields[1]);
  const auto dst = parse_number<std::uint32_t>(fields[2]);
  const auto family = parse_family(fields[3]);
  const auto time_s = parse_time_s(fields[4]);
  const auto rtt = parse_rtt_ms(fields[6]);
  if (!src || !dst || !family || !time_s || !rtt) return std::nullopt;
  if (fields[5] != "0" && fields[5] != "1") return std::nullopt;
  rec.src = *src;
  rec.dst = *dst;
  rec.family = *family;
  rec.time = net::SimTime(*time_s);
  rec.success = fields[5] == "1";
  rec.rtt_ms = *rtt;
  return rec;
}

void RecordWriter::write(const probe::TracerouteRecord& record) {
  out_ << to_line(record) << '\n';
  ++written_;
}

void RecordWriter::write(const probe::PingRecord& record) {
  out_ << to_line(record) << '\n';
  ++written_;
}

bool RecordReader::next_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

void RecordReader::note_malformed(const std::string& line) {
  ++errors_;
  if (malformed_.size() >= max_samples_) {
    ++dropped_;
    obs_dropped_.inc();
    return;
  }
  obs_retained_.inc();
  obs::logf(obs::LogLevel::kWarn, "malformed record at line %zu: %.40s%s",
            lines_, line.c_str(), line.size() > 40 ? "..." : "");
  malformed_.push_back(
      {lines_, line.substr(0, kMaxSampleLength)});
}

}  // namespace s2s::io
