#include "io/binrec.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <tuple>

#include "io/crc32c.h"
#include "io/records_io.h"
#include "io/varint.h"

namespace s2s::io {

namespace {

/// Upper bound a decoder trusts for a per-record hop count (traceroute
/// TTLs cap out near 64; anything past 255 in a CRC-valid block is a
/// structural decode bug, not data).
constexpr std::uint64_t kMaxHopsPerRecord = 255;

obs::Counter obs_blocks_read() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("s2s.io.binrec.blocks_read");
  return c;
}

obs::Counter obs_crc_failures() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("s2s.io.binrec.crc_failures");
  return c;
}

obs::Counter obs_bytes_mapped() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("s2s.io.binrec.bytes_mapped");
  return c;
}

obs::Counter obs_records_read() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("s2s.io.binrec.records_read");
  return c;
}

std::uint8_t family_code(net::Family f) {
  return f == net::Family::kIPv4 ? 4 : 6;
}

void put_addr(std::string& out, const net::IPAddr& addr) {
  if (addr.is_v4()) {
    out.push_back(4);
    put_u32le(out, addr.v4().value());
  } else {
    out.push_back(6);
    const auto& b = addr.v6().bytes();
    out.append(reinterpret_cast<const char*>(b.data()), b.size());
  }
}

bool get_addr(ByteCursor& cur, net::IPAddr& out) {
  std::uint8_t tag = 0;
  if (!cur.get_u8(tag)) return false;
  if (tag == 4) {
    std::uint32_t v = 0;
    if (!cur.get_u32(v)) return false;
    out = net::IPv4Addr(v);
    return true;
  }
  if (tag == 6) {
    net::IPv6Addr::Bytes b{};
    if (!cur.get_bytes(b.data(), b.size())) return false;
    out = net::IPv6Addr(b);
    return true;
  }
  return false;
}

/// Per-block (src, dst, family) dictionary in first-appearance order, so
/// a block's bytes are a pure function of its record sequence.
class PairDict {
 public:
  template <typename Record>
  std::uint64_t intern(const Record& r) {
    const auto key = std::make_tuple(r.src, r.dst, family_code(r.family));
    const auto [it, inserted] = index_.emplace(key, entries_.size());
    if (inserted) entries_.push_back(key);
    return it->second;
  }

  void encode(std::string& out) const {
    put_varint(out, entries_.size());
    for (const auto& [src, dst, fam] : entries_) {
      put_varint(out, src);
      put_varint(out, dst);
      out.push_back(static_cast<char>(fam));
    }
  }

 private:
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>,
           std::uint64_t>
      index_;
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>>
      entries_;
};

struct PairEntry {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  net::Family family = net::Family::kIPv4;
};

bool decode_pair_dict(ByteCursor& cur, std::size_t record_count,
                      std::vector<PairEntry>& dict) {
  std::uint64_t n = 0;
  if (!cur.get_varint(n)) return false;
  if (n > record_count || (record_count > 0 && n == 0)) return false;
  dict.resize(static_cast<std::size_t>(n));
  for (auto& e : dict) {
    std::uint64_t src = 0, dst = 0;
    std::uint8_t fam = 0;
    if (!cur.get_varint(src) || src > 0xFFFFFFFFull) return false;
    if (!cur.get_varint(dst) || dst > 0xFFFFFFFFull) return false;
    if (!cur.get_u8(fam) || (fam != 4 && fam != 6)) return false;
    e.src = static_cast<std::uint32_t>(src);
    e.dst = static_cast<std::uint32_t>(dst);
    e.family = fam == 4 ? net::Family::kIPv4 : net::Family::kIPv6;
  }
  return true;
}

bool decode_pair_indices(ByteCursor& cur, std::size_t record_count,
                         std::size_t dict_size,
                         std::vector<std::uint32_t>& idx) {
  idx.resize(record_count);
  for (auto& i : idx) {
    std::uint64_t v = 0;
    if (!cur.get_varint(v) || v >= dict_size) return false;
    i = static_cast<std::uint32_t>(v);
  }
  return true;
}

void encode_times(std::string& out,
                  const std::vector<std::int64_t>& times) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    put_varint_signed(out, i == 0 ? times[0] : times[i] - prev);
    prev = times[i];
  }
}

bool decode_times(ByteCursor& cur, std::size_t record_count,
                  std::vector<std::int64_t>& times) {
  times.resize(record_count);
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < record_count; ++i) {
    std::int64_t v = 0;
    if (!cur.get_varint_signed(v)) return false;
    times[i] = i == 0 ? v : prev + v;
    prev = times[i];
  }
  return true;
}

void encode_bitmap(std::string& out, const std::vector<bool>& bits) {
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t byte = 0;
    for (std::size_t j = 0; j < 8 && i + j < bits.size(); ++j) {
      if (bits[i + j]) byte |= static_cast<std::uint8_t>(1u << j);
    }
    out.push_back(static_cast<char>(byte));
  }
}

bool decode_bitmap(ByteCursor& cur, std::size_t record_count,
                   std::vector<bool>& bits) {
  bits.resize(record_count);
  for (std::size_t i = 0; i < record_count; i += 8) {
    std::uint8_t byte = 0;
    if (!cur.get_u8(byte)) return false;
    for (std::size_t j = 0; j < 8 && i + j < record_count; ++j) {
      bits[i + j] = (byte >> j) & 1u;
    }
  }
  return true;
}

// -- Block payload encoders --------------------------------------------------

std::string encode_ping_payload(const std::vector<probe::PingRecord>& recs,
                                std::int64_t& first_time,
                                std::int64_t& last_time) {
  std::string out;
  PairDict dict;
  std::vector<std::uint64_t> idx;
  std::vector<std::int64_t> times;
  std::vector<bool> success;
  idx.reserve(recs.size());
  times.reserve(recs.size());
  success.reserve(recs.size());
  first_time = recs.empty() ? 0 : recs.front().time.seconds();
  last_time = first_time;
  for (const auto& r : recs) {
    idx.push_back(dict.intern(r));
    times.push_back(r.time.seconds());
    success.push_back(r.success);
    first_time = std::min(first_time, r.time.seconds());
    last_time = std::max(last_time, r.time.seconds());
  }
  dict.encode(out);
  for (const auto i : idx) put_varint(out, i);
  encode_times(out, times);
  encode_bitmap(out, success);
  for (const auto& r : recs) put_u32le(out, encode_rtt_thousandths(r.rtt_ms));
  return out;
}

std::string encode_trace_payload(
    const std::vector<probe::TracerouteRecord>& recs,
    std::int64_t& first_time, std::int64_t& last_time) {
  std::string out;
  PairDict dict;
  std::vector<std::uint64_t> idx;
  std::vector<std::int64_t> times;
  std::vector<bool> paris, complete;
  idx.reserve(recs.size());
  times.reserve(recs.size());
  first_time = recs.empty() ? 0 : recs.front().time.seconds();
  last_time = first_time;
  for (const auto& r : recs) {
    idx.push_back(dict.intern(r));
    times.push_back(r.time.seconds());
    paris.push_back(r.method == probe::TracerouteMethod::kParis);
    complete.push_back(r.complete);
    first_time = std::min(first_time, r.time.seconds());
    last_time = std::max(last_time, r.time.seconds());
  }
  dict.encode(out);
  for (const auto i : idx) put_varint(out, i);
  encode_times(out, times);
  encode_bitmap(out, paris);
  encode_bitmap(out, complete);
  for (const auto& r : recs) put_addr(out, r.src_addr);
  for (const auto& r : recs) put_addr(out, r.dst_addr);
  for (const auto& r : recs) put_varint(out, r.hops.size());
  for (const auto& r : recs) {
    for (const auto& hop : r.hops) {
      if (!hop.addr) {
        out.push_back(0);  // unresponsive: no addr, no RTT (mirrors "*")
        continue;
      }
      put_addr(out, *hop.addr);
      put_u32le(out, encode_rtt_thousandths(hop.rtt_ms));
    }
  }
  return out;
}

// -- Block payload decoders --------------------------------------------------

bool decode_ping_payload(const unsigned char* payload, std::size_t size,
                         std::size_t record_count,
                         const PingRecordFn& on_ping,
                         BinReadCounters& counters) {
  ByteCursor cur(payload, size);
  std::vector<PairEntry> dict;
  std::vector<std::uint32_t> idx;
  std::vector<std::int64_t> times;
  std::vector<bool> success;
  if (!decode_pair_dict(cur, record_count, dict)) return false;
  if (!decode_pair_indices(cur, record_count, dict.size(), idx)) return false;
  if (!decode_times(cur, record_count, times)) return false;
  if (!decode_bitmap(cur, record_count, success)) return false;
  if (cur.remaining() != record_count * 4) return false;
  probe::PingRecord r;  // reused across the loop: the sink sees a const&
  for (std::size_t i = 0; i < record_count; ++i) {
    std::uint32_t raw = 0;
    cur.get_u32(raw);
    const auto rtt = decode_rtt_thousandths(raw);
    if (!rtt) {
      ++counters.records_rejected;
      continue;
    }
    r.src = dict[idx[i]].src;
    r.dst = dict[idx[i]].dst;
    r.family = dict[idx[i]].family;
    r.time = net::SimTime(times[i]);
    r.success = success[i];
    r.rtt_ms = *rtt;
    ++counters.records_read;
    on_ping(r);
  }
  return true;
}

bool decode_trace_payload(const unsigned char* payload, std::size_t size,
                          std::size_t record_count,
                          const TraceRecordFn& on_trace,
                          BinReadCounters& counters) {
  ByteCursor cur(payload, size);
  std::vector<PairEntry> dict;
  std::vector<std::uint32_t> idx;
  std::vector<std::int64_t> times;
  std::vector<bool> paris, complete;
  if (!decode_pair_dict(cur, record_count, dict)) return false;
  if (!decode_pair_indices(cur, record_count, dict.size(), idx)) return false;
  if (!decode_times(cur, record_count, times)) return false;
  if (!decode_bitmap(cur, record_count, paris)) return false;
  if (!decode_bitmap(cur, record_count, complete)) return false;
  std::vector<net::IPAddr> src_addrs(record_count), dst_addrs(record_count);
  for (auto& a : src_addrs) {
    if (!get_addr(cur, a)) return false;
  }
  for (auto& a : dst_addrs) {
    if (!get_addr(cur, a)) return false;
  }
  std::vector<std::uint32_t> hop_counts(record_count);
  for (auto& c : hop_counts) {
    std::uint64_t v = 0;
    if (!cur.get_varint(v) || v > kMaxHopsPerRecord) return false;
    c = static_cast<std::uint32_t>(v);
  }
  // One record reused across the loop (the sink sees a const&): clearing
  // the hop vector keeps its capacity, so a block's worth of records
  // costs at most one hop allocation instead of one per record.
  probe::TracerouteRecord r;
  for (std::size_t i = 0; i < record_count; ++i) {
    r.src = dict[idx[i]].src;
    r.dst = dict[idx[i]].dst;
    r.family = dict[idx[i]].family;
    r.time = net::SimTime(times[i]);
    r.method = paris[i] ? probe::TracerouteMethod::kParis
                        : probe::TracerouteMethod::kClassic;
    r.complete = complete[i];
    r.src_addr = src_addrs[i];
    r.dst_addr = dst_addrs[i];
    r.hops.clear();
    r.hops.reserve(hop_counts[i]);
    bool record_ok = true;
    for (std::uint32_t h = 0; h < hop_counts[i]; ++h) {
      std::uint8_t tag = 0;
      if (!cur.get_u8(tag)) return false;
      if (tag == 0) {  // unresponsive: no addr, no RTT (mirrors "*")
        r.hops.emplace_back();
        continue;
      }
      std::uint32_t raw = 0;
      net::IPAddr addr;
      if (tag == 4) {
        // Fused read of the v4 addr + RTT pair: one bounds check for the
        // whole row (the hop loop dominates whole-archive decode).
        unsigned char row[8];
        if (!cur.get_bytes(row, 8)) return false;
        addr = net::IPv4Addr(get_u32le(row));
        raw = get_u32le(row + 4);
      } else if (tag == 6) {
        net::IPv6Addr::Bytes b{};
        if (!cur.get_bytes(b.data(), b.size())) return false;
        if (!cur.get_u32(raw)) return false;
        addr = net::IPv6Addr(b);
      } else {
        return false;
      }
      const auto rtt = decode_rtt_thousandths(raw);
      if (!rtt) {
        record_ok = false;  // row fully consumed; reject the record
        continue;
      }
      auto& hop = r.hops.emplace_back();
      hop.addr = addr;
      hop.rtt_ms = *rtt;
    }
    if (!record_ok) {
      ++counters.records_rejected;
      continue;
    }
    ++counters.records_read;
    on_trace(r);
  }
  return cur.remaining() == 0;
}

/// CRC-checks and decodes one block whose header has already been
/// validated structurally. Returns false when the block must be counted
/// corrupt.
bool decode_block(BlockKind kind, std::size_t record_count,
                  const unsigned char* payload, std::size_t payload_bytes,
                  const TraceRecordFn& on_trace, const PingRecordFn& on_ping,
                  BinReadCounters& counters) {
  if (record_count == 0) return payload_bytes == 0;  // explicit empty block
  const std::size_t before = counters.records_read;
  const bool ok =
      kind == BlockKind::kPing
          ? decode_ping_payload(payload, payload_bytes, record_count, on_ping,
                                counters)
          : decode_trace_payload(payload, payload_bytes, record_count,
                                 on_trace, counters);
  if (counters.records_read > before) {
    obs_records_read().inc(counters.records_read - before);
  }
  return ok;
}

/// Parsed block header; `valid` false means the fixed fields are
/// implausible (decode must not trust payload_bytes).
struct BlockHeader {
  BlockKind kind = BlockKind::kPing;
  std::uint16_t record_count = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;
  bool valid = false;
};

BlockHeader parse_block_header(const unsigned char* h) {
  BlockHeader out;
  const std::uint8_t kind = h[4];
  out.record_count = get_u16le(h + 6);
  out.payload_bytes = get_u32le(h + 8);
  out.crc = get_u32le(h + 12);
  out.valid = kind <= 1 && out.record_count <= kMaxBlockRecords &&
              out.payload_bytes <= kMaxBlockPayloadBytes;
  out.kind = kind == 0 ? BlockKind::kPing : BlockKind::kTraceroute;
  return out;
}

std::uint32_t block_crc(const unsigned char* header,
                        const unsigned char* payload,
                        std::size_t payload_bytes) {
  std::uint32_t crc = crc32c(0, header + 4, 8);
  return crc32c(crc, payload, payload_bytes);
}

bool parse_file_header(const unsigned char* data, std::size_t size,
                       std::uint16_t& version, std::string& error) {
  if (size < kBinFileHeaderBytes || get_u32le(data) != kBinFileMagic) {
    error = "not an .s2sb stream (bad magic)";
    return false;
  }
  version = get_u16le(data + 4);
  if (version == 0 || version > kBinVersion) {
    error = "unsupported .s2sb version " + std::to_string(version);
    return false;
  }
  return true;
}

/// Recovers a block's encode-time [first, last] span from its times
/// column. Both payload kinds lead with dict, pair indices, then times,
/// so one decoder serves both; the span covers every record in the block
/// (the writer's min/max does too), not just the ones a full decode would
/// deliver.
bool block_time_span(std::size_t record_count, const unsigned char* payload,
                     std::size_t size, std::int64_t& first,
                     std::int64_t& last) {
  first = 0;
  last = 0;
  if (record_count == 0) return true;
  ByteCursor cur(payload, size);
  std::vector<PairEntry> dict;
  std::vector<std::uint32_t> idx;
  std::vector<std::int64_t> times;
  if (!decode_pair_dict(cur, record_count, dict)) return false;
  if (!decode_pair_indices(cur, record_count, dict.size(), idx)) return false;
  if (!decode_times(cur, record_count, times)) return false;
  first = times.front();
  last = times.front();
  for (const auto t : times) {
    first = std::min(first, t);
    last = std::max(last, t);
  }
  return true;
}

/// The complete footer image (magic, entries, tail) for an index. Shared
/// by BinRecordWriter::finish() and recover_archive() so a rebuilt footer
/// is byte-identical to the one an uninterrupted writer would have sealed
/// the same blocks with.
std::string encode_footer(const std::vector<BlockIndexEntry>& index) {
  std::string footer;
  put_u32le(footer, kBinFooterMagic);
  std::string entries;
  for (const auto& e : index) {
    put_u64le(entries, e.offset);
    put_u64le(entries, static_cast<std::uint64_t>(e.first_time_s));
    put_u64le(entries, static_cast<std::uint64_t>(e.last_time_s));
    put_u32le(entries, e.record_count);
    entries.push_back(static_cast<char>(e.kind));
    entries.append(3, '\0');
  }
  footer += entries;
  put_u32le(footer, static_cast<std::uint32_t>(index.size()));
  put_u32le(footer, crc32c(entries.data(), entries.size()));
  put_u64le(footer, kBinEofMagic);
  return footer;
}

}  // namespace

std::optional<double> decode_rtt_thousandths(std::uint32_t v) {
  if (v == kInvalidRttThousandths ||
      v > static_cast<std::uint32_t>(probe::kMaxPlausibleRttMs * 1000.0)) {
    return std::nullopt;
  }
  return static_cast<double>(v) / 1000.0;
}

std::optional<std::vector<BlockRef>> scan_blocks(const void* data,
                                                 std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint16_t version = 0;
  std::string error;
  if (!parse_file_header(bytes, size, version, error)) return std::nullopt;
  std::vector<BlockRef> out;
  std::size_t pos = kBinFileHeaderBytes;
  while (pos + 4 <= size) {
    const std::uint32_t magic = get_u32le(bytes + pos);
    if (magic != kBinBlockMagic) break;  // footer, garbage, or EOF
    if (pos + kBinBlockHeaderBytes > size) break;
    const auto header = parse_block_header(bytes + pos);
    if (!header.valid ||
        pos + kBinBlockHeaderBytes + header.payload_bytes > size) {
      break;
    }
    BlockRef ref;
    ref.header_offset = pos;
    ref.payload_offset = pos + kBinBlockHeaderBytes;
    ref.payload_bytes = header.payload_bytes;
    ref.record_count = header.record_count;
    ref.kind = header.kind;
    out.push_back(ref);
    pos = ref.payload_offset + ref.payload_bytes;
  }
  return out;
}

std::optional<std::vector<BlockIndexEntry>> index_blocks(const void* data,
                                                         std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint16_t version = 0;
  std::string error;
  if (!parse_file_header(bytes, size, version, error)) return std::nullopt;
  std::vector<BlockIndexEntry> out;
  std::size_t pos = kBinFileHeaderBytes;
  while (pos < size) {
    if (pos + 4 <= size && get_u32le(bytes + pos) == kBinFooterMagic) {
      return out;  // sealed archive: blocks end where the footer starts
    }
    if (pos + kBinBlockHeaderBytes > size ||
        get_u32le(bytes + pos) != kBinBlockMagic) {
      return std::nullopt;  // torn header or trailing garbage
    }
    const auto header = parse_block_header(bytes + pos);
    const std::size_t payload_at = pos + kBinBlockHeaderBytes;
    if (!header.valid || payload_at + header.payload_bytes > size) {
      return std::nullopt;  // implausible header or torn payload
    }
    const unsigned char* payload = bytes + payload_at;
    if (block_crc(bytes + pos, payload, header.payload_bytes) != header.crc) {
      return std::nullopt;
    }
    BlockIndexEntry entry;
    entry.offset = pos;
    entry.record_count = header.record_count;
    entry.kind = header.kind;
    if (!block_time_span(header.record_count, payload, header.payload_bytes,
                         entry.first_time_s, entry.last_time_s)) {
      return std::nullopt;
    }
    out.push_back(entry);
    pos = payload_at + header.payload_bytes;
  }
  return out;
}

void decode_block_range(const void* data, std::size_t size,
                        std::size_t begin_offset, std::size_t end_offset,
                        const TraceRecordFn& on_trace,
                        const PingRecordFn& on_ping,
                        BinReadCounters& counters) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::size_t end = std::min(end_offset, size);
  std::size_t pos = begin_offset;
  while (pos < end) {
    if (pos + 4 <= end && get_u32le(bytes + pos) == kBinFooterMagic) {
      return;  // block region ends at the footer: a clean stop, not a tear
    }
    if (pos + kBinBlockHeaderBytes > end ||
        get_u32le(bytes + pos) != kBinBlockMagic) {
      counters.truncated = true;
      return;
    }
    const auto header = parse_block_header(bytes + pos);
    const std::size_t payload_at = pos + kBinBlockHeaderBytes;
    if (!header.valid || payload_at + header.payload_bytes > end) {
      counters.truncated = true;
      return;
    }
    const unsigned char* payload = bytes + payload_at;
    if (block_crc(bytes + pos, payload, header.payload_bytes) != header.crc ||
        !decode_block(header.kind, header.record_count, payload,
                      header.payload_bytes, on_trace, on_ping, counters)) {
      ++counters.corrupt_blocks;
    } else {
      ++counters.blocks_read;
    }
    pos = payload_at + header.payload_bytes;
  }
}

// ---------------------------------------------------------------------------
// BinRecordWriter
// ---------------------------------------------------------------------------

BinRecordWriter::BinRecordWriter(std::ostream& out,
                                 const BinWriterConfig& config)
    : out_(out), config_(config) {
  config_.block_records = std::min(config_.block_records, kMaxBlockRecords);
  if (config_.block_records == 0) config_.block_records = 1;
  if (!config_.resume_index.empty() || config_.resume_offset > 0) {
    index_ = config_.resume_index;
    bytes_written_ = config_.resume_offset;
  }
  if (config_.write_header) {
    std::string header;
    put_u32le(header, kBinFileMagic);
    put_u16le(header, kBinVersion);
    put_u16le(header, 0);  // flags
    put_u64le(header, 0);  // reserved
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    bytes_written_ += header.size();
  }
}

BinRecordWriter::~BinRecordWriter() {
  try {
    finish();
  } catch (...) {
    // A throwing ostream in a destructor must not terminate the program;
    // callers that care about write failures call finish() themselves.
  }
}

void BinRecordWriter::write(const probe::TracerouteRecord& record) {
  pending_traces_.push_back(record);
  ++written_;
  if (pending_traces_.size() >= config_.block_records) {
    flush_kind(BlockKind::kTraceroute);
  }
}

void BinRecordWriter::write(const probe::PingRecord& record) {
  pending_pings_.push_back(record);
  ++written_;
  if (pending_pings_.size() >= config_.block_records) {
    flush_kind(BlockKind::kPing);
  }
}

void BinRecordWriter::flush_kind(BlockKind kind) {
  std::int64_t first_time = 0, last_time = 0;
  std::string payload;
  std::size_t count = 0;
  if (kind == BlockKind::kTraceroute) {
    if (pending_traces_.empty()) return;
    count = pending_traces_.size();
    payload = encode_trace_payload(pending_traces_, first_time, last_time);
    pending_traces_.clear();
  } else {
    if (pending_pings_.empty()) return;
    count = pending_pings_.size();
    payload = encode_ping_payload(pending_pings_, first_time, last_time);
    pending_pings_.clear();
  }
  emit_block(kind, payload, count, first_time, last_time);
}

void BinRecordWriter::emit_block(BlockKind kind, const std::string& payload,
                                 std::size_t record_count,
                                 std::int64_t first_time,
                                 std::int64_t last_time) {
  std::string header;
  put_u32le(header, kBinBlockMagic);
  header.push_back(static_cast<char>(kind));
  header.push_back(0);  // reserved
  put_u16le(header, static_cast<std::uint16_t>(record_count));
  put_u32le(header, static_cast<std::uint32_t>(payload.size()));
  const std::uint32_t crc =
      block_crc(reinterpret_cast<const unsigned char*>(header.data()),
                reinterpret_cast<const unsigned char*>(payload.data()),
                payload.size());
  put_u32le(header, crc);

  BlockIndexEntry entry;
  entry.offset = bytes_written_;
  entry.first_time_s = first_time;
  entry.last_time_s = last_time;
  entry.record_count = static_cast<std::uint32_t>(record_count);
  entry.kind = kind;
  index_.push_back(entry);

  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  bytes_written_ += header.size() + payload.size();
  obs_blocks_written_.inc();
}

void BinRecordWriter::flush_block() {
  flush_kind(BlockKind::kTraceroute);
  flush_kind(BlockKind::kPing);
}

void BinRecordWriter::finish() {
  if (finished_) return;
  flush_block();
  finished_ = true;
  if (!config_.write_footer) return;
  const std::string footer = encode_footer(index_);
  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  bytes_written_ += footer.size();
}

// ---------------------------------------------------------------------------
// AtomicArchiveWriter and recover_archive
// ---------------------------------------------------------------------------

AtomicArchiveWriter::AtomicArchiveWriter(const std::string& path)
    : path_(path), tmp_(path + ".tmp") {
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    error_ = tmp_ + ": open failed";
    return;
  }
  ok_ = true;
}

AtomicArchiveWriter::~AtomicArchiveWriter() {
  if (!committed_) abort();
}

void AtomicArchiveWriter::abort() noexcept {
  if (committed_) return;
  if (out_.is_open()) out_.close();
  std::remove(tmp_.c_str());
  ok_ = false;
}

bool AtomicArchiveWriter::commit(std::string& error) {
  if (committed_) return true;
  if (!ok_) {
    error = error_;
    return false;
  }
  out_.flush();
  if (!out_.good()) {
    error = tmp_ + ": write failed";
    abort();
    return false;
  }
  out_.close();
  // Durability order matters: the tmp bytes must be on disk before the
  // rename publishes them, and the rename must be in the directory before
  // the commit is claimed — otherwise a crash can surface the new name
  // with old (or no) bytes behind it.
  const int fd = ::open(tmp_.c_str(), O_RDONLY);
  if (fd < 0 || ::fsync(fd) != 0) {
    if (fd >= 0) ::close(fd);
    error = tmp_ + ": fsync failed";
    abort();
    return false;
  }
  ::close(fd);
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    error = "rename " + tmp_ + " -> " + path_ + " failed";
    abort();
    return false;
  }
  committed_ = true;
  const auto slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {  // best effort: some filesystems refuse directory fsync
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

RecoverResult recover_archive(const std::string& path) {
  RecoverResult res;
  MmapFile file;
  if (!file.open(path)) {
    res.error = file.error();
    return res;
  }
  const auto* data = file.data();
  const std::size_t size = file.size();
  std::uint16_t version = 0;
  if (!parse_file_header(data, size, version, res.error)) return res;

  // Walk the longest valid prefix: structurally plausible header, payload
  // in bounds, CRC match, and a full decode (null sinks — this pass only
  // proves decodability and recovers each block's encode-time span).
  std::vector<BlockIndexEntry> index;
  std::size_t pos = kBinFileHeaderBytes;
  while (pos + kBinBlockHeaderBytes <= size &&
         get_u32le(data + pos) == kBinBlockMagic) {
    const auto bh = parse_block_header(data + pos);
    if (!bh.valid ||
        pos + kBinBlockHeaderBytes + bh.payload_bytes > size) {
      break;
    }
    const unsigned char* payload = data + pos + kBinBlockHeaderBytes;
    if (block_crc(data + pos, payload, bh.payload_bytes) != bh.crc) break;
    BinReadCounters counters;
    if (!decode_block(bh.kind, bh.record_count, payload, bh.payload_bytes,
                      [](const probe::TracerouteRecord&) {},
                      [](const probe::PingRecord&) {}, counters)) {
      break;
    }
    BlockIndexEntry entry;
    entry.offset = pos;
    entry.record_count = bh.record_count;
    entry.kind = bh.kind;
    // The footer span is the writer's min/max over every record's time,
    // including records a decoder would reject for a bad RTT — so take it
    // from the times column (which all block kinds lead with), not from
    // the delivered-record callbacks.
    if (!block_time_span(bh.record_count, payload, bh.payload_bytes,
                         entry.first_time_s, entry.last_time_s)) {
      break;
    }
    index.push_back(entry);
    res.records_kept += bh.record_count;
    pos += kBinBlockHeaderBytes + bh.payload_bytes;
  }
  res.blocks_kept = index.size();

  // Already sealed and intact? Leave the file untouched.
  const std::string footer = encode_footer(index);
  if (size == pos + footer.size() &&
      std::memcmp(data + pos, footer.data(), footer.size()) == 0) {
    res.ok = true;
    return res;
  }

  AtomicArchiveWriter out(path);
  if (!out.ok()) {
    res.error = out.error();
    return res;
  }
  auto& stream = out.stream();
  stream.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(kBinFileHeaderBytes));
  stream.write(reinterpret_cast<const char*>(data) + kBinFileHeaderBytes,
               static_cast<std::streamsize>(pos - kBinFileHeaderBytes));
  stream.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  if (!out.commit(res.error)) return res;
  res.ok = true;
  res.repaired = true;
  res.bytes_dropped = size > pos ? size - pos : 0;
  return res;
}

// ---------------------------------------------------------------------------
// BinRecordReader (buffered istream arm)
// ---------------------------------------------------------------------------

BinRecordReader::BinRecordReader(std::istream& in) : in_(in) {
  unsigned char header[kBinFileHeaderBytes];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    error_ = "truncated .s2sb header";
    return;
  }
  ok_ = parse_file_header(header, sizeof(header), version_, error_);
}

void BinRecordReader::read_all_impl(const TraceRecordFn& on_trace,
                                    const PingRecordFn& on_ping) {
  if (!ok_) return;
  std::string payload;
  // Rolling 4-byte window for magic detection; refilled byte-by-byte
  // only while resyncing after a corrupt header.
  while (true) {
    unsigned char header[kBinBlockHeaderBytes];
    in_.read(reinterpret_cast<char*>(header), 4);
    if (in_.gcount() == 0) return;  // clean EOF at a block boundary
    if (in_.gcount() < 4) {
      ++counters_.corrupt_blocks;  // trailing partial magic
      counters_.truncated = true;
      return;
    }
    std::uint32_t magic = get_u32le(header);
    if (magic == kBinFooterMagic) return;  // index begins; records done
    if (magic != kBinBlockMagic) {
      // Resync: scan forward one byte at a time for the next block or
      // footer magic. One resync event = one corrupt block.
      ++counters_.corrupt_blocks;
      int c;
      while ((c = in_.get()) != std::char_traits<char>::eof()) {
        magic = (magic >> 8) |
                (static_cast<std::uint32_t>(static_cast<unsigned char>(c))
                 << 24);
        if (magic == kBinFooterMagic) return;
        if (magic == kBinBlockMagic) break;
      }
      if (magic != kBinBlockMagic) return;  // EOF while resyncing
      // Fall through with the magic consumed; rebuild header[0..3]
      // (cosmetic — the CRC scope starts at byte 4).
      header[0] = 'S'; header[1] = '2'; header[2] = 'B'; header[3] = 'K';
    }
    in_.read(reinterpret_cast<char*>(header) + 4,
             kBinBlockHeaderBytes - 4);
    if (in_.gcount() <
        static_cast<std::streamsize>(kBinBlockHeaderBytes - 4)) {
      ++counters_.corrupt_blocks;  // truncated mid-header
      counters_.truncated = true;
      return;
    }
    const auto bh = parse_block_header(header);
    if (!bh.valid) {
      // Implausible fixed fields: do not trust payload_bytes; resync.
      ++counters_.corrupt_blocks;
      continue;  // next loop iteration starts a fresh magic scan
    }
    payload.resize(bh.payload_bytes);
    in_.read(payload.data(), static_cast<std::streamsize>(bh.payload_bytes));
    if (in_.gcount() < static_cast<std::streamsize>(bh.payload_bytes)) {
      ++counters_.corrupt_blocks;  // truncated mid-payload
      counters_.truncated = true;
      return;
    }
    const auto* pbytes = reinterpret_cast<const unsigned char*>(payload.data());
    if (block_crc(header, pbytes, payload.size()) != bh.crc) {
      ++counters_.corrupt_blocks;
      obs_crc_failures().inc();
      continue;
    }
    if (!decode_block(bh.kind, bh.record_count, pbytes, payload.size(),
                      on_trace, on_ping, counters_)) {
      ++counters_.corrupt_blocks;
      continue;
    }
    ++counters_.blocks_read;
    obs_blocks_read().inc();
  }
}

// ---------------------------------------------------------------------------
// BinRecordMmapReader (zero-copy arm)
// ---------------------------------------------------------------------------

BinRecordMmapReader::BinRecordMmapReader(const std::string& path) {
  if (!file_.open(path)) {
    error_ = file_.error();
    return;
  }
  obs_bytes_mapped().inc(file_.size());
  init(file_.data(), file_.size());
}

BinRecordMmapReader::BinRecordMmapReader(const void* data, std::size_t size) {
  init(data, size);
}

void BinRecordMmapReader::init(const void* data, std::size_t size) {
  data_ = static_cast<const unsigned char*>(data);
  size_ = size;
  ok_ = parse_file_header(data_, size_, version_, error_);
  if (!ok_) return;

  // Footer validation: fixed-width tail at EOF -> entry array -> magic.
  // Any inconsistency degrades to the sequential walk for reading, but
  // footer_status_ records the distinction between "never had a footer"
  // (kAbsent: no EOF seal at the tail, e.g. torn or footerless file) and
  // "had one that is damaged" (kInvalid) so tools can fail loudly.
  if (size_ < kBinFileHeaderBytes + 4 + kBinFooterTailBytes) return;
  const unsigned char* tail = data_ + size_ - kBinFooterTailBytes;
  if (get_u64le(tail + 8) != kBinEofMagic) return;
  footer_status_ = FooterStatus::kInvalid;  // seal present; prove validity
  const std::uint32_t entry_count = get_u32le(tail);
  const std::uint32_t entries_crc = get_u32le(tail + 4);
  const std::uint64_t entries_bytes =
      static_cast<std::uint64_t>(entry_count) * kBinFooterEntryBytes;
  if (entries_bytes + 4 + kBinFooterTailBytes + kBinFileHeaderBytes > size_) {
    return;
  }
  const unsigned char* entries = tail - entries_bytes;
  if (get_u32le(entries - 4) != kBinFooterMagic) return;
  if (crc32c(entries, entries_bytes) != entries_crc) return;
  const std::size_t footer_start =
      static_cast<std::size_t>(entries - 4 - data_);
  index_.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    const unsigned char* e = entries + i * kBinFooterEntryBytes;
    BlockIndexEntry entry;
    entry.offset = get_u64le(e);
    entry.first_time_s = static_cast<std::int64_t>(get_u64le(e + 8));
    entry.last_time_s = static_cast<std::int64_t>(get_u64le(e + 16));
    entry.record_count = get_u32le(e + 24);
    entry.kind = e[28] == 0 ? BlockKind::kPing : BlockKind::kTraceroute;
    if (entry.offset < kBinFileHeaderBytes ||
        entry.offset + kBinBlockHeaderBytes > footer_start) {
      index_.clear();  // poisoned index; fall back to sequential walk
      return;
    }
    index_.push_back(entry);
  }
  footer_status_ = FooterStatus::kValid;
}

void BinRecordMmapReader::decode_at(std::size_t offset,
                                    const TraceRecordFn& on_trace,
                                    const PingRecordFn& on_ping) {
  const unsigned char* h = data_ + offset;
  if (get_u32le(h) != kBinBlockMagic) {
    ++counters_.corrupt_blocks;
    return;
  }
  const auto bh = parse_block_header(h);
  if (!bh.valid ||
      offset + kBinBlockHeaderBytes + bh.payload_bytes > size_) {
    ++counters_.corrupt_blocks;
    return;
  }
  const unsigned char* payload = h + kBinBlockHeaderBytes;
  if (block_crc(h, payload, bh.payload_bytes) != bh.crc) {
    ++counters_.corrupt_blocks;
    obs_crc_failures().inc();
    return;
  }
  if (!decode_block(bh.kind, bh.record_count, payload, bh.payload_bytes,
                    on_trace, on_ping, counters_)) {
    ++counters_.corrupt_blocks;
    return;
  }
  ++counters_.blocks_read;
  obs_blocks_read().inc();
}

void BinRecordMmapReader::read_all_impl(const TraceRecordFn& on_trace,
                                        const PingRecordFn& on_ping) {
  if (!ok_) return;
  if (!index_.empty()) {
    for (const auto& entry : index_) {
      decode_at(static_cast<std::size_t>(entry.offset), on_trace, on_ping);
    }
    return;
  }
  // Sequential walk with resync, mirroring the stream arm exactly.
  std::size_t pos = kBinFileHeaderBytes;
  while (pos < size_) {
    if (pos + 4 > size_) {
      ++counters_.corrupt_blocks;  // trailing partial magic
      counters_.truncated = true;
      return;
    }
    const std::uint32_t magic = get_u32le(data_ + pos);
    if (magic == kBinFooterMagic) {
      // A footer begins here, yet init() could not validate one (that is
      // why we are walking): the footer was torn off or mangled. Without
      // this, truncating a file mid-footer would look like a clean
      // footerless archive.
      if (footer_status_ == FooterStatus::kAbsent) {
        footer_status_ = FooterStatus::kInvalid;
      }
      return;
    }
    if (magic != kBinBlockMagic) {
      ++counters_.corrupt_blocks;
      ++pos;
      while (pos + 4 <= size_) {
        const std::uint32_t m = get_u32le(data_ + pos);
        if (m == kBinBlockMagic || m == kBinFooterMagic) break;
        ++pos;
      }
      if (pos + 4 > size_) return;  // EOF while resyncing
      continue;
    }
    if (pos + kBinBlockHeaderBytes > size_) {
      ++counters_.corrupt_blocks;  // truncated mid-header
      counters_.truncated = true;
      return;
    }
    const auto bh = parse_block_header(data_ + pos);
    if (!bh.valid) {
      ++counters_.corrupt_blocks;
      pos += 4;  // keep scanning past the bad header
      continue;
    }
    if (pos + kBinBlockHeaderBytes + bh.payload_bytes > size_) {
      ++counters_.corrupt_blocks;  // truncated mid-payload
      counters_.truncated = true;
      return;
    }
    decode_at(pos, on_trace, on_ping);
    pos += kBinBlockHeaderBytes + bh.payload_bytes;
  }
}

bool BinRecordMmapReader::read_range_impl(std::int64_t t0_s, std::int64_t t1_s,
                                          const TraceRecordFn& on_trace,
                                          const PingRecordFn& on_ping) {
  if (!ok_ || index_.empty()) return false;
  for (const auto& entry : index_) {
    if (entry.last_time_s < t0_s || entry.first_time_s > t1_s) continue;
    decode_at(static_cast<std::size_t>(entry.offset), on_trace, on_ping);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Format sniffing and the interchangeable-ingest seam
// ---------------------------------------------------------------------------

namespace {

/// The sniff window is magic + version, not magic alone: a text file that
/// happens to begin with "S2SB" (a hostname column, say) almost certainly
/// continues with printable bytes, which decode as a little-endian version
/// far above 255 and send the file to the text arm. Versions in [1, 255]
/// are claimed as binary even beyond kBinVersion so that a future-format
/// file gets the reader's explicit "unsupported version" error instead of
/// being shredded line-by-line as text.
bool sniff_binary_header(const unsigned char* data, std::size_t size) {
  if (size < 6 || get_u32le(data) != kBinFileMagic) return false;
  const std::uint16_t version = get_u16le(data + 4);
  return version >= 1 && version <= 255;
}

}  // namespace

bool is_binary_record_stream(std::istream& in) {
  const auto pos = in.tellg();
  unsigned char head[6];
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  const bool binary =
      sniff_binary_header(head, static_cast<std::size_t>(in.gcount()));
  in.clear();
  in.seekg(pos);
  return binary;
}

bool is_binary_record_file(const std::string& path) {
  MmapFile probe;
  if (!probe.open(path)) return false;
  return sniff_binary_header(probe.data(), probe.size());
}

IngestResult read_records_auto(std::istream& in,
                               const TraceRecordFn& on_trace,
                               const PingRecordFn& on_ping) {
  IngestResult result;
  std::size_t delivered = 0;
  const auto count_trace = [&](const probe::TracerouteRecord& r) {
    ++delivered;
    on_trace(r);
  };
  const auto count_ping = [&](const probe::PingRecord& r) {
    ++delivered;
    on_ping(r);
  };
  if (is_binary_record_stream(in)) {
    result.binary = true;
    BinRecordReader reader(in);
    if (!reader.ok()) {
      result.ok = false;
      result.error = reader.error();
      return result;
    }
    reader.read_all(count_trace, count_ping);
    result.blocks_read = reader.blocks_read();
    result.corrupt_blocks = reader.corrupt_blocks();
    result.records_rejected = reader.counters().records_rejected;
    result.truncated = reader.counters().truncated;
  } else {
    RecordReader reader(in);
    reader.read_all(count_trace, count_ping);
    result.malformed_lines = reader.errors();
  }
  result.records = delivered;
  return result;
}

IngestResult ingest_record_file(const std::string& path,
                                const TraceRecordFn& on_trace,
                                const PingRecordFn& on_ping,
                                bool prefer_mmap) {
  IngestResult result;
  std::size_t delivered = 0;
  const auto count_trace = [&](const probe::TracerouteRecord& r) {
    ++delivered;
    on_trace(r);
  };
  const auto count_ping = [&](const probe::PingRecord& r) {
    ++delivered;
    on_ping(r);
  };
  if (prefer_mmap && is_binary_record_file(path)) {
    result.binary = true;
    result.used_mmap = true;
    BinRecordMmapReader reader(path);
    if (!reader.ok()) {
      result.ok = false;
      result.error = reader.error();
      return result;
    }
    reader.read_all(count_trace, count_ping);
    result.blocks_read = reader.blocks_read();
    result.corrupt_blocks = reader.corrupt_blocks();
    result.records_rejected = reader.counters().records_rejected;
    result.truncated = reader.counters().truncated;
    result.footer = reader.footer_status();
    result.records = delivered;
    return result;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.ok = false;
    result.error = path + ": open failed";
    return result;
  }
  result = read_records_auto(in, on_trace, on_ping);
  return result;
}

}  // namespace s2s::io
