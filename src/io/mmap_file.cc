#include "io/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define S2S_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define S2S_HAVE_MMAP 0
#endif

namespace s2s::io {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    opened_ = std::exchange(other.opened_, false);
    error_ = std::move(other.error_);
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) {
      data_ = reinterpret_cast<const unsigned char*>(fallback_.data());
    }
  }
  return *this;
}

bool MmapFile::open(const std::string& path) {
  close();
#if S2S_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    error_ = path + ": " + std::strerror(errno);
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    error_ = path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {  // mmap(0) is EINVAL; an empty archive is still valid
    ::close(fd);
    opened_ = true;
    return true;
  }
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    error_ = path + ": mmap: " + std::strerror(errno);
    size_ = 0;
    return false;
  }
  data_ = static_cast<const unsigned char*>(addr);
  mapped_ = true;
  opened_ = true;
  return true;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error_ = path + ": open failed";
    return false;
  }
  fallback_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  data_ = reinterpret_cast<const unsigned char*>(fallback_.data());
  size_ = fallback_.size();
  opened_ = true;
  return true;
#endif
}

void MmapFile::close() {
#if S2S_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  opened_ = false;
  error_.clear();
  fallback_.clear();
}

}  // namespace s2s::io
