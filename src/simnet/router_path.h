// Router-level expansion of AS-level paths.
//
// Given the AS path a route resolves to, the expander picks the concrete
// interconnection link for every AS-AS transition (the parallel link whose
// facility city minimizes geographic detour) and stitches intra-AS
// shortest-delay backbone segments between ingress and egress routers.
// Expansions are deterministic per (servers, AS path, family), so they are
// memoized aggressively — long campaigns re-traverse the same few paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "topology/topology.h"

namespace s2s::simnet {

/// One traceroute-visible hop: the probe arrives at `router` over `link`.
/// For the very first hop (the source's gateway) `link` is kInvalidId.
struct RouterHop {
  topology::LinkId link = topology::kInvalidId;
  topology::RouterId router = topology::kInvalidId;
  /// One-way propagation delay from the source server up to this router.
  double cumulative_delay_ms = 0.0;
};

struct RouterPath {
  topology::ServerId src = topology::kInvalidId;
  topology::ServerId dst = topology::kInvalidId;
  std::vector<RouterHop> hops;   ///< gateway first, dst attachment last
  double total_delay_ms = 0.0;   ///< one-way, source host to dest host
};

class RouterPathExpander {
 public:
  explicit RouterPathExpander(const topology::Topology& topo);

  /// Expands `as_path` (which must start at the source server's AS and end
  /// at the destination server's AS) into a router path. Returns nullptr if
  /// some AS transition has no link in the requested plane.
  /// `cache_slot` tags memoizable resolutions (e.g. candidate index);
  /// pass kNoCache for one-off paths.
  static constexpr std::uint32_t kNoCache = ~std::uint32_t{0};
  const RouterPath* expand(topology::ServerId src, topology::ServerId dst,
                           std::span<const topology::AsId> as_path,
                           net::Family family, std::uint32_t cache_slot);

  /// Delay of the server access hop (server <-> attachment router).
  static constexpr double kAccessDelayMs = 0.05;

 private:
  struct IntraKey {
    topology::RouterId from;
    topology::RouterId to;
    bool operator==(const IntraKey&) const = default;
  };
  struct IntraKeyHash {
    std::size_t operator()(const IntraKey& k) const {
      return (std::size_t{k.from} << 32) ^ k.to;
    }
  };

  /// Intra-AS shortest-delay path (sequence of internal links from `from`
  /// to `to`); empty when from == to. Returns nullptr when disconnected.
  const std::vector<topology::LinkId>* intra_path(topology::AsId as,
                                                  topology::RouterId from,
                                                  topology::RouterId to);

  /// Picks the interconnection link for an adjacency, minimizing detour
  /// relative to the current position and the final destination.
  std::optional<topology::LinkId> pick_link(topology::AdjacencyId adj,
                                            topology::RouterId from,
                                            topology::CityId dst_city,
                                            net::Family family) const;

  bool build(topology::ServerId src, topology::ServerId dst,
             std::span<const topology::AsId> as_path, net::Family family,
             RouterPath& out);

  const topology::Topology& topo_;
  /// Per-router adjacency of internal links.
  std::vector<std::vector<topology::LinkId>> internal_links_;
  std::unordered_map<IntraKey, std::vector<topology::LinkId>, IntraKeyHash>
      intra_cache_;
  std::unordered_map<std::uint64_t, RouterPath> path_cache_;
  RouterPath scratch_;  ///< storage for the most recent uncached expansion
};

}  // namespace s2s::simnet
