// Diurnal congestion model (the paper's "consistent congestion").
//
// A small subset of links carries a congestion profile: a once-a-day bump
// in queueing delay peaking at a busy hour in the link's local time zone,
// active during one or more multi-week episodes (some permanent). The
// amplitude distribution follows the paper's Figure 9 findings:
//   * US domestic links cluster tightly at 20-30 ms (uniform router-buffer
//     rules of thumb sized for 100 ms RTT);
//   * intra-EU / intra-Asia links spread wider (15-45 ms);
//   * transcontinental long-haul sits near 60 ms (bigger buffers);
//   * Asia<->Europe paths show ~90 ms extremes.
// Interconnection congestion is concentrated on private interconnects:
// public IXP fabrics enforce utilization SLAs on member ports.
#pragma once

#include <cstdint>
#include <vector>

#include "net/timebase.h"
#include "stats/rng.h"
#include "topology/topology.h"

namespace s2s::simnet {

struct CongestionConfig {
  /// Fraction of internal links that become congested.
  double internal_fraction = 0.006;
  /// Fraction of private interconnection links that become congested.
  double private_interconnect_fraction = 0.012;
  /// Fraction of public-IXP links that become congested (SLA-policed).
  double public_ixp_fraction = 0.003;
  /// Probability a congestion episode set covers the whole campaign.
  double permanent_prob = 0.35;
  int episodes_min = 1, episodes_max = 3;
  double episode_days_min = 7.0, episode_days_max = 56.0;
  /// Busy-hour peak width (hours), drawn uniformly per link.
  double peak_sigma_min = 2.0, peak_sigma_max = 3.5;
  /// Probability the congestion affects the IPv6 plane too (shared buffers).
  double shared_with_v6_prob = 0.45;
  double campaign_days = 520.0;  ///< horizon episodes are drawn over

  // --- bursty (non-diurnal) congestion ---
  // The paper finds far more pairs with >10 ms RTT variation than with a
  // diurnal pattern (9.5% vs 2% on IPv4): irregular, hours-long queueing
  // episodes at random times. These links add variation the 1/day FFT
  // rightly ignores.
  double bursty_fraction = 0.003;      ///< of all links
  double bursts_per_day = 0.75;
  /// Bursty links share queues with IPv6 less often than diurnal ones
  /// (transient hot spots are frequently v4 traffic surges).
  double bursty_shared_with_v6_prob = 0.20;
  double burst_hours_min = 1.0, burst_hours_max = 6.0;
  double burst_amplitude_min = 10.0, burst_amplitude_max = 35.0;
};

enum class CongestionKind : std::uint8_t {
  kDiurnal,  ///< once-a-day busy-hour bump ("consistent congestion")
  kBursty,   ///< irregular hours-long episodes at random times
};

struct CongestionProfile {
  topology::LinkId link = topology::kInvalidId;
  CongestionKind kind = CongestionKind::kDiurnal;
  double amplitude_ms = 0.0;
  double peak_local_hour = 20.0;  ///< busy-hour center, local time
  double sigma_hours = 2.5;
  double utc_offset_hours = 0.0;  ///< time zone of the link's location
  bool affects_v4 = true;
  bool affects_v6 = true;
  /// Diurnal: active [start, end) windows in seconds; empty means always.
  std::vector<std::pair<std::int64_t, std::int64_t>> episodes;
  /// Bursty: sorted burst intervals in seconds.
  std::vector<std::pair<std::int64_t, std::int64_t>> bursts;

  bool active_at(net::SimTime t) const;
  /// Deterministic queueing delay added by this profile at time t.
  double delay_ms(net::Family family, net::SimTime t) const;
};

class CongestionModel {
 public:
  /// Selects congested links and writes their profile index back into
  /// `topo.links[i].congestion_profile`.
  CongestionModel(topology::Topology& topo, const CongestionConfig& config,
                  stats::Rng rng);

  /// Queueing delay of a link at time t (0 for uncongested links).
  double queue_delay_ms(topology::LinkId link, net::Family family,
                        net::SimTime t) const {
    const auto p = topo_links_[link];
    return p == topology::kInvalidId
               ? 0.0
               : profiles_[p].delay_ms(family, t);
  }

  const std::vector<CongestionProfile>& profiles() const noexcept {
    return profiles_;
  }

 private:
  std::vector<CongestionProfile> profiles_;
  std::vector<std::uint32_t> topo_links_;  // link -> profile or kInvalidId
};

}  // namespace s2s::simnet
