#include "simnet/network.h"

#include <algorithm>
#include <stdexcept>

namespace s2s::simnet {

using routing::Candidate;
using routing::CandidateTable;
using topology::AsId;
using topology::ServerId;

Network::Network(const NetworkConfig& config)
    : config_(config),
      topo_(topology::generate(config.topology)),
      router_(topo_),
      congestion_(topo_, config.congestion,
                  stats::Rng(config.topology.seed * 0x9e3779b9ULL + 17)),
      rib_(bgp::Rib::from_topology(topo_)),
      expander_(topo_) {}

void Network::prepare(
    std::span<const std::pair<ServerId, ServerId>> pairs) {
  auto add_unique = [](std::vector<std::pair<AsId, AsId>>& list,
                       std::pair<AsId, AsId> value) {
    list.push_back(value);
  };
  for (const auto& [s, d] : pairs) {
    const auto& src = topo_.servers.at(s);
    const auto& dst = topo_.servers.at(d);
    add_unique(as_pairs4_, {src.as_id, dst.as_id});
    if (src.dual_stack() && dst.dual_stack()) {
      add_unique(as_pairs6_, {src.as_id, dst.as_id});
    }
  }
  auto dedup = [](std::vector<std::pair<AsId, AsId>>& list) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  };
  dedup(as_pairs4_);
  dedup(as_pairs6_);

  candidates4_ = std::make_unique<CandidateTable>(router_, net::Family::kIPv4,
                                                  as_pairs4_);
  candidates6_ = std::make_unique<CandidateTable>(router_, net::Family::kIPv6,
                                                  as_pairs6_);
  if (!outages_) calibrate_and_schedule();
  // Candidate tables changed: cached epoch state may reference stale sets.
  mask_time_ = net::SimTime(-1);
  exact_cache_.clear();
}

void Network::prepare_full_mesh(std::span<const ServerId> servers) {
  std::vector<std::pair<ServerId, ServerId>> pairs;
  pairs.reserve(servers.size() * (servers.size() - 1));
  for (ServerId a : servers) {
    for (ServerId b : servers) {
      if (a != b) pairs.emplace_back(a, b);
    }
  }
  prepare(pairs);
}

void Network::calibrate_and_schedule() {
  severity_.assign(topo_.adjacencies.size(), 0.0);
  std::vector<std::uint32_t> count(topo_.adjacencies.size(), 0);

  // Severity = mean RTT regression (one representative server per AS).
  std::vector<ServerId> rep(topo_.ases.size(), topology::kInvalidId);
  for (ServerId s = 0; s < topo_.servers.size(); ++s) {
    if (rep[topo_.servers[s].as_id] == topology::kInvalidId) {
      rep[topo_.servers[s].as_id] = s;
    }
  }

  candidates4_->for_each([&](AsId src_as, AsId dst_as,
                             const routing::CandidateSet& set) {
    if (set.candidates.empty() || !set.candidates.front().primary) return;
    const ServerId s = rep[src_as];
    const ServerId d = rep[dst_as];
    if (s == topology::kInvalidId || d == topology::kInvalidId) return;
    const Candidate& primary = set.candidates.front();
    const RouterPath* base =
        expander_.expand(s, d, primary.path, net::Family::kIPv4, 0);
    if (base == nullptr) return;
    const double d0 = base->total_delay_ms;
    for (topology::AdjacencyId e : primary.adjs) {
      double delta = config_.disconnect_severity_ms;
      for (std::size_t idx = 1; idx < set.candidates.size(); ++idx) {
        const Candidate& alt = set.candidates[idx];
        if (std::find(alt.adjs.begin(), alt.adjs.end(), e) != alt.adjs.end()) {
          continue;
        }
        const RouterPath* alt_path = expander_.expand(
            s, d, alt.path, net::Family::kIPv4,
            static_cast<std::uint32_t>(idx));
        if (alt_path != nullptr) {
          delta = std::max(0.0, alt_path->total_delay_ms - d0);
        }
        break;
      }
      // RTT regression is twice the one-way regression.
      severity_[e] += 2.0 * delta;
      ++count[e];
    }
  });
  for (std::size_t e = 0; e < severity_.size(); ++e) {
    if (count[e] > 0) severity_[e] /= count[e];
  }

  outages_ = std::make_unique<routing::OutageSchedule>(
      topo_, config_.dynamics,
      [this](topology::AdjacencyId id) { return severity_[id]; },
      stats::Rng(config_.topology.seed * 0x9e3779b9ULL + 29));
}

double Network::severity_ms(topology::AdjacencyId id) const {
  return severity_.empty() ? 0.0 : severity_.at(id);
}

void Network::refresh_masks(net::SimTime t) {
  if (t == mask_time_) return;
  outages_->failed_mask(net::Family::kIPv4, t, failed4_);
  outages_->failed_mask(net::Family::kIPv6, t, failed6_);
  exact_cache_.clear();
  mask_time_ = t;
}

std::optional<Network::Resolution> Network::resolve(ServerId src,
                                                    ServerId dst,
                                                    net::Family family,
                                                    net::SimTime t) {
  if (!prepared()) {
    throw std::logic_error("Network::resolve before prepare()");
  }
  refresh_masks(t);
  const auto& mask =
      family == net::Family::kIPv4 ? failed4_ : failed6_;
  const AsId src_as = topo_.servers.at(src).as_id;
  const AsId dst_as = topo_.servers.at(dst).as_id;
  const auto* set = candidates(family).find(src_as, dst_as);
  if (set == nullptr) {
    throw std::logic_error("Network::resolve on unprepared pair");
  }

  if (const Candidate* cand = set->resolve(mask)) {
    const auto slot = static_cast<std::uint32_t>(cand - set->candidates.data());
    if (const RouterPath* path =
            expander_.expand(src, dst, cand->path, family, slot)) {
      return Resolution{cand->path, path, false};
    }
  }

  // Exact fallback: every candidate (or the expansion) was blocked.
  const std::uint64_t key = (std::uint64_t{dst_as} << 1) |
                            (family == net::Family::kIPv6 ? 1u : 0u);
  auto it = exact_cache_.find(key);
  if (it == exact_cache_.end()) {
    it = exact_cache_.emplace(key, router_.compute(dst_as, family, &mask))
             .first;
  }
  auto as_path = router_.extract(it->second, src_as);
  if (!as_path) return std::nullopt;
  const RouterPath* path = expander_.expand(src, dst, *as_path, family,
                                            RouterPathExpander::kNoCache);
  if (path == nullptr) return std::nullopt;
  return Resolution{std::move(*as_path), path, true};
}

double Network::one_way_ms(const RouterPath& path, net::Family family,
                           net::SimTime t) const {
  double total = path.total_delay_ms;
  for (const RouterHop& hop : path.hops) {
    if (hop.link != topology::kInvalidId) {
      total += congestion_.queue_delay_ms(hop.link, family, t);
      if (events_ != nullptr) {
        total += events_->delay_ms(hop.link, family, t);
      }
    }
  }
  return total;
}

double Network::partial_one_way_ms(const RouterPath& path,
                                   std::size_t hop_index, net::Family family,
                                   net::SimTime t) const {
  double total = path.hops.at(hop_index).cumulative_delay_ms;
  for (std::size_t i = 0; i <= hop_index; ++i) {
    if (path.hops[i].link != topology::kInvalidId) {
      total += congestion_.queue_delay_ms(path.hops[i].link, family, t);
      if (events_ != nullptr) {
        total += events_->delay_ms(path.hops[i].link, family, t);
      }
    }
  }
  return total;
}

}  // namespace s2s::simnet
