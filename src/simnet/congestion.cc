#include "simnet/congestion.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace s2s::simnet {

using topology::FacilityKind;
using topology::LinkId;
using topology::LinkScope;
using topology::Topology;

bool CongestionProfile::active_at(net::SimTime t) const {
  if (episodes.empty()) return true;
  for (const auto& [start, end] : episodes) {
    if (t.seconds() >= start && t.seconds() < end) return true;
  }
  return false;
}

double CongestionProfile::delay_ms(net::Family family, net::SimTime t) const {
  if (family == net::Family::kIPv4 ? !affects_v4 : !affects_v6) return 0.0;
  if (kind == CongestionKind::kBursty) {
    // Sorted, disjoint intervals: binary search.
    const auto it = std::upper_bound(
        bursts.begin(), bursts.end(), t.seconds(),
        [](std::int64_t v, const auto& b) { return v < b.first; });
    if (it == bursts.begin()) return 0.0;
    return t.seconds() < std::prev(it)->second ? amplitude_ms : 0.0;
  }
  if (!active_at(t)) return 0.0;
  const double hour = t.local_hour_of_day(utc_offset_hours);
  // Circular distance to the busy-hour peak.
  double dh = std::fabs(hour - peak_local_hour);
  dh = std::min(dh, 24.0 - dh);
  return amplitude_ms * std::exp(-dh * dh / (2.0 * sigma_hours * sigma_hours));
}

namespace {

/// Amplitude by geography, per the Figure 9 regional breakdown.
double draw_amplitude(const Topology& topo, const topology::Link& link,
                      stats::Rng& rng) {
  const auto& city_a = topo.cities[topo.routers[link.end_a.router].city];
  const auto& city_b = topo.cities[topo.routers[link.end_b.router].city];
  const bool us_us = city_a.country == "US" && city_b.country == "US";
  const bool same_continent = city_a.continent == city_b.continent;
  const bool asia_europe =
      (city_a.continent == "AS" && city_b.continent == "EU") ||
      (city_a.continent == "EU" && city_b.continent == "AS");
  if (us_us) return std::clamp(rng.normal(25.0, 3.0), 15.0, 40.0);
  if (asia_europe) return std::clamp(rng.normal(90.0, 8.0), 60.0, 120.0);
  if (!same_continent) return std::clamp(rng.normal(60.0, 8.0), 40.0, 90.0);
  return rng.uniform(15.0, 45.0);  // intra-EU / intra-Asia / other domestic
}

}  // namespace

CongestionModel::CongestionModel(Topology& topo,
                                 const CongestionConfig& config,
                                 stats::Rng rng) {
  topo_links_.assign(topo.links.size(), topology::kInvalidId);
  for (LinkId id = 0; id < topo.links.size(); ++id) {
    topology::Link& link = topo.links[id];

    // Bursty (non-diurnal) congestion: irregular episodes, any link kind.
    if (rng.chance(config.bursty_fraction)) {
      CongestionProfile profile;
      profile.link = id;
      profile.kind = CongestionKind::kBursty;
      profile.amplitude_ms = rng.uniform(config.burst_amplitude_min,
                                         config.burst_amplitude_max);
      profile.affects_v4 = true;
      profile.affects_v6 =
          link.ipv6 && rng.chance(config.bursty_shared_with_v6_prob);
      const int bursts = std::poisson_distribution<int>(
          config.bursts_per_day * config.campaign_days)(rng);
      for (int b = 0; b < bursts; ++b) {
        const auto start = static_cast<std::int64_t>(
            rng.uniform() * config.campaign_days * 86400.0);
        const auto len = static_cast<std::int64_t>(
            rng.uniform(config.burst_hours_min, config.burst_hours_max) *
            3600.0);
        profile.bursts.emplace_back(start, start + len);
      }
      std::sort(profile.bursts.begin(), profile.bursts.end());
      // Merge overlaps so binary search sees disjoint intervals.
      std::vector<std::pair<std::int64_t, std::int64_t>> merged;
      for (const auto& b : profile.bursts) {
        if (!merged.empty() && b.first <= merged.back().second) {
          merged.back().second = std::max(merged.back().second, b.second);
        } else {
          merged.push_back(b);
        }
      }
      profile.bursts = std::move(merged);
      link.congestion_profile = static_cast<std::uint32_t>(profiles_.size());
      topo_links_[id] = link.congestion_profile;
      profiles_.push_back(std::move(profile));
      continue;
    }

    double prob = config.internal_fraction;
    if (link.scope == LinkScope::kInterconnection) {
      prob = link.facility == FacilityKind::kPublicIxp
                 ? config.public_ixp_fraction
                 : config.private_interconnect_fraction;
    }
    if (!rng.chance(prob)) continue;

    CongestionProfile profile;
    profile.link = id;
    profile.amplitude_ms = draw_amplitude(topo, link, rng);
    // Busy hour: evening access peak or business mid-day peak.
    profile.peak_local_hour =
        rng.chance(0.6) ? rng.uniform(19.0, 21.5) : rng.uniform(12.0, 14.5);
    profile.sigma_hours =
        rng.uniform(config.peak_sigma_min, config.peak_sigma_max);
    const topology::CityId where =
        link.city != topology::kInvalidId
            ? link.city
            : topo.routers[link.end_a.router].city;
    profile.utc_offset_hours = topo.cities[where].utc_offset_hours;
    profile.affects_v4 = true;
    profile.affects_v6 = link.ipv6 && rng.chance(config.shared_with_v6_prob);

    if (!rng.chance(config.permanent_prob)) {
      const int episodes =
          config.episodes_min +
          static_cast<int>(rng.below(static_cast<std::uint64_t>(
              config.episodes_max - config.episodes_min + 1)));
      for (int e = 0; e < episodes; ++e) {
        const double days =
            rng.uniform(config.episode_days_min, config.episode_days_max);
        const double start_day =
            rng.uniform(0.0, std::max(1.0, config.campaign_days - days));
        profile.episodes.emplace_back(
            static_cast<std::int64_t>(start_day * 86400.0),
            static_cast<std::int64_t>((start_day + days) * 86400.0));
      }
      std::sort(profile.episodes.begin(), profile.episodes.end());
    }

    link.congestion_profile = static_cast<std::uint32_t>(profiles_.size());
    topo_links_[id] = link.congestion_profile;
    profiles_.push_back(std::move(profile));
  }
}

}  // namespace s2s::simnet
