// Simulated Internet-core network: the facade the probing layer talks to.
//
// Owns the generated topology plus everything that makes it move:
//   * candidate AS paths per measurement pair (routing/candidates.h);
//   * the outage schedule, with repair times calibrated against each
//     adjacency's measured RTT regression (routing/dynamics.h);
//   * the diurnal congestion model (simnet/congestion.h);
//   * the router-level path expander (simnet/router_path.h).
//
// Usage: construct, call prepare() (or prepare_full_mesh()) with every
// ordered server pair a campaign will probe, then resolve()/one_way_ms()
// per measurement. Resolution is exact: when multiple simultaneous
// failures block every precomputed candidate, the valley-free routes are
// recomputed on the fly (cached per epoch).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/relationships.h"
#include "bgp/rib.h"
#include "net/timebase.h"
#include "routing/candidates.h"
#include "routing/dynamics.h"
#include "routing/valley_free.h"
#include "simnet/congestion.h"
#include "simnet/events.h"
#include "simnet/router_path.h"
#include "topology/generator.h"

namespace s2s::simnet {

struct NetworkConfig {
  topology::GeneratorConfig topology;
  routing::DynamicsConfig dynamics;
  CongestionConfig congestion;
  /// Severity assigned to an adjacency whose failure disconnects a pair.
  double disconnect_severity_ms = 200.0;
};

class Network {
 public:
  explicit Network(const NetworkConfig& config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const topology::Topology& topo() const noexcept { return topo_; }
  const CongestionModel& congestion() const noexcept { return congestion_; }

  /// Installs (or clears, with nullptr) an event-driven congestion overlay;
  /// not owned. While installed, one_way_ms adds event queue delays and the
  /// path_event_blocked checks report maintenance/dark-link probe loss.
  void set_events(const EventSchedule* events) noexcept { events_ = events; }
  const EventSchedule* events() const noexcept { return events_; }

  /// True when an installed event schedule drops probes crossing `path` at
  /// t (always false with no schedule installed).
  bool path_event_blocked(const RouterPath& path, net::Family family,
                          net::SimTime t) const {
    return events_ != nullptr && events_->path_blocked(path, family, t);
  }
  /// First blocked hop index of `path` at t, if any.
  std::optional<std::size_t> first_event_blocked_hop(const RouterPath& path,
                                                     net::Family family,
                                                     net::SimTime t) const {
    return events_ == nullptr ? std::nullopt
                              : events_->first_blocked_hop(path, family, t);
  }
  const bgp::Rib& rib() const noexcept { return rib_; }
  const routing::ValleyFreeRouter& router() const noexcept { return router_; }
  /// Valid after the first prepare() call.
  const routing::OutageSchedule& outages() const { return *outages_; }
  bool prepared() const noexcept { return outages_ != nullptr; }

  /// Registers the ordered server pairs a campaign will probe; builds
  /// candidate paths for them. The first call also calibrates outage
  /// severities and materializes the outage schedule; later calls extend
  /// the candidate tables for new pairs only.
  void prepare(
      std::span<const std::pair<topology::ServerId, topology::ServerId>> pairs);
  void prepare_full_mesh(std::span<const topology::ServerId> servers);

  struct Resolution {
    std::vector<topology::AsId> as_path;
    /// Router-level expansion; invalidated by the next resolve() call when
    /// `from_fallback` is true (consume before resolving again).
    const RouterPath* path = nullptr;
    bool from_fallback = false;
  };

  /// Active route at time t, or nullopt when the destination is
  /// unreachable (every policy-compliant path crosses a failed adjacency,
  /// or the destination is not in the requested plane).
  std::optional<Resolution> resolve(topology::ServerId src,
                                    topology::ServerId dst, net::Family family,
                                    net::SimTime t);

  /// Deterministic one-way latency: propagation plus diurnal queueing.
  double one_way_ms(const RouterPath& path, net::Family family,
                    net::SimTime t) const;
  /// Same, truncated at hop index (inclusive); used for per-hop RTTs.
  double partial_one_way_ms(const RouterPath& path, std::size_t hop_index,
                            net::Family family, net::SimTime t) const;

  /// Mean RTT regression (ms) caused by losing the adjacency, as estimated
  /// during prepare(); 0 for adjacencies no prepared pair crosses.
  double severity_ms(topology::AdjacencyId id) const;

 private:
  const routing::CandidateTable& candidates(net::Family family) const {
    return family == net::Family::kIPv4 ? *candidates4_ : *candidates6_;
  }
  void refresh_masks(net::SimTime t);
  void calibrate_and_schedule();

  NetworkConfig config_;
  topology::Topology topo_;
  routing::ValleyFreeRouter router_;
  CongestionModel congestion_;
  bgp::Rib rib_;
  RouterPathExpander expander_;

  std::vector<std::pair<topology::AsId, topology::AsId>> as_pairs4_;
  std::vector<std::pair<topology::AsId, topology::AsId>> as_pairs6_;
  std::unique_ptr<routing::CandidateTable> candidates4_;
  std::unique_ptr<routing::CandidateTable> candidates6_;
  std::unique_ptr<routing::OutageSchedule> outages_;
  std::vector<double> severity_;
  const EventSchedule* events_ = nullptr;

  // Per-epoch state.
  net::SimTime mask_time_{-1};
  routing::AdjacencyMask failed4_;
  routing::AdjacencyMask failed6_;
  std::unordered_map<std::uint64_t, routing::RouteTable> exact_cache_;
};

}  // namespace s2s::simnet
