// Event-driven congestion overlay (ROADMAP "Scenario diversity").
//
// The diurnal CongestionModel injects exactly what the paper's FFT
// detector was built to find. This layer overlays *transient* congestion
// episodes on links — congestion the detector should flag but was not
// designed for, plus benign dynamics it should ignore — following the
// typology of Genin & Splett ("Where in the Internet is congestion?",
// PAPERS.md):
//   * flash crowds:       sharp onset, exponential decay of queue delay;
//   * link-failure load cascades: a link goes dark and failover shifts
//                         its load onto sibling links (same adjacency, or
//                         links sharing a router), which inflate;
//   * bufferbloat:        state-dependent queue delay that integrates
//                         offered load over capacity — the delay curve
//                         follows the load *state*, not wall clock;
//   * maintenance windows: loss/downtime with NO RTT inflation — a
//                         designed false-positive trap for RTT detectors.
//
// Every event emits ground truth into a GroundTruthLedger (link, kind,
// [t0,t1), magnitude, affected pair set) persisted as versioned JSON
// alongside the campaign, which is what turns detection into a measurable
// precision/recall problem (Fontugne et al., PAPERS.md). All randomness
// is routed through the seeded stats::Rng passed in — never
// std::random_device or wall time — so the schedule and ledger are
// byte-identical across runs and thread widths (DESIGN.md section 9).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/timebase.h"
#include "stats/rng.h"
#include "topology/topology.h"

namespace s2s::simnet {

class Network;
class CongestionModel;
struct RouterPath;

/// Ground-truth event kinds. kDiurnalModel tags entries synthesized from
/// the existing diurnal CongestionModel (ground-truth-only; the model
/// itself stays in congestion.h).
enum class EventKind : std::uint8_t {
  kFlashCrowd,
  kLinkFailureCascade,
  kBufferbloat,
  kMaintenance,
  kDiurnalModel,
};

/// Stable wire names ("flash_crowd", ... , "diurnal").
std::string_view event_kind_name(EventKind kind);
std::optional<EventKind> event_kind_from_name(std::string_view name);

/// An ordered measurement pair on one plane, as campaigns probe them.
struct PairKey {
  topology::ServerId src = topology::kInvalidId;
  topology::ServerId dst = topology::kInvalidId;
  net::Family family = net::Family::kIPv4;

  friend auto operator<=>(const PairKey&, const PairKey&) = default;
};

/// One ledger row: what happened to which link, when, how hard, and which
/// probed pairs could see it. `magnitude` is peak added one-way queue
/// delay in ms for inflating kinds, and the loss fraction in [0, 1] for
/// maintenance windows. `inflates_rtt` is the matcher's positive-class
/// bit: maintenance (and the dark link of a cascade) are false-positive
/// traps, not detectable congestion.
struct GroundTruthEntry {
  topology::LinkId link = topology::kInvalidId;
  EventKind kind = EventKind::kFlashCrowd;
  std::int64_t t0 = 0;  ///< [t0, t1) in campaign seconds
  std::int64_t t1 = 0;
  double magnitude = 0.0;
  bool inflates_rtt = true;
  bool affects_v4 = true;
  bool affects_v6 = true;
  /// Probed pairs whose forward or reverse path crosses `link` on the
  /// affected plane (filled by resolve_affected_pairs; sorted, unique).
  std::vector<PairKey> affected;
};

inline constexpr int kLedgerSchemaVersion = 1;

/// The per-campaign ground-truth artifact. Serialization is versioned
/// JSON with deterministic ordering, so equal ledgers are byte-equal.
struct GroundTruthLedger {
  int schema_version = kLedgerSchemaVersion;
  std::vector<GroundTruthEntry> entries;

  std::string to_json() const;
  static std::optional<GroundTruthLedger> parse(std::string_view json_text);
};

struct EventScheduleConfig {
  /// Window events are drawn in (campaign days).
  double start_day = 0.0;
  double days = 7.0;
  /// Global multiplier on every delay magnitude (the scenario matrix's
  /// low/high axis).
  double magnitude_scale = 1.0;

  int flash_crowds = 0;
  double flash_peak_ms_min = 20.0, flash_peak_ms_max = 45.0;
  double flash_hours_min = 3.0, flash_hours_max = 8.0;

  int cascades = 0;
  double cascade_spill_ms_min = 14.0, cascade_spill_ms_max = 30.0;
  double cascade_hours_min = 6.0, cascade_hours_max = 18.0;
  int cascade_max_siblings = 3;

  int bufferbloats = 0;
  double bloat_peak_ms_min = 25.0, bloat_peak_ms_max = 60.0;
  double bloat_hours_min = 12.0, bloat_hours_max = 36.0;
  /// Peak offered load above capacity (capacity == 1.0).
  double bloat_overload = 0.4;

  int maintenances = 0;
  double maintenance_hours_min = 2.0, maintenance_hours_max = 6.0;
  /// Fraction of probes lost while the window is open (1.0 = hard down).
  double maintenance_loss = 1.0;
};

/// A per-link effect expanded from one event. A cascade expands into one
/// blocking effect (the dark link) plus one inflating effect per sibling.
struct EventEffect {
  topology::LinkId link = topology::kInvalidId;
  EventKind kind = EventKind::kFlashCrowd;
  std::int64_t t0 = 0;
  std::int64_t t1 = 0;
  double magnitude = 0.0;  ///< peak delay ms, or loss fraction (blocking)
  double tau_s = 0.0;      ///< flash-crowd decay constant
  bool blocks = false;     ///< drops probes instead of inflating RTT
  bool affects_v4 = true;
  bool affects_v6 = true;
  /// Bufferbloat only: queue delay sampled every kQueueStepS from the
  /// integrated (load - capacity) state, linearly interpolated at query
  /// time. Precomputed at construction so lookups are deterministic and
  /// cheap on the probe hot path.
  std::vector<double> queue_ms;

  static constexpr std::int64_t kQueueStepS = 300;

  /// Added one-way queue delay of this effect at time t (0 outside the
  /// window, 0 for blocking effects).
  double delay_ms(net::Family family, net::SimTime t) const;
  /// True when the effect drops probes crossing the link at t. Partial
  /// loss fractions are decided by a deterministic per-(link, 10-minute
  /// chunk) hash, not an RNG stream, so enabling events never perturbs
  /// the probe engines' draw order.
  bool blocked(net::Family family, net::SimTime t) const;
};

/// Deterministic, seed-stable schedule of transient congestion events.
/// Construction draws every event from `rng` in a fixed order; target
/// links come from `candidate_links` (typically the links crossed by the
/// campaign's probed pairs, so events land where probes can see them) or
/// from the whole topology when the candidate list is empty.
class EventSchedule {
 public:
  EventSchedule(const topology::Topology& topo,
                const EventScheduleConfig& config,
                std::span<const topology::LinkId> candidate_links,
                stats::Rng rng);

  /// Total added one-way queue delay on `link` at t across active events.
  double delay_ms(topology::LinkId link, net::Family family,
                  net::SimTime t) const;
  /// True when any active effect on `link` drops probes at t.
  bool blocked(topology::LinkId link, net::Family family,
               net::SimTime t) const;
  /// True when any hop link of `path` is blocked at t.
  bool path_blocked(const RouterPath& path, net::Family family,
                    net::SimTime t) const;
  /// Index of the first blocked hop of `path` at t, if any.
  std::optional<std::size_t> first_blocked_hop(const RouterPath& path,
                                               net::Family family,
                                               net::SimTime t) const;

  const std::vector<EventEffect>& effects() const noexcept {
    return effects_;
  }

  /// Ledger rows for every effect (affected-pair sets empty until
  /// resolve_affected_pairs fills them).
  GroundTruthLedger ledger() const;

 private:
  std::vector<EventEffect> effects_;
  /// link -> indexes into effects_; empty inner vectors for quiet links.
  std::vector<std::vector<std::uint32_t>> by_link_;
};

/// Appends ground-truth rows for the diurnal CongestionModel profiles
/// whose amplitude is at least `min_amplitude_ms` and whose episodes
/// cover at least `min_active_fraction` of the [start_day, start_day +
/// days) window (bursty profiles and sub-threshold amplitudes are not
/// "expected detectable" and stay out of the positive class).
void append_congestion_ground_truth(GroundTruthLedger& ledger,
                                    const CongestionModel& model,
                                    double start_day, double days,
                                    double min_amplitude_ms = 15.0,
                                    double min_active_fraction = 0.7);

/// Fills every entry's affected-pair set: pair (s, d, family) is affected
/// when the forward or reverse path resolved at the event's midpoint
/// crosses the entry's link on a plane the entry affects. `pairs` are the
/// ordered pairs a campaign probes (pass both directions).
void resolve_affected_pairs(
    GroundTruthLedger& ledger, Network& net,
    std::span<const std::pair<topology::ServerId, topology::ServerId>> pairs);

/// The links crossed by `pairs` at time t on `family`, each with its
/// crossing-pair count, sorted by descending count then ascending id —
/// the candidate list that makes event targeting hit probed paths.
std::vector<std::pair<topology::LinkId, std::size_t>> links_crossed(
    Network& net,
    std::span<const std::pair<topology::ServerId, topology::ServerId>> pairs,
    net::Family family, net::SimTime t);

}  // namespace s2s::simnet
