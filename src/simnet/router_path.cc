#include "simnet/router_path.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "net/geo.h"

namespace s2s::simnet {

using topology::AdjacencyId;
using topology::AsId;
using topology::CityId;
using topology::LinkId;
using topology::LinkScope;
using topology::RouterId;
using topology::ServerId;
using topology::Topology;

RouterPathExpander::RouterPathExpander(const Topology& topo) : topo_(topo) {
  internal_links_.resize(topo.routers.size());
  for (LinkId id = 0; id < topo.links.size(); ++id) {
    const auto& link = topo.links[id];
    if (link.scope != LinkScope::kInternal) continue;
    internal_links_[link.end_a.router].push_back(id);
    internal_links_[link.end_b.router].push_back(id);
  }
}

const std::vector<LinkId>* RouterPathExpander::intra_path(AsId /*as*/,
                                                          RouterId from,
                                                          RouterId to) {
  const IntraKey key{from, to};
  auto it = intra_cache_.find(key);
  if (it != intra_cache_.end()) {
    return it->second.empty() && from != to ? nullptr : &it->second;
  }

  // Dijkstra over the owner AS's internal links, by delay.
  std::unordered_map<RouterId, double> dist;
  std::unordered_map<RouterId, LinkId> parent_link;
  using Item = std::pair<double, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, r] = heap.top();
    heap.pop();
    if (d > dist[r]) continue;
    if (r == to) break;
    for (LinkId lid : internal_links_[r]) {
      const auto& link = topo_.links[lid];
      const RouterId other = topo_.far_end(link, r).router;
      const double nd = d + link.delay_ms;
      const auto found = dist.find(other);
      if (found == dist.end() || nd < found->second - 1e-12) {
        dist[other] = nd;
        parent_link[other] = lid;
        heap.emplace(nd, other);
      }
    }
  }

  std::vector<LinkId> path;
  if (from != to) {
    if (!dist.contains(to)) {
      // Cache the negative result as an empty path with from != to.
      intra_cache_.emplace(key, std::vector<LinkId>{});
      return nullptr;
    }
    RouterId cur = to;
    while (cur != from) {
      const LinkId lid = parent_link.at(cur);
      path.push_back(lid);
      cur = topo_.far_end(topo_.links[lid], cur).router;
    }
    std::reverse(path.begin(), path.end());
  }
  auto [slot, inserted] = intra_cache_.emplace(key, std::move(path));
  return &slot->second;
}

std::optional<LinkId> RouterPathExpander::pick_link(AdjacencyId adj,
                                                    RouterId from,
                                                    CityId dst_city,
                                                    net::Family family) const {
  const auto& adjacency = topo_.adjacencies[adj];
  const auto& from_city = topo_.cities[topo_.routers[from].city];
  const auto& final_city = topo_.cities[dst_city];
  double best = std::numeric_limits<double>::infinity();
  std::optional<LinkId> best_link;
  for (LinkId lid : adjacency.links) {
    const auto& link = topo_.links[lid];
    if (family == net::Family::kIPv6 && !link.ipv6) continue;
    const auto& link_city = topo_.cities[link.city];
    double metric =
        net::great_circle_km(from_city.location, link_city.location) +
        0.5 * net::great_circle_km(link_city.location, final_city.location);
    if (family == net::Family::kIPv6) {
      // Deterministic per-link perturbation so the IPv6 plane sometimes
      // hands off in a different facility than IPv4 (shared AS path,
      // different router path — the paper's Section 6 observation).
      const double jitter =
          static_cast<double>((lid * 2654435761u) % 1000u) / 1000.0;
      metric *= 1.0 + 0.18 * jitter;
    }
    if (metric < best) {
      best = metric;
      best_link = lid;
    }
  }
  return best_link;
}

bool RouterPathExpander::build(ServerId src, ServerId dst,
                               std::span<const AsId> as_path,
                               net::Family family, RouterPath& out) {
  const auto& source = topo_.servers[src];
  const auto& target = topo_.servers[dst];
  out.src = src;
  out.dst = dst;
  out.hops.clear();

  double delay = kAccessDelayMs;
  RouterId cur = source.attachment;
  out.hops.push_back({topology::kInvalidId, cur, delay});

  auto walk_internal = [&](AsId as, RouterId to) -> bool {
    if (cur == to) return true;
    const auto* segment = intra_path(as, cur, to);
    if (segment == nullptr) return false;
    for (LinkId lid : *segment) {
      const auto& link = topo_.links[lid];
      delay += link.delay_ms;
      cur = topo_.far_end(link, cur).router;
      out.hops.push_back({lid, cur, delay});
    }
    return true;
  };

  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const auto adj = topo_.find_adjacency(as_path[i], as_path[i + 1]);
    if (!adj) return false;
    const auto lid = pick_link(*adj, cur, target.city, family);
    if (!lid) return false;
    const auto& link = topo_.links[*lid];
    // Egress router of the current AS on this link.
    const RouterId egress =
        topo_.routers[link.end_a.router].owner == as_path[i]
            ? link.end_a.router
            : link.end_b.router;
    if (!walk_internal(as_path[i], egress)) return false;
    delay += link.delay_ms;
    cur = topo_.far_end(link, cur).router;
    out.hops.push_back({*lid, cur, delay});
  }

  if (!walk_internal(as_path.back(), target.attachment)) return false;
  delay += kAccessDelayMs;
  out.total_delay_ms = delay;
  return true;
}

const RouterPath* RouterPathExpander::expand(ServerId src, ServerId dst,
                                             std::span<const AsId> as_path,
                                             net::Family family,
                                             std::uint32_t cache_slot) {
  if (as_path.empty()) return nullptr;
  const bool cacheable = cache_slot != kNoCache;
  std::uint64_t key = 0;
  if (cacheable) {
    // Disjoint bit fields: servers < 2^20, candidate slots < 2^19.
    key = (std::uint64_t{src} << 40) | (std::uint64_t{dst} << 20) |
          (std::uint64_t{cache_slot} << 1) |
          (family == net::Family::kIPv6 ? 1u : 0u);
    const auto it = path_cache_.find(key);
    if (it != path_cache_.end()) return &it->second;
  }
  RouterPath path;
  if (!build(src, dst, as_path, family, path)) return nullptr;
  if (!cacheable) {
    scratch_ = std::move(path);
    return &scratch_;
  }
  auto [slot, inserted] = path_cache_.emplace(key, std::move(path));
  return &slot->second;
}

}  // namespace s2s::simnet
