#include "simnet/events.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"
#include "simnet/congestion.h"
#include "simnet/network.h"
#include "simnet/router_path.h"

namespace s2s::simnet {

using topology::LinkId;
using topology::ServerId;

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kFlashCrowd: return "flash_crowd";
    case EventKind::kLinkFailureCascade: return "link_failure_cascade";
    case EventKind::kBufferbloat: return "bufferbloat";
    case EventKind::kMaintenance: return "maintenance";
    case EventKind::kDiurnalModel: return "diurnal";
  }
  return "unknown";
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (EventKind k : {EventKind::kFlashCrowd, EventKind::kLinkFailureCascade,
                      EventKind::kBufferbloat, EventKind::kMaintenance,
                      EventKind::kDiurnalModel}) {
    if (name == event_kind_name(k)) return k;
  }
  return std::nullopt;
}

namespace {

/// SplitMix64 finalizer: the deterministic hash behind partial-loss
/// decisions (no RNG stream, so probe engines draw identically whether
/// or not events are installed).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool hash_chance(std::uint64_t a, std::uint64_t b, double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const double u =
      static_cast<double>(mix64(a * 0x9e3779b97f4a7c15ULL ^ b) >> 11) *
      0x1.0p-53;
  return u < p;
}

bool family_on(const EventEffect& e, net::Family family) {
  return family == net::Family::kIPv4 ? e.affects_v4 : e.affects_v6;
}

}  // namespace

double EventEffect::delay_ms(net::Family family, net::SimTime t) const {
  if (blocks || !family_on(*this, family)) return 0.0;
  const std::int64_t s = t.seconds();
  if (s < t0 || s >= t1) return 0.0;
  switch (kind) {
    case EventKind::kFlashCrowd:
      // Sharp onset at t0, exponential drain as the crowd disperses.
      return magnitude *
             std::exp(-static_cast<double>(s - t0) / std::max(1.0, tau_s));
    case EventKind::kLinkFailureCascade:
      // Failover load lands at once and stays until the link is repaired.
      return magnitude;
    case EventKind::kBufferbloat: {
      if (queue_ms.empty()) return 0.0;
      // Linear interpolation over the precomputed queue-state samples.
      const double pos =
          static_cast<double>(s - t0) / static_cast<double>(kQueueStepS);
      const auto lo = static_cast<std::size_t>(pos);
      if (lo + 1 >= queue_ms.size()) return queue_ms.back();
      const double frac = pos - static_cast<double>(lo);
      return queue_ms[lo] + frac * (queue_ms[lo + 1] - queue_ms[lo]);
    }
    case EventKind::kMaintenance:
    case EventKind::kDiurnalModel:
      return 0.0;  // maintenance never inflates; diurnal is model-owned
  }
  return 0.0;
}

bool EventEffect::blocked(net::Family family, net::SimTime t) const {
  if (!blocks || !family_on(*this, family)) return false;
  const std::int64_t s = t.seconds();
  if (s < t0 || s >= t1) return false;
  // Partial loss: one deterministic coin per (link, 10-minute chunk).
  return hash_chance(static_cast<std::uint64_t>(link) << 32 ^
                         static_cast<std::uint64_t>(kind),
                     static_cast<std::uint64_t>(s / 600), magnitude);
}

namespace {

/// Sibling links that absorb a failed link's load: other links of the
/// same adjacency first (parallel interconnects), then links sharing a
/// router with the failed link. Sorted, unique, capped at `max_count`.
std::vector<LinkId> cascade_siblings(const topology::Topology& topo,
                                     LinkId failed, int max_count) {
  std::vector<LinkId> out;
  const auto& link = topo.links[failed];
  if (link.adjacency != topology::kInvalidId) {
    for (LinkId id : topo.adjacencies[link.adjacency].links) {
      if (id != failed) out.push_back(id);
    }
  }
  if (out.size() < static_cast<std::size_t>(max_count)) {
    for (LinkId id = 0; id < topo.links.size(); ++id) {
      if (id == failed) continue;
      const auto& other = topo.links[id];
      const bool shares_router =
          other.end_a.router == link.end_a.router ||
          other.end_a.router == link.end_b.router ||
          other.end_b.router == link.end_a.router ||
          other.end_b.router == link.end_b.router;
      if (shares_router) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() > static_cast<std::size_t>(max_count)) {
    out.resize(static_cast<std::size_t>(max_count));
  }
  return out;
}

/// Offered load (capacity == 1.0) over a bufferbloat window: a surge that
/// peaks mid-episode and ends at 0.7 of the window, then an under-loaded
/// tail that drains the queue. The delay curve below integrates this, so
/// its shape follows the load *state*, not wall clock.
double bloat_load(double x, double overload) {
  constexpr double kSurgeEnd = 0.7;
  if (x < kSurgeEnd) {
    return 1.0 + overload * std::sin(3.14159265358979323846 * x / kSurgeEnd);
  }
  return 0.5;
}

/// Integrates q' = load - capacity (clamped at 0) over the window and
/// rescales so the peak equals `peak_ms`.
std::vector<double> bloat_queue_samples(std::int64_t t0, std::int64_t t1,
                                        double overload, double peak_ms) {
  const auto len = static_cast<double>(t1 - t0);
  const auto n = static_cast<std::size_t>(
                     (t1 - t0) / EventEffect::kQueueStepS) +
                 2;
  std::vector<double> q(n, 0.0);
  double acc = 0.0, peak = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double x =
        static_cast<double>(i) * EventEffect::kQueueStepS / len;
    acc = std::max(0.0, acc + (bloat_load(std::min(x, 1.0), overload) - 1.0) *
                             EventEffect::kQueueStepS);
    q[i] = acc;
    peak = std::max(peak, acc);
  }
  if (peak > 0.0) {
    for (double& v : q) v *= peak_ms / peak;
  }
  return q;
}

}  // namespace

EventSchedule::EventSchedule(const topology::Topology& topo,
                             const EventScheduleConfig& config,
                             std::span<const LinkId> candidate_links,
                             stats::Rng rng) {
  // Target pool: the caller's candidates (links probes actually cross)
  // or, failing that, every link. Draws pop without replacement so the
  // matrix's events land on distinct links.
  std::vector<LinkId> pool(candidate_links.begin(), candidate_links.end());
  if (pool.empty()) {
    pool.resize(topo.links.size());
    for (LinkId id = 0; id < topo.links.size(); ++id) pool[id] = id;
  }
  auto draw_link = [&]() -> std::optional<LinkId> {
    if (pool.empty()) return std::nullopt;
    const auto idx = static_cast<std::size_t>(rng.below(pool.size()));
    const LinkId id = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    return id;
  };
  const std::int64_t w0 =
      static_cast<std::int64_t>(config.start_day * 86400.0);
  const std::int64_t w1 =
      w0 + static_cast<std::int64_t>(config.days * 86400.0);
  auto draw_window = [&](double hours_min,
                         double hours_max) -> std::pair<std::int64_t,
                                                        std::int64_t> {
    const auto len = static_cast<std::int64_t>(
        rng.uniform(hours_min, hours_max) * 3600.0);
    const std::int64_t latest = std::max<std::int64_t>(w0 + 1, w1 - len);
    const auto t0 = w0 + static_cast<std::int64_t>(
                             rng.uniform() *
                             static_cast<double>(latest - w0));
    return {t0, t0 + len};
  };

  for (int i = 0; i < config.flash_crowds; ++i) {
    const auto link = draw_link();
    if (!link) break;
    EventEffect e;
    e.link = *link;
    e.kind = EventKind::kFlashCrowd;
    std::tie(e.t0, e.t1) =
        draw_window(config.flash_hours_min, config.flash_hours_max);
    e.magnitude = config.magnitude_scale *
                  rng.uniform(config.flash_peak_ms_min,
                              config.flash_peak_ms_max);
    e.tau_s = static_cast<double>(e.t1 - e.t0) / 3.0;
    effects_.push_back(std::move(e));
  }

  for (int i = 0; i < config.cascades; ++i) {
    const auto link = draw_link();
    if (!link) break;
    const auto [t0, t1] =
        draw_window(config.cascade_hours_min, config.cascade_hours_max);
    const double spill = config.magnitude_scale *
                         rng.uniform(config.cascade_spill_ms_min,
                                     config.cascade_spill_ms_max);
    EventEffect dark;
    dark.link = *link;
    dark.kind = EventKind::kLinkFailureCascade;
    dark.t0 = t0;
    dark.t1 = t1;
    dark.magnitude = 1.0;  // hard down until repaired
    dark.blocks = true;
    effects_.push_back(std::move(dark));
    for (LinkId sib :
         cascade_siblings(topo, *link, config.cascade_max_siblings)) {
      EventEffect spill_effect;
      spill_effect.link = sib;
      spill_effect.kind = EventKind::kLinkFailureCascade;
      spill_effect.t0 = t0;
      spill_effect.t1 = t1;
      spill_effect.magnitude = spill;
      effects_.push_back(std::move(spill_effect));
    }
  }

  for (int i = 0; i < config.bufferbloats; ++i) {
    const auto link = draw_link();
    if (!link) break;
    EventEffect e;
    e.link = *link;
    e.kind = EventKind::kBufferbloat;
    std::tie(e.t0, e.t1) =
        draw_window(config.bloat_hours_min, config.bloat_hours_max);
    e.magnitude = config.magnitude_scale *
                  rng.uniform(config.bloat_peak_ms_min,
                              config.bloat_peak_ms_max);
    e.queue_ms =
        bloat_queue_samples(e.t0, e.t1, config.bloat_overload, e.magnitude);
    effects_.push_back(std::move(e));
  }

  for (int i = 0; i < config.maintenances; ++i) {
    const auto link = draw_link();
    if (!link) break;
    EventEffect e;
    e.link = *link;
    e.kind = EventKind::kMaintenance;
    std::tie(e.t0, e.t1) = draw_window(config.maintenance_hours_min,
                                       config.maintenance_hours_max);
    e.magnitude = config.maintenance_loss;
    e.blocks = true;
    effects_.push_back(std::move(e));
  }

  by_link_.resize(topo.links.size());
  for (std::uint32_t i = 0; i < effects_.size(); ++i) {
    by_link_[effects_[i].link].push_back(i);
  }
}

double EventSchedule::delay_ms(LinkId link, net::Family family,
                               net::SimTime t) const {
  if (link >= by_link_.size()) return 0.0;
  double total = 0.0;
  for (std::uint32_t i : by_link_[link]) {
    total += effects_[i].delay_ms(family, t);
  }
  return total;
}

bool EventSchedule::blocked(LinkId link, net::Family family,
                            net::SimTime t) const {
  if (link >= by_link_.size()) return false;
  for (std::uint32_t i : by_link_[link]) {
    if (effects_[i].blocked(family, t)) return true;
  }
  return false;
}

bool EventSchedule::path_blocked(const RouterPath& path, net::Family family,
                                 net::SimTime t) const {
  return first_blocked_hop(path, family, t).has_value();
}

std::optional<std::size_t> EventSchedule::first_blocked_hop(
    const RouterPath& path, net::Family family, net::SimTime t) const {
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const LinkId link = path.hops[i].link;
    if (link != topology::kInvalidId && blocked(link, family, t)) return i;
  }
  return std::nullopt;
}

GroundTruthLedger EventSchedule::ledger() const {
  GroundTruthLedger out;
  out.entries.reserve(effects_.size());
  for (const EventEffect& e : effects_) {
    GroundTruthEntry entry;
    entry.link = e.link;
    entry.kind = e.kind;
    entry.t0 = e.t0;
    entry.t1 = e.t1;
    entry.magnitude = e.magnitude;
    entry.inflates_rtt = !e.blocks;
    entry.affects_v4 = e.affects_v4;
    entry.affects_v6 = e.affects_v6;
    out.entries.push_back(std::move(entry));
  }
  return out;
}

std::string GroundTruthLedger::to_json() const {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema_version").value(schema_version);
  w.key("entries").begin_array();
  for (const GroundTruthEntry& e : entries) {
    w.begin_object();
    w.key("link").value(static_cast<std::uint64_t>(e.link));
    w.key("kind").value(event_kind_name(e.kind));
    w.key("t0").value(e.t0);
    w.key("t1").value(e.t1);
    w.key("magnitude").value(e.magnitude);
    w.key("inflates_rtt").value(e.inflates_rtt);
    w.key("affects_v4").value(e.affects_v4);
    w.key("affects_v6").value(e.affects_v6);
    w.key("affected").begin_array();
    for (const PairKey& p : e.affected) {
      w.begin_array();
      w.value(static_cast<std::uint64_t>(p.src));
      w.value(static_cast<std::uint64_t>(p.dst));
      w.value(p.family == net::Family::kIPv6 ? 6 : 4);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<GroundTruthLedger> GroundTruthLedger::parse(
    std::string_view json_text) {
  const auto doc = obs::json::parse(json_text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* version = doc->find("schema_version");
  if (!version || !version->is_number() ||
      version->as_i64() != kLedgerSchemaVersion) {
    return std::nullopt;
  }
  const auto* entries = doc->find("entries");
  if (!entries || !entries->is_array()) return std::nullopt;
  GroundTruthLedger out;
  for (const auto& item : entries->array) {
    if (!item.is_object()) return std::nullopt;
    GroundTruthEntry e;
    const auto* link = item.find("link");
    const auto* kind = item.find("kind");
    const auto* t0 = item.find("t0");
    const auto* t1 = item.find("t1");
    const auto* magnitude = item.find("magnitude");
    const auto* inflates = item.find("inflates_rtt");
    if (!link || !link->is_number() || !kind || !kind->is_string() || !t0 ||
        !t0->is_number() || !t1 || !t1->is_number() || !magnitude ||
        !magnitude->is_number() || !inflates || !inflates->is_bool()) {
      return std::nullopt;
    }
    const auto parsed_kind = event_kind_from_name(kind->string);
    if (!parsed_kind) return std::nullopt;
    e.link = static_cast<LinkId>(link->as_u64());
    e.kind = *parsed_kind;
    e.t0 = t0->as_i64();
    e.t1 = t1->as_i64();
    e.magnitude = magnitude->number;
    e.inflates_rtt = inflates->boolean;
    if (const auto* v4 = item.find("affects_v4"); v4 && v4->is_bool()) {
      e.affects_v4 = v4->boolean;
    }
    if (const auto* v6 = item.find("affects_v6"); v6 && v6->is_bool()) {
      e.affects_v6 = v6->boolean;
    }
    if (const auto* affected = item.find("affected");
        affected && affected->is_array()) {
      for (const auto& pair : affected->array) {
        if (!pair.is_array() || pair.array.size() != 3) return std::nullopt;
        PairKey key;
        key.src = static_cast<ServerId>(pair.array[0].as_u64());
        key.dst = static_cast<ServerId>(pair.array[1].as_u64());
        key.family = pair.array[2].as_i64() == 6 ? net::Family::kIPv6
                                                 : net::Family::kIPv4;
        e.affected.push_back(key);
      }
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

void append_congestion_ground_truth(GroundTruthLedger& ledger,
                                    const CongestionModel& model,
                                    double start_day, double days,
                                    double min_amplitude_ms,
                                    double min_active_fraction) {
  const auto w0 = static_cast<std::int64_t>(start_day * 86400.0);
  const auto w1 = w0 + static_cast<std::int64_t>(days * 86400.0);
  for (const CongestionProfile& p : model.profiles()) {
    if (p.kind != CongestionKind::kDiurnal) continue;
    if (p.amplitude_ms < min_amplitude_ms) continue;
    std::int64_t active = 0;
    if (p.episodes.empty()) {
      active = w1 - w0;
    } else {
      for (const auto& [e0, e1] : p.episodes) {
        active += std::max<std::int64_t>(
            0, std::min(e1, w1) - std::max(e0, w0));
      }
    }
    if (static_cast<double>(active) <
        min_active_fraction * static_cast<double>(w1 - w0)) {
      continue;
    }
    GroundTruthEntry entry;
    entry.link = p.link;
    entry.kind = EventKind::kDiurnalModel;
    entry.t0 = w0;
    entry.t1 = w1;
    entry.magnitude = p.amplitude_ms;
    entry.inflates_rtt = true;
    entry.affects_v4 = p.affects_v4;
    entry.affects_v6 = p.affects_v6;
    ledger.entries.push_back(std::move(entry));
  }
}

void resolve_affected_pairs(
    GroundTruthLedger& ledger, Network& net,
    std::span<const std::pair<ServerId, ServerId>> pairs) {
  for (GroundTruthEntry& entry : ledger.entries) {
    entry.affected.clear();
    const net::SimTime mid(entry.t0 + (entry.t1 - entry.t0) / 2);
    auto crosses = [&](ServerId s, ServerId d, net::Family family) {
      const auto r = net.resolve(s, d, family, mid);
      if (!r) return false;
      for (const RouterHop& hop : r->path->hops) {
        if (hop.link == entry.link) return true;
      }
      return false;
    };
    for (const auto& [src, dst] : pairs) {
      for (const net::Family family :
           {net::Family::kIPv4, net::Family::kIPv6}) {
        if (family == net::Family::kIPv4 ? !entry.affects_v4
                                         : !entry.affects_v6) {
          continue;
        }
        if (family == net::Family::kIPv6 &&
            (!net.topo().servers.at(src).dual_stack() ||
             !net.topo().servers.at(dst).dual_stack())) {
          continue;
        }
        // A ping RTT folds in both directions; either one crossing the
        // link exposes the pair to the event.
        if (crosses(src, dst, family) || crosses(dst, src, family)) {
          entry.affected.push_back({src, dst, family});
        }
      }
    }
    std::sort(entry.affected.begin(), entry.affected.end());
    entry.affected.erase(
        std::unique(entry.affected.begin(), entry.affected.end()),
        entry.affected.end());
  }
}

std::vector<std::pair<LinkId, std::size_t>> links_crossed(
    Network& net,
    std::span<const std::pair<ServerId, ServerId>> pairs,
    net::Family family, net::SimTime t) {
  std::vector<std::size_t> count(net.topo().links.size(), 0);
  for (const auto& [src, dst] : pairs) {
    if (family == net::Family::kIPv6 &&
        (!net.topo().servers.at(src).dual_stack() ||
         !net.topo().servers.at(dst).dual_stack())) {
      continue;
    }
    const auto r = net.resolve(src, dst, family, t);
    if (!r) continue;
    for (const RouterHop& hop : r->path->hops) {
      if (hop.link != topology::kInvalidId) ++count[hop.link];
    }
  }
  std::vector<std::pair<LinkId, std::size_t>> out;
  for (LinkId id = 0; id < count.size(); ++id) {
    if (count[id] > 0) out.emplace_back(id, count[id]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

}  // namespace s2s::simnet
