#include "faultsim/block_corruptor.h"

#include "io/varint.h"

namespace s2s::faultsim {

namespace {

/// Header bytes a bit flip may touch while leaving the header
/// structurally valid: the reserved byte and the stored CRC. The kind
/// byte is handled separately (only its low bit keeps kind <= 1);
/// record_count and payload_bytes are off-limits — damaging them would
/// change how many bytes the reader skips, and the corruption-matrix
/// test asserts skips stay exact.
constexpr std::size_t kSafeHeaderBytes[] = {5, 12, 13, 14, 15};

}  // namespace

void BlockCorruptor::corrupt_block(std::string& image,
                                   const io::BlockRef& ref,
                                   BlockFault fault) {
  switch (fault) {
    case BlockFault::kPayloadBitFlip: {
      if (ref.payload_bytes == 0) {  // nothing to flip; damage the CRC
        corrupt_block(image, ref, BlockFault::kCrcCorrupt);
        return;
      }
      ++stats_.payload_flips;
      const std::size_t pos = ref.payload_offset + rng_.below(ref.payload_bytes);
      image[pos] = static_cast<char>(
          static_cast<unsigned char>(image[pos]) ^ (1u << rng_.below(8)));
      break;
    }
    case BlockFault::kHeaderBitFlip: {
      ++stats_.header_flips;
      const std::size_t which = rng_.below(std::size(kSafeHeaderBytes) + 1);
      std::size_t pos;
      unsigned mask;
      if (which == std::size(kSafeHeaderBytes)) {
        pos = ref.header_offset + 4;  // kind: low bit keeps it valid
        mask = 1u;
      } else {
        pos = ref.header_offset + kSafeHeaderBytes[which];
        mask = 1u << rng_.below(8);
      }
      image[pos] = static_cast<char>(
          static_cast<unsigned char>(image[pos]) ^ mask);
      break;
    }
    case BlockFault::kCrcCorrupt: {
      ++stats_.crc_corruptions;
      const std::size_t pos = ref.header_offset + 12 + rng_.below(4);
      image[pos] = static_cast<char>(
          static_cast<unsigned char>(image[pos]) ^ (1u << rng_.below(8)));
      break;
    }
    case BlockFault::kTruncateMidBlock:
    case BlockFault::kStaleVersion:
      break;  // file-level: handled by apply()
  }
  ++stats_.corrupted;
  stats_.records_lost += ref.record_count;
}

std::string BlockCorruptor::mangle(std::string image) {
  const auto blocks = io::scan_blocks(image.data(), image.size());
  if (!blocks) return image;
  for (const auto& ref : *blocks) {
    ++stats_.blocks;
    if (!rng_.chance(config_.corrupt_prob)) continue;
    const auto fault = static_cast<BlockFault>(rng_.below(3));
    corrupt_block(image, ref, fault);
  }
  return image;
}

std::string BlockCorruptor::apply(std::string image, BlockFault fault,
                                  std::size_t block_index) {
  const auto blocks = io::scan_blocks(image.data(), image.size());
  if (!blocks) return image;
  if (fault == BlockFault::kStaleVersion) {
    ++stats_.stale_versions;
    std::string version;
    io::put_u16le(version, io::kBinVersion + 1);
    image[4] = version[0];
    image[5] = version[1];
    for (const auto& ref : *blocks) stats_.records_lost += ref.record_count;
    return image;
  }
  if (block_index >= blocks->size()) return image;
  const auto& ref = (*blocks)[block_index];
  if (fault == BlockFault::kTruncateMidBlock) {
    ++stats_.truncations;
    ++stats_.corrupted;
    // Cut strictly inside the block (header_offset < cut < block end), so
    // the reader always sees a torn block — never a clean boundary.
    // Everything from this block on is lost (including the footer, which
    // truncation naturally removes).
    const std::size_t block_bytes =
        io::kBinBlockHeaderBytes + ref.payload_bytes;
    const std::size_t cut =
        ref.header_offset + 1 + rng_.below(block_bytes - 1);
    image.resize(cut);
    for (std::size_t i = block_index; i < blocks->size(); ++i) {
      stats_.records_lost += (*blocks)[i].record_count;
    }
    return image;
  }
  corrupt_block(image, ref, fault);
  return image;
}

}  // namespace s2s::faultsim
