#include "faultsim/fault_injector.h"

#include <limits>

namespace s2s::faultsim::detail {

namespace {

/// One of the pathological values a broken parser, overflowing counter or
/// garbled digit produces in real collector logs.
double poison_value(stats::Rng& rng) {
  switch (rng.below(3)) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return -rng.uniform(0.1, 500.0);
    default: return probe::kMaxPlausibleRttMs * rng.uniform(10.0, 1e6);
  }
}

}  // namespace

bool poison_rtt(probe::TracerouteRecord& r, stats::Rng& rng) {
  if (r.hops.empty()) return false;
  r.hops[rng.below(r.hops.size())].rtt_ms = poison_value(rng);
  return true;
}

bool poison_rtt(probe::PingRecord& r, stats::Rng& rng) {
  r.rtt_ms = poison_value(rng);
  return true;
}

}  // namespace s2s::faultsim::detail
