// faultsim::ChaosProxy — a deterministic in-process TCP fault injector
// for the serving path (DESIGN.md section 12).
//
// PR 1 gave the *offline* pipeline seeded fault injection with exact
// ground-truth accounting; this is the same discipline for the live
// daemon↔client path. The proxy is a byte-level TCP relay: clients
// connect to its listen port, it opens one upstream connection per
// client, and every forwarded chunk may be mutated by a seeded draw.
// Because the draws come from one stats::Rng and every injected fault
// is counted in ChaosStats at the moment of injection, a chaos run is
// reproducible and a test can assert *exact* equality between the
// faults the proxy injected and the failures the retrying client
// observed — not "some errors happened".
//
// Fault taxonomy (each independently drawn per forwarded chunk unless
// noted; a "chunk" is one recv() worth of bytes, so with a serial
// request/response client one chunk is one frame):
//
//   latency + jitter      hold each chunk for latency_ms + U[0,jitter)
//   bandwidth cap         token bucket per direction; chunks queue
//   byte corruption       flip one random byte of the chunk
//   mid-frame truncation  forward a strict prefix, then close the pair
//   connection reset      drop the chunk and close the pair immediately
//   half-open stall       stop forwarding this direction; sockets stay
//                         open (the client's only escape is a timeout)
//   accept blackout       the first `blackout_first_conns` accepted
//                         connections are closed before any byte flows
//                         (deterministic, so reconnect storms can be
//                         counted exactly)
//   deterministic stall   `stall_first_conns` stalls the first N
//                         connections' upstream->client direction (for
//                         hedging tests that need attempt #1 to hang)
//
// The proxy runs its event loop (poll-based, portable) on a thread of
// its own: start() binds and spawns it, stop() drains and joins. Stats
// are atomics, safe to read live; s2s.chaos.* obs counters mirror them
// into any RunReport.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "stats/rng.h"

namespace s2s::faultsim {

struct ChaosConfig {
  std::uint64_t seed = 99;

  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see ChaosProxy::port()

  /// Base one-way delay applied to every forwarded chunk, plus uniform
  /// jitter in [0, jitter_ms).
  int latency_ms = 0;
  int jitter_ms = 0;
  /// Per-direction bandwidth cap in bytes/second (0 = uncapped).
  std::size_t bytes_per_sec = 0;

  // Per-chunk fault probabilities, drawn in this order: reset, truncate,
  // stall, corrupt. At most one of reset/truncate/stall fires per chunk.
  double reset_prob = 0.0;
  double truncate_prob = 0.0;
  double stall_prob = 0.0;
  double corrupt_prob = 0.0;

  /// Close the first N accepted connections before forwarding anything.
  std::size_t blackout_first_conns = 0;
  /// Stall the upstream->client direction of the first N (non-blacked-
  /// out) connections from the start — attempt #1 hangs, a hedge wins.
  std::size_t stall_first_conns = 0;

  std::size_t max_connections = 256;
  /// Event-loop quantum when chunks are waiting on release times.
  int tick_ms = 2;
};

/// Ground truth of what was injected; every field is incremented at the
/// moment the corresponding fault is applied.
struct ChaosStats {
  std::uint64_t connections = 0;       ///< accepted and relayed
  std::uint64_t blackouts = 0;         ///< accepted then closed unserved
  std::uint64_t chunks_forwarded = 0;  ///< includes corrupted chunks
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t resets = 0;
  std::uint64_t stalls = 0;
  std::uint64_t delayed_chunks = 0;    ///< held for latency/bandwidth
  /// Injected faults a client can observe as a failed attempt: the sum
  /// the chaos tests compare against client retry counters.
  std::uint64_t failure_faults() const {
    return blackouts + truncated + resets + stalls;
  }
};

class ChaosProxy {
 public:
  explicit ChaosProxy(const ChaosConfig& config);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listen socket and spawns the relay thread.
  bool start(std::string& error);
  /// Closes every connection and joins the thread. Idempotent.
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }
  ChaosStats stats() const;

 private:
  struct Impl;
  void run();

  ChaosConfig config_;
  stats::Rng rng_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> blackouts_{0};
  std::atomic<std::uint64_t> chunks_forwarded_{0};
  std::atomic<std::uint64_t> bytes_forwarded_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> delayed_chunks_{0};

  obs::Counter obs_connections_;
  obs::Counter obs_blackouts_;
  obs::Counter obs_corrupted_;
  obs::Counter obs_truncated_;
  obs::Counter obs_resets_;
  obs::Counter obs_stalls_;
  obs::Counter obs_bytes_;
};

}  // namespace s2s::faultsim
