// Block-level corruption for `.s2sb` binary record archives: the
// LineMangler analog one layer down the stack.
//
// A binary campaign archive fails differently from a text one — a torn
// write tears a block, a bad sector flips payload bits, a partial copy
// truncates mid-block, an old tool writes a stale version — and the
// reader's contract is exact accounting: every injected fault is
// detected as exactly one corrupt block (or, for file-level faults, one
// unreadable file), never a crash, never a silent wrong record.
//
// To make that equality provable rather than probabilistic, the
// stochastic mangle() only flips bytes whose damage keeps the block
// header *structurally* valid (the kind's low bit, the reserved byte,
// the stored CRC, any payload byte): the reader then skips exactly
// payload_bytes and counts exactly one corrupt block per fault. Faults
// that change a block's framing (mid-block truncation) or the file
// header (stale version) are applied through the targeted apply() API,
// where the test knows which blocks become unreachable.
#pragma once

#include <cstdint>
#include <string>

#include "io/binrec.h"
#include "stats/rng.h"

namespace s2s::faultsim {

/// Fault classes for the corruption-matrix test.
enum class BlockFault : std::uint8_t {
  kPayloadBitFlip = 0,  ///< bad sector: random payload bit
  kHeaderBitFlip,       ///< header damage the CRC must catch
  kCrcCorrupt,          ///< stored checksum itself damaged
  kTruncateMidBlock,    ///< torn write: file ends inside a block
  kStaleVersion,        ///< file header claims an unsupported version
};

struct BlockCorruptorConfig {
  std::uint64_t seed = 5;
  /// Per-block probability of corruption; the class is drawn uniformly
  /// among the per-block classes (flip/header/crc).
  double corrupt_prob = 1.0;
};

struct BlockCorruptorStats {
  std::size_t blocks = 0;     ///< blocks seen across mangle() calls
  std::size_t corrupted = 0;  ///< blocks damaged (any class)
  std::size_t payload_flips = 0;
  std::size_t header_flips = 0;
  std::size_t crc_corruptions = 0;
  std::size_t truncations = 0;
  std::size_t stale_versions = 0;
  /// Records inside damaged or unreachable blocks — what a reader with
  /// exact skip accounting must fail to deliver.
  std::size_t records_lost = 0;
};

class BlockCorruptor {
 public:
  explicit BlockCorruptor(const BlockCorruptorConfig& config = {})
      : config_(config), rng_(config.seed) {}

  /// Returns `image`, with each block independently corrupted with
  /// corrupt_prob by a uniformly drawn per-block class. Non-`.s2sb`
  /// images pass through untouched. The footer (when present) is never
  /// damaged — per-block CRC failures must be detected by the block
  /// CRC, not hidden behind a discarded index.
  std::string mangle(std::string image);

  /// Applies exactly one fault to block `block_index` (file-level
  /// classes ignore it). Out-of-range indexes and non-binary images
  /// pass through untouched.
  std::string apply(std::string image, BlockFault fault,
                    std::size_t block_index = 0);

  const BlockCorruptorStats& stats() const noexcept { return stats_; }

 private:
  void corrupt_block(std::string& image, const io::BlockRef& ref,
                     BlockFault fault);

  BlockCorruptorConfig config_;
  stats::Rng rng_;
  BlockCorruptorStats stats_;
};

}  // namespace s2s::faultsim
