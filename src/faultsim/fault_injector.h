// s2s::faultsim — deterministic fault injection for measurement streams.
//
// The paper's pipeline had to survive 16 months of real-world dirt:
// maintenance gaps, ~25% incomplete traceroutes, false loops, truncated
// logs (Sections 2 and 4.1). The probe layer already simulates *benign*
// faults (downtime windows, probe loss); this layer injects the
// *adversarial* ones a production collector meets — re-deliveries,
// out-of-order arrival, per-server clock skew and drift, garbage RTTs,
// server churn mid-campaign and burst losses — so the analysis stages can
// be proven to degrade gracefully instead of silently corrupting their
// statistics.
//
// FaultInjector<Record> wraps any TraceSink/PingSink (or a RecordReader
// callback): the campaign pushes records in, the injector mutates /
// duplicates / delays / drops them and forwards the result downstream.
// Every fault is drawn from a seeded Rng, so a chaos run is exactly
// reproducible, and FaultStats counts each class at the same granularity
// the analysis stores account for it — which is what lets the chaos test
// assert *exact* equality between injected and detected fault counts.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/timebase.h"
#include "probe/records.h"
#include "stats/rng.h"

namespace s2s::faultsim {

struct FaultConfig {
  std::uint64_t seed = 99;

  /// Exact re-delivery, emitted immediately after the original.
  double duplicate_prob = 0.0;
  /// Hold a record back and deliver it `reorder_delay_*` records later
  /// (bounded reorder buffer; flush() drains stragglers).
  double reorder_prob = 0.0;
  std::size_t reorder_delay_min = 1;
  std::size_t reorder_delay_max = 64;
  /// Poison one RTT with NaN, a negative value or an absurd magnitude.
  double invalid_rtt_prob = 0.0;
  /// Drop this record and the next `burst_length - 1` (collector outage).
  double burst_loss_prob = 0.0;
  std::size_t burst_length = 16;
  /// Per-server chance of dying at a uniform point of the campaign; all
  /// later records touching that server vanish.
  double churn_prob = 0.0;
  /// Per-server clock error: constant offset in [-max, max) plus a drift
  /// in [-d, d) seconds/day, applied to every record's timestamp.
  double clock_skew_max_s = 0.0;
  double clock_drift_max_s_per_day = 0.0;

  /// The campaign grid; lets the injector account reordering at epoch
  /// granularity (matching the stores) and place churn times.
  double start_day = 0.0;
  double days = 485.0;
  std::int64_t interval_s = net::kThreeHours;
};

struct FaultStats {
  std::size_t input = 0;          ///< records pushed by the campaign
  std::size_t emitted = 0;        ///< records delivered downstream
  std::size_t duplicated = 0;     ///< extra copies emitted
  std::size_t held_back = 0;      ///< routed through the reorder buffer
  std::size_t reordered = 0;      ///< emitted behind a later grid epoch
  std::size_t invalid_rtt = 0;    ///< RTTs poisoned
  std::size_t skewed = 0;         ///< timestamps shifted
  std::size_t churn_dropped = 0;  ///< dropped: endpoint churned away
  std::size_t burst_dropped = 0;  ///< dropped: burst loss window
};

namespace detail {

/// Per-server clock error and churn-death times, derived from the seed
/// and the server id only — independent of stream order.
class ServerModel {
 public:
  ServerModel(const FaultConfig& config) : config_(config) {}

  struct Entry {
    double skew_s = 0.0;
    double drift_s_per_day = 0.0;
    /// Seconds since campaign origin; records at/after this involving
    /// the server are dropped. Negative = never churns.
    double death_s = -1.0;
  };

  const Entry& of(topology::ServerId server) {
    auto it = cache_.find(server);
    if (it != cache_.end()) return it->second;
    stats::Rng rng(config_.seed ^
                   (0x9e3779b97f4a7c15ULL * (server + 1)));
    Entry e;
    if (config_.clock_skew_max_s > 0.0) {
      e.skew_s = rng.uniform(-config_.clock_skew_max_s,
                             config_.clock_skew_max_s);
    }
    if (config_.clock_drift_max_s_per_day > 0.0) {
      e.drift_s_per_day = rng.uniform(-config_.clock_drift_max_s_per_day,
                                      config_.clock_drift_max_s_per_day);
    }
    if (config_.churn_prob > 0.0 && rng.chance(config_.churn_prob)) {
      e.death_s =
          (config_.start_day + rng.uniform(0.0, config_.days)) * 86400.0;
    }
    return cache_.emplace(server, e).first->second;
  }

 private:
  FaultConfig config_;
  std::unordered_map<topology::ServerId, Entry> cache_;
};

/// Record-type hooks the injector template needs.
bool poison_rtt(probe::TracerouteRecord& r, stats::Rng& rng);
bool poison_rtt(probe::PingRecord& r, stats::Rng& rng);

}  // namespace detail

template <typename Record>
class FaultInjector {
 public:
  using Sink = std::function<void(const Record&)>;

  FaultInjector(const FaultConfig& config, Sink sink)
      : config_(config),
        sink_(std::move(sink)),
        rng_(config.seed),
        servers_(config) {}

  /// Campaign-facing sink; adapter for TraceSink/PingSink parameters.
  Sink as_sink() {
    return [this](const Record& r) { push(r); };
  }

  void push(const Record& record) {
    ++stats_.input;
    Record rec = record;

    // Clock error first: downstream faults see the skewed timestamp,
    // exactly as a collector reading a drifting server's log would.
    const auto& src_model = servers_.of(rec.src);
    const double skew_s =
        src_model.skew_s +
        src_model.drift_s_per_day * (rec.time.days() - config_.start_day);
    if (skew_s != 0.0) {
      rec.time = net::SimTime(rec.time.seconds() +
                              static_cast<std::int64_t>(skew_s));
      ++stats_.skewed;
    }

    // Churn: a dead endpoint produces nothing at all.
    if (dead_at(rec.src, rec.time) || dead_at(rec.dst, rec.time)) {
      ++stats_.churn_dropped;
      age_holds();
      return;
    }
    if (burst_remaining_ > 0) {
      --burst_remaining_;
      ++stats_.burst_dropped;
      age_holds();
      return;
    }
    if (config_.burst_loss_prob > 0.0 &&
        rng_.chance(config_.burst_loss_prob)) {
      burst_remaining_ = config_.burst_length - 1;
      ++stats_.burst_dropped;
      age_holds();
      return;
    }

    // The remaining classes are mutually exclusive per record so each
    // injected fault maps to exactly one downstream quality counter.
    if (config_.invalid_rtt_prob > 0.0 &&
        rng_.chance(config_.invalid_rtt_prob) &&
        detail::poison_rtt(rec, rng_)) {
      ++stats_.invalid_rtt;
      emit(rec);
    } else if (config_.reorder_prob > 0.0 &&
               rng_.chance(config_.reorder_prob)) {
      ++stats_.held_back;
      const std::size_t delay =
          config_.reorder_delay_min +
          (config_.reorder_delay_max > config_.reorder_delay_min
               ? rng_.below(config_.reorder_delay_max -
                            config_.reorder_delay_min + 1)
               : 0);
      holds_.push_back({rec, delay});
    } else if (config_.duplicate_prob > 0.0 &&
               rng_.chance(config_.duplicate_prob)) {
      ++stats_.duplicated;
      emit(rec);
      emit(rec);
    } else {
      emit(rec);
    }
    age_holds();
  }

  /// Drains the reorder buffer; call when the campaign finishes.
  void flush() {
    for (auto& h : holds_) emit(h.record);
    holds_.clear();
  }

  const FaultStats& stats() const noexcept { return stats_; }

 private:
  struct Held {
    Record record;
    std::size_t remaining;
  };

  bool dead_at(topology::ServerId server, net::SimTime t) {
    const auto& m = servers_.of(server);
    return m.death_s >= 0.0 &&
           static_cast<double>(t.seconds()) >= m.death_s;
  }

  void emit(const Record& rec) {
    const std::int64_t epoch =
        net::grid_epoch(rec.time, config_.start_day, config_.interval_s);
    if (epoch < last_epoch_emitted_) ++stats_.reordered;
    if (epoch > last_epoch_emitted_) last_epoch_emitted_ = epoch;
    ++stats_.emitted;
    sink_(rec);
  }

  void age_holds() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < holds_.size(); ++i) {
      if (holds_[i].remaining <= 1) {
        emit(holds_[i].record);
      } else {
        holds_[out] = holds_[i];
        --holds_[out].remaining;
        ++out;
      }
    }
    holds_.resize(out);
  }

  FaultConfig config_;
  Sink sink_;
  stats::Rng rng_;
  detail::ServerModel servers_;
  FaultStats stats_;
  std::vector<Held> holds_;
  std::size_t burst_remaining_ = 0;
  std::int64_t last_epoch_emitted_ = -1;
};

using TraceFaultInjector = FaultInjector<probe::TracerouteRecord>;
using PingFaultInjector = FaultInjector<probe::PingRecord>;

}  // namespace s2s::faultsim
