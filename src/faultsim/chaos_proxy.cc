#include "faultsim/chaos_proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace s2s::faultsim {

namespace {

using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct Chunk {
  std::string bytes;
  std::size_t off = 0;
  Clock::time_point release;
};

/// One forwarding direction of a relayed connection.
struct Pipe {
  int src = -1;
  int dst = -1;
  std::deque<Chunk> queue;  ///< read, faulted, awaiting release/flush
  Clock::time_point bw_free;  ///< token-bucket horizon (bandwidth cap)
  bool stalled = false;     ///< half-open: drop everything from now on
  bool src_eof = false;     ///< src closed; shutdown dst once drained
  bool dst_shut = false;
};

struct Relay {
  int client_fd = -1;
  int upstream_fd = -1;
  Pipe c2u, u2c;
  bool close_after_flush = false;  ///< truncation: flush prefix, then die
  bool dead = false;
};

}  // namespace

struct ChaosProxy::Impl {};  // (declared for layout stability; unused)

ChaosProxy::ChaosProxy(const ChaosConfig& config)
    : config_(config), rng_(config.seed) {
  auto& reg = obs::MetricsRegistry::global();
  obs_connections_ = reg.counter("s2s.chaos.connections");
  obs_blackouts_ = reg.counter("s2s.chaos.blackouts");
  obs_corrupted_ = reg.counter("s2s.chaos.corrupted");
  obs_truncated_ = reg.counter("s2s.chaos.truncated");
  obs_resets_ = reg.counter("s2s.chaos.resets");
  obs_stalls_ = reg.counter("s2s.chaos.stalls");
  obs_bytes_ = reg.counter("s2s.chaos.bytes_forwarded");
}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::start(std::string& error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error = "bad bind address: " + config_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    error = "bind/listen: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  set_nonblocking(listen_fd_);
  if (::pipe(wake_pipe_) != 0) {
    error = "pipe: " + std::string(std::strerror(errno));
    return false;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void ChaosProxy::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true);
  const char b = 'S';
  [[maybe_unused]] const auto r = ::write(wake_pipe_[1], &b, 1);
  thread_.join();
  running_.store(false);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats s;
  s.connections = connections_.load();
  s.blackouts = blackouts_.load();
  s.chunks_forwarded = chunks_forwarded_.load();
  s.bytes_forwarded = bytes_forwarded_.load();
  s.corrupted = corrupted_.load();
  s.truncated = truncated_.load();
  s.resets = resets_.load();
  s.stalls = stalls_.load();
  s.delayed_chunks = delayed_chunks_.load();
  return s;
}

void ChaosProxy::run() {
  std::vector<std::unique_ptr<Relay>> relays;
  std::size_t accepted = 0;
  std::size_t relayed = 0;  ///< non-blacked-out connections, for stall_first

  const auto uniform = [&](double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return rng_.chance(p);
  };

  const auto close_relay = [&](Relay& r) {
    if (r.dead) return;
    if (r.client_fd >= 0) ::close(r.client_fd);
    if (r.upstream_fd >= 0) ::close(r.upstream_fd);
    r.client_fd = r.upstream_fd = -1;
    r.dead = true;
  };

  // Reads one chunk from pipe.src, applies fault draws, enqueues the
  // survivor (if any) with its release time. Returns false when the
  // relay died (reset, error, EOF handled).
  const auto pump_read = [&](Relay& r, Pipe& p) {
    char buf[4096];
    const ssize_t n = ::recv(p.src, buf, sizeof buf, 0);
    if (n == 0) {
      p.src_eof = true;
      return true;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;
      }
      close_relay(r);
      return false;
    }
    if (p.stalled) return true;  // half-open: drop silently, stay open
    std::string bytes(buf, static_cast<std::size_t>(n));

    if (uniform(config_.reset_prob)) {
      resets_.fetch_add(1);
      obs_resets_.inc();
      close_relay(r);
      return false;
    }
    if (uniform(config_.truncate_prob)) {
      truncated_.fetch_add(1);
      obs_truncated_.inc();
      // Forward a strict prefix of the chunk, then kill the pair once
      // the prefix has flushed — the peer sees a frame cut mid-byte.
      bytes.resize(bytes.size() / 2);
      r.close_after_flush = true;
    } else if (uniform(config_.stall_prob)) {
      stalls_.fetch_add(1);
      obs_stalls_.inc();
      p.stalled = true;
      return true;  // this chunk and everything after it vanishes
    } else if (uniform(config_.corrupt_prob)) {
      corrupted_.fetch_add(1);
      obs_corrupted_.inc();
      const std::size_t at =
          static_cast<std::size_t>(rng_.below(bytes.size()));
      const auto flip = static_cast<char>(1 + rng_.below(255));
      bytes[at] = static_cast<char>(bytes[at] ^ flip);
    }

    const auto now = Clock::now();
    auto release = now;
    if (config_.latency_ms > 0 || config_.jitter_ms > 0) {
      std::int64_t delay = config_.latency_ms;
      if (config_.jitter_ms > 0) {
        delay += static_cast<std::int64_t>(
            rng_.below(static_cast<std::uint64_t>(config_.jitter_ms)));
      }
      release = now + std::chrono::milliseconds(delay);
    }
    if (config_.bytes_per_sec > 0) {
      if (p.bw_free < now) p.bw_free = now;
      const auto cost = std::chrono::microseconds(
          bytes.size() * 1000000ull / config_.bytes_per_sec);
      release = std::max(release, p.bw_free);
      p.bw_free = release + cost;
    }
    if (release > now) delayed_chunks_.fetch_add(1);

    Chunk chunk;
    chunk.bytes = std::move(bytes);
    chunk.release = release;
    if (!chunk.bytes.empty()) p.queue.push_back(std::move(chunk));
    return true;
  };

  // Flushes released chunks; returns false when the relay died.
  const auto pump_write = [&](Relay& r, Pipe& p, Clock::time_point now) {
    while (!p.queue.empty() && p.queue.front().release <= now) {
      Chunk& c = p.queue.front();
      const ssize_t n = ::send(p.dst, c.bytes.data() + c.off,
                               c.bytes.size() - c.off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        close_relay(r);
        return false;
      }
      c.off += static_cast<std::size_t>(n);
      bytes_forwarded_.fetch_add(static_cast<std::uint64_t>(n));
      obs_bytes_.inc(static_cast<std::uint64_t>(n));
      if (c.off >= c.bytes.size()) {
        chunks_forwarded_.fetch_add(1);
        p.queue.pop_front();
      }
    }
    if (p.queue.empty()) {
      if (r.close_after_flush) {
        close_relay(r);
        return false;
      }
      if (p.src_eof && !p.dst_shut) {
        ::shutdown(p.dst, SHUT_WR);
        p.dst_shut = true;
      }
    }
    return true;
  };

  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const auto now = Clock::now();

    // Flush released chunks and garbage-collect finished relays first,
    // so poll interest below reflects reality.
    for (auto& r : relays) {
      if (r->dead) continue;
      if (!pump_write(*r, r->c2u, now)) continue;
      if (!pump_write(*r, r->u2c, now)) continue;
      if (r->c2u.src_eof && r->c2u.queue.empty() && r->u2c.src_eof &&
          r->u2c.queue.empty()) {
        close_relay(*r);
      }
    }
    relays.erase(std::remove_if(relays.begin(), relays.end(),
                                [](const auto& r) { return r->dead; }),
                 relays.end());

    // Poll timeout: the nearest chunk release, else a housekeeping tick.
    std::int64_t timeout_ms = 200;
    for (const auto& r : relays) {
      for (const Pipe* p : {&r->c2u, &r->u2c}) {
        if (p->queue.empty()) continue;
        const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                              p->queue.front().release - now)
                              .count();
        timeout_ms = std::clamp<std::int64_t>(
            std::min<std::int64_t>(timeout_ms, wait), 0, 200);
      }
    }
    if (timeout_ms > 0 && timeout_ms < config_.tick_ms) {
      timeout_ms = config_.tick_ms;
    }

    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& r : relays) {
      for (const Pipe* p : {&r->c2u, &r->u2c}) {
        short events = 0;
        if (!p->src_eof) events |= POLLIN;  // stalled pipes still read
        if (events != 0) fds.push_back({p->src, events, 0});
        if (!p->queue.empty() && p->queue.front().release <= now) {
          fds.push_back({p->dst, POLLOUT, 0});
        }
      }
    }
    const int nready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                              static_cast<int>(timeout_ms));
    if (nready < 0 && errno != EINTR) break;

    for (const auto& pfd : fds) {
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_pipe_[0]) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (pfd.fd == listen_fd_) {
        while (true) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          ++accepted;
          if (accepted <= config_.blackout_first_conns) {
            blackouts_.fetch_add(1);
            obs_blackouts_.inc();
            ::close(cfd);
            continue;
          }
          if (relays.size() >= config_.max_connections) {
            ::close(cfd);
            continue;
          }
          const int ufd = ::socket(AF_INET, SOCK_STREAM, 0);
          sockaddr_in up{};
          up.sin_family = AF_INET;
          up.sin_port = htons(config_.upstream_port);
          if (ufd < 0 ||
              ::inet_pton(AF_INET, config_.upstream_host.c_str(),
                          &up.sin_addr) != 1 ||
              ::connect(ufd, reinterpret_cast<sockaddr*>(&up), sizeof up) !=
                  0) {
            if (ufd >= 0) ::close(ufd);
            ::close(cfd);
            continue;
          }
          set_nonblocking(cfd);
          set_nonblocking(ufd);
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          ::setsockopt(ufd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          auto relay = std::make_unique<Relay>();
          relay->client_fd = cfd;
          relay->upstream_fd = ufd;
          relay->c2u = {cfd, ufd, {}, Clock::time_point{}, false, false,
                        false};
          relay->u2c = {ufd, cfd, {}, Clock::time_point{}, false, false,
                        false};
          ++relayed;
          if (relayed <= config_.stall_first_conns) {
            stalls_.fetch_add(1);
            obs_stalls_.inc();
            relay->u2c.stalled = true;
          }
          connections_.fetch_add(1);
          obs_connections_.inc();
          relays.push_back(std::move(relay));
        }
        continue;
      }
      // Find the relay pipe this fd belongs to.
      for (auto& r : relays) {
        if (r->dead) continue;
        const bool is_client = pfd.fd == r->client_fd;
        const bool is_upstream = pfd.fd == r->upstream_fd;
        if (!is_client && !is_upstream) continue;
        if (pfd.revents & (POLLERR | POLLNVAL)) {
          close_relay(*r);
          break;
        }
        Pipe& reading = is_client ? r->c2u : r->u2c;
        if ((pfd.revents & (POLLIN | POLLHUP)) && !reading.src_eof) {
          // Drain everything available so level-triggered poll settles.
          while (!r->dead) {
            const std::size_t before = reading.queue.size();
            const bool alive = pump_read(*r, reading);
            if (!alive || reading.src_eof) break;
            if (reading.queue.size() == before && !reading.stalled) break;
            if (reading.stalled) break;
          }
        }
        break;
      }
    }
  }

  for (auto& r : relays) close_relay(*r);
}

}  // namespace s2s::faultsim
