// Text-level corruption for serialized record streams.
//
// Campaign files live on disks that fill up, processes that die mid-write
// and pipes that truncate; LineMangler reproduces that dirt
// deterministically: random byte flips, truncation at a random column,
// deletion of a whole TSV field, or blanking the line entirely. Used by
// the io round-trip property tests and the chaos harness to prove
// RecordReader survives (counts, never crashes on) arbitrary corruption.
#pragma once

#include <cstdint>
#include <string>

#include "stats/rng.h"

namespace s2s::faultsim {

struct LineManglerConfig {
  std::uint64_t seed = 5;
  /// Per-line probability of corruption; the class is drawn uniformly.
  double corrupt_prob = 1.0;
};

struct LineManglerStats {
  std::size_t lines = 0;
  std::size_t corrupted = 0;
  std::size_t byte_flips = 0;
  std::size_t truncations = 0;
  std::size_t field_deletions = 0;
  std::size_t blanked = 0;
};

class LineMangler {
 public:
  explicit LineMangler(const LineManglerConfig& config = {})
      : config_(config), rng_(config.seed) {}

  /// Returns `line`, possibly corrupted (never containing '\n').
  std::string mangle(std::string line);

  const LineManglerStats& stats() const noexcept { return stats_; }

 private:
  LineManglerConfig config_;
  stats::Rng rng_;
  LineManglerStats stats_;
};

}  // namespace s2s::faultsim
