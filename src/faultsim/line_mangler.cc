#include "faultsim/line_mangler.h"

#include <vector>

namespace s2s::faultsim {

std::string LineMangler::mangle(std::string line) {
  ++stats_.lines;
  if (line.empty() || !rng_.chance(config_.corrupt_prob)) return line;
  ++stats_.corrupted;
  switch (rng_.below(4)) {
    case 0: {  // flip 1-4 random bytes
      ++stats_.byte_flips;
      const std::size_t flips = 1 + rng_.below(4);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t pos = rng_.below(line.size());
        char c = static_cast<char>(
            line[pos] ^ static_cast<char>(1 + rng_.below(127)));
        // Keep the stream line-oriented: corruption never splits a line.
        if (c == '\n' || c == '\r') c = '?';
        line[pos] = c;
      }
      break;
    }
    case 1:  // truncate at a random column (torn write)
      ++stats_.truncations;
      line.resize(rng_.below(line.size()));
      break;
    case 2: {  // delete one TSV field
      ++stats_.field_deletions;
      std::vector<std::size_t> tabs;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '\t') tabs.push_back(i);
      }
      if (tabs.empty()) {
        line.clear();
        break;
      }
      const std::size_t field = rng_.below(tabs.size() + 1);
      const std::size_t begin = field == 0 ? 0 : tabs[field - 1];
      const std::size_t end =
          field < tabs.size() ? tabs[field] : line.size();
      line.erase(begin, end - begin);
      break;
    }
    default:  // blank the line entirely
      ++stats_.blanked;
      line.clear();
      break;
  }
  return line;
}

}  // namespace s2s::faultsim
