// Sharded LRU cache for serialized query responses.
//
// The daemon's queries are pure functions of (archive content, request
// bytes) — the analyses are deterministic at any thread count (DESIGN.md
// section 9) — so a response can be cached verbatim under a key that is
// exactly those inputs: the archive digest concatenated with the request
// type and payload bytes. Reloading a changed archive changes the digest,
// which invalidates every prior entry without an explicit flush (stale
// keys simply stop matching and age out of the LRU).
//
// Sharded by key hash so concurrent callers (the bench drives the cache
// directly from many threads; the server gives each reactor its own
// instance, but stats() readers race the owning reactor) contend on
// per-shard mutexes, not one global lock. The byte budget is split
// evenly across shards; an entry larger than its shard's budget is
// simply not cached.
//
// Values are shared-ownership strings: find() hands back the cached
// std::shared_ptr<const std::string> itself, so the server's writev path
// can point an iovec straight at the cached bytes (the shared_ptr keeps
// the entry alive across an eviction racing the flush) — a warm hit is
// served without copying the payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace s2s::svc {

class ResultCache {
 public:
  struct Config {
    std::size_t shards = 8;
    std::size_t max_bytes = 64u << 20;
  };

  ResultCache() : ResultCache(Config{}) {}
  explicit ResultCache(const Config& config);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Shared-ownership cached value; empty on a miss.
  using Value = std::shared_ptr<const std::string>;

  /// The hit's shared value (the entry becomes most recently used) or
  /// nullptr on a miss. Counts s2s.svc.cache_hits / cache_misses.
  Value find(const std::string& key);

  /// Inserts or refreshes; evicts least-recently-used entries of the
  /// key's shard until the shard is back under budget
  /// (s2s.svc.cache_evictions). Values larger than a shard budget are
  /// dropped rather than cycling the whole shard through the LRU.
  /// Null values are ignored.
  void insert(const std::string& key, Value value);

  /// Copying convenience wrappers over find()/insert().
  bool lookup(const std::string& key, std::string& value_out);
  void insert(const std::string& key, std::string value) {
    insert(key, std::make_shared<const std::string>(std::move(value)));
  }

  /// Drops every entry (counts nothing; used on explicit reset paths).
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  Stats stats() const;

  /// Builds the canonical cache key: archive digest + request type byte +
  /// request payload bytes.
  static std::string make_key(std::uint64_t archive_digest,
                              std::uint8_t type, std::string_view payload);

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<std::string, Value>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Value>>::iterator>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  Shard& shard_for(const std::string& key);
  static std::size_t entry_bytes(const std::string& key, const Value& value) {
    return key.size() + (value ? value->size() : 0);
  }

  std::size_t shard_budget_ = 0;
  std::vector<Shard> shards_;
  obs::Counter obs_hits_;
  obs::Counter obs_misses_;
  obs::Counter obs_evictions_;
};

}  // namespace s2s::svc
