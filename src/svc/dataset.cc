#include "svc/dataset.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>

#include "core/dualstack.h"
#include "io/crc32c.h"
#include "io/mmap_file.h"
#include "io/varint.h"
#include "net/asn.h"
#include "probe/campaign.h"
#include "stats/summary.h"

namespace s2s::svc {

simnet::NetworkConfig dataset_net_config(const DatasetConfig& cfg) {
  simnet::NetworkConfig c;
  c.topology.seed = cfg.topo_seed;
  c.topology.tier1_count = cfg.tier1_count;
  c.topology.transit_count = cfg.transit_count;
  c.topology.stub_count = cfg.stub_count;
  c.topology.server_count = cfg.server_count;
  if (cfg.crank_congestion) {
    // Same crank as the golden-figure test world: small topologies need
    // elevated congested-link fractions for the survey to find anything.
    c.congestion.internal_fraction = 0.06;
    c.congestion.private_interconnect_fraction = 0.10;
    c.congestion.public_ixp_fraction = 0.04;
    c.congestion.permanent_prob = 0.8;
  }
  return c;
}

namespace {

bool file_digest(const std::string& path, std::uint64_t& size_out,
                 std::uint32_t& crc_out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open archive: " + path;
    return false;
  }
  char buf[1 << 16];
  std::uint32_t crc = 0;
  std::uint64_t size = 0;
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    const auto n = static_cast<std::size_t>(in.gcount());
    crc = io::crc32c(crc, buf, n);
    size += n;
    if (n < sizeof buf) break;
  }
  size_out = size;
  crc_out = crc;
  return true;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The cache-key digest. The raw `(size << 32) ^ crc` form collided
/// across growth states of one live shard (appending can change size and
/// crc in compensating low bits while the high word barely moves), so
/// the halves are avalanched and the epoch watermark is mixed in — two
/// snapshots of the same file at different watermarks always key
/// differently. Batch archives pass epoch -1.
std::uint64_t mix_digest(std::uint64_t size, std::uint32_t crc,
                         std::int64_t watermark_epoch) {
  std::uint64_t h = splitmix64((size << 32) ^ crc);
  return splitmix64(
      h ^ (0x9E3779B97F4A7C15ull *
           static_cast<std::uint64_t>(watermark_epoch + 2)));
}

/// FNV-1a 64 over hexfloat-formatted series — the same digest scheme the
/// golden-figure regression uses, so a figure response pins the study
/// output to the ULP.
class Digest {
 public:
  void line(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ull;
    }
    hash_ ^= '\n';
    hash_ *= 0x100000001b3ull;
  }

  void value(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    line(buf);
  }

  void values(const char* label, const std::vector<double>& vs) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s n=%zu", label, vs.size());
    line(buf);
    for (const double v : vs) value(v);
  }

  void count(const char* label, std::uint64_t n) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s=%" PRIu64, label, n);
    line(buf);
  }

  std::string hex() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, hash_);
    return buf;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

net::Family to_family(std::uint8_t f) {
  return f == 6 ? net::Family::kIPv6 : net::Family::kIPv4;
}

Dataset::Response error_response(std::string_view code,
                                 std::string_view message) {
  return {MsgType::kError, error_payload(code, message)};
}

void quantiles_json(obs::json::Writer& w, const stats::Summary& s) {
  w.key("quantiles").begin_object();
  w.key("p5").value(s.p5);
  w.key("p10").value(s.p10);
  w.key("p25").value(s.p25);
  w.key("p50").value(s.p50);
  w.key("p75").value(s.p75);
  w.key("p90").value(s.p90);
  w.key("p95").value(s.p95);
  w.key("mean").value(s.mean);
  w.key("stddev").value(s.stddev);
  w.end_object();
}

}  // namespace

Dataset::Dataset(const DatasetConfig& config) : config_(config) {
  owned_net_ = std::make_unique<simnet::Network>(dataset_net_config(config_));
  net_ = owned_net_.get();
}

Dataset::Dataset(const DatasetConfig& config, const simnet::Network* shared_net)
    : config_(config), net_(shared_net) {}

bool Dataset::load(std::string& error) {
  // An archive with a watermark sidecar is an open shard: reads are
  // bounded at the sealed watermark and verdicts come from the
  // incremental state (DESIGN.md section 16). A damaged sidecar is a
  // hard error — serving an unknown prefix of a live shard could expose
  // a torn tail.
  live::Watermark wm;
  switch (live::read_watermark_file(config_.archive_path, wm)) {
    case live::WatermarkStatus::kInvalid:
      error = "watermark sidecar is damaged: " +
              live::watermark_path(config_.archive_path);
      return false;
    case live::WatermarkStatus::kValid:
      return load_live(wm, error);
    case live::WatermarkStatus::kAbsent:
      break;
  }

  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  if (!file_digest(config_.archive_path, size, crc, error)) return false;

  // Pass 1: the ping grid size. PingSeriesStore allocates its slots up
  // front, so the archive is scanned once for the last ping epoch.
  std::int64_t max_ping_epoch = -1;
  auto scan = io::ingest_record_file(
      config_.archive_path, [](const probe::TracerouteRecord&) {},
      [&](const probe::PingRecord& r) {
        const std::int64_t e = net::grid_epoch(r.time, config_.ping_start_day,
                                               config_.ping_interval_s);
        if (e > max_ping_epoch) max_ping_epoch = e;
      },
      config_.prefer_mmap);
  if (!scan.ok) {
    error = "archive unreadable: " + scan.error;
    return false;
  }
  const auto epochs =
      static_cast<std::size_t>(max_ping_epoch < 0 ? 0 : max_ping_epoch + 1);

  // Pass 2: ingest into fresh stores; swap in only on success so a bad
  // SIGHUP reload keeps the previous dataset serving.
  auto timelines = std::make_unique<core::TimelineStore>(
      net_->topo(), net_->rib(),
      core::TimelineStoreConfig{config_.trace_start_day,
                                config_.trace_interval_s});
  auto pings = std::make_unique<core::PingSeriesStore>(
      config_.ping_start_day, config_.ping_interval_s, epochs);
  auto ingest = io::ingest_record_file(
      config_.archive_path,
      [&](const probe::TracerouteRecord& r) { timelines->add(r); },
      [&](const probe::PingRecord& r) { pings->add(r); },
      config_.prefer_mmap);
  if (!ingest.ok) {
    error = "archive unreadable: " + ingest.error;
    return false;
  }
  timelines_ = std::move(timelines);
  pings_ = std::move(pings);
  digest_size_ = size;
  digest_crc_ = crc;
  digest_ = mix_digest(size, crc, -1);
  ingest_ = ingest;
  ping_epochs_ = epochs;
  live_ = false;
  watermark_ = {};
  live_state_.reset();
  // Retain the mapped image when the archive came through the mmap arm
  // with a validated footer: archive_slice() serves raw block bytes
  // straight out of this mapping.
  mmap_.reset();
  if (ingest_.binary && ingest_.used_mmap &&
      ingest_.footer == io::FooterStatus::kValid) {
    auto reader =
        std::make_shared<io::BinRecordMmapReader>(config_.archive_path);
    if (reader->ok() && reader->has_index()) mmap_ = std::move(reader);
  }
  return true;
}

live::IncrementalConfig Dataset::incremental_config() const {
  live::IncrementalConfig c;
  c.start_day = config_.ping_start_day;
  c.interval_s = config_.ping_interval_s;
  c.detect = config_.detect;
  c.min_fraction = config_.detect_min_fraction;
  c.window_epochs = static_cast<std::size_t>(
      7 * 86400 / std::max<std::int64_t>(1, config_.ping_interval_s));
  return c;
}

bool Dataset::load_live(const live::Watermark& wm, std::string& error) {
  io::MmapFile file;
  if (!file.open(config_.archive_path)) {
    error = "cannot map open shard: " + file.error();
    return false;
  }
  if (file.size() < wm.sealed_bytes) {
    error = "open shard is shorter than its watermark (torn durable prefix)";
    return false;
  }
  const auto sealed = static_cast<std::size_t>(wm.sealed_bytes);

  // Pass 1 over the sealed prefix only: the ping grid size. The grid is
  // clamped up to the watermark epoch so record-free sealed epochs still
  // count as missing samples.
  std::int64_t max_ping_epoch = wm.epoch;
  {
    io::BinRecordMmapReader scan(file.data(), sealed);
    if (!scan.ok()) {
      error = "open shard unreadable: " + scan.error();
      return false;
    }
    scan.read_all([](const probe::TracerouteRecord&) {},
                  [&](const probe::PingRecord& r) {
                    const std::int64_t e = net::grid_epoch(
                        r.time, config_.ping_start_day, config_.ping_interval_s);
                    if (e > max_ping_epoch) max_ping_epoch = e;
                  });
  }
  const auto epochs =
      static_cast<std::size_t>(max_ping_epoch < 0 ? 0 : max_ping_epoch + 1);

  // Pass 2: fresh stores plus the incremental state, folded in archive
  // order. Damage inside the sealed prefix is a hard error: the watermark
  // protocol guarantees every sealed block was fsynced and CRC-valid, so
  // a torn or corrupt block here means real data loss, not a live tail.
  auto timelines = std::make_unique<core::TimelineStore>(
      net_->topo(), net_->rib(),
      core::TimelineStoreConfig{config_.trace_start_day,
                                config_.trace_interval_s});
  auto pings = std::make_unique<core::PingSeriesStore>(
      config_.ping_start_day, config_.ping_interval_s, epochs);
  auto state = std::make_shared<live::IncrementalState>(incremental_config());
  io::BinRecordMmapReader reader(file.data(), sealed);
  if (!reader.ok()) {
    error = "open shard unreadable: " + reader.error();
    return false;
  }
  reader.read_all([&](const probe::TracerouteRecord& r) { timelines->add(r); },
                  [&](const probe::PingRecord& r) {
                    pings->add(r);
                    state->add(r);
                  });
  if (reader.counters().truncated) {
    error = "open shard is torn inside its sealed watermark";
    return false;
  }
  if (reader.corrupt_blocks() > 0) {
    error = std::to_string(reader.corrupt_blocks()) +
            " corrupt block(s) inside the sealed watermark";
    return false;
  }
  state->advance_watermark(wm.epoch);

  io::IngestResult ingest;
  ingest.binary = true;
  ingest.used_mmap = file.mapped();
  ingest.ok = true;
  ingest.records = reader.records_read();
  ingest.blocks_read = reader.blocks_read();
  ingest.corrupt_blocks = reader.corrupt_blocks();
  ingest.records_rejected = reader.counters().records_rejected;
  ingest.truncated = false;
  ingest.footer = reader.footer_status();

  timelines_ = std::move(timelines);
  pings_ = std::move(pings);
  live_state_ = std::move(state);
  live_ = true;
  watermark_ = wm;
  ping_epochs_ = epochs;
  ingest_ = ingest;
  digest_size_ = wm.sealed_bytes;
  digest_crc_ = io::crc32c(0, file.data(), sealed);
  digest_ = mix_digest(digest_size_, digest_crc_, wm.epoch);
  // No retained mmap while live: the file is still growing underneath,
  // so archive_slice() is a batch-only feature (remove the sidecar after
  // finish() to finalize the shard into a normal archive).
  mmap_.reset();
  return true;
}

std::shared_ptr<Dataset> Dataset::clone_advanced(std::string& error) const {
  error.clear();
  if (!live_ || !loaded()) return nullptr;
  live::Watermark wm;
  switch (live::read_watermark_file(config_.archive_path, wm)) {
    case live::WatermarkStatus::kAbsent:
      return nullptr;  // shard was finalized; keep serving this snapshot
    case live::WatermarkStatus::kInvalid:
      error = "watermark sidecar is damaged: " +
              live::watermark_path(config_.archive_path);
      return nullptr;
    case live::WatermarkStatus::kValid:
      break;
  }
  if (wm.sealed_bytes == watermark_.sealed_bytes &&
      wm.epoch == watermark_.epoch) {
    return nullptr;  // unchanged
  }
  if (wm.sealed_bytes < watermark_.sealed_bytes ||
      wm.epoch < watermark_.epoch) {
    error = "watermark regressed (shard rewritten under the server?)";
    return nullptr;
  }

  io::MmapFile file;
  if (!file.open(config_.archive_path)) {
    error = "cannot map open shard: " + file.error();
    return nullptr;
  }
  if (file.size() < wm.sealed_bytes) {
    error = "open shard is shorter than its watermark";
    return nullptr;
  }
  const auto begin = static_cast<std::size_t>(watermark_.sealed_bytes);
  const auto end = static_cast<std::size_t>(wm.sealed_bytes);

  // Pass 1 over just the delta: does the ping grid need to grow?
  std::int64_t max_ping_epoch =
      std::max<std::int64_t>(static_cast<std::int64_t>(ping_epochs_) - 1,
                             wm.epoch);
  io::BinReadCounters scan_counters;
  io::decode_block_range(
      file.data(), file.size(), begin, end,
      [](const probe::TracerouteRecord&) {},
      [&](const probe::PingRecord& r) {
        const std::int64_t e = net::grid_epoch(r.time, config_.ping_start_day,
                                               config_.ping_interval_s);
        if (e > max_ping_epoch) max_ping_epoch = e;
      },
      scan_counters);
  if (scan_counters.truncated) {
    error = "sealed tail is torn inside the new watermark";
    return nullptr;
  }
  if (scan_counters.corrupt_blocks > 0) {
    error = std::to_string(scan_counters.corrupt_blocks) +
            " corrupt block(s) in the sealed tail";
    return nullptr;
  }
  const auto epochs =
      static_cast<std::size_t>(max_ping_epoch < 0 ? 0 : max_ping_epoch + 1);

  // Pass 2: copy this snapshot's stores and fold ONLY the new tail —
  // O(new records), never a replay of the sealed prefix. The copies keep
  // their dedup windows, so a block re-delivered across pickups cannot
  // double-count.
  auto next = std::make_shared<Dataset>(config_, net_);
  next->timelines_ = std::make_unique<core::TimelineStore>(*timelines_);
  next->pings_ = std::make_unique<core::PingSeriesStore>(*pings_, epochs);
  auto state = std::make_shared<live::IncrementalState>(*live_state_);
  io::BinReadCounters counters;
  io::decode_block_range(
      file.data(), file.size(), begin, end,
      [&](const probe::TracerouteRecord& r) { next->timelines_->add(r); },
      [&](const probe::PingRecord& r) {
        next->pings_->add(r);
        state->add(r);
      },
      counters);
  state->advance_watermark(wm.epoch);
  next->live_state_ = std::move(state);
  next->live_ = true;
  next->watermark_ = wm;
  next->ping_epochs_ = epochs;

  // Ingest counters accumulate across pickups so summary_json keeps
  // reporting whole-shard totals.
  next->ingest_ = ingest_;
  next->ingest_.records += counters.records_read;
  next->ingest_.blocks_read += counters.blocks_read;
  next->ingest_.records_rejected += counters.records_rejected;

  // Digest: continue the CRC over just the appended sealed bytes — same
  // value a from-scratch load_live() of this growth state computes.
  next->digest_size_ = wm.sealed_bytes;
  next->digest_crc_ = io::crc32c(digest_crc_, file.data() + begin, end - begin);
  next->digest_ = mix_digest(next->digest_size_, next->digest_crc_, wm.epoch);
  return next;
}

Dataset::ArchiveSlice Dataset::archive_slice(std::int64_t t0_s,
                                             std::int64_t t1_s) const {
  ArchiveSlice out;
  if (!mmap_) {
    out.error = "archive slice requires an mmap'd binary archive with an "
                "intact footer index";
    return out;
  }
  const unsigned char* data = mmap_->data();
  const std::size_t size = mmap_->size();
  out.file_header.assign(reinterpret_cast<const char*>(data),
                         io::kBinFileHeaderBytes);
  for (const io::BlockIndexEntry& entry : mmap_->index()) {
    if (entry.last_time_s < t0_s || entry.first_time_s > t1_s) continue;
    const std::size_t off = static_cast<std::size_t>(entry.offset);
    if (off + io::kBinBlockHeaderBytes > size) continue;  // defensive
    const std::uint32_t payload_bytes = io::get_u32le(data + off + 8);
    const std::size_t block_bytes = io::kBinBlockHeaderBytes + payload_bytes;
    if (off + block_bytes > size) continue;
    out.blocks.emplace_back(reinterpret_cast<const char*>(data + off),
                            block_bytes);
    out.records += entry.record_count;
  }
  out.bytes = out.file_header.size();
  for (const std::string_view b : out.blocks) out.bytes += b.size();
  out.ok = true;
  return out;
}

Dataset::Response Dataset::execute(MsgType type, std::string_view payload,
                                   exec::ThreadPool* pool) const {
  if (type == MsgType::kPingEcho) {
    obs::json::Writer w;
    w.begin_object();
    w.key("type").value("ping_echo");
    w.key("pong").value(true);
    w.key("echo_bytes").value(static_cast<std::uint64_t>(payload.size()));
    w.end_object();
    return {MsgType::kOk, w.str()};
  }
  if (!loaded()) return error_response("internal", "no dataset loaded");
  switch (type) {
    case MsgType::kPairRtt:
    case MsgType::kPathPrevalence:
    case MsgType::kCongestionVerdict: {
      PairQuery q;
      if (!decode_pair_query(payload, q)) {
        return error_response("bad_request",
                              "pair query: want 10 bytes "
                              "(u32 src, u32 dst, u8 family, u8 arg)");
      }
      if (type == MsgType::kPairRtt) return pair_rtt(q);
      if (type == MsgType::kPathPrevalence) return path_prevalence(q);
      return congestion_verdict(q);
    }
    case MsgType::kDualStackDelta: {
      DualStackQuery q;
      if (!decode_dualstack_query(payload, q)) {
        return error_response("bad_request",
                              "dualstack query: want 8 bytes "
                              "(u32 src, u32 dst)");
      }
      return dualstack_delta(q);
    }
    case MsgType::kFigureDigest: {
      FigureQuery q;
      if (!decode_figure_query(payload, q)) {
        return error_response("bad_request",
                              "figure query: want 1 byte (figure id)");
      }
      return figure_digest(q, pool);
    }
    default:
      return error_response("internal", "request type not handled here");
  }
}

Dataset::Response Dataset::pair_rtt(const PairQuery& q) const {
  const net::Family family = to_family(q.family);
  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("pair_rtt");
  w.key("src").value(static_cast<std::uint64_t>(q.src));
  w.key("dst").value(static_cast<std::uint64_t>(q.dst));
  w.key("family").value(static_cast<std::uint64_t>(q.family));

  std::vector<double> samples;
  std::vector<std::pair<std::int64_t, double>> series;
  if (const auto* ping = pings_->find(q.src, q.dst, family)) {
    w.key("source").value("ping");
    samples.reserve(ping->valid);
    for (std::size_t e = 0; e < ping->rtt_tenths.size(); ++e) {
      if (ping->rtt_tenths[e] == core::PingSeriesStore::kMissing) continue;
      const double ms = ping->rtt_tenths[e] / 10.0;
      samples.push_back(ms);
      series.emplace_back(static_cast<std::int64_t>(e), ms);
    }
  } else if (const auto* tl = timelines_->find(q.src, q.dst, family)) {
    w.key("source").value("trace");
    samples.reserve(tl->obs.size());
    for (const auto& o : tl->obs) {
      samples.push_back(o.rtt_ms());
      series.emplace_back(static_cast<std::int64_t>(o.epoch), o.rtt_ms());
    }
  } else {
    return error_response("not_found", "no series for this pair/family");
  }

  w.key("samples").value(static_cast<std::uint64_t>(samples.size()));
  if (!samples.empty()) quantiles_json(w, stats::summarize(samples));
  if (q.arg != 0) {
    w.key("series").begin_array();
    for (const auto& [epoch, ms] : series) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(epoch));
      w.value(ms);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
  return {MsgType::kOk, w.str()};
}

Dataset::Response Dataset::path_prevalence(const PairQuery& q) const {
  const auto* tl = timelines_->find(q.src, q.dst, to_family(q.family));
  if (tl == nullptr || tl->obs.empty()) {
    return error_response("not_found", "no trace timeline for this pair");
  }
  // Observation count per global path id; ties broken by ascending id so
  // the ranking is deterministic.
  std::map<std::uint32_t, std::uint64_t> counts;
  for (const auto& o : tl->obs) ++counts[tl->global_path(o)];
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [path, n] : counts) ranked.emplace_back(n, path);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const std::size_t cap =
      std::min<std::size_t>(q.arg == 0 ? 16 : q.arg, 64);

  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("path_prevalence");
  w.key("src").value(static_cast<std::uint64_t>(q.src));
  w.key("dst").value(static_cast<std::uint64_t>(q.dst));
  w.key("family").value(static_cast<std::uint64_t>(q.family));
  w.key("observations").value(static_cast<std::uint64_t>(tl->obs.size()));
  w.key("unique_paths").value(static_cast<std::uint64_t>(ranked.size()));
  w.key("paths").begin_array();
  const double total = static_cast<double>(tl->obs.size());
  for (std::size_t i = 0; i < ranked.size() && i < cap; ++i) {
    w.begin_object();
    w.key("as_path").value(
        net::to_string(timelines_->interner().path(ranked[i].second)));
    w.key("count").value(ranked[i].first);
    w.key("prevalence").value(static_cast<double>(ranked[i].first) / total);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return {MsgType::kOk, w.str()};
}

Dataset::Response Dataset::congestion_verdict(const PairQuery& q) const {
  if (live_ && live_state_) {
    // Live shards answer from the streaming sketches — O(window), and a
    // pure function of (sealed record stream, watermark epoch), so every
    // growth state is a distinct deterministic response under its own
    // digest. Same JSON shape as the batch arm.
    live::IncrementalState::Verdict v;
    if (!live_state_->verdict(q.src, q.dst, q.family, v)) {
      return error_response("not_found", "no ping series for this pair");
    }
    obs::json::Writer w;
    w.begin_object();
    w.key("type").value("congestion_verdict");
    w.key("src").value(static_cast<std::uint64_t>(q.src));
    w.key("dst").value(static_cast<std::uint64_t>(q.dst));
    w.key("family").value(static_cast<std::uint64_t>(q.family));
    w.key("samples").value(v.samples);
    w.key("missing_samples").value(v.missing_samples);
    w.key("insufficient").value(v.insufficient);
    w.key("variation_ms").value(v.variation_ms);
    w.key("diurnal_ratio").value(v.diurnal_ratio);
    w.key("high_variation").value(v.high_variation);
    w.key("strong_diurnal").value(v.strong_diurnal);
    w.key("consistent_congestion").value(v.consistent_congestion());
    w.end_object();
    return {MsgType::kOk, w.str()};
  }
  const auto* series = pings_->find(q.src, q.dst, to_family(q.family));
  if (series == nullptr) {
    return error_response("not_found", "no ping series for this pair");
  }
  core::CongestionDetectConfig cfg = config_.detect;
  cfg.min_samples = static_cast<std::size_t>(
      config_.detect_min_fraction * static_cast<double>(ping_epochs_));
  const auto ms = core::PingSeriesStore::to_ms_interpolated(*series);
  auto verdict = core::assess_series(ms, pings_->samples_per_day(), cfg);
  verdict.missing_samples = series->rtt_tenths.size() - series->valid;
  if (series->valid < cfg.min_samples) verdict.insufficient = true;

  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("congestion_verdict");
  w.key("src").value(static_cast<std::uint64_t>(q.src));
  w.key("dst").value(static_cast<std::uint64_t>(q.dst));
  w.key("family").value(static_cast<std::uint64_t>(q.family));
  w.key("samples").value(static_cast<std::uint64_t>(series->valid));
  w.key("missing_samples")
      .value(static_cast<std::uint64_t>(verdict.missing_samples));
  w.key("insufficient").value(verdict.insufficient);
  w.key("variation_ms").value(verdict.variation_ms);
  w.key("diurnal_ratio").value(verdict.diurnal_ratio);
  w.key("high_variation").value(verdict.high_variation);
  w.key("strong_diurnal").value(verdict.strong_diurnal);
  w.key("consistent_congestion").value(verdict.consistent_congestion());
  w.end_object();
  return {MsgType::kOk, w.str()};
}

Dataset::Response Dataset::dualstack_delta(const DualStackQuery& q) const {
  const auto* v4 = timelines_->find(q.src, q.dst, net::Family::kIPv4);
  const auto* v6 = timelines_->find(q.src, q.dst, net::Family::kIPv6);
  if (v4 == nullptr || v6 == nullptr) {
    return error_response("not_found",
                          "pair lacks a timeline in one or both families");
  }
  // Epoch-matched RTTv4 - RTTv6 samples, the per-pair form of the
  // Section 6 study: timelines are epoch-sorted, so a two-pointer merge
  // finds every epoch measured over both protocols.
  std::vector<double> diffs, same_path_diffs;
  std::size_t i = 0, j = 0;
  while (i < v4->obs.size() && j < v6->obs.size()) {
    const auto& a = v4->obs[i];
    const auto& b = v6->obs[j];
    if (a.epoch < b.epoch) {
      ++i;
    } else if (b.epoch < a.epoch) {
      ++j;
    } else {
      const double d = a.rtt_ms() - b.rtt_ms();
      if (std::isfinite(d)) {
        diffs.push_back(d);
        // The interner is shared across families, so identical AS paths
        // share one global id.
        if (v4->global_path(a) == v6->global_path(b)) {
          same_path_diffs.push_back(d);
        }
      }
      ++i;
      ++j;
    }
  }

  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("dualstack_delta");
  w.key("src").value(static_cast<std::uint64_t>(q.src));
  w.key("dst").value(static_cast<std::uint64_t>(q.dst));
  w.key("samples_matched").value(static_cast<std::uint64_t>(diffs.size()));
  w.key("samples_same_path")
      .value(static_cast<std::uint64_t>(same_path_diffs.size()));
  if (!diffs.empty()) {
    const auto s = stats::sorted(diffs);
    w.key("median_diff_ms").value(stats::quantile_sorted(s, 0.5));
    w.key("p10_diff_ms").value(stats::quantile_sorted(s, 0.1));
    w.key("p90_diff_ms").value(stats::quantile_sorted(s, 0.9));
  }
  if (!same_path_diffs.empty()) {
    w.key("median_diff_same_path_ms").value(stats::median(same_path_diffs));
  }
  w.end_object();
  return {MsgType::kOk, w.str()};
}

Dataset::Response Dataset::figure_digest(const FigureQuery& q,
                                         exec::ThreadPool* pool) const {
  Digest digest;
  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("figure_digest");
  w.key("figure").value(static_cast<std::uint64_t>(q.figure));
  switch (q.figure) {
    case 1: {  // Table 1 collection accounting.
      const auto& t = timelines_->table1();
      for (const auto* fam : {&t.v4, &t.v6}) {
        digest.count("collected", fam->collected);
        digest.count("complete", fam->complete);
        digest.count("as_loops", fam->as_loops);
        digest.count("complete_as", fam->complete_as);
        digest.count("missing_as", fam->missing_as);
        digest.count("missing_ip", fam->missing_ip);
      }
      w.key("collected_v4").value(static_cast<std::uint64_t>(t.v4.collected));
      w.key("collected_v6").value(static_cast<std::uint64_t>(t.v6.collected));
      w.key("complete_v4").value(static_cast<std::uint64_t>(t.v4.complete));
      w.key("complete_v6").value(static_cast<std::uint64_t>(t.v6.complete));
      break;
    }
    case 2: {  // Fig 2/3: path counts and prevalence series.
      const auto study = core::run_routing_study(*timelines_, config_.routing,
                                                 pool);
      for (const auto* fam : {&study.v4, &study.v6}) {
        digest.values("unique_paths", fam->unique_paths);
        digest.values("changes", fam->changes);
        digest.values("popular_prevalence", fam->popular_prevalence);
      }
      digest.values("path_pairs_v4", study.path_pairs_v4);
      digest.values("path_pairs_v6", study.path_pairs_v6);
      w.key("timelines_v4").value(static_cast<std::uint64_t>(study.v4.timelines));
      w.key("timelines_v6").value(static_cast<std::uint64_t>(study.v6.timelines));
      break;
    }
    case 5: {  // Fig 4/5/6: sub-optimal path buckets.
      const auto study = core::run_routing_study(*timelines_, config_.routing,
                                                 pool);
      for (const auto* fam : {&study.v4, &study.v6}) {
        digest.values("lifetime_hours_p10", fam->lifetime_hours_p10);
        digest.values("delta_p10_ms", fam->delta_p10_ms);
        digest.values("lifetime_hours_p90", fam->lifetime_hours_p90);
        digest.values("delta_p90_ms", fam->delta_p90_ms);
        digest.values("delta_stddev_ms", fam->delta_stddev_ms);
        for (const auto& row : fam->suboptimal_prevalence) {
          digest.values("suboptimal", row);
        }
      }
      w.key("timelines_v4").value(static_cast<std::uint64_t>(study.v4.timelines));
      w.key("timelines_v6").value(static_cast<std::uint64_t>(study.v6.timelines));
      break;
    }
    case 10: {  // Fig 10: dual-stack RTT difference ECDFs.
      const auto study = core::run_dualstack_study(*timelines_, pool);
      digest.count("samples_matched", study.samples_matched);
      digest.count("samples_same_path", study.samples_same_path);
      digest.count("pairs_matched", study.pairs_matched);
      for (const double qq :
           {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
        digest.value(study.diff_all.empty() ? 0.0
                                            : study.diff_all.quantile(qq));
        digest.value(study.diff_same_path.empty()
                         ? 0.0
                         : study.diff_same_path.quantile(qq));
      }
      digest.values("pair_median_diff", study.pair_median_diff);
      w.key("pairs_matched")
          .value(static_cast<std::uint64_t>(study.pairs_matched));
      w.key("samples_matched").value(study.samples_matched);
      break;
    }
    default:
      return error_response("bad_request",
                            "unknown figure (want 1, 2, 5 or 10)");
  }
  w.key("digest").value(digest.hex());
  w.end_object();
  return {MsgType::kOk, w.str()};
}

std::vector<Dataset::PairKey> Dataset::trace_pairs() const {
  std::vector<PairKey> out;
  if (timelines_ == nullptr) return out;
  timelines_->for_each([&](topology::ServerId src, topology::ServerId dst,
                           net::Family family, const core::TraceTimeline&) {
    out.push_back({src, dst,
                   static_cast<std::uint8_t>(
                       family == net::Family::kIPv6 ? 6 : 4)});
  });
  std::sort(out.begin(), out.end(), [](const PairKey& a, const PairKey& b) {
    return std::tie(a.src, a.dst, a.family) < std::tie(b.src, b.dst, b.family);
  });
  return out;
}

std::vector<Dataset::PairKey> Dataset::ping_pairs() const {
  std::vector<PairKey> out;
  if (pings_ == nullptr) return out;
  pings_->for_each([&](topology::ServerId src, topology::ServerId dst,
                       net::Family family, const core::PingSeriesStore::Series&) {
    out.push_back({src, dst,
                   static_cast<std::uint8_t>(
                       family == net::Family::kIPv6 ? 6 : 4)});
  });
  std::sort(out.begin(), out.end(), [](const PairKey& a, const PairKey& b) {
    return std::tie(a.src, a.dst, a.family) < std::tie(b.src, b.dst, b.family);
  });
  return out;
}

void Dataset::summary_json(obs::json::Writer& w) const {
  w.key("archive").value(config_.archive_path);
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "%016" PRIx64, digest_);
  w.key("digest").value(digest_hex);
  w.key("loaded").value(loaded());
  w.key("records").value(static_cast<std::uint64_t>(ingest_.records));
  w.key("blocks_read").value(static_cast<std::uint64_t>(ingest_.blocks_read));
  w.key("corrupt_blocks")
      .value(static_cast<std::uint64_t>(ingest_.corrupt_blocks));
  w.key("trace_timelines")
      .value(static_cast<std::uint64_t>(
          loaded() ? timelines_->timeline_count() : 0));
  w.key("ping_pairs")
      .value(static_cast<std::uint64_t>(loaded() ? pings_->pair_count() : 0));
  w.key("ping_epochs").value(static_cast<std::uint64_t>(ping_epochs_));
  if (live_) {
    w.key("live").value(true);
    w.key("watermark_epoch").value(watermark_.epoch);
    w.key("sealed_bytes").value(watermark_.sealed_bytes);
    w.key("live_pairs")
        .value(static_cast<std::uint64_t>(
            live_state_ ? live_state_->pairs_tracked() : 0));
    w.key("records_folded")
        .value(live_state_ ? live_state_->records_folded() : 0);
  }
  // A pair every per-pair request type can answer (traced pairs are a
  // subset of pinged pairs in the fixtures); lets scripts issue valid
  // queries without knowing the archive.
  const auto pairs = trace_pairs();
  if (!pairs.empty()) {
    w.key("example_src").value(static_cast<std::uint64_t>(pairs.front().src));
    w.key("example_dst").value(static_cast<std::uint64_t>(pairs.front().dst));
    w.key("example_family")
        .value(static_cast<std::uint64_t>(pairs.front().family));
  }
}

std::vector<std::pair<topology::ServerId, topology::ServerId>>
fixture_pairs(const topology::Topology& topo, std::size_t cap) {
  std::vector<topology::ServerId> dual;
  for (topology::ServerId s = 0; s < topo.servers.size(); ++s) {
    if (topo.servers[s].dual_stack()) dual.push_back(s);
  }
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs;
  for (std::size_t i = 0; i < dual.size() && pairs.size() < cap; ++i) {
    for (std::size_t j = i + 1; j < dual.size() && pairs.size() < cap; ++j) {
      pairs.emplace_back(dual[i], dual[j]);
    }
  }
  return pairs;
}

bool write_fixture_archive(const std::string& path, const DatasetConfig& cfg,
                           const FixtureParams& params, std::string& error) {
  simnet::Network net(dataset_net_config(cfg));
  const auto ping_pairs = fixture_pairs(net.topo(), params.max_ping_pairs);
  if (ping_pairs.empty()) {
    error = "topology has no dual-stack server pairs";
    return false;
  }
  const std::vector<std::pair<topology::ServerId, topology::ServerId>>
      trace_pairs(ping_pairs.begin(),
                  ping_pairs.begin() +
                      std::min(params.max_trace_pairs, ping_pairs.size()));

  // Atomic commit: the campaigns stream into `path + ".tmp"`, and only a
  // fully sealed archive is renamed into place — a crash mid-campaign
  // never leaves a torn file under the final name (DESIGN.md section 12).
  io::AtomicArchiveWriter out(path);
  if (!out.ok()) {
    error = out.error();
    return false;
  }
  io::BinRecordWriter writer(out.stream());

  probe::TracerouteCampaignConfig trace_cfg;
  trace_cfg.start_day = cfg.trace_start_day;
  trace_cfg.days = params.trace_days;
  trace_cfg.interval_s = cfg.trace_interval_s;
  trace_cfg.paris_switch_day = cfg.trace_start_day + params.trace_days / 2.0;
  trace_cfg.seed = params.trace_seed;
  probe::TracerouteCampaign traces(net, trace_cfg, trace_pairs);
  traces.run([&](const probe::TracerouteRecord& r) { writer.write(r); });

  probe::PingCampaignConfig ping_cfg;
  ping_cfg.start_day = cfg.ping_start_day;
  ping_cfg.days = params.ping_days;
  ping_cfg.interval_s = cfg.ping_interval_s;
  ping_cfg.seed = params.ping_seed;
  probe::PingCampaign pings(net, ping_cfg, ping_pairs);
  pings.run([&](const probe::PingRecord& r) { writer.write(r); });

  writer.finish();
  return out.commit(error);
}

std::string archive_damage(const io::IngestResult& ingest, bool live) {
  if (!ingest.ok) {
    return ingest.error.empty() ? "archive unreadable" : ingest.error;
  }
  // An empty open shard is healthy — records arrive later.
  if (ingest.records == 0 && !live) return "archive contains no records";
  if (!ingest.binary) return "";  // text archives tolerate malformed lines
  if (ingest.truncated) return "archive is torn (EOF mid-block)";
  if (ingest.corrupt_blocks > 0) {
    return std::to_string(ingest.corrupt_blocks) +
           " corrupt block(s) skipped during ingest";
  }
  if (ingest.footer == io::FooterStatus::kInvalid) {
    return "footer index is damaged";
  }
  return "";
}

}  // namespace s2s::svc
