// s2sd wire protocol: length-prefixed, CRC-guarded binary frames.
//
// Every message — request or response — is one frame:
//
//   Frame       := FrameHeader payload
//   FrameHeader (16 B, little-endian):
//     [ 0.. 3] u32 magic "S2SQ"
//     [ 4.. 5] u16 version = 1
//     [ 6    ] u8  type (MsgType)
//     [ 7    ] u8  flags
//     [ 8..11] u32 payload_bytes
//     [12..15] u32 crc32c over header bytes [4..11] then the payload
//
// The CRC scope mirrors the `.s2sb` block checksum (everything after the
// magic, excluding the CRC field itself) and reuses io::crc32c, so a
// damaged frame is detected before any payload field is trusted. Request
// payloads are fixed-width little-endian structs (decoded with exact
// length checks: a short payload is a protocol error, not a partial
// read); response payloads are JSON text (obs::json), self-describing
// enough for scripts and the CI smoke to consume without this header.
//
// DESIGN.md section 11 is the normative description, including the
// cache-key semantics (archive digest + request type + payload bytes)
// that make responses to cacheable requests pure functions of the frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace s2s::svc {

inline constexpr std::uint32_t kFrameMagic = 0x51533253u;  // "S2SQ"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default cap a server enforces on request payloads (requests are tiny
/// fixed-width structs; anything near this is abuse, not a query).
inline constexpr std::size_t kDefaultMaxRequestBytes = 4096;

enum class MsgType : std::uint8_t {
  // Requests.
  kPingEcho = 0x01,           ///< liveness probe; empty payload
  kPairRtt = 0x02,            ///< PairQuery; arg != 0 appends the series
  kPathPrevalence = 0x03,     ///< PairQuery; arg caps returned paths
  kCongestionVerdict = 0x04,  ///< PairQuery (arg unused)
  kDualStackDelta = 0x05,     ///< DualStackQuery
  kFigureDigest = 0x06,       ///< FigureQuery
  kServerStats = 0x07,        ///< empty payload; never cached
  kMetricsDump = 0x08,        ///< 1-byte format selector; never cached
  kArchiveSlice = 0x09,       ///< SliceQuery; raw `.s2sb` block slice
  kLiveStatus = 0x0A,         ///< empty payload; live-ingest watermark/lag
  // Responses.
  kOk = 0x80,
  kError = 0x81,
};

/// Request flag: skip the cache lookup (the result is still inserted),
/// so load generators can force cold executions on a warm server.
inline constexpr std::uint8_t kFlagNoCache = 0x01;

/// Request flag: the payload starts with a TraceContext prefix
/// (kTraceContextBytes). Strictly client opt-in — a server never
/// requires it, so old clients interoperate unchanged; servers advertise
/// support via "trace_context":true in kServerStats so clients can probe
/// before opting in. The prefix is stripped before request decoding and
/// before cache-key construction (a traced request hits the same cache
/// entry as an untraced one).
inline constexpr std::uint8_t kFlagTraceContext = 0x02;

/// Stable lowercase name ("pair_rtt", ...); "unknown" for anything else.
/// Used for metric names and the JSON "type" echo, so it never changes
/// meaning across protocol versions.
const char* type_name(MsgType t);

bool is_request(MsgType t);
/// Cacheable requests are pure functions of (archive, payload). Stats and
/// echo are excluded: they describe the serving process, not the data.
bool is_cacheable(MsgType t);

struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kPingEcho;
  std::uint8_t flags = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;
};

enum class HeaderStatus : std::uint8_t { kOk, kBadMagic, kBadVersion };

/// Decodes 16 header bytes. kBadMagic/kBadVersion mean the stream is not
/// speaking this protocol — the connection cannot be resynced and must
/// close after an error frame. payload_bytes is NOT capped here; the
/// server enforces its own limit so it can skip an oversized payload and
/// keep the connection.
HeaderStatus parse_frame_header(const unsigned char* bytes, FrameHeader& out);

/// CRC32C over header bytes [4..11] then the payload.
std::uint32_t frame_crc(const unsigned char* header_bytes,
                        std::string_view payload);

/// Encodes a complete frame (header + payload) with the CRC filled in.
std::string encode_frame(MsgType type, std::uint8_t flags,
                         std::string_view payload);

/// Encodes only the 16-byte header for a payload that will be written
/// separately (the server's writev scatter-gather path: header and
/// payload go out in one sendmsg without concatenating them first).
std::string encode_frame_header(MsgType type, std::uint8_t flags,
                                std::string_view payload);

/// Header for a payload made of several spans written back to back
/// (the zero-copy archive-slice path: an owned prefix plus views into
/// the mmap'd archive). The CRC accumulates over the spans in order, so
/// the wire bytes are identical to a single concatenated payload.
std::string encode_frame_header(MsgType type, std::uint8_t flags,
                                const std::vector<std::string_view>& spans);

// ---------------------------------------------------------------------------
// Request payloads (fixed-width little-endian; decode checks exact size).
// ---------------------------------------------------------------------------

/// kPairRtt / kPathPrevalence / kCongestionVerdict payload (10 bytes):
/// u32 src, u32 dst, u8 family (4 or 6), u8 arg (per-type meaning).
struct PairQuery {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t family = 4;
  std::uint8_t arg = 0;
};

std::string encode_pair_query(const PairQuery& q);
bool decode_pair_query(std::string_view payload, PairQuery& out);

/// kDualStackDelta payload (8 bytes): u32 src, u32 dst.
struct DualStackQuery {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

std::string encode_dualstack_query(const DualStackQuery& q);
bool decode_dualstack_query(std::string_view payload, DualStackQuery& out);

/// kFigureDigest payload (1 byte): paper figure selector. 1 = Table 1
/// counts, 2 = Fig 2 routing series, 5 = Fig 5 sub-optimal buckets,
/// 10 = Fig 10 dual-stack ECDF.
struct FigureQuery {
  std::uint8_t figure = 2;
};

std::string encode_figure_query(const FigureQuery& q);
bool decode_figure_query(std::string_view payload, FigureQuery& out);

/// kMetricsDump payload (1 byte): exposition format selector.
struct MetricsDumpQuery {
  static constexpr std::uint8_t kJson = 0;        ///< MetricsSnapshot JSON
  static constexpr std::uint8_t kPrometheus = 1;  ///< OpenMetrics text
  std::uint8_t format = kJson;
};

std::string encode_metrics_dump_query(const MetricsDumpQuery& q);
bool decode_metrics_dump_query(std::string_view payload,
                               MetricsDumpQuery& out);

/// kArchiveSlice payload (16 bytes): i64 t0_s, i64 t1_s — the inclusive
/// time span whose archive blocks the caller wants. The response payload
/// is itself a footerless `.s2sb` image (file header + the raw CRC-
/// guarded blocks whose [first, last] span intersects [t0, t1]), sliced
/// zero-copy out of the server's mmap'd archive; feed it to
/// io::BinRecordMmapReader(data, size) to decode the records.
struct SliceQuery {
  std::int64_t t0_s = 0;
  std::int64_t t1_s = 0;
};

std::string encode_slice_query(const SliceQuery& q);
bool decode_slice_query(std::string_view payload, SliceQuery& out);

// ---------------------------------------------------------------------------
// Trace-context prefix (DESIGN.md section 13).
// ---------------------------------------------------------------------------

/// Fixed-width prefix a request payload carries when kFlagTraceContext is
/// set: u64 trace_id, u64 span_id, little-endian. trace_id identifies the
/// whole request across processes; span_id is the client's attempt span,
/// which becomes the parent of the server's request span.
inline constexpr std::size_t kTraceContextBytes = 16;

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// The prefix bytes to prepend to a request payload.
std::string encode_trace_context(const TraceContext& ctx);

/// Splits `payload` into prefix + rest. Returns false (and leaves `rest`
/// untouched) when the payload is shorter than the prefix — a protocol
/// error, since the flag promised one.
bool strip_trace_context(std::string_view payload, TraceContext& out,
                         std::string_view& rest);

/// kError payload: {"error":code,"message":message}. Codes: bad_frame,
/// bad_crc, bad_request, oversized, busy, not_found, draining, internal.
std::string error_payload(std::string_view code, std::string_view message);

/// kError payload with a retry-after hint appended:
/// {"error":code,"message":message,"retry_after_ms":N}. Servers attach
/// it to `busy` sheds so clients back off for a useful interval instead
/// of guessing.
std::string error_payload(std::string_view code, std::string_view message,
                          int retry_after_ms);

/// Decoded view of a kError payload: the machine-readable code plus the
/// optional retry-after hint (-1 when absent). A tolerant scan of the
/// error_payload() shape — not a general JSON parser.
struct ErrorInfo {
  std::string code;
  int retry_after_ms = -1;
};
ErrorInfo parse_error_payload(std::string_view payload);

/// Admission cost weight of a request (DESIGN.md section 12), roughly
/// proportional to the analysis work behind it: echo/stats are free-ish,
/// single-pair scans are cheap, cross-fleet figure digests dominate.
/// The server's pending-cost budget is denominated in these units.
std::uint32_t request_cost(MsgType t);

}  // namespace s2s::svc
