#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>

#include "obs/log.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace s2s::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Sockets and pipes must not leak into children (SIGHUP handlers and
// tools fork/exec helpers); kernel-atomic SOCK_CLOEXEC/accept4 where
// available, fcntl on the fallback paths.
bool set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

std::chrono::milliseconds ms(int v) { return std::chrono::milliseconds(v); }

/// Max iovec segments per sendmsg; past this a second readiness round
/// costs less than the iovec array walk.
constexpr int kMaxIovec = 64;

}  // namespace

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

Server::Poller::Poller(bool use_epoll) {
#ifdef __linux__
  if (use_epoll) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ >= 0) {
      epoll_ = true;
      ok_ = true;
      return;
    }
  }
#else
  (void)use_epoll;
#endif
  ok_ = true;  // poll() backend needs no setup
}

Server::Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Server::Poller::add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epoll_) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    return;
  }
#endif
  interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                     (want_write ? POLLOUT : 0));
}

void Server::Poller::update(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epoll_) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
    return;
  }
#endif
  interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                     (want_write ? POLLOUT : 0));
}

void Server::Poller::remove(int fd) {
#ifdef __linux__
  if (epoll_) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  interest_.erase(fd);
}

void Server::Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#ifdef __linux__
  if (epoll_) {
    epoll_event evs[64];
    const int n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
    return;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, events] : interest_) {
    fds.push_back({fd, events, 0});
  }
  const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       timeout_ms);
  if (n <= 0) return;
  for (const auto& p : fds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
    out.push_back(e);
  }
}

// ---------------------------------------------------------------------------
// Server: lifecycle
// ---------------------------------------------------------------------------

Server::Server(Dataset& dataset, exec::ThreadPool* pool,
               const ServerConfig& config)
    : dataset_(dataset),
      pool_(pool),
      config_(config),
      slow_log_({config.slow_query_us, config.slow_log_max_per_interval,
                 /*interval_ms=*/1000, /*max_entries=*/128}) {
  if (config_.reactors == 0) config_.reactors = 1;
  auto& reg = obs::MetricsRegistry::global();
  obs_requests_ = reg.counter("s2s.svc.requests");
  obs_accepted_ = reg.counter("s2s.svc.conns_accepted");
  obs_reaped_ = reg.counter("s2s.svc.conns_reaped");
  obs_busy_ = reg.counter("s2s.svc.busy_rejected");
  obs_shed_cost_ = reg.counter("s2s.svc.shed.cost");
  obs_shed_inflight_ = reg.counter("s2s.svc.shed.inflight");
  obs_shed_client_ = reg.counter("s2s.svc.shed.client");
  obs_protocol_errors_ = reg.counter("s2s.svc.protocol_errors");
  obs_bytes_rx_ = reg.counter("s2s.svc.bytes_rx");
  obs_bytes_tx_ = reg.counter("s2s.svc.bytes_tx");
  obs_reloads_ = reg.counter("s2s.svc.reloads");
  obs_accept_emfile_ = reg.counter("s2s.svc.accept_emfile");
  obs_active_conns_ = reg.gauge("s2s.svc.active_conns");
  obs_pending_cost_ = reg.gauge("s2s.svc.pending_cost");
  for (const MsgType t :
       {MsgType::kPingEcho, MsgType::kPairRtt, MsgType::kPathPrevalence,
        MsgType::kCongestionVerdict, MsgType::kDualStackDelta,
        MsgType::kFigureDigest, MsgType::kServerStats, MsgType::kMetricsDump,
        MsgType::kArchiveSlice, MsgType::kLiveStatus}) {
    const auto key = static_cast<std::uint8_t>(t);
    latency_.emplace(
        key, reg.histogram(std::string("s2s.svc.latency_us.") + type_name(t),
                           obs::MetricsRegistry::latency_us_bounds()));
    windowed_.emplace(
        key, std::make_unique<obs::WindowedHistogram>(
                 obs::MetricsRegistry::latency_us_bounds(),
                 config_.window_seconds, config_.window_slots));
    auto cell = std::make_unique<SloCell>();
    cell->threshold_us = config_.slo_ms * 1000.0;
    cell->obs_good =
        reg.counter(std::string("s2s.svc.slo.") + type_name(t) + ".good");
    cell->obs_total =
        reg.counter(std::string("s2s.svc.slo.") + type_name(t) + ".total");
    slo_.emplace(key, std::move(cell));
  }
}

Server::~Server() {
  for (const int wr : handoff_wr_) {
    if (wr >= 0) ::close(wr);
  }
}

int Server::open_listener(std::uint16_t port, bool reuseport,
                          std::uint16_t& actual_port, std::string& error) {
  // An address with a ':' is IPv6; "::" with V6ONLY off is the
  // dual-stack wildcard (v4 peers arrive as v4-mapped addresses).
  const bool v6 = config_.bind_address.find(':') != std::string::npos;
  const int family = v6 ? AF_INET6 : AF_INET;
  int fd = -1;
#ifdef SOCK_CLOEXEC
  fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
#endif
  if (fd < 0) {
    fd = ::socket(family, SOCK_STREAM, 0);
    if (fd >= 0) set_cloexec(fd);
  }
  if (fd < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      error = "setsockopt(SO_REUSEPORT): " + std::string(std::strerror(errno));
      ::close(fd);
      return -1;
    }
#else
    error = "SO_REUSEPORT not supported on this platform";
    ::close(fd);
    return -1;
#endif
  }
  sockaddr_storage ss{};
  socklen_t slen = 0;
  if (v6) {
    const int zero = 0;
    ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &zero, sizeof zero);
    auto* a = reinterpret_cast<sockaddr_in6*>(&ss);
    a->sin6_family = AF_INET6;
    a->sin6_port = htons(port);
    if (::inet_pton(AF_INET6, config_.bind_address.c_str(), &a->sin6_addr) !=
        1) {
      error = "bad bind address: " + config_.bind_address;
      ::close(fd);
      return -1;
    }
    slen = sizeof(sockaddr_in6);
  } else {
    auto* a = reinterpret_cast<sockaddr_in*>(&ss);
    a->sin_family = AF_INET;
    a->sin_port = htons(port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &a->sin_addr) !=
        1) {
      error = "bad bind address: " + config_.bind_address;
      ::close(fd);
      return -1;
    }
    slen = sizeof(sockaddr_in);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&ss), slen) < 0) {
    error = "bind: " + std::string(std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, config_.backlog) < 0) {
    error = "listen: " + std::string(std::strerror(errno));
    ::close(fd);
    return -1;
  }
  sockaddr_storage bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    actual_port =
        bound.ss_family == AF_INET6
            ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
            : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
  }
  if (!set_nonblocking(fd)) {
    error = "fcntl: " + std::string(std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool Server::start(std::string& error) {
  const std::size_t n = config_.reactors;
  {
    // The initial snapshot aliases the caller-owned dataset (the
    // deleter is empty); reloads replace it with owning snapshots.
    std::lock_guard<std::mutex> lock(dataset_mutex_);
    dataset_current_ = std::shared_ptr<const Dataset>(
        std::shared_ptr<const void>{}, &dataset_);
  }
  reactors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(*this, i));
    if (!reactors_.back()->poller_->ok()) {
      error = "poller setup failed";
      return false;
    }
  }
  for (const auto& r : reactors_) {
    if (::pipe(r->wake_pipe_) != 0) {
      error = "pipe: " + std::string(std::strerror(errno));
      return false;
    }
    set_nonblocking(r->wake_pipe_[0]);
    set_nonblocking(r->wake_pipe_[1]);
    set_cloexec(r->wake_pipe_[0]);
    set_cloexec(r->wake_pipe_[1]);
    r->poller_->add(r->wake_pipe_[0], true, false);
  }

  // Accept sharding: one SO_REUSEPORT listener per reactor when the
  // platform and config allow; any failure falls back to the single
  // acceptor + fd handoff scheme rather than failing startup.
  if (config_.use_reuseport && n > 1) {
    std::uint16_t port = config_.port;
    bool all_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint16_t actual = 0;
      std::string lerr;
      const int fd = open_listener(port, /*reuseport=*/true, actual, lerr);
      if (fd < 0) {
        all_ok = false;
        break;
      }
      reactors_[i]->listen_fd_ = fd;
      if (i == 0) port = actual;  // later listeners join the same port
    }
    if (all_ok) {
      reuseport_ = true;
      port_ = port;
    } else {
      for (const auto& r : reactors_) {
        if (r->listen_fd_ >= 0) {
          ::close(r->listen_fd_);
          r->listen_fd_ = -1;
        }
      }
    }
  }
  if (!reuseport_) {
    std::uint16_t actual = 0;
    const int fd = open_listener(config_.port, /*reuseport=*/false, actual,
                                 error);
    if (fd < 0) return false;
    reactors_[0]->listen_fd_ = fd;
    port_ = actual;
    handoff_wr_.assign(n, -1);
    for (std::size_t i = 1; i < n; ++i) {
      int p[2];
      if (::pipe(p) != 0) {
        error = "pipe: " + std::string(std::strerror(errno));
        return false;
      }
      set_nonblocking(p[0]);
      set_nonblocking(p[1]);
      set_cloexec(p[0]);
      set_cloexec(p[1]);
      reactors_[i]->handoff_rd_ = p[0];
      handoff_wr_[i] = p[1];
      reactors_[i]->poller_->add(p[0], true, false);
    }
  }
  for (const auto& r : reactors_) {
    if (r->listen_fd_ >= 0) r->poller_->add(r->listen_fd_, true, false);
  }
  if (dataset_.live()) {
    ensure_live_metrics();
    obs_live_watermark_.set(static_cast<double>(dataset_.watermark().epoch));
    obs_live_sealed_bytes_.set(
        static_cast<double>(dataset_.watermark().sealed_bytes));
    obs_live_pairs_.set(static_cast<double>(
        dataset_.live_state() ? dataset_.live_state()->pairs_tracked() : 0));
  }
  start_time_ = Clock::now();
  return true;
}

void Server::serve() {
  if (reactors_.empty()) return;
  std::vector<std::thread> threads;
  threads.reserve(reactors_.size() - 1);
  for (std::size_t i = 1; i < reactors_.size(); ++i) {
    threads.emplace_back([this, i] { reactors_[i]->run(); });
  }
  reactors_[0]->run();
  for (auto& t : threads) t.join();
  // Drain complete on every reactor; listeners close last — the socket
  // stays accept()-able until the final in-flight response is flushed.
  for (const auto& r : reactors_) {
    if (r->listen_fd_ >= 0) {
      ::close(r->listen_fd_);
      r->listen_fd_ = -1;
    }
  }
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_relaxed);
  // write() is async-signal-safe and reactors_ is immutable after
  // start(); this is the SIGTERM handler's body.
  for (const auto& r : reactors_) r->wake();
}

void Server::request_reload() {
  reload_pending_.store(true, std::memory_order_relaxed);
  for (const auto& r : reactors_) r->wake();
}

std::shared_ptr<const Dataset> Server::dataset_snapshot() const {
  std::lock_guard<std::mutex> lock(dataset_mutex_);
  return dataset_current_;
}

void Server::do_reload() {
  // Build the replacement dataset off to the side (sharing the base's
  // network — topology is immutable and expensive) and publish it with
  // a pointer swap only on success. Requests hold the snapshot they
  // started with, so a reload can never tear a response.
  auto fresh = std::make_shared<Dataset>(dataset_.config(), &dataset_.net());
  std::string error;
  if (fresh->load(error)) {
    {
      std::lock_guard<std::mutex> lock(dataset_mutex_);
      dataset_current_ = fresh;
    }
    reloads_.fetch_add(1, std::memory_order_relaxed);
    obs_reloads_.inc();
    obs::logf(obs::LogLevel::kInfo,
              "s2sd: archive reloaded (%zu records, digest %016llx)",
              fresh->ingest().records,
              static_cast<unsigned long long>(fresh->digest()));
  } else {
    obs::logf(obs::LogLevel::kWarn, "s2sd: reload failed: %s", error.c_str());
  }
}

void Server::ensure_live_metrics() {
  if (live_metrics_ready_) return;
  auto& reg = obs::MetricsRegistry::global();
  obs_live_pickups_ = reg.counter("s2s.live.delta_pickups");
  obs_live_watermark_ = reg.gauge("s2s.live.watermark_epoch");
  obs_live_sealed_bytes_ = reg.gauge("s2s.live.sealed_bytes");
  obs_live_pairs_ = reg.gauge("s2s.live.pairs");
  live_metrics_ready_ = true;
}

void Server::maybe_live_advance() {
  if (config_.live_poll_ms <= 0) return;
  const auto now = Clock::now();
  if (now < next_live_poll_) return;
  next_live_poll_ = now + ms(config_.live_poll_ms);
  const std::shared_ptr<const Dataset> snap = dataset_snapshot();
  if (!snap || !snap->live()) return;
  std::string error;
  auto next = snap->clone_advanced(error);
  if (!next) {
    // Empty error: the watermark simply hasn't moved (or the shard was
    // finalized) — the common idle case, not worth a log line.
    if (!error.empty()) {
      obs::logf(obs::LogLevel::kWarn, "s2sd: delta pickup failed: %s",
                error.c_str());
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(dataset_mutex_);
    dataset_current_ = next;
  }
  live_pickups_.fetch_add(1, std::memory_order_relaxed);
  ensure_live_metrics();
  obs_live_pickups_.inc();
  obs_live_watermark_.set(static_cast<double>(next->watermark().epoch));
  obs_live_sealed_bytes_.set(
      static_cast<double>(next->watermark().sealed_bytes));
  obs_live_pairs_.set(static_cast<double>(
      next->live_state() ? next->live_state()->pairs_tracked() : 0));
  obs::logf(obs::LogLevel::kInfo,
            "s2sd: live pickup to epoch %lld (%llu sealed bytes, digest "
            "%016llx)",
            static_cast<long long>(next->watermark().epoch),
            static_cast<unsigned long long>(next->watermark().sealed_bytes),
            static_cast<unsigned long long>(next->digest()));
}

// ---------------------------------------------------------------------------
// Server: aggregation across reactors
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> Server::reactor_accepted() const {
  std::vector<std::uint64_t> out;
  out.reserve(reactors_.size());
  for (const auto& r : reactors_) {
    out.push_back(r->accepted_.load(std::memory_order_relaxed));
  }
  return out;
}

ResultCache::Stats Server::cache_stats() const {
  ResultCache::Stats out;
  for (const auto& r : reactors_) {
    const ResultCache::Stats s = r->cache_.stats();
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.entries += s.entries;
    out.bytes += s.bytes;
  }
  return out;
}

std::uint64_t Server::requests_served() const {
  std::uint64_t total = 0;
  for (const auto& r : reactors_) {
    total += r->requests_served_.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Server::connections_reaped() const {
  std::uint64_t total = 0;
  for (const auto& r : reactors_) {
    total += r->reaped_.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Server::accept_emfile() const {
  std::uint64_t total = 0;
  for (const auto& r : reactors_) {
    total += r->accept_emfile_.load(std::memory_order_relaxed);
  }
  return total;
}

void Server::set_conns_gauge() {
  obs_active_conns_.set(
      static_cast<double>(total_conns_.load(std::memory_order_relaxed)));
}

void Server::set_pending_cost_gauge() {
  std::size_t total = 0;
  for (const auto& r : reactors_) {
    total += r->pending_cost_.load(std::memory_order_relaxed);
  }
  obs_pending_cost_.set(static_cast<double>(total));
}

double Server::uptime_seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_time_).count();
}

std::map<std::string, obs::WindowedSnapshot> Server::windowed_snapshots()
    const {
  std::map<std::string, obs::WindowedSnapshot> out;
  for (const auto& [key, hist] : windowed_) {
    out.emplace(std::string("s2s.svc.windowed_us.") +
                    type_name(static_cast<MsgType>(key)),
                hist->snapshot());
  }
  return out;
}

std::map<std::string, obs::SloStat> Server::slo_stats() const {
  std::map<std::string, obs::SloStat> out;
  for (const auto& [key, cell] : slo_) {
    obs::SloStat s;
    s.threshold_us = cell->threshold_us;
    s.good = cell->good.load(std::memory_order_relaxed);
    s.total = cell->total.load(std::memory_order_relaxed);
    out.emplace(
        std::string("s2s.svc.slo.") + type_name(static_cast<MsgType>(key)),
        s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reactor: lifecycle and event loop
// ---------------------------------------------------------------------------

Server::Reactor::Reactor(Server& server, std::size_t index)
    : srv_(server),
      index_(index),
      cache_({server.config_.cache_shards,
              std::max<std::size_t>(
                  server.config_.cache_bytes / server.config_.reactors, 1)}) {
  poller_ = std::make_unique<Poller>(server.config_.use_epoll);
}

Server::Reactor::~Reactor() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (handoff_rd_ >= 0) ::close(handoff_rd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Server::Reactor::wake() {
  const char b = 'W';
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const auto r = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::Reactor::run() {
  std::vector<Poller::Event> events;
  std::vector<int> fds;
  bool drain_observed = false;
  bool drain_quiet = false;  ///< last poll round saw no socket events
  Clock::time_point drain_deadline;
  while (true) {
    if (srv_.reload_pending_.exchange(false, std::memory_order_relaxed)) {
      srv_.do_reload();
    }
    // Reactor 0 owns the live-ingest tick; other reactors pick up the
    // published snapshot on their next request like any reload.
    if (index_ == 0) srv_.maybe_live_advance();
    const bool draining = srv_.draining_.load(std::memory_order_relaxed);
    if (draining && !drain_observed) {
      drain_observed = true;
      drain_quiet = false;
      if (listen_fd_ >= 0) {
        // A connection that finished its handshake in the backlog is
        // in-flight too: accept it now, then stop watching the
        // listener. The socket stays open until serve() has seen every
        // reactor quiesce.
        if (!listener_paused_) {
          accept_ready();
          if (!listener_paused_) poller_->remove(listen_fd_);
        }
        listener_paused_ = true;  // and never re-armed during a drain
      }
      // A request sent just before the signal may still be in flight in
      // the kernel, so reads continue during the drain; the deadline
      // bounds how long a chatty client can hold shutdown open.
      drain_deadline = Clock::now() + ms(std::max(
          {srv_.config_.read_timeout_ms, srv_.config_.write_timeout_ms, 100}));
    }
    execute_pending();
    if (draining) {
      fds.clear();
      for (const auto& [fd, conn] : conns_) fds.push_back(fd);
      for (const int fd : fds) {
        const auto it = conns_.find(fd);
        if (it != conns_.end()) flush_out(it->second);
      }
      bool settled = queues_empty();
      for (const auto& [fd, conn] : conns_) {
        if (conn.out_bytes > 0) settled = false;
      }
      // Exit once everything is flushed AND a poll round confirmed no
      // more bytes were in flight — or the drain deadline expires.
      if ((settled && drain_quiet) || Clock::now() >= drain_deadline) break;
    }
    const auto now = Clock::now();
    reap_timeouts(now);
    if (!draining) maybe_rearm_listener(now);
    poller_->wait(events, draining ? 20 : next_timeout_ms(Clock::now()));
    drain_quiet = true;
    for (const auto& ev : events) {
      if (ev.fd == wake_pipe_[0]) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      drain_quiet = false;
      if (handoff_rd_ >= 0 && ev.fd == handoff_rd_) {
        drain_handoff();
        continue;
      }
      if (listen_fd_ >= 0 && ev.fd == listen_fd_) {
        if (!srv_.draining_.load(std::memory_order_relaxed)) accept_ready();
        continue;
      }
      if (ev.writable) {
        const auto it = conns_.find(ev.fd);
        if (it != conns_.end()) flush_out(it->second);
      }
      const auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;
      if (ev.error) {
        close_conn(ev.fd);
        continue;
      }
      if (ev.readable) handle_readable(it->second);
    }
  }
  // Local teardown: this reactor's connections die here; the listener
  // is closed by serve() once every reactor has quiesced. Connections
  // still parked in the handoff pipe have nobody left to serve them.
  fds.clear();
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
  if (handoff_rd_ >= 0) {
    char buf[64];
    ssize_t n;
    while ((n = ::read(handoff_rd_, buf, sizeof buf)) > 0) {
      std::size_t i = 0;
      while (i < static_cast<std::size_t>(n)) {
        const std::size_t take = std::min(sizeof(int) - handoff_partial_len_,
                                          static_cast<std::size_t>(n) - i);
        std::memcpy(handoff_partial_ + handoff_partial_len_, buf + i, take);
        handoff_partial_len_ += take;
        i += take;
        if (handoff_partial_len_ == sizeof(int)) {
          int fd = -1;
          std::memcpy(&fd, handoff_partial_, sizeof fd);
          handoff_partial_len_ = 0;
          if (fd >= 0) ::close(fd);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reactor: accept path
// ---------------------------------------------------------------------------

void Server::Reactor::accept_ready() {
  while (true) {
    int fd = -1;
#ifdef __linux__
    fd = ::accept4(listen_fd_, nullptr, nullptr,
                   SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
    fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nonblocking(fd);
      set_cloexec(fd);
    }
#endif
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: a level-triggered poller would busy-spin on the
        // still-readable listener. Unwatch it and re-arm on a timer.
        accept_emfile_.fetch_add(1, std::memory_order_relaxed);
        srv_.obs_accept_emfile_.inc();
        pause_listener();
      }
      break;  // EAGAIN or transient accept failure
    }
    if (srv_.total_conns_.load(std::memory_order_relaxed) >=
        srv_.config_.max_connections) {
      ::close(fd);
      continue;
    }
    if (!srv_.reuseport_ && srv_.reactors_.size() > 1) {
      // Fallback acceptor: round-robin the fd across all reactors
      // (self included). A full pipe skips to the next target; if every
      // pipe is full this reactor serves the connection itself.
      const std::size_t n = srv_.reactors_.size();
      bool handed = false;
      for (std::size_t attempt = 0; attempt < n && !handed; ++attempt) {
        const std::size_t target = srv_.next_handoff_++ % n;
        if (target == index_) {
          adopt_fd(fd);
          handed = true;
          break;
        }
        const int wr = srv_.handoff_wr_[target];
        if (wr >= 0 &&
            ::write(wr, &fd, sizeof fd) == static_cast<ssize_t>(sizeof fd)) {
          handed = true;
        }
      }
      if (!handed) adopt_fd(fd);
      continue;
    }
    adopt_fd(fd);
  }
}

void Server::Reactor::adopt_fd(int fd) {
  if (fd < 0) return;
  if (srv_.total_conns_.load(std::memory_order_relaxed) >=
      srv_.config_.max_connections) {
    ::close(fd);
    return;
  }
  set_nonblocking(fd);  // no-op on the accept4 path
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  Conn conn;
  conn.fd = fd;
  conn.read_deadline_base = conn.write_deadline_base = Clock::now();
  conns_.emplace(fd, std::move(conn));
  poller_->add(fd, true, false);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  srv_.obs_accepted_.inc();
  srv_.total_conns_.fetch_add(1, std::memory_order_relaxed);
  srv_.set_conns_gauge();
}

void Server::Reactor::drain_handoff() {
  char buf[256];
  while (true) {
    const ssize_t n = ::read(handoff_rd_, buf, sizeof buf);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    // Writes of sizeof(int) <= PIPE_BUF are atomic, but reassemble
    // defensively: a read() may land mid-int at the buffer boundary.
    std::size_t i = 0;
    while (i < static_cast<std::size_t>(n)) {
      const std::size_t take = std::min(sizeof(int) - handoff_partial_len_,
                                        static_cast<std::size_t>(n) - i);
      std::memcpy(handoff_partial_ + handoff_partial_len_, buf + i, take);
      handoff_partial_len_ += take;
      i += take;
      if (handoff_partial_len_ == sizeof(int)) {
        int fd = -1;
        std::memcpy(&fd, handoff_partial_, sizeof fd);
        handoff_partial_len_ = 0;
        adopt_fd(fd);
      }
    }
  }
}

void Server::Reactor::pause_listener() {
  if (listen_fd_ < 0 || listener_paused_) return;
  poller_->remove(listen_fd_);
  listener_paused_ = true;
  accept_rearm_at_ =
      Clock::now() + ms(std::max(srv_.config_.accept_rearm_ms, 1));
}

void Server::Reactor::maybe_rearm_listener(Clock::time_point now) {
  if (!listener_paused_ || listen_fd_ < 0) return;
  if (now < accept_rearm_at_) return;
  // Level-triggered: if the backlog still has connections the next
  // wait() fires immediately; if fds are still exhausted the accept
  // fails again and the listener re-pauses for another interval.
  poller_->add(listen_fd_, true, false);
  listener_paused_ = false;
}

// ---------------------------------------------------------------------------
// Reactor: read path
// ---------------------------------------------------------------------------

void Server::Reactor::handle_readable(Conn& conn) {
  char buf[4096];
  bool progress = false;
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      srv_.obs_bytes_rx_.inc(static_cast<std::uint64_t>(n));
      progress = true;
      continue;
    }
    if (n == 0) {  // peer closed
      close_conn(conn.fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(conn.fd);
    return;
  }
  if (progress) {
    conn.read_deadline_base = Clock::now();
    parse_frames(conn);
  }
}

void Server::Reactor::parse_frames(Conn& conn) {
  std::size_t off = 0;
  while (true) {
    if (conn.discard > 0) {
      const std::size_t n = std::min(conn.discard, conn.in.size() - off);
      off += n;
      conn.discard -= n;
      if (conn.discard > 0) break;  // rest of the oversized payload pending
    }
    if (conn.close_after_flush) {  // stream unframeable; drop the rest
      off = conn.in.size();
      break;
    }
    if (conn.in.size() - off < kFrameHeaderBytes) break;
    const auto* header_bytes =
        reinterpret_cast<const unsigned char*>(conn.in.data() + off);
    FrameHeader header;
    const HeaderStatus status = parse_frame_header(header_bytes, header);
    if (status != HeaderStatus::kOk) {
      // Without a trusted magic/version there is no frame boundary to
      // resync to; answer and close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      srv_.obs_protocol_errors_.inc();
      respond_error(conn, "bad_frame",
                    status == HeaderStatus::kBadMagic
                        ? "bad frame magic; stream is not framed"
                        : "unsupported protocol version",
                    /*close_after=*/true);
      off = conn.in.size();
      break;
    }
    if (header.payload_bytes > srv_.config_.max_request_bytes) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      srv_.obs_protocol_errors_.inc();
      const bool recoverable =
          header.payload_bytes <= srv_.config_.max_discard_bytes;
      respond_error(conn, "oversized", "request payload exceeds limit",
                    /*close_after=*/!recoverable);
      if (!recoverable) {
        off = conn.in.size();
        break;
      }
      off += kFrameHeaderBytes;
      conn.discard = header.payload_bytes;
      continue;
    }
    if (conn.in.size() - off < kFrameHeaderBytes + header.payload_bytes) {
      break;  // incomplete frame; wait for more bytes
    }
    const std::string_view payload(conn.in.data() + off + kFrameHeaderBytes,
                                   header.payload_bytes);
    off += kFrameHeaderBytes + header.payload_bytes;
    if (frame_crc(header_bytes, payload) != header.crc) {
      // The length field was covered by the (failed) CRC but the frame
      // boundary is still coherent: skip exactly this frame and keep the
      // connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      srv_.obs_protocol_errors_.inc();
      respond_error(conn, "bad_crc", "frame checksum mismatch",
                    /*close_after=*/false);
      continue;
    }
    if (!is_request(header.type)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      srv_.obs_protocol_errors_.inc();
      respond_error(conn, "bad_request", "unknown or non-request frame type",
                    /*close_after=*/false);
      continue;
    }
    TraceContext trace;
    std::string_view request_payload = payload;
    if ((header.flags & kFlagTraceContext) != 0 &&
        !strip_trace_context(payload, trace, request_payload)) {
      // The flag promised a prefix the payload is too short to hold. The
      // frame boundary is still trusted, so only this request dies.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      srv_.obs_protocol_errors_.inc();
      respond_error(conn, "bad_request",
                    "trace-context flag without trace-context prefix",
                    /*close_after=*/false);
      continue;
    }
    admit_request(conn, header.type, header.flags, request_payload, trace);
  }
  conn.in.erase(0, off);
}

// ---------------------------------------------------------------------------
// Reactor: admission and execution
// ---------------------------------------------------------------------------

void Server::Reactor::admit_request(Conn& conn, MsgType type,
                                    std::uint8_t flags,
                                    std::string_view payload,
                                    const TraceContext& trace) {
  const std::uint32_t cost = request_cost(type);
  std::size_t client_pending = 0;
  for (const PendingItem& item : conn.queue) {
    if (!item.shed) ++client_pending;
  }
  const std::size_t pending_count =
      pending_count_.load(std::memory_order_relaxed);
  const std::size_t pending_cost =
      pending_cost_.load(std::memory_order_relaxed);

  const char* reason = nullptr;
  if (srv_.config_.max_client_pending > 0 &&
      client_pending >= srv_.config_.max_client_pending) {
    reason = "per-connection queue full";
    shed_client_.fetch_add(1, std::memory_order_relaxed);
    srv_.obs_shed_client_.inc();
  } else if (pending_count >= srv_.config_.max_inflight) {
    reason = "too many requests in flight";
    shed_inflight_.fetch_add(1, std::memory_order_relaxed);
    srv_.obs_shed_inflight_.inc();
  } else if (srv_.config_.max_pending_cost > 0 && pending_count > 0 &&
             pending_cost + cost > srv_.config_.max_pending_cost) {
    // An empty queue always admits (progress guarantee for requests
    // costlier than the whole budget).
    reason = "pending cost budget exceeded";
    shed_cost_.fetch_add(1, std::memory_order_relaxed);
    srv_.obs_shed_cost_.inc();
  }

  if (reason != nullptr) {
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    srv_.obs_busy_.inc();
    // Advertise a retry horizon that grows with budget pressure: base
    // when idle, 2x base when the pending-cost budget is saturated.
    int hint = srv_.config_.busy_retry_after_ms;
    if (srv_.config_.max_pending_cost > 0) {
      hint += static_cast<int>(
          (static_cast<std::uint64_t>(srv_.config_.busy_retry_after_ms) *
           std::min(pending_cost, srv_.config_.max_pending_cost)) /
          srv_.config_.max_pending_cost);
    }
    PendingItem marker;
    marker.type = type;
    marker.shed = true;
    marker.payload = error_payload("busy", reason, hint);
    conn.queue.push_back(std::move(marker));
    return;
  }

  PendingItem item;
  item.type = type;
  item.flags = flags;
  item.payload.assign(payload);
  item.cost = cost;
  item.trace_id = trace.trace_id;
  item.parent_span_id = trace.span_id;
  item.admit_time = Clock::now();
  conn.queue.push_back(std::move(item));
  pending_count_.fetch_add(1, std::memory_order_relaxed);
  pending_cost_.fetch_add(cost, std::memory_order_relaxed);
  srv_.set_pending_cost_gauge();
}

void Server::Reactor::execute_pending() {
  // Round-robin: one item per connection per pass, connections in fd
  // order, so no client's pipelined burst can starve another's queue.
  std::vector<int> fds;
  while (true) {
    fds.clear();
    for (const auto& [fd, conn] : conns_) {
      if (!conn.queue.empty()) fds.push_back(fd);
    }
    if (fds.empty()) return;
    std::sort(fds.begin(), fds.end());
    for (const int fd : fds) {
      const auto it = conns_.find(fd);
      if (it == conns_.end() || it->second.queue.empty()) continue;
      PendingItem item = std::move(it->second.queue.front());
      it->second.queue.pop_front();
      if (!item.shed) {
        pending_count_.fetch_sub(1, std::memory_order_relaxed);
        pending_cost_.fetch_sub(item.cost, std::memory_order_relaxed);
        srv_.set_pending_cost_gauge();
      }
      if (item.shed) {
        respond(it->second, MsgType::kError, item.payload);
        const auto again = conns_.find(fd);
        if (again != conns_.end()) flush_out(again->second);
      } else {
        execute_one(fd, item);
      }
    }
  }
}

bool Server::Reactor::queues_empty() const {
  for (const auto& [fd, conn] : conns_) {
    if (!conn.queue.empty()) return false;
  }
  return true;
}

void Server::Reactor::execute_one(int fd, const PendingItem& item) {
  if (conns_.find(fd) == conns_.end()) return;  // closed meanwhile
  const auto t0 = Clock::now();
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  srv_.obs_requests_.inc();

  // Every request acquires the dataset snapshot exactly once: digest,
  // execution, and zero-copy slices all see one coherent dataset even
  // when another reactor publishes a reload mid-request.
  const std::shared_ptr<const Dataset> ds = srv_.dataset_snapshot();

  const auto since_us = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
        .count();
  };
  const std::int64_t queue_us =
      item.admit_time.time_since_epoch().count() == 0
          ? 0
          : since_us(item.admit_time, t0);

  auto& collector = obs::TraceCollector::global();
  // Sampling follows the client: only requests that arrived with a
  // trace context get the span machinery (the cross-process trace is
  // the feature; five span commits per untraced request would tax every
  // caller for diagnostics nobody asked for).
  const bool tracing =
      srv_.config_.trace_requests && item.trace_id != 0 && collector.enabled();
  // The server-side half of the request's trace: a child of the
  // client's attempt span.
  std::optional<obs::TraceSpan> request_span;
  if (tracing) {
    request_span.emplace(std::string("server:") + type_name(item.type),
                         item.trace_id, item.parent_span_id, collector);
    // The admission-to-dequeue wait was never live as a stack span (the
    // item sat in a queue), so emit it retroactively.
    obs::SpanEvent wait;
    wait.name = "queue_wait";
    wait.path = request_span->path() + "/queue_wait";
    wait.depth = request_span->depth() + 1;
    wait.start_us = collector.now_us() - queue_us;
    wait.dur_us = queue_us;
    wait.trace_id = request_span->trace_id();
    wait.span_id = collector.new_span_id();
    wait.parent_span_id = request_span->span_id();
    collector.emit_event(std::move(wait));
  }

  // exec::ThreadPool::run is single-batch: concurrent reactors
  // serialize their pooled figure executions (everything else runs on
  // the reactor thread and needs no lock).
  const auto run_execute = [&](MsgType type, std::string_view payload) {
    if (type == MsgType::kFigureDigest && srv_.pool_ != nullptr) {
      std::lock_guard<std::mutex> lock(srv_.pool_mutex_);
      return ds->execute(type, payload, srv_.pool_);
    }
    return ds->execute(type, payload, srv_.pool_);
  };

  std::int64_t cache_us = 0, exec_us = 0;
  const char* cache_status = "none";
  Dataset::Response response;
  std::shared_ptr<const std::string> shared_payload;
  Dataset::ArchiveSlice slice;
  bool use_slice = false;
  if (item.type == MsgType::kServerStats) {
    response = {MsgType::kOk, srv_.stats_payload(*ds)};
  } else if (item.type == MsgType::kMetricsDump) {
    MetricsDumpQuery q;
    if (decode_metrics_dump_query(item.payload, q)) {
      response = {MsgType::kOk, srv_.metrics_dump_payload(q.format)};
    } else {
      response = {MsgType::kError,
                  error_payload("bad_request", "bad metrics_dump payload")};
    }
  } else if (item.type == MsgType::kLiveStatus) {
    // Never cached: the whole point is observing ingest progress.
    response = {MsgType::kOk, srv_.live_status_payload(*ds)};
  } else if (item.type == MsgType::kArchiveSlice) {
    SliceQuery q;
    if (!decode_slice_query(item.payload, q)) {
      response = {MsgType::kError,
                  error_payload("bad_request", "bad archive_slice payload")};
    } else {
      std::optional<obs::TraceSpan> phase;
      if (tracing) phase.emplace("exec", collector);
      const auto t = Clock::now();
      slice = ds->archive_slice(q.t0_s, q.t1_s);
      exec_us = since_us(t, Clock::now());
      if (!slice.ok) {
        response = {MsgType::kError,
                    error_payload("unavailable", slice.error)};
      } else if (slice.bytes > 0xffffffffull) {
        response = {MsgType::kError,
                    error_payload("oversized",
                                  "slice exceeds frame payload limit")};
      } else {
        use_slice = true;
      }
    }
  } else if (is_cacheable(item.type)) {
    const std::string key = ResultCache::make_key(
        ds->digest(), static_cast<std::uint8_t>(item.type), item.payload);
    const bool bypass = (item.flags & kFlagNoCache) != 0;
    {
      std::optional<obs::TraceSpan> phase;
      if (tracing) phase.emplace("cache_lookup", collector);
      const auto t = Clock::now();
      if (!bypass) shared_payload = cache_.find(key);
      cache_us = since_us(t, Clock::now());
    }
    if (shared_payload) {
      cache_status = "hit";
    } else {
      cache_status = bypass ? "bypass" : "miss";
      std::optional<obs::TraceSpan> phase;
      if (tracing) phase.emplace("exec", collector);
      const auto t = Clock::now();
      response = run_execute(item.type, item.payload);
      exec_us = since_us(t, Clock::now());
      if (response.type == MsgType::kOk) {
        // Cache entry and output queue share one immutable string: the
        // insert costs no copy and the response writes zero-copy.
        shared_payload = std::make_shared<const std::string>(
            std::move(response.payload));
        cache_.insert(key, shared_payload);
      }
    }
  } else {
    std::optional<obs::TraceSpan> phase;
    if (tracing) phase.emplace("exec", collector);
    const auto t = Clock::now();
    response = run_execute(item.type, item.payload);
    exec_us = since_us(t, Clock::now());
  }

  const auto us = since_us(t0, Clock::now());
  srv_.latency_histogram(item.type).record(static_cast<double>(us));

  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  MsgType response_type = MsgType::kOk;
  std::string_view response_payload;
  std::int64_t encode_us = 0, write_us = 0;
  {
    std::optional<obs::TraceSpan> phase;
    if (tracing) phase.emplace("encode", collector);
    const auto t = Clock::now();
    if (use_slice) {
      respond_slice(it->second, slice, ds);
    } else if (shared_payload) {
      response_payload = *shared_payload;
      respond_shared(it->second, MsgType::kOk, shared_payload);
    } else {
      response_type = response.type;
      response_payload = response.payload;
      respond(it->second, response.type, response.payload);
    }
    encode_us = since_us(t, Clock::now());
  }
  const auto again = conns_.find(fd);
  if (again != conns_.end()) {
    std::optional<obs::TraceSpan> phase;
    if (tracing) phase.emplace("write", collector);
    const auto t = Clock::now();
    flush_out(again->second);
    write_us = since_us(t, Clock::now());
  }

  const std::int64_t total_us =
      item.admit_time.time_since_epoch().count() == 0
          ? since_us(t0, Clock::now())
          : since_us(item.admit_time, Clock::now());
  finish_request(item, total_us, queue_us, cache_us, exec_us, encode_us,
                 write_us, cache_status, response_type, response_payload);
}

void Server::Reactor::finish_request(
    const PendingItem& item, std::int64_t total_us, std::int64_t queue_us,
    std::int64_t cache_us, std::int64_t exec_us, std::int64_t encode_us,
    std::int64_t write_us, const char* cache_status, MsgType response_type,
    std::string_view response_payload) {
  const auto key = static_cast<std::uint8_t>(item.type);
  if (const auto w = srv_.windowed_.find(key); w != srv_.windowed_.end()) {
    w->second->record(static_cast<double>(total_us));
  }
  if (const auto s = srv_.slo_.find(key); s != srv_.slo_.end()) {
    SloCell& cell = *s->second;
    cell.total.fetch_add(1, std::memory_order_relaxed);
    cell.obs_total.inc();
    if (static_cast<double>(total_us) <= cell.threshold_us) {
      cell.good.fetch_add(1, std::memory_order_relaxed);
      cell.obs_good.inc();
    }
  }
  if (srv_.slow_log_.enabled() && total_us > srv_.slow_log_.threshold_us()) {
    SlowQueryEntry entry;
    entry.trace_id = item.trace_id;
    entry.type = type_name(item.type);
    entry.total_us = total_us;
    entry.queue_us = queue_us;
    entry.cache_us = cache_us;
    entry.exec_us = exec_us;
    entry.encode_us = encode_us;
    entry.write_us = write_us;
    entry.cache_status = cache_status;
    entry.admission = "admitted";
    entry.response = response_type == MsgType::kOk
                         ? "ok"
                         : parse_error_payload(response_payload).code;
    srv_.slow_log_.emit(entry);
  }
}

// ---------------------------------------------------------------------------
// Reactor: write path
// ---------------------------------------------------------------------------

void Server::Reactor::queue_chunk(Conn& conn, OutChunk chunk) {
  if (chunk.size() == 0) return;
  if (conn.out.empty()) conn.write_deadline_base = Clock::now();
  conn.out_bytes += chunk.size();
  conn.out.push_back(std::move(chunk));
}

void Server::Reactor::respond(Conn& conn, MsgType type,
                              std::string_view payload) {
  OutChunk chunk;
  chunk.owned = encode_frame(type, 0, payload);
  queue_chunk(conn, std::move(chunk));
  update_interest(conn);
}

void Server::Reactor::respond_shared(
    Conn& conn, MsgType type, std::shared_ptr<const std::string> payload) {
  OutChunk header;
  header.owned = encode_frame_header(type, 0, *payload);
  queue_chunk(conn, std::move(header));
  OutChunk body;
  body.view = std::string_view(*payload);
  body.keep = std::move(payload);
  queue_chunk(conn, std::move(body));
  update_interest(conn);
}

void Server::Reactor::respond_slice(Conn& conn,
                                    const Dataset::ArchiveSlice& slice,
                                    std::shared_ptr<const void> keep) {
  // Frame payload = owned 16-byte file header + raw block spans into
  // the mmap'd archive, CRC'd incrementally so nothing is concatenated;
  // the dataset snapshot rides the output queue until the last block
  // byte is flushed.
  std::vector<std::string_view> spans;
  spans.reserve(slice.blocks.size() + 1);
  spans.emplace_back(slice.file_header);
  for (const std::string_view block : slice.blocks) spans.push_back(block);
  OutChunk header;
  header.owned = encode_frame_header(MsgType::kOk, 0, spans);
  queue_chunk(conn, std::move(header));
  OutChunk file_header;
  file_header.owned = slice.file_header;
  queue_chunk(conn, std::move(file_header));
  for (const std::string_view block : slice.blocks) {
    OutChunk chunk;
    chunk.view = block;
    chunk.keep = keep;
    queue_chunk(conn, std::move(chunk));
  }
  update_interest(conn);
}

void Server::Reactor::respond_error(Conn& conn, std::string_view code,
                                    std::string_view message,
                                    bool close_after) {
  if (close_after) conn.close_after_flush = true;
  respond(conn, MsgType::kError, error_payload(code, message));
}

void Server::Reactor::flush_out(Conn& conn) {
  while (conn.out_bytes > 0) {
    iovec iov[kMaxIovec];
    int iovcnt = 0;
    std::size_t skip = conn.out_off;
    for (const OutChunk& chunk : conn.out) {
      if (iovcnt == kMaxIovec) break;
      iov[iovcnt].iov_base = const_cast<char*>(chunk.data() + skip);
      iov[iovcnt].iov_len = chunk.size() - skip;
      ++iovcnt;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      srv_.obs_bytes_tx_.inc(static_cast<std::uint64_t>(n));
      conn.write_deadline_base = Clock::now();
      conn.out_bytes -= static_cast<std::size_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        OutChunk& front = conn.out.front();
        const std::size_t avail = front.size() - conn.out_off;
        if (left >= avail) {
          left -= avail;
          conn.out.pop_front();
          conn.out_off = 0;
        } else {
          conn.out_off += left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(conn.fd);
    return;
  }
  if (conn.out_bytes == 0) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      close_conn(conn.fd);
      return;
    }
  }
  update_interest(conn);
}

void Server::Reactor::update_interest(Conn& conn) {
  const bool want_read = !conn.close_after_flush;
  const bool want_write = conn.out_bytes > 0;
  poller_->update(conn.fd, want_read, want_write);
}

void Server::Reactor::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // The per-connection queue dies with the connection; release what its
  // admitted requests held against this reactor's gates.
  for (const PendingItem& item : it->second.queue) {
    if (!item.shed) {
      pending_count_.fetch_sub(1, std::memory_order_relaxed);
      pending_cost_.fetch_sub(item.cost, std::memory_order_relaxed);
    }
  }
  srv_.set_pending_cost_gauge();
  poller_->remove(fd);
  ::close(fd);
  conns_.erase(it);
  srv_.total_conns_.fetch_sub(1, std::memory_order_relaxed);
  srv_.set_conns_gauge();
}

void Server::Reactor::reap_timeouts(Clock::time_point now) {
  std::vector<int> dead;
  for (const auto& [fd, conn] : conns_) {
    const bool mid_frame = !conn.in.empty() || conn.discard > 0;
    if (mid_frame && srv_.config_.read_timeout_ms > 0 &&
        now - conn.read_deadline_base > ms(srv_.config_.read_timeout_ms)) {
      dead.push_back(fd);
    } else if (conn.out_bytes > 0 && srv_.config_.write_timeout_ms > 0 &&
               now - conn.write_deadline_base >
                   ms(srv_.config_.write_timeout_ms)) {
      dead.push_back(fd);
    }
  }
  for (const int fd : dead) {
    reaped_.fetch_add(1, std::memory_order_relaxed);
    srv_.obs_reaped_.inc();
    close_conn(fd);
  }
}

int Server::Reactor::next_timeout_ms(Clock::time_point now) const {
  std::int64_t timeout = 1000;  // heartbeat for reap/drain checks
  const auto remaining = [&](Clock::time_point base, int limit_ms) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - base)
            .count();
    return static_cast<std::int64_t>(limit_ms) - elapsed;
  };
  for (const auto& [fd, conn] : conns_) {
    if ((!conn.in.empty() || conn.discard > 0) &&
        srv_.config_.read_timeout_ms > 0) {
      timeout = std::min(timeout, remaining(conn.read_deadline_base,
                                            srv_.config_.read_timeout_ms));
    }
    if (conn.out_bytes > 0 && srv_.config_.write_timeout_ms > 0) {
      timeout = std::min(timeout, remaining(conn.write_deadline_base,
                                            srv_.config_.write_timeout_ms));
    }
  }
  if (listener_paused_ && listen_fd_ >= 0) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                           accept_rearm_at_ - now)
                           .count();
    timeout = std::min(timeout, std::max<std::int64_t>(until, 0));
  }
  // The live-ingest tick must fire even on an idle server: bound reactor
  // 0's sleep by the poll interval.
  if (index_ == 0 && srv_.config_.live_poll_ms > 0) {
    timeout = std::min(
        timeout, static_cast<std::int64_t>(srv_.config_.live_poll_ms));
  }
  return static_cast<int>(std::max<std::int64_t>(timeout, 0));
}

// ---------------------------------------------------------------------------
// Server: stats and metrics payloads
// ---------------------------------------------------------------------------

std::string Server::stats_payload(const Dataset& dataset) const {
  const ResultCache::Stats cache = cache_stats();
  std::uint64_t accepted = 0, reaped = 0, busy = 0, shed_cost = 0,
                shed_inflight = 0, shed_client = 0, protocol_errors = 0,
                emfile = 0, pending_cost = 0;
  for (const auto& r : reactors_) {
    accepted += r->accepted_.load(std::memory_order_relaxed);
    reaped += r->reaped_.load(std::memory_order_relaxed);
    busy += r->busy_rejected_.load(std::memory_order_relaxed);
    shed_cost += r->shed_cost_.load(std::memory_order_relaxed);
    shed_inflight += r->shed_inflight_.load(std::memory_order_relaxed);
    shed_client += r->shed_client_.load(std::memory_order_relaxed);
    protocol_errors += r->protocol_errors_.load(std::memory_order_relaxed);
    emfile += r->accept_emfile_.load(std::memory_order_relaxed);
    pending_cost += r->pending_cost_.load(std::memory_order_relaxed);
  }
  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("server_stats");
  w.key("server").begin_object();
  w.key("uptime_s").value(uptime_seconds());
  w.key("trace_context").value(true);
  w.key("reactors").value(static_cast<std::uint64_t>(reactors_.size()));
  w.key("reuseport").value(reuseport_);
  w.key("active_conns")
      .value(static_cast<std::uint64_t>(
          total_conns_.load(std::memory_order_relaxed)));
  w.key("draining").value(draining_.load(std::memory_order_relaxed));
  w.key("requests").value(requests_served());
  w.key("conns_accepted").value(accepted);
  w.key("conns_reaped").value(reaped);
  w.key("accept_emfile").value(emfile);
  w.key("busy_rejected").value(busy);
  w.key("shed").begin_object();
  w.key("cost").value(shed_cost);
  w.key("inflight").value(shed_inflight);
  w.key("client").value(shed_client);
  w.key("pending_cost").value(pending_cost);
  w.key("max_pending_cost")
      .value(static_cast<std::uint64_t>(config_.max_pending_cost));
  w.end_object();
  w.key("protocol_errors").value(protocol_errors);
  w.key("reloads").value(reloads());
  w.key("slow_queries").begin_object();
  w.key("threshold_us")
      .value(static_cast<std::int64_t>(config_.slow_query_us));
  w.key("emitted").value(slow_log_.emitted());
  w.key("suppressed").value(slow_log_.suppressed());
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("insertions").value(cache.insertions);
  w.key("evictions").value(cache.evictions);
  w.key("entries").value(cache.entries);
  w.key("bytes").value(cache.bytes);
  w.end_object();
  w.end_object();
  w.key("dataset").begin_object();
  dataset.summary_json(w);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string Server::live_status_payload(const Dataset& dataset) const {
  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("live_status");
  w.key("live").value(dataset.live());
  if (dataset.live()) {
    const live::Watermark& wm = dataset.watermark();
    w.key("watermark_epoch").value(wm.epoch);
    w.key("sealed_bytes").value(wm.sealed_bytes);
    w.key("blocks").value(wm.blocks);
    w.key("records").value(wm.records);
    w.key("ping_epochs")
        .value(static_cast<std::uint64_t>(dataset.ping_epochs()));
    const auto* state = dataset.live_state();
    w.key("pairs_tracked")
        .value(static_cast<std::uint64_t>(state ? state->pairs_tracked() : 0));
    w.key("records_folded").value(state ? state->records_folded() : 0);
    if (state != nullptr) {
      const auto summary = state->summarize(nullptr);
      w.key("assessed_pairs")
          .value(static_cast<std::uint64_t>(summary.assessed));
      w.key("congested_pairs")
          .value(static_cast<std::uint64_t>(summary.consistent));
    }
    // Unsealed bytes sitting past the watermark: the writer's in-flight
    // tail the serving path deliberately cannot see yet.
    struct stat st{};
    if (::stat(dataset.config().archive_path.c_str(), &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) >= wm.sealed_bytes) {
      w.key("lag_bytes")
          .value(static_cast<std::uint64_t>(st.st_size) - wm.sealed_bytes);
    }
  }
  w.key("delta_pickups").value(live_pickups());
  w.key("poll_ms").value(static_cast<std::int64_t>(config_.live_poll_ms));
  w.end_object();
  return w.str();
}

std::string Server::metrics_dump_payload(std::uint8_t format) const {
  auto snap = obs::MetricsRegistry::global().snapshot();
  // Graft in the serving facts the registry does not carry: cache stats
  // live in the per-reactor ResultCaches, uptime is a server property.
  // The hit/miss/eviction names are the same ones result_cache.cc
  // mirrors into the registry (here overwritten with the authoritative
  // aggregated values) — a second dotted spelling would collide after
  // Prometheus name sanitization.
  const ResultCache::Stats cache = cache_stats();
  snap.counters["s2s.svc.cache_hits"] = cache.hits;
  snap.counters["s2s.svc.cache_misses"] = cache.misses;
  snap.counters["s2s.svc.cache_insertions"] = cache.insertions;
  snap.counters["s2s.svc.cache_evictions"] = cache.evictions;
  snap.gauges["s2s.svc.cache_entries"] = static_cast<double>(cache.entries);
  snap.gauges["s2s.svc.cache_bytes"] = static_cast<double>(cache.bytes);
  snap.gauges["s2s.svc.uptime_s"] = uptime_seconds();
  snap.gauges["s2s.svc.reactors"] = static_cast<double>(reactors_.size());
  const auto windowed = windowed_snapshots();
  const auto slo = slo_stats();

  if (format == MetricsDumpQuery::kPrometheus) {
    return obs::to_prometheus_text(snap, windowed, slo);
  }

  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("metrics_dump");
  w.key("uptime_s").value(uptime_seconds());
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("total").value(h.total);
    w.key("overflow").value(h.overflow());
    w.key("p50").value(h.quantile(0.50));
    w.key("p99").value(h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.key("windowed").begin_object();
  for (const auto& [name, win] : windowed) {
    w.key(name).begin_object();
    w.key("window_s").value(win.window_s);
    w.key("total").value(win.hist.total);
    w.key("p50").value(win.hist.quantile(0.50));
    w.key("p99").value(win.hist.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.key("slo").begin_object();
  for (const auto& [name, s] : slo) {
    w.key(name).begin_object();
    w.key("threshold_us").value(s.threshold_us);
    w.key("good").value(s.good);
    w.key("total").value(s.total);
    w.key("good_ratio").value(s.good_ratio());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

obs::Histogram& Server::latency_histogram(MsgType type) {
  const auto it = latency_.find(static_cast<std::uint8_t>(type));
  if (it != latency_.end()) return it->second;
  static obs::Histogram noop;
  return noop;
}

}  // namespace s2s::svc
