#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>

#include "obs/log.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace s2s::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::chrono::milliseconds ms(int v) { return std::chrono::milliseconds(v); }

}  // namespace

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

Server::Poller::Poller(bool use_epoll) {
#ifdef __linux__
  if (use_epoll) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ >= 0) {
      epoll_ = true;
      ok_ = true;
      return;
    }
  }
#else
  (void)use_epoll;
#endif
  ok_ = true;  // poll() backend needs no setup
}

Server::Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Server::Poller::add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epoll_) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    return;
  }
#endif
  interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                     (want_write ? POLLOUT : 0));
}

void Server::Poller::update(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epoll_) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
    return;
  }
#endif
  interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                     (want_write ? POLLOUT : 0));
}

void Server::Poller::remove(int fd) {
#ifdef __linux__
  if (epoll_) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  interest_.erase(fd);
}

void Server::Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#ifdef __linux__
  if (epoll_) {
    epoll_event evs[64];
    const int n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
    return;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, events] : interest_) {
    fds.push_back({fd, events, 0});
  }
  const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       timeout_ms);
  if (n <= 0) return;
  for (const auto& p : fds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
    out.push_back(e);
  }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(Dataset& dataset, exec::ThreadPool* pool,
               const ServerConfig& config)
    : dataset_(dataset),
      pool_(pool),
      config_(config),
      cache_({config.cache_shards, config.cache_bytes}),
      slow_log_({config.slow_query_us, config.slow_log_max_per_interval,
                 /*interval_ms=*/1000, /*max_entries=*/128}) {
  auto& reg = obs::MetricsRegistry::global();
  obs_requests_ = reg.counter("s2s.svc.requests");
  obs_accepted_ = reg.counter("s2s.svc.conns_accepted");
  obs_reaped_ = reg.counter("s2s.svc.conns_reaped");
  obs_busy_ = reg.counter("s2s.svc.busy_rejected");
  obs_shed_cost_ = reg.counter("s2s.svc.shed.cost");
  obs_shed_inflight_ = reg.counter("s2s.svc.shed.inflight");
  obs_shed_client_ = reg.counter("s2s.svc.shed.client");
  obs_protocol_errors_ = reg.counter("s2s.svc.protocol_errors");
  obs_bytes_rx_ = reg.counter("s2s.svc.bytes_rx");
  obs_bytes_tx_ = reg.counter("s2s.svc.bytes_tx");
  obs_reloads_ = reg.counter("s2s.svc.reloads");
  obs_active_conns_ = reg.gauge("s2s.svc.active_conns");
  obs_pending_cost_ = reg.gauge("s2s.svc.pending_cost");
  for (const MsgType t :
       {MsgType::kPingEcho, MsgType::kPairRtt, MsgType::kPathPrevalence,
        MsgType::kCongestionVerdict, MsgType::kDualStackDelta,
        MsgType::kFigureDigest, MsgType::kServerStats,
        MsgType::kMetricsDump}) {
    const auto key = static_cast<std::uint8_t>(t);
    latency_.emplace(
        key, reg.histogram(std::string("s2s.svc.latency_us.") + type_name(t),
                           obs::MetricsRegistry::latency_us_bounds()));
    windowed_.emplace(
        key, std::make_unique<obs::WindowedHistogram>(
                 obs::MetricsRegistry::latency_us_bounds(),
                 config_.window_seconds, config_.window_slots));
    auto cell = std::make_unique<SloCell>();
    cell->threshold_us = config_.slo_ms * 1000.0;
    cell->obs_good =
        reg.counter(std::string("s2s.svc.slo.") + type_name(t) + ".good");
    cell->obs_total =
        reg.counter(std::string("s2s.svc.slo.") + type_name(t) + ".total");
    slo_.emplace(key, std::move(cell));
  }
}

Server::~Server() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

bool Server::start(std::string& error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error = "bad bind address: " + config_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    error = "bind: " + std::string(std::strerror(errno));
    return false;
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    error = "listen: " + std::string(std::strerror(errno));
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (!set_nonblocking(listen_fd_)) {
    error = "fcntl: " + std::string(std::strerror(errno));
    return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    error = "pipe: " + std::string(std::strerror(errno));
    return false;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  poller_ = std::make_unique<Poller>(config_.use_epoll);
  if (!poller_->ok()) {
    error = "poller setup failed";
    return false;
  }
  poller_->add(listen_fd_, true, false);
  poller_->add(wake_pipe_[0], true, false);
  start_time_ = Clock::now();
  return true;
}

double Server::uptime_seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_time_).count();
}

std::map<std::string, obs::WindowedSnapshot> Server::windowed_snapshots()
    const {
  std::map<std::string, obs::WindowedSnapshot> out;
  for (const auto& [key, hist] : windowed_) {
    out.emplace(std::string("s2s.svc.windowed_us.") +
                    type_name(static_cast<MsgType>(key)),
                hist->snapshot());
  }
  return out;
}

std::map<std::string, obs::SloStat> Server::slo_stats() const {
  std::map<std::string, obs::SloStat> out;
  for (const auto& [key, cell] : slo_) {
    obs::SloStat s;
    s.threshold_us = cell->threshold_us;
    s.good = cell->good.load(std::memory_order_relaxed);
    s.total = cell->total.load(std::memory_order_relaxed);
    out.emplace(
        std::string("s2s.svc.slo.") + type_name(static_cast<MsgType>(key)),
        s);
  }
  return out;
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_relaxed);
  // write() is async-signal-safe; this is the SIGTERM handler's body.
  const char b = 'D';
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const auto r = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::request_reload() {
  reload_pending_.store(true, std::memory_order_relaxed);
  const char b = 'R';
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const auto r = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::serve() {
  std::vector<Poller::Event> events;
  std::vector<int> fds;
  bool drain_observed = false;
  bool drain_quiet = false;  ///< last poll round saw no socket events
  Clock::time_point drain_deadline;
  while (true) {
    if (reload_pending_.exchange(false, std::memory_order_relaxed)) {
      do_reload();
    }
    const bool draining = draining_.load(std::memory_order_relaxed);
    if (draining && !drain_observed) {
      drain_observed = true;
      drain_quiet = false;
      // A connection that finished its handshake in the backlog is
      // in-flight too: accept it now, then stop watching the listener.
      // The socket stays open until every response has been flushed.
      accept_ready();
      poller_->remove(listen_fd_);
      // A request sent just before the signal may still be in flight in
      // the kernel, so reads continue during the drain; the deadline
      // bounds how long a chatty client can hold shutdown open.
      drain_deadline = Clock::now() + ms(std::max(
          {config_.read_timeout_ms, config_.write_timeout_ms, 100}));
    }
    execute_pending();
    if (draining) {
      fds.clear();
      for (const auto& [fd, conn] : conns_) fds.push_back(fd);
      for (const int fd : fds) {
        const auto it = conns_.find(fd);
        if (it != conns_.end()) flush_out(it->second);
      }
      bool settled = queues_empty();
      for (const auto& [fd, conn] : conns_) {
        if (conn.out_off < conn.out.size()) settled = false;
      }
      // Exit once everything is flushed AND a poll round confirmed no
      // more bytes were in flight — or the drain deadline expires.
      if ((settled && drain_quiet) || Clock::now() >= drain_deadline) break;
    }
    reap_timeouts(Clock::now());
    poller_->wait(events,
                  draining ? 20 : next_timeout_ms(Clock::now()));
    drain_quiet = true;
    for (const auto& ev : events) {
      if (ev.fd == wake_pipe_[0]) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      drain_quiet = false;
      if (ev.fd == listen_fd_) {
        if (!draining_.load(std::memory_order_relaxed)) accept_ready();
        continue;
      }
      if (ev.writable) {
        const auto it = conns_.find(ev.fd);
        if (it != conns_.end()) flush_out(it->second);
      }
      const auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;
      if (ev.error) {
        close_conn(ev.fd);
        continue;
      }
      if (ev.readable) handle_readable(it->second);
    }
  }
  // Drain complete: connections first, listener last — the socket stays
  // accept()-able until every in-flight response has been flushed.
  fds.clear();
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
  if (listen_fd_ >= 0) {
    poller_->remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or transient accept failure
    }
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Conn conn;
    conn.fd = fd;
    conn.read_deadline_base = conn.write_deadline_base = Clock::now();
    conns_.emplace(fd, std::move(conn));
    poller_->add(fd, true, false);
    ++accepted_;
    obs_accepted_.inc();
    obs_active_conns_.set(static_cast<double>(conns_.size()));
  }
}

void Server::handle_readable(Conn& conn) {
  char buf[4096];
  bool progress = false;
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      obs_bytes_rx_.inc(static_cast<std::uint64_t>(n));
      progress = true;
      continue;
    }
    if (n == 0) {  // peer closed
      close_conn(conn.fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(conn.fd);
    return;
  }
  if (progress) {
    conn.read_deadline_base = Clock::now();
    parse_frames(conn);
  }
}

void Server::parse_frames(Conn& conn) {
  std::size_t off = 0;
  while (true) {
    if (conn.discard > 0) {
      const std::size_t n = std::min(conn.discard, conn.in.size() - off);
      off += n;
      conn.discard -= n;
      if (conn.discard > 0) break;  // rest of the oversized payload pending
    }
    if (conn.close_after_flush) {  // stream unframeable; drop the rest
      off = conn.in.size();
      break;
    }
    if (conn.in.size() - off < kFrameHeaderBytes) break;
    const auto* header_bytes =
        reinterpret_cast<const unsigned char*>(conn.in.data() + off);
    FrameHeader header;
    const HeaderStatus status = parse_frame_header(header_bytes, header);
    if (status != HeaderStatus::kOk) {
      // Without a trusted magic/version there is no frame boundary to
      // resync to; answer and close.
      ++protocol_errors_;
      obs_protocol_errors_.inc();
      respond_error(conn, "bad_frame",
                    status == HeaderStatus::kBadMagic
                        ? "bad frame magic; stream is not framed"
                        : "unsupported protocol version",
                    /*close_after=*/true);
      off = conn.in.size();
      break;
    }
    if (header.payload_bytes > config_.max_request_bytes) {
      ++protocol_errors_;
      obs_protocol_errors_.inc();
      const bool recoverable =
          header.payload_bytes <= config_.max_discard_bytes;
      respond_error(conn, "oversized", "request payload exceeds limit",
                    /*close_after=*/!recoverable);
      if (!recoverable) {
        off = conn.in.size();
        break;
      }
      off += kFrameHeaderBytes;
      conn.discard = header.payload_bytes;
      continue;
    }
    if (conn.in.size() - off < kFrameHeaderBytes + header.payload_bytes) {
      break;  // incomplete frame; wait for more bytes
    }
    const std::string_view payload(conn.in.data() + off + kFrameHeaderBytes,
                                   header.payload_bytes);
    off += kFrameHeaderBytes + header.payload_bytes;
    if (frame_crc(header_bytes, payload) != header.crc) {
      // The length field was covered by the (failed) CRC but the frame
      // boundary is still coherent: skip exactly this frame and keep the
      // connection.
      ++protocol_errors_;
      obs_protocol_errors_.inc();
      respond_error(conn, "bad_crc", "frame checksum mismatch",
                    /*close_after=*/false);
      continue;
    }
    if (!is_request(header.type)) {
      ++protocol_errors_;
      obs_protocol_errors_.inc();
      respond_error(conn, "bad_request", "unknown or non-request frame type",
                    /*close_after=*/false);
      continue;
    }
    TraceContext trace;
    std::string_view request_payload = payload;
    if ((header.flags & kFlagTraceContext) != 0 &&
        !strip_trace_context(payload, trace, request_payload)) {
      // The flag promised a prefix the payload is too short to hold. The
      // frame boundary is still trusted, so only this request dies.
      ++protocol_errors_;
      obs_protocol_errors_.inc();
      respond_error(conn, "bad_request",
                    "trace-context flag without trace-context prefix",
                    /*close_after=*/false);
      continue;
    }
    admit_request(conn, header.type, header.flags, request_payload, trace);
  }
  conn.in.erase(0, off);
}

void Server::admit_request(Conn& conn, MsgType type, std::uint8_t flags,
                           std::string_view payload,
                           const TraceContext& trace) {
  const std::uint32_t cost = request_cost(type);
  std::size_t client_pending = 0;
  for (const PendingItem& item : conn.queue) {
    if (!item.shed) ++client_pending;
  }

  const char* reason = nullptr;
  if (config_.max_client_pending > 0 &&
      client_pending >= config_.max_client_pending) {
    reason = "per-connection queue full";
    ++shed_client_;
    obs_shed_client_.inc();
  } else if (pending_count_ >= config_.max_inflight) {
    reason = "too many requests in flight";
    ++shed_inflight_;
    obs_shed_inflight_.inc();
  } else if (config_.max_pending_cost > 0 && pending_count_ > 0 &&
             pending_cost_ + cost > config_.max_pending_cost) {
    // An empty queue always admits (progress guarantee for requests
    // costlier than the whole budget).
    reason = "pending cost budget exceeded";
    ++shed_cost_;
    obs_shed_cost_.inc();
  }

  if (reason != nullptr) {
    ++busy_rejected_;
    obs_busy_.inc();
    // Advertise a retry horizon that grows with budget pressure: base
    // when idle, 2x base when the pending-cost budget is saturated.
    int hint = config_.busy_retry_after_ms;
    if (config_.max_pending_cost > 0) {
      hint += static_cast<int>(
          (static_cast<std::uint64_t>(config_.busy_retry_after_ms) *
           std::min(pending_cost_, config_.max_pending_cost)) /
          config_.max_pending_cost);
    }
    PendingItem marker;
    marker.type = type;
    marker.shed = true;
    marker.payload = error_payload("busy", reason, hint);
    conn.queue.push_back(std::move(marker));
    return;
  }

  PendingItem item;
  item.type = type;
  item.flags = flags;
  item.payload.assign(payload);
  item.cost = cost;
  item.trace_id = trace.trace_id;
  item.parent_span_id = trace.span_id;
  item.admit_time = Clock::now();
  conn.queue.push_back(std::move(item));
  ++pending_count_;
  pending_cost_ += cost;
  obs_pending_cost_.set(static_cast<double>(pending_cost_));
}

void Server::execute_pending() {
  // Round-robin: one item per connection per pass, connections in fd
  // order, so no client's pipelined burst can starve another's queue.
  std::vector<int> fds;
  while (true) {
    fds.clear();
    for (const auto& [fd, conn] : conns_) {
      if (!conn.queue.empty()) fds.push_back(fd);
    }
    if (fds.empty()) return;
    std::sort(fds.begin(), fds.end());
    for (const int fd : fds) {
      const auto it = conns_.find(fd);
      if (it == conns_.end() || it->second.queue.empty()) continue;
      PendingItem item = std::move(it->second.queue.front());
      it->second.queue.pop_front();
      if (!item.shed) {
        pending_count_ -= 1;
        pending_cost_ -= item.cost;
        obs_pending_cost_.set(static_cast<double>(pending_cost_));
      }
      if (item.shed) {
        respond(it->second, MsgType::kError, item.payload);
        const auto again = conns_.find(fd);
        if (again != conns_.end()) flush_out(again->second);
      } else {
        execute_one(fd, item);
      }
    }
  }
}

bool Server::queues_empty() const {
  for (const auto& [fd, conn] : conns_) {
    if (!conn.queue.empty()) return false;
  }
  return true;
}

void Server::execute_one(int fd, const PendingItem& item) {
  if (conns_.find(fd) == conns_.end()) return;  // closed meanwhile
  const auto t0 = Clock::now();
  ++requests_served_;
  obs_requests_.inc();

  const auto since_us = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
        .count();
  };
  const std::int64_t queue_us =
      item.admit_time.time_since_epoch().count() == 0
          ? 0
          : since_us(item.admit_time, t0);

  auto& collector = obs::TraceCollector::global();
  // Sampling follows the client: only requests that arrived with a
  // trace context get the span machinery (the cross-process trace is
  // the feature; five span commits per untraced request would tax every
  // caller for diagnostics nobody asked for).
  const bool tracing =
      config_.trace_requests && item.trace_id != 0 && collector.enabled();
  // The server-side half of the request's trace: a child of the
  // client's attempt span.
  std::optional<obs::TraceSpan> request_span;
  if (tracing) {
    request_span.emplace(std::string("server:") + type_name(item.type),
                        item.trace_id, item.parent_span_id, collector);
    // The admission-to-dequeue wait was never live as a stack span (the
    // item sat in a queue), so emit it retroactively.
    obs::SpanEvent wait;
    wait.name = "queue_wait";
    wait.path = request_span->path() + "/queue_wait";
    wait.depth = request_span->depth() + 1;
    wait.start_us = collector.now_us() - queue_us;
    wait.dur_us = queue_us;
    wait.trace_id = request_span->trace_id();
    wait.span_id = collector.new_span_id();
    wait.parent_span_id = request_span->span_id();
    collector.emit_event(std::move(wait));
  }

  std::int64_t cache_us = 0, exec_us = 0;
  const char* cache_status = "none";
  Dataset::Response response;
  if (item.type == MsgType::kServerStats) {
    response = {MsgType::kOk, stats_payload()};
  } else if (item.type == MsgType::kMetricsDump) {
    MetricsDumpQuery q;
    if (decode_metrics_dump_query(item.payload, q)) {
      response = {MsgType::kOk, metrics_dump_payload(q.format)};
    } else {
      response = {MsgType::kError,
                  error_payload("bad_request", "bad metrics_dump payload")};
    }
  } else if (is_cacheable(item.type)) {
    const std::string key = ResultCache::make_key(
        dataset_.digest(), static_cast<std::uint8_t>(item.type),
        item.payload);
    std::string cached;
    bool hit = false;
    const bool bypass = (item.flags & kFlagNoCache) != 0;
    {
      std::optional<obs::TraceSpan> phase;
      if (tracing) phase.emplace("cache_lookup", collector);
      const auto t = Clock::now();
      if (!bypass) hit = cache_.lookup(key, cached);
      cache_us = since_us(t, Clock::now());
    }
    if (hit) {
      cache_status = "hit";
      response = {MsgType::kOk, std::move(cached)};
    } else {
      cache_status = bypass ? "bypass" : "miss";
      std::optional<obs::TraceSpan> phase;
      if (tracing) phase.emplace("exec", collector);
      const auto t = Clock::now();
      response = dataset_.execute(item.type, item.payload, pool_);
      exec_us = since_us(t, Clock::now());
      if (response.type == MsgType::kOk) cache_.insert(key, response.payload);
    }
  } else {
    std::optional<obs::TraceSpan> phase;
    if (tracing) phase.emplace("exec", collector);
    const auto t = Clock::now();
    response = dataset_.execute(item.type, item.payload, pool_);
    exec_us = since_us(t, Clock::now());
  }

  const auto us = since_us(t0, Clock::now());
  latency_histogram(item.type).record(static_cast<double>(us));

  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  std::int64_t encode_us = 0, write_us = 0;
  {
    std::optional<obs::TraceSpan> phase;
    if (tracing) phase.emplace("encode", collector);
    const auto t = Clock::now();
    respond(it->second, response.type, response.payload);
    encode_us = since_us(t, Clock::now());
  }
  const auto again = conns_.find(fd);
  if (again != conns_.end()) {
    std::optional<obs::TraceSpan> phase;
    if (tracing) phase.emplace("write", collector);
    const auto t = Clock::now();
    flush_out(again->second);
    write_us = since_us(t, Clock::now());
  }

  const std::int64_t total_us =
      item.admit_time.time_since_epoch().count() == 0
          ? since_us(t0, Clock::now())
          : since_us(item.admit_time, Clock::now());
  finish_request(item, total_us, queue_us, cache_us, exec_us, encode_us,
                 write_us, cache_status, response);
}

void Server::finish_request(const PendingItem& item, std::int64_t total_us,
                            std::int64_t queue_us, std::int64_t cache_us,
                            std::int64_t exec_us, std::int64_t encode_us,
                            std::int64_t write_us, const char* cache_status,
                            const Dataset::Response& response) {
  const auto key = static_cast<std::uint8_t>(item.type);
  if (const auto w = windowed_.find(key); w != windowed_.end()) {
    w->second->record(static_cast<double>(total_us));
  }
  if (const auto s = slo_.find(key); s != slo_.end()) {
    SloCell& cell = *s->second;
    cell.total.fetch_add(1, std::memory_order_relaxed);
    cell.obs_total.inc();
    if (static_cast<double>(total_us) <= cell.threshold_us) {
      cell.good.fetch_add(1, std::memory_order_relaxed);
      cell.obs_good.inc();
    }
  }
  if (slow_log_.enabled() && total_us > slow_log_.threshold_us()) {
    SlowQueryEntry entry;
    entry.trace_id = item.trace_id;
    entry.type = type_name(item.type);
    entry.total_us = total_us;
    entry.queue_us = queue_us;
    entry.cache_us = cache_us;
    entry.exec_us = exec_us;
    entry.encode_us = encode_us;
    entry.write_us = write_us;
    entry.cache_status = cache_status;
    entry.admission = "admitted";
    entry.response = response.type == MsgType::kOk
                         ? "ok"
                         : parse_error_payload(response.payload).code;
    slow_log_.emit(entry);
  }
}

void Server::respond(Conn& conn, MsgType type, std::string_view payload) {
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    conn.write_deadline_base = Clock::now();
  }
  conn.out += encode_frame(type, 0, payload);
  update_interest(conn);
}

void Server::respond_error(Conn& conn, std::string_view code,
                           std::string_view message, bool close_after) {
  if (close_after) conn.close_after_flush = true;
  respond(conn, MsgType::kError, error_payload(code, message));
}

void Server::flush_out(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      obs_bytes_tx_.inc(static_cast<std::uint64_t>(n));
      conn.write_deadline_base = Clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(conn.fd);
    return;
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      close_conn(conn.fd);
      return;
    }
  }
  update_interest(conn);
}

void Server::update_interest(Conn& conn) {
  const bool want_read = !conn.close_after_flush;
  const bool want_write = conn.out_off < conn.out.size();
  poller_->update(conn.fd, want_read, want_write);
}

void Server::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // The per-connection queue dies with the connection; release what its
  // admitted requests held against the global gates.
  for (const PendingItem& item : it->second.queue) {
    if (!item.shed) {
      pending_count_ -= 1;
      pending_cost_ -= item.cost;
    }
  }
  obs_pending_cost_.set(static_cast<double>(pending_cost_));
  poller_->remove(fd);
  ::close(fd);
  conns_.erase(it);
  obs_active_conns_.set(static_cast<double>(conns_.size()));
}

void Server::reap_timeouts(Clock::time_point now) {
  std::vector<int> dead;
  for (const auto& [fd, conn] : conns_) {
    const bool mid_frame = !conn.in.empty() || conn.discard > 0;
    if (mid_frame && config_.read_timeout_ms > 0 &&
        now - conn.read_deadline_base > ms(config_.read_timeout_ms)) {
      dead.push_back(fd);
    } else if (conn.out_off < conn.out.size() &&
               config_.write_timeout_ms > 0 &&
               now - conn.write_deadline_base >
                   ms(config_.write_timeout_ms)) {
      dead.push_back(fd);
    }
  }
  for (const int fd : dead) {
    ++reaped_;
    obs_reaped_.inc();
    close_conn(fd);
  }
}

int Server::next_timeout_ms(Clock::time_point now) const {
  std::int64_t timeout = 1000;  // heartbeat for reap/drain checks
  const auto remaining = [&](Clock::time_point base, int limit_ms) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - base)
            .count();
    return static_cast<std::int64_t>(limit_ms) - elapsed;
  };
  for (const auto& [fd, conn] : conns_) {
    if ((!conn.in.empty() || conn.discard > 0) && config_.read_timeout_ms > 0) {
      timeout = std::min(
          timeout, remaining(conn.read_deadline_base, config_.read_timeout_ms));
    }
    if (conn.out_off < conn.out.size() && config_.write_timeout_ms > 0) {
      timeout = std::min(timeout, remaining(conn.write_deadline_base,
                                            config_.write_timeout_ms));
    }
  }
  return static_cast<int>(std::max<std::int64_t>(timeout, 0));
}

void Server::do_reload() {
  std::string error;
  if (dataset_.load(error)) {
    ++reloads_;
    obs_reloads_.inc();
    obs::logf(obs::LogLevel::kInfo,
              "s2sd: archive reloaded (%zu records, digest %016llx)",
              dataset_.ingest().records,
              static_cast<unsigned long long>(dataset_.digest()));
  } else {
    obs::logf(obs::LogLevel::kWarn, "s2sd: reload failed: %s", error.c_str());
  }
}

std::string Server::stats_payload() const {
  const ResultCache::Stats cache = cache_.stats();
  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("server_stats");
  w.key("server").begin_object();
  w.key("uptime_s").value(uptime_seconds());
  w.key("trace_context").value(true);
  w.key("active_conns").value(static_cast<std::uint64_t>(conns_.size()));
  w.key("draining").value(draining_.load(std::memory_order_relaxed));
  w.key("requests").value(requests_served_);
  w.key("conns_accepted").value(accepted_);
  w.key("conns_reaped").value(reaped_);
  w.key("busy_rejected").value(busy_rejected_);
  w.key("shed").begin_object();
  w.key("cost").value(shed_cost_);
  w.key("inflight").value(shed_inflight_);
  w.key("client").value(shed_client_);
  w.key("pending_cost").value(static_cast<std::uint64_t>(pending_cost_));
  w.key("max_pending_cost")
      .value(static_cast<std::uint64_t>(config_.max_pending_cost));
  w.end_object();
  w.key("protocol_errors").value(protocol_errors_);
  w.key("reloads").value(reloads_);
  w.key("slow_queries").begin_object();
  w.key("threshold_us")
      .value(static_cast<std::int64_t>(config_.slow_query_us));
  w.key("emitted").value(slow_log_.emitted());
  w.key("suppressed").value(slow_log_.suppressed());
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("insertions").value(cache.insertions);
  w.key("evictions").value(cache.evictions);
  w.key("entries").value(cache.entries);
  w.key("bytes").value(cache.bytes);
  w.end_object();
  w.end_object();
  w.key("dataset").begin_object();
  dataset_.summary_json(w);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string Server::metrics_dump_payload(std::uint8_t format) const {
  auto snap = obs::MetricsRegistry::global().snapshot();
  // Graft in the serving facts the registry does not carry: cache stats
  // live in the ResultCache, uptime is a server property. The hit/miss/
  // eviction names are the same ones result_cache.cc mirrors into the
  // registry (here overwritten with the authoritative values) — a second
  // dotted spelling would collide after Prometheus name sanitization.
  const ResultCache::Stats cache = cache_.stats();
  snap.counters["s2s.svc.cache_hits"] = cache.hits;
  snap.counters["s2s.svc.cache_misses"] = cache.misses;
  snap.counters["s2s.svc.cache_insertions"] = cache.insertions;
  snap.counters["s2s.svc.cache_evictions"] = cache.evictions;
  snap.gauges["s2s.svc.cache_entries"] = static_cast<double>(cache.entries);
  snap.gauges["s2s.svc.cache_bytes"] = static_cast<double>(cache.bytes);
  snap.gauges["s2s.svc.uptime_s"] = uptime_seconds();
  const auto windowed = windowed_snapshots();
  const auto slo = slo_stats();

  if (format == MetricsDumpQuery::kPrometheus) {
    return obs::to_prometheus_text(snap, windowed, slo);
  }

  obs::json::Writer w;
  w.begin_object();
  w.key("type").value("metrics_dump");
  w.key("uptime_s").value(uptime_seconds());
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("total").value(h.total);
    w.key("overflow").value(h.overflow());
    w.key("p50").value(h.quantile(0.50));
    w.key("p99").value(h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.key("windowed").begin_object();
  for (const auto& [name, win] : windowed) {
    w.key(name).begin_object();
    w.key("window_s").value(win.window_s);
    w.key("total").value(win.hist.total);
    w.key("p50").value(win.hist.quantile(0.50));
    w.key("p99").value(win.hist.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.key("slo").begin_object();
  for (const auto& [name, s] : slo) {
    w.key(name).begin_object();
    w.key("threshold_us").value(s.threshold_us);
    w.key("good").value(s.good);
    w.key("total").value(s.total);
    w.key("good_ratio").value(s.good_ratio());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

obs::Histogram& Server::latency_histogram(MsgType type) {
  const auto it = latency_.find(static_cast<std::uint8_t>(type));
  if (it != latency_.end()) return it->second;
  static obs::Histogram noop;
  return noop;
}

}  // namespace s2s::svc
