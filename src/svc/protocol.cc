#include "svc/protocol.h"

#include "io/crc32c.h"
#include "io/varint.h"
#include "obs/json.h"

namespace s2s::svc {

const char* type_name(MsgType t) {
  switch (t) {
    case MsgType::kPingEcho: return "ping_echo";
    case MsgType::kPairRtt: return "pair_rtt";
    case MsgType::kPathPrevalence: return "path_prevalence";
    case MsgType::kCongestionVerdict: return "congestion_verdict";
    case MsgType::kDualStackDelta: return "dualstack_delta";
    case MsgType::kFigureDigest: return "figure_digest";
    case MsgType::kServerStats: return "server_stats";
    case MsgType::kMetricsDump: return "metrics_dump";
    case MsgType::kArchiveSlice: return "archive_slice";
    case MsgType::kLiveStatus: return "live_status";
    case MsgType::kOk: return "ok";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

bool is_request(MsgType t) {
  switch (t) {
    case MsgType::kPingEcho:
    case MsgType::kPairRtt:
    case MsgType::kPathPrevalence:
    case MsgType::kCongestionVerdict:
    case MsgType::kDualStackDelta:
    case MsgType::kFigureDigest:
    case MsgType::kServerStats:
    case MsgType::kMetricsDump:
    case MsgType::kArchiveSlice:
    case MsgType::kLiveStatus:
      return true;
    case MsgType::kOk:
    case MsgType::kError:
      return false;
  }
  return false;
}

bool is_cacheable(MsgType t) {
  switch (t) {
    case MsgType::kPairRtt:
    case MsgType::kPathPrevalence:
    case MsgType::kCongestionVerdict:
    case MsgType::kDualStackDelta:
    case MsgType::kFigureDigest:
      return true;
    default:
      return false;
  }
}

HeaderStatus parse_frame_header(const unsigned char* bytes, FrameHeader& out) {
  if (io::get_u32le(bytes) != kFrameMagic) return HeaderStatus::kBadMagic;
  out.version = io::get_u16le(bytes + 4);
  out.type = static_cast<MsgType>(bytes[6]);
  out.flags = bytes[7];
  out.payload_bytes = io::get_u32le(bytes + 8);
  out.crc = io::get_u32le(bytes + 12);
  if (out.version != kProtocolVersion) return HeaderStatus::kBadVersion;
  return HeaderStatus::kOk;
}

std::uint32_t frame_crc(const unsigned char* header_bytes,
                        std::string_view payload) {
  std::uint32_t crc = io::crc32c(0, header_bytes + 4, 8);
  return io::crc32c(crc, payload.data(), payload.size());
}

namespace {

std::string header_prefix(MsgType type, std::uint8_t flags,
                          std::uint32_t payload_bytes) {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  io::put_u32le(out, kFrameMagic);
  io::put_u16le(out, kProtocolVersion);
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  io::put_u32le(out, payload_bytes);
  return out;  // 12 bytes; the caller appends the CRC
}

}  // namespace

std::string encode_frame_header(MsgType type, std::uint8_t flags,
                                std::string_view payload) {
  std::string out = header_prefix(
      type, flags, static_cast<std::uint32_t>(payload.size()));
  io::put_u32le(out, frame_crc(
      reinterpret_cast<const unsigned char*>(out.data()), payload));
  return out;
}

std::string encode_frame_header(MsgType type, std::uint8_t flags,
                                const std::vector<std::string_view>& spans) {
  std::uint64_t total = 0;
  for (const std::string_view s : spans) total += s.size();
  std::string out =
      header_prefix(type, flags, static_cast<std::uint32_t>(total));
  std::uint32_t crc = io::crc32c(
      0, reinterpret_cast<const unsigned char*>(out.data()) + 4, 8);
  for (const std::string_view s : spans) {
    crc = io::crc32c(crc, s.data(), s.size());
  }
  io::put_u32le(out, crc);
  return out;
}

std::string encode_frame(MsgType type, std::uint8_t flags,
                         std::string_view payload) {
  std::string out = encode_frame_header(type, flags, payload);
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(payload);
  return out;
}

std::string encode_pair_query(const PairQuery& q) {
  std::string out;
  io::put_u32le(out, q.src);
  io::put_u32le(out, q.dst);
  out.push_back(static_cast<char>(q.family));
  out.push_back(static_cast<char>(q.arg));
  return out;
}

bool decode_pair_query(std::string_view payload, PairQuery& out) {
  if (payload.size() != 10) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  out.src = io::get_u32le(p);
  out.dst = io::get_u32le(p + 4);
  out.family = p[8];
  out.arg = p[9];
  return out.family == 4 || out.family == 6;
}

std::string encode_dualstack_query(const DualStackQuery& q) {
  std::string out;
  io::put_u32le(out, q.src);
  io::put_u32le(out, q.dst);
  return out;
}

bool decode_dualstack_query(std::string_view payload, DualStackQuery& out) {
  if (payload.size() != 8) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  out.src = io::get_u32le(p);
  out.dst = io::get_u32le(p + 4);
  return true;
}

std::string encode_figure_query(const FigureQuery& q) {
  return std::string(1, static_cast<char>(q.figure));
}

bool decode_figure_query(std::string_view payload, FigureQuery& out) {
  if (payload.size() != 1) return false;
  out.figure = static_cast<std::uint8_t>(payload[0]);
  return true;
}

std::string encode_metrics_dump_query(const MetricsDumpQuery& q) {
  return std::string(1, static_cast<char>(q.format));
}

bool decode_metrics_dump_query(std::string_view payload,
                               MetricsDumpQuery& out) {
  if (payload.size() != 1) return false;
  out.format = static_cast<std::uint8_t>(payload[0]);
  return out.format == MetricsDumpQuery::kJson ||
         out.format == MetricsDumpQuery::kPrometheus;
}

std::string encode_slice_query(const SliceQuery& q) {
  std::string out;
  io::put_u64le(out, static_cast<std::uint64_t>(q.t0_s));
  io::put_u64le(out, static_cast<std::uint64_t>(q.t1_s));
  return out;
}

bool decode_slice_query(std::string_view payload, SliceQuery& out) {
  if (payload.size() != 16) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  out.t0_s = static_cast<std::int64_t>(io::get_u64le(p));
  out.t1_s = static_cast<std::int64_t>(io::get_u64le(p + 8));
  return out.t0_s <= out.t1_s;
}

std::string encode_trace_context(const TraceContext& ctx) {
  std::string out;
  out.reserve(kTraceContextBytes);
  io::put_u64le(out, ctx.trace_id);
  io::put_u64le(out, ctx.span_id);
  return out;
}

bool strip_trace_context(std::string_view payload, TraceContext& out,
                         std::string_view& rest) {
  if (payload.size() < kTraceContextBytes) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  out.trace_id = io::get_u64le(p);
  out.span_id = io::get_u64le(p + 8);
  rest = payload.substr(kTraceContextBytes);
  return true;
}

std::string error_payload(std::string_view code, std::string_view message) {
  obs::json::Writer w;
  w.begin_object();
  w.key("error").value(code);
  w.key("message").value(message);
  w.end_object();
  return w.str();
}

std::string error_payload(std::string_view code, std::string_view message,
                          int retry_after_ms) {
  obs::json::Writer w;
  w.begin_object();
  w.key("error").value(code);
  w.key("message").value(message);
  w.key("retry_after_ms").value(static_cast<std::int64_t>(retry_after_ms));
  w.end_object();
  return w.str();
}

ErrorInfo parse_error_payload(std::string_view payload) {
  ErrorInfo info;
  const auto find_value = [&](std::string_view key) -> std::string_view {
    const std::string needle = "\"" + std::string(key) + "\":";
    const auto at = payload.find(needle);
    if (at == std::string_view::npos) return {};
    return payload.substr(at + needle.size());
  };
  if (auto v = find_value("error"); !v.empty() && v.front() == '"') {
    v.remove_prefix(1);
    const auto end = v.find('"');
    if (end != std::string_view::npos) info.code = std::string(v.substr(0, end));
  }
  if (auto v = find_value("retry_after_ms"); !v.empty()) {
    int ms = 0;
    bool any = false;
    for (const char c : v) {
      if (c < '0' || c > '9') break;
      ms = ms * 10 + (c - '0');
      any = true;
    }
    if (any) info.retry_after_ms = ms;
  }
  return info;
}

std::uint32_t request_cost(MsgType t) {
  switch (t) {
    case MsgType::kPingEcho:
    case MsgType::kServerStats:
    case MsgType::kMetricsDump:
    case MsgType::kLiveStatus:
      return 1;
    case MsgType::kPairRtt:
    case MsgType::kPathPrevalence:
    case MsgType::kArchiveSlice:
      return 8;
    case MsgType::kCongestionVerdict:
    case MsgType::kDualStackDelta:
      return 16;
    case MsgType::kFigureDigest:
      return 128;
    default:
      return 8;  // unknown requests are rejected before admission anyway
  }
}

}  // namespace s2s::svc
