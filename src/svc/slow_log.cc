#include "svc/slow_log.h"

#include <chrono>
#include <cstdio>

#include "obs/json.h"
#include "obs/log.h"

namespace s2s::svc {

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string hex_id(std::uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

std::string SlowQueryEntry::to_json() const {
  obs::json::Writer w;
  w.begin_object();
  w.key("trace_id").value(hex_id(trace_id));
  w.key("type").value(type);
  w.key("total_us").value(total_us);
  w.key("queue_us").value(queue_us);
  w.key("cache_us").value(cache_us);
  w.key("exec_us").value(exec_us);
  w.key("encode_us").value(encode_us);
  w.key("write_us").value(write_us);
  w.key("cache").value(cache_status);
  w.key("admission").value(admission);
  w.key("response").value(response);
  w.end_object();
  return w.str();
}

SlowQueryLog::SlowQueryLog(SlowLogConfig config, ClockFn clock)
    : config_(config),
      clock_(clock ? std::move(clock) : ClockFn(&steady_now_ms)) {
  if (config_.interval_ms <= 0) config_.interval_ms = 1000;
  if (config_.max_entries == 0) config_.max_entries = 1;
}

bool SlowQueryLog::emit(const SlowQueryEntry& entry) {
  if (!enabled() || entry.total_us <= config_.threshold_us) return false;

  std::uint64_t carried_suppressed = 0;
  bool log_it = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(entry);
    while (ring_.size() > config_.max_entries) ring_.pop_front();

    const std::int64_t now = clock_();
    if (now - interval_start_ms_ >= config_.interval_ms) {
      interval_start_ms_ = now;
      carried_suppressed = interval_suppressed_;
      interval_suppressed_ = 0;
      interval_emitted_ = 0;
    }
    if (interval_emitted_ < config_.max_per_interval) {
      ++interval_emitted_;
      ++emitted_;
      log_it = true;
    } else {
      ++interval_suppressed_;
      ++suppressed_;
    }
  }
  if (!log_it) return false;

  std::string line = "slow_query ";
  line += entry.to_json();
  if (carried_suppressed > 0) {
    line += " (+";
    line += std::to_string(carried_suppressed);
    line += " suppressed last interval)";
  }
  obs::log_message(obs::LogLevel::kWarn, line);
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t SlowQueryLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t SlowQueryLog::suppressed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

}  // namespace s2s::svc
