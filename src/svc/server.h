// s2sd's non-blocking TCP server: one event-loop thread multiplexing
// every connection through epoll (Linux) or poll (fallback; also
// runtime-selectable so tests cover both backends).
//
// Per-connection state machine (DESIGN.md section 11):
//
//   reading header -> reading payload -> executing -> writing response
//
// with a read deadline on partially received frames (slow-loris reap), a
// write deadline on stalled response flushes, a bounded request size
// (oversized payloads are drained and answered with an error frame, the
// connection survives), and cost-based admission control on parsed-but-
// unexecuted requests (DESIGN.md section 12): each request type carries
// a cost weight (figure-digest >> ping), and a request is shed with a
// `busy` error frame — carrying a retry_after_ms hint — when the global
// pending-cost budget, the global pending-count cap, or the per-
// connection queue bound would be exceeded. Shed decisions are made at
// parse time but answered in arrival order: the busy frame is queued on
// the connection like any response, so a pipelined burst never sees its
// rejection overtake answers to its accepted predecessors. Admitted
// requests drain round-robin across connections (per-client fair
// queueing), so one connection's pipelined figure burst cannot starve
// another's ping. A frame whose magic or version is wrong leaves the
// stream unframeable: the server answers with an error frame and closes
// after flushing. A frame with a bad CRC or unknown type has a trusted
// length, so it is skipped and the connection survives.
//
// Shutdown is a drain, not an abort: request_drain() (what the SIGTERM
// handler calls; async-signal-safe self-pipe wake) stops accepting and
// reading, executes every parsed request, flushes every response within
// the write deadline, then closes the connections and the listener.
// request_reload() re-ingests the archive between requests (SIGHUP);
// a changed file changes the digest and thereby invalidates the cache.
//
// Requests execute on the event-loop thread; the analyses behind the
// figure queries fan out over the exec::ThreadPool (the loop thread
// participates as a worker lane), so the expensive work is parallel
// while connection state stays single-threaded and lock-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/result_cache.h"
#include "svc/slow_log.h"

namespace s2s::svc {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  int backlog = 64;
  std::size_t max_connections = 256;
  std::size_t max_request_bytes = kDefaultMaxRequestBytes;
  /// Oversized payloads up to this are drained so the connection
  /// survives; beyond it the connection closes after the error frame.
  std::size_t max_discard_bytes = 1u << 20;
  /// Global parsed-but-unexecuted request cap (count gate).
  std::size_t max_inflight = 64;
  /// Global pending-cost budget in request_cost() units (0 = count-only
  /// admission). An empty queue always admits one request regardless of
  /// its cost, so expensive queries make progress under any budget.
  std::size_t max_pending_cost = 4096;
  /// Per-connection bound on admitted-but-unexecuted requests
  /// (0 = unbounded); the fair-queue depth one client may hold.
  std::size_t max_client_pending = 32;
  /// Base retry-after hint attached to busy sheds; the advertised value
  /// scales with how full the pending-cost budget is (base..2x base).
  int busy_retry_after_ms = 25;
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// False forces the poll() backend even on Linux.
  bool use_epoll = true;
  std::size_t cache_bytes = 64u << 20;
  std::size_t cache_shards = 8;

  // -- Serving-path observability (DESIGN.md section 13) --

  /// Slow-query log threshold on end-to-end latency (admission to
  /// response-queued), microseconds; 0 disables the log.
  std::int64_t slow_query_us = 0;
  /// Slow-query rate limit: lines per one-second interval.
  std::uint32_t slow_log_max_per_interval = 10;
  /// Windowed latency view: merge width and ring granularity.
  int window_seconds = 60;
  int window_slots = 6;
  /// Per-type latency SLO threshold (end-to-end, milliseconds); feeds
  /// the good/total counters surfaced by kMetricsDump and the report.
  double slo_ms = 50.0;
  /// Honor client trace contexts: a request that arrived with the
  /// kFlagTraceContext prefix gets a server-side span with phase
  /// sub-spans (queue_wait / cache_lookup / exec / encode / write).
  /// Untraced requests skip the span machinery entirely — the client
  /// decides what is traced, so the warm path pays nothing for
  /// diagnostics nobody asked for. Spans go to the global
  /// TraceCollector; disabling the collector makes this a no-op.
  bool trace_requests = true;
};

class Server {
 public:
  Server(Dataset& dataset, exec::ThreadPool* pool, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. After success port() is the actual port.
  bool start(std::string& error);
  std::uint16_t port() const noexcept { return port_; }

  /// Runs the event loop until a drain completes. Call from one thread.
  void serve();

  /// Async-signal-safe: request a graceful drain / an archive reload.
  void request_drain();
  void request_reload();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }
  ResultCache& cache() noexcept { return cache_; }
  std::uint64_t requests_served() const noexcept { return requests_served_; }
  std::uint64_t connections_reaped() const noexcept { return reaped_; }
  std::uint64_t reloads() const noexcept { return reloads_; }

  /// Seconds since start() succeeded (steady clock).
  double uptime_seconds() const;
  /// Last-N-seconds latency views, keyed "s2s.svc.windowed_us.<type>".
  /// Safe concurrently with the serving loop.
  std::map<std::string, obs::WindowedSnapshot> windowed_snapshots() const;
  /// SLO good/total counters, keyed "s2s.svc.slo.<type>". Safe
  /// concurrently with the serving loop.
  std::map<std::string, obs::SloStat> slo_stats() const;
  const SlowQueryLog& slow_log() const noexcept { return slow_log_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One parsed request awaiting its turn, or a shed marker. Shed
  /// markers keep rejected requests in arrival order: the busy frame is
  /// emitted when the queue drains, never ahead of earlier answers.
  struct PendingItem {
    MsgType type = MsgType::kPingEcho;
    std::uint8_t flags = 0;
    std::string payload;       ///< request payload; error payload if shed
    std::uint32_t cost = 0;    ///< admission units held (0 when shed)
    bool shed = false;
    /// Client trace context (0/0 when the request carried none); the
    /// prefix was already stripped from `payload`.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span_id = 0;
    Clock::time_point admit_time;  ///< when admission queued the item
  };

  struct Conn {
    int fd = -1;
    std::string in;            ///< received, not yet parsed
    std::size_t discard = 0;   ///< oversized payload bytes left to drain
    std::string out;           ///< encoded responses not yet sent
    std::size_t out_off = 0;
    std::deque<PendingItem> queue;  ///< admitted + shed, arrival order
    Clock::time_point read_deadline_base;   ///< last read progress
    Clock::time_point write_deadline_base;  ///< last write progress
    bool close_after_flush = false;
  };

  /// Minimal readiness-poller over epoll or poll, level-triggered.
  class Poller {
   public:
    struct Event {
      int fd = -1;
      bool readable = false;
      bool writable = false;
      bool error = false;
    };

    explicit Poller(bool use_epoll);
    ~Poller();
    bool ok() const noexcept { return ok_; }
    void add(int fd, bool want_read, bool want_write);
    void update(int fd, bool want_read, bool want_write);
    void remove(int fd);
    void wait(std::vector<Event>& out, int timeout_ms);

   private:
    bool epoll_ = false;
    bool ok_ = false;
    int epfd_ = -1;
    /// poll backend: fd -> requested events.
    std::unordered_map<int, short> interest_;
  };

  void accept_ready();
  void handle_readable(Conn& conn);
  void parse_frames(Conn& conn);
  /// Admission decision for one parsed request: queues either the
  /// request (charging the cost gates) or an ordered busy marker.
  /// `payload` is the request payload with any trace prefix stripped;
  /// `trace` carries the stripped ids (0/0 when untraced).
  void admit_request(Conn& conn, MsgType type, std::uint8_t flags,
                     std::string_view payload, const TraceContext& trace);
  /// Drains every connection queue round-robin, one item per connection
  /// per pass (fair queueing).
  void execute_pending();
  void execute_one(int fd, const PendingItem& item);
  bool queues_empty() const;
  void respond(Conn& conn, MsgType type, std::string_view payload);
  void respond_error(Conn& conn, std::string_view code,
                     std::string_view message, bool close_after);
  void flush_out(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(int fd);
  void reap_timeouts(Clock::time_point now);
  int next_timeout_ms(Clock::time_point now) const;
  void do_reload();
  std::string stats_payload() const;
  /// kMetricsDump response body for the given format selector.
  std::string metrics_dump_payload(std::uint8_t format) const;
  /// End-of-request accounting: windowed + SLO recording, slow-query
  /// emission. `total_us` is admission-to-response-queued.
  void finish_request(const PendingItem& item, std::int64_t total_us,
                      std::int64_t queue_us, std::int64_t cache_us,
                      std::int64_t exec_us, std::int64_t encode_us,
                      std::int64_t write_us, const char* cache_status,
                      const Dataset::Response& response);
  obs::Histogram& latency_histogram(MsgType type);

  Dataset& dataset_;
  exec::ThreadPool* pool_;
  ServerConfig config_;
  ResultCache cache_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> reload_pending_{false};

  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, Conn> conns_;
  std::size_t pending_count_ = 0;  ///< admitted items across all conns
  std::size_t pending_cost_ = 0;   ///< their request_cost() sum

  std::uint64_t requests_served_ = 0;
  std::uint64_t reaped_ = 0;
  std::uint64_t reloads_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t busy_rejected_ = 0;
  std::uint64_t shed_cost_ = 0;      ///< sheds from the cost budget
  std::uint64_t shed_inflight_ = 0;  ///< sheds from the count cap
  std::uint64_t shed_client_ = 0;    ///< sheds from the per-conn bound
  std::uint64_t protocol_errors_ = 0;

  obs::Counter obs_requests_;
  obs::Counter obs_accepted_;
  obs::Counter obs_reaped_;
  obs::Counter obs_busy_;
  obs::Counter obs_shed_cost_;
  obs::Counter obs_shed_inflight_;
  obs::Counter obs_shed_client_;
  obs::Counter obs_protocol_errors_;
  obs::Counter obs_bytes_rx_;
  obs::Counter obs_bytes_tx_;
  obs::Counter obs_reloads_;
  obs::Gauge obs_active_conns_;
  obs::Gauge obs_pending_cost_;
  std::unordered_map<std::uint8_t, obs::Histogram> latency_;

  Clock::time_point start_time_ = Clock::now();

  /// Per-type end-to-end latency over the last window_seconds.
  std::unordered_map<std::uint8_t, std::unique_ptr<obs::WindowedHistogram>>
      windowed_;
  /// Per-type SLO accounting. Atomics so windowed_snapshots()/slo_stats()
  /// may run from another thread while the loop serves; mirrored to
  /// registry counters s2s.svc.slo.<type>.{good,total}.
  struct SloCell {
    double threshold_us = 0.0;
    std::atomic<std::uint64_t> good{0};
    std::atomic<std::uint64_t> total{0};
    obs::Counter obs_good;
    obs::Counter obs_total;
  };
  std::unordered_map<std::uint8_t, std::unique_ptr<SloCell>> slo_;

  SlowQueryLog slow_log_;
};

}  // namespace s2s::svc
