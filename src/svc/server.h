// s2sd's non-blocking TCP serving tier: N reactor threads, each a
// self-contained event loop multiplexing its own connections through
// epoll (Linux) or poll (fallback; also runtime-selectable so tests
// cover both backends). The shape follows the per-CPU sharding idiom of
// kernel net drivers: shared-nothing on the hot path, batched syscalls
// at the edges.
//
// Accept sharding (DESIGN.md section 14): with SO_REUSEPORT every
// reactor owns its own listener bound to the same address, and the
// kernel hashes incoming connections across them. Platforms without it
// (or config.use_reuseport = false) fall back to a single acceptor on
// reactor 0 that hands accepted fds round-robin to the other reactors
// over per-reactor pipes (a 4-byte fd per handoff; pipes are in-process
// so the fd number itself is the message).
//
// Per-connection state machine (DESIGN.md section 11):
//
//   reading header -> reading payload -> executing -> writing response
//
// with a read deadline on partially received frames (slow-loris reap), a
// write deadline on stalled response flushes, a bounded request size
// (oversized payloads are drained and answered with an error frame, the
// connection survives), and cost-based admission control on parsed-but-
// unexecuted requests (DESIGN.md section 12), applied per reactor: each
// request type carries a cost weight (figure-digest >> ping), and a
// request is shed with a `busy` error frame — carrying a retry_after_ms
// hint — when the reactor's pending-cost budget, pending-count cap, or
// the per-connection queue bound would be exceeded. Shed decisions are
// made at parse time but answered in arrival order. Admitted requests
// drain round-robin across the reactor's connections (per-client fair
// queueing). A frame whose magic or version is wrong leaves the stream
// unframeable: the server answers with an error frame and closes after
// flushing. A frame with a bad CRC or unknown type has a trusted
// length, so it is skipped and the connection survives.
//
// Responses are queued as scatter-gather chunks and flushed with one
// sendmsg per readiness: the 16-byte frame header and the payload go
// out in a single syscall without concatenation, and payloads that
// already live in shared storage — result-cache hits, archive-slice
// spans into the mmap'd archive — are written zero-copy, pinned by a
// shared_ptr on the output queue until the bytes leave the socket.
//
// Each reactor owns a ResultCache instance (connection affinity makes
// per-reactor caches coherent: a client's repeat query lands on the
// reactor that cached it; at worst a key is computed once per reactor).
// The dataset is shared read-only through an RCU-style shared_ptr
// snapshot: every request acquires the snapshot once, so digest and
// execution always see one coherent dataset, and a SIGHUP reload builds
// a fresh Dataset off-loop and publishes it with a pointer swap —
// in-flight requests (and zero-copy slices) keep the old one alive.
//
// Shutdown is a drain, not an abort: request_drain() (what the SIGTERM
// handler calls; async-signal-safe wake pipes) stops accepting and
// reading, executes every parsed request, flushes every response within
// the write deadline. Every reactor quiesces before serve() closes the
// listeners — the socket stays accept()-able until the last in-flight
// response has been flushed.
//
// Accept failures are not all transient: EMFILE/ENFILE means the
// process is out of fds, and a level-triggered poller would busy-spin
// on the still-readable listener. The reactor unwatches its listener,
// counts s2s.svc.accept_emfile, and re-arms after accept_rearm_ms.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "svc/dataset.h"
#include "svc/protocol.h"
#include "svc/result_cache.h"
#include "svc/slow_log.h"

namespace s2s::svc {

struct ServerConfig {
  /// Bind address; an address containing ':' listens on AF_INET6 ("::"
  /// with V6ONLY off accepts v4-mapped peers too — dual stack).
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  int backlog = 64;
  std::size_t max_connections = 256;  ///< across all reactors
  std::size_t max_request_bytes = kDefaultMaxRequestBytes;
  /// Oversized payloads up to this are drained so the connection
  /// survives; beyond it the connection closes after the error frame.
  std::size_t max_discard_bytes = 1u << 20;
  /// Per-reactor parsed-but-unexecuted request cap (count gate).
  std::size_t max_inflight = 64;
  /// Per-reactor pending-cost budget in request_cost() units (0 =
  /// count-only admission). An empty queue always admits one request
  /// regardless of its cost, so expensive queries make progress under
  /// any budget.
  std::size_t max_pending_cost = 4096;
  /// Per-connection bound on admitted-but-unexecuted requests
  /// (0 = unbounded); the fair-queue depth one client may hold.
  std::size_t max_client_pending = 32;
  /// Base retry-after hint attached to busy sheds; the advertised value
  /// scales with how full the pending-cost budget is (base..2x base).
  int busy_retry_after_ms = 25;
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// False forces the poll() backend even on Linux.
  bool use_epoll = true;
  /// Event-loop threads. Each runs its own poller, connections, and
  /// result cache; 1 reproduces the single-loop server exactly (the
  /// loop runs inline on the serve() caller, no threads spawned).
  std::size_t reactors = 1;
  /// Prefer per-reactor SO_REUSEPORT listeners for accept sharding;
  /// false (or a platform without the option) falls back to the
  /// acceptor + fd-handoff scheme.
  bool use_reuseport = true;
  /// How long a reactor keeps its listener unwatched after an
  /// EMFILE/ENFILE accept failure before re-arming.
  int accept_rearm_ms = 100;
  std::size_t cache_bytes = 64u << 20;  ///< split across reactors
  std::size_t cache_shards = 8;         ///< per reactor-cache

  // -- Serving-path observability (DESIGN.md section 13) --

  /// Slow-query log threshold on end-to-end latency (admission to
  /// response-queued), microseconds; 0 disables the log.
  std::int64_t slow_query_us = 0;
  /// Slow-query rate limit: lines per one-second interval.
  std::uint32_t slow_log_max_per_interval = 10;
  /// Windowed latency view: merge width and ring granularity.
  int window_seconds = 60;
  int window_slots = 6;
  /// Per-type latency SLO threshold (end-to-end, milliseconds); feeds
  /// the good/total counters surfaced by kMetricsDump and the report.
  double slo_ms = 50.0;
  /// Honor client trace contexts: a request that arrived with the
  /// kFlagTraceContext prefix gets a server-side span with phase
  /// sub-spans (queue_wait / cache_lookup / exec / encode / write).
  /// Untraced requests skip the span machinery entirely.
  bool trace_requests = true;

  // -- Live ingest (DESIGN.md section 16) --

  /// Delta-pickup poll interval for open-shard archives: every N ms
  /// reactor 0 re-reads the watermark sidecar and, when it advanced,
  /// folds just the newly sealed tail into a cloned dataset and
  /// publishes it RCU-style — no SIGHUP, no full reload. 0 disables
  /// polling (a live archive then only advances on explicit reload).
  int live_poll_ms = 0;
};

class Server {
 public:
  Server(Dataset& dataset, exec::ThreadPool* pool, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (every reactor's listener in SO_REUSEPORT mode).
  /// After success port() is the actual port.
  bool start(std::string& error);
  std::uint16_t port() const noexcept { return port_; }

  /// Runs the reactors until a drain completes: reactors 1..N-1 on
  /// spawned threads, reactor 0 inline on the caller. Returns after
  /// every reactor has quiesced and the listeners are closed.
  void serve();

  /// Async-signal-safe: request a graceful drain / an archive reload.
  void request_drain();
  void request_reload();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  std::size_t reactor_count() const noexcept { return reactors_.size(); }
  /// True when accept sharding runs on per-reactor SO_REUSEPORT
  /// listeners (false: single acceptor + fd handoff).
  bool reuseport_active() const noexcept { return reuseport_; }
  /// Per-reactor accepted-connection counts (handoff distribution and
  /// reuseport spread are test-observable through this).
  std::vector<std::uint64_t> reactor_accepted() const;

  /// Aggregates across all reactors. Safe concurrently with serving.
  ResultCache::Stats cache_stats() const;
  std::uint64_t requests_served() const;
  std::uint64_t connections_reaped() const;
  std::uint64_t accept_emfile() const;
  std::uint64_t reloads() const noexcept {
    return reloads_.load(std::memory_order_relaxed);
  }
  /// Delta pickups published so far (live archives only).
  std::uint64_t live_pickups() const noexcept {
    return live_pickups_.load(std::memory_order_relaxed);
  }

  /// Seconds since start() succeeded (steady clock).
  double uptime_seconds() const;
  /// Last-N-seconds latency views, keyed "s2s.svc.windowed_us.<type>".
  /// Safe concurrently with the serving loop.
  std::map<std::string, obs::WindowedSnapshot> windowed_snapshots() const;
  /// SLO good/total counters, keyed "s2s.svc.slo.<type>". Safe
  /// concurrently with the serving loop.
  std::map<std::string, obs::SloStat> slo_stats() const;
  const SlowQueryLog& slow_log() const noexcept { return slow_log_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One parsed request awaiting its turn, or a shed marker. Shed
  /// markers keep rejected requests in arrival order: the busy frame is
  /// emitted when the queue drains, never ahead of earlier answers.
  struct PendingItem {
    MsgType type = MsgType::kPingEcho;
    std::uint8_t flags = 0;
    std::string payload;       ///< request payload; error payload if shed
    std::uint32_t cost = 0;    ///< admission units held (0 when shed)
    bool shed = false;
    /// Client trace context (0/0 when the request carried none); the
    /// prefix was already stripped from `payload`.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span_id = 0;
    Clock::time_point admit_time;  ///< when admission queued the item
  };

  /// One scatter-gather segment of a connection's output queue: either
  /// owned bytes, or a zero-copy view pinned by `keep` (a cache entry
  /// or a dataset snapshot) until the bytes are flushed.
  struct OutChunk {
    std::string owned;
    std::string_view view{};
    std::shared_ptr<const void> keep;
    const char* data() const noexcept {
      return keep ? view.data() : owned.data();
    }
    std::size_t size() const noexcept {
      return keep ? view.size() : owned.size();
    }
  };

  struct Conn {
    int fd = -1;
    std::string in;            ///< received, not yet parsed
    std::size_t discard = 0;   ///< oversized payload bytes left to drain
    std::deque<OutChunk> out;  ///< queued response segments
    std::size_t out_off = 0;   ///< sent bytes of out.front()
    std::size_t out_bytes = 0; ///< total unsent bytes across out
    std::deque<PendingItem> queue;  ///< admitted + shed, arrival order
    Clock::time_point read_deadline_base;   ///< last read progress
    Clock::time_point write_deadline_base;  ///< last write progress
    bool close_after_flush = false;
  };

  /// Minimal readiness-poller over epoll or poll, level-triggered.
  class Poller {
   public:
    struct Event {
      int fd = -1;
      bool readable = false;
      bool writable = false;
      bool error = false;
    };

    explicit Poller(bool use_epoll);
    ~Poller();
    bool ok() const noexcept { return ok_; }
    void add(int fd, bool want_read, bool want_write);
    void update(int fd, bool want_read, bool want_write);
    void remove(int fd);
    void wait(std::vector<Event>& out, int timeout_ms);

   private:
    bool epoll_ = false;
    bool ok_ = false;
    int epfd_ = -1;
    /// poll backend: fd -> requested events.
    std::unordered_map<int, short> interest_;
  };

  /// One event-loop shard: poller, connections, admission gates, and a
  /// result cache of its own. All members are single-threaded except
  /// the stat atomics, which other reactors read for kServerStats.
  class Reactor {
   public:
    Reactor(Server& server, std::size_t index);
    ~Reactor();
    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// The event loop; returns once a drain completes. Leaves the
    /// listener fd open (Server::serve closes listeners after ALL
    /// reactors have quiesced).
    void run();
    void wake();  ///< async-signal-safe

    Server& srv_;
    const std::size_t index_;
    int listen_fd_ = -1;    ///< own listener, or -1 (handoff receivers)
    int handoff_rd_ = -1;   ///< read end of the acceptor's fd pipe
    int wake_pipe_[2] = {-1, -1};
    std::unique_ptr<Poller> poller_;
    std::unordered_map<int, Conn> conns_;
    ResultCache cache_;

    /// Single writer (the reactor), relaxed readers (stats from any
    /// reactor, tests, tools).
    std::atomic<std::size_t> pending_count_{0};
    std::atomic<std::size_t> pending_cost_{0};
    std::atomic<std::uint64_t> requests_served_{0};
    std::atomic<std::uint64_t> reaped_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> busy_rejected_{0};
    std::atomic<std::uint64_t> shed_cost_{0};
    std::atomic<std::uint64_t> shed_inflight_{0};
    std::atomic<std::uint64_t> shed_client_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> accept_emfile_{0};

    /// Listener paused after EMFILE/ENFILE; re-armed on a timer.
    bool listener_paused_ = false;
    Clock::time_point accept_rearm_at_;

   private:
    void accept_ready();
    void adopt_fd(int fd);
    void drain_handoff();
    void handle_readable(Conn& conn);
    void parse_frames(Conn& conn);
    void admit_request(Conn& conn, MsgType type, std::uint8_t flags,
                       std::string_view payload, const TraceContext& trace);
    void execute_pending();
    void execute_one(int fd, const PendingItem& item);
    bool queues_empty() const;
    /// Appends one output segment, arming the write deadline when the
    /// queue was empty.
    void queue_chunk(Conn& conn, OutChunk chunk);
    void respond(Conn& conn, MsgType type, std::string_view payload);
    /// Zero-copy response: header chunk + a view of the shared payload.
    void respond_shared(Conn& conn, MsgType type,
                        std::shared_ptr<const std::string> payload);
    void respond_slice(Conn& conn, const Dataset::ArchiveSlice& slice,
                       std::shared_ptr<const void> keep);
    void respond_error(Conn& conn, std::string_view code,
                       std::string_view message, bool close_after);
    void flush_out(Conn& conn);
    void update_interest(Conn& conn);
    void close_conn(int fd);
    void pause_listener();
    void maybe_rearm_listener(Clock::time_point now);
    void reap_timeouts(Clock::time_point now);
    int next_timeout_ms(Clock::time_point now) const;
    void finish_request(const PendingItem& item, std::int64_t total_us,
                        std::int64_t queue_us, std::int64_t cache_us,
                        std::int64_t exec_us, std::int64_t encode_us,
                        std::int64_t write_us, const char* cache_status,
                        MsgType response_type, std::string_view response_payload);

    /// Handoff pipe reassembly: a read() that lands mid-int is buffered.
    char handoff_partial_[sizeof(int)] = {0};
    std::size_t handoff_partial_len_ = 0;
  };

  /// Opens one listener on bind_address:port. `reuseport` requests
  /// SO_REUSEPORT before bind; `actual_port` is filled from getsockname
  /// (resolves port 0). Returns -1 with `error` set on failure.
  int open_listener(std::uint16_t port, bool reuseport,
                    std::uint16_t& actual_port, std::string& error);

  /// RCU-style dataset snapshot: acquired once per request, published
  /// by do_reload(). The initial snapshot aliases the caller-owned
  /// Dataset (non-owning); reloaded snapshots own their Dataset.
  std::shared_ptr<const Dataset> dataset_snapshot() const;
  void do_reload();
  /// Reactor 0's live-ingest tick: time-gated watermark poll; on
  /// advance, clone_advanced() off the current snapshot and publish.
  void maybe_live_advance();
  /// Registers the s2s.live.* metrics on first use — their presence in
  /// a metrics dump is the "this server is live-ingesting" signal tools
  /// key off, so batch servers never emit them.
  void ensure_live_metrics();
  void set_conns_gauge();
  void set_pending_cost_gauge();
  std::string stats_payload(const Dataset& dataset) const;
  std::string live_status_payload(const Dataset& dataset) const;
  /// kMetricsDump response body for the given format selector.
  std::string metrics_dump_payload(std::uint8_t format) const;
  obs::Histogram& latency_histogram(MsgType type);

  Dataset& dataset_;
  exec::ThreadPool* pool_;
  ServerConfig config_;

  mutable std::mutex dataset_mutex_;  ///< guards dataset_current_ swap
  std::shared_ptr<const Dataset> dataset_current_;
  /// exec::ThreadPool::run is single-batch; reactors serialize pooled
  /// figure executions through this (cheap relative to the study).
  std::mutex pool_mutex_;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<int> handoff_wr_;  ///< per-reactor write ends (fallback mode)
  std::size_t next_handoff_ = 0;
  bool reuseport_ = false;
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> reload_pending_{false};
  std::atomic<std::size_t> total_conns_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> live_pickups_{0};
  /// Only touched by reactor 0 (the live-ingest tick owner).
  Clock::time_point next_live_poll_{};
  bool live_metrics_ready_ = false;

  obs::Counter obs_requests_;
  obs::Counter obs_accepted_;
  obs::Counter obs_reaped_;
  obs::Counter obs_busy_;
  obs::Counter obs_shed_cost_;
  obs::Counter obs_shed_inflight_;
  obs::Counter obs_shed_client_;
  obs::Counter obs_protocol_errors_;
  obs::Counter obs_bytes_rx_;
  obs::Counter obs_bytes_tx_;
  obs::Counter obs_reloads_;
  obs::Counter obs_accept_emfile_;
  obs::Gauge obs_active_conns_;
  obs::Gauge obs_pending_cost_;
  obs::Counter obs_live_pickups_;
  obs::Gauge obs_live_watermark_;
  obs::Gauge obs_live_sealed_bytes_;
  obs::Gauge obs_live_pairs_;
  std::unordered_map<std::uint8_t, obs::Histogram> latency_;

  Clock::time_point start_time_ = Clock::now();

  /// Per-type end-to-end latency over the last window_seconds; the
  /// WindowedHistogram write path is relaxed-atomic, reactor-safe.
  std::unordered_map<std::uint8_t, std::unique_ptr<obs::WindowedHistogram>>
      windowed_;
  /// Per-type SLO accounting. Atomics so any thread may read while the
  /// reactors serve; mirrored to registry counters
  /// s2s.svc.slo.<type>.{good,total}.
  struct SloCell {
    double threshold_us = 0.0;
    std::atomic<std::uint64_t> good{0};
    std::atomic<std::uint64_t> total{0};
    obs::Counter obs_good;
    obs::Counter obs_total;
  };
  std::unordered_map<std::uint8_t, std::unique_ptr<SloCell>> slo_;

  SlowQueryLog slow_log_;  ///< internally synchronized
};

}  // namespace s2s::svc
