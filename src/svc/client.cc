#include "svc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace s2s::svc {

namespace {

void arm_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void arm_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string& error, int timeout_ms) {
  close();
  // A ':' marks an IPv6 literal ("::1", "fe80::…"); everything else is
  // an IPv4 dotted quad, matching the server's bind-address rule.
  const bool v6 = host.find(':') != std::string::npos;
  const int family = v6 ? AF_INET6 : AF_INET;
#ifdef SOCK_CLOEXEC
  fd_ = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
#else
  fd_ = ::socket(family, SOCK_STREAM, 0);
#endif
  if (fd_ < 0) {
    error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  arm_cloexec(fd_);  // no-op where SOCK_CLOEXEC already applied
  sockaddr_storage ss{};
  socklen_t slen = 0;
  if (v6) {
    auto* addr = reinterpret_cast<sockaddr_in6*>(&ss);
    addr->sin6_family = AF_INET6;
    addr->sin6_port = htons(port);
    if (::inet_pton(AF_INET6, host.c_str(), &addr->sin6_addr) != 1) {
      error = "bad host address: " + host;
      close();
      return false;
    }
    slen = sizeof(sockaddr_in6);
  } else {
    auto* addr = reinterpret_cast<sockaddr_in*>(&ss);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
      error = "bad host address: " + host;
      close();
      return false;
    }
    slen = sizeof(sockaddr_in);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&ss), slen) != 0) {
    error = "connect: " + std::string(std::strerror(errno));
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  arm_timeout(fd_, timeout_ms);
  return true;
}

bool Client::send_bytes(std::string_view bytes, std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error = "send: " + std::string(std::strerror(errno));
    return false;
  }
  return true;
}

bool Client::read_frame(MsgType* type, std::string* payload,
                        std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  char buf[4096];
  while (true) {
    if (buffer_.size() >= kFrameHeaderBytes) {
      FrameHeader header;
      const auto* bytes =
          reinterpret_cast<const unsigned char*>(buffer_.data());
      if (parse_frame_header(bytes, header) != HeaderStatus::kOk) {
        error = "response stream is not framed";
        return false;
      }
      if (buffer_.size() >= kFrameHeaderBytes + header.payload_bytes) {
        const std::string_view body(buffer_.data() + kFrameHeaderBytes,
                                    header.payload_bytes);
        if (frame_crc(bytes, body) != header.crc) {
          error = "response frame checksum mismatch";
          return false;
        }
        if (type != nullptr) *type = header.type;
        if (payload != nullptr) payload->assign(body);
        buffer_.erase(0, kFrameHeaderBytes + header.payload_bytes);
        return true;
      }
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      error = "connection closed by server";
      return false;
    }
    if (errno == EINTR) continue;
    error = "recv: " + std::string(std::strerror(errno));
    return false;
  }
}

bool Client::read_eof() {
  if (fd_ < 0) return true;
  char buf[256];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return true;
    if (n > 0) continue;  // discard trailing frames before the close
    if (errno == EINTR) continue;
    return false;  // timeout or hard error: no EOF observed
  }
}

bool Client::has_buffered_frame() const noexcept {
  if (buffer_.size() < kFrameHeaderBytes) return false;
  FrameHeader header;
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
  if (parse_frame_header(bytes, header) != HeaderStatus::kOk) return true;
  return buffer_.size() >= kFrameHeaderBytes + header.payload_bytes;
}

void Client::set_timeout(int timeout_ms) {
  if (fd_ >= 0) arm_timeout(fd_, timeout_ms);
}

bool Client::call(MsgType type, std::uint8_t flags, std::string_view payload,
                  MsgType* response_type, std::string* response_payload,
                  std::string& error) {
  if (!send_bytes(encode_frame(type, flags, payload), error)) return false;
  return read_frame(response_type, response_payload, error);
}

}  // namespace s2s::svc
