#include "svc/result_cache.h"

#include <algorithm>
#include <utility>

#include "io/varint.h"

namespace s2s::svc {

namespace {

std::size_t key_hash(const std::string& key) {
  // FNV-1a 64; stable across platforms (std::hash<string> is not).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

ResultCache::ResultCache(const Config& config)
    : shards_(std::max<std::size_t>(config.shards, 1)) {
  shard_budget_ = std::max<std::size_t>(config.max_bytes / shards_.size(), 1);
  auto& reg = obs::MetricsRegistry::global();
  obs_hits_ = reg.counter("s2s.svc.cache_hits");
  obs_misses_ = reg.counter("s2s.svc.cache_misses");
  obs_evictions_ = reg.counter("s2s.svc.cache_evictions");
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return shards_[key_hash(key) % shards_.size()];
}

ResultCache::Value ResultCache::find(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    obs_misses_.inc();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  obs_hits_.inc();
  return it->second->second;
}

bool ResultCache::lookup(const std::string& key, std::string& value_out) {
  const Value v = find(key);
  if (!v) return false;
  value_out = *v;
  return true;
}

void ResultCache::insert(const std::string& key, Value value) {
  if (!value) return;
  Shard& shard = shard_for(key);
  const std::size_t cost = entry_bytes(key, value);
  if (cost > shard_budget_) return;
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= entry_bytes(key, it->second->second);
    shard.bytes += cost;
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += cost;
    ++shard.insertions;
  }
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const auto& victim = shard.lru.back();
    shard.bytes -= entry_bytes(victim.first, victim.second);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
    obs_evictions_.inc();
  }
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

std::string ResultCache::make_key(std::uint64_t archive_digest,
                                  std::uint8_t type,
                                  std::string_view payload) {
  std::string key;
  key.reserve(9 + payload.size());
  io::put_u64le(key, archive_digest);
  key.push_back(static_cast<char>(type));
  key.append(payload);
  return key;
}

}  // namespace s2s::svc
