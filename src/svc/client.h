// Minimal blocking client for the s2sd protocol: one connection, one
// request/response at a time. Used by tools/s2s_query, the load bench
// and the tests; the raw send_bytes()/read_frame() surface lets tests
// inject malformed frames and observe the server's error frames.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/protocol.h"

namespace s2s::svc {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (blocking) and arms SO_RCVTIMEO/SO_SNDTIMEO.
  bool connect(const std::string& host, std::uint16_t port,
               std::string& error, int timeout_ms = 10000);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Sends one request frame and reads one response frame. Returns false
  /// on a transport failure (error filled); a server error frame is a
  /// *successful* call with *type == MsgType::kError.
  bool call(MsgType type, std::uint8_t flags, std::string_view payload,
            MsgType* response_type, std::string* response_payload,
            std::string& error);

  /// Raw surface for protocol tests.
  bool send_bytes(std::string_view bytes, std::string& error);
  bool read_frame(MsgType* type, std::string* payload, std::string& error);
  /// True when the peer has closed (a clean EOF on the next read).
  bool read_eof();

  /// The connected socket, for poll()-based readiness checks (hedging);
  /// -1 when disconnected.
  int fd() const noexcept { return fd_; }
  /// True when a complete frame is already buffered (read_frame would
  /// return without touching the socket).
  bool has_buffered_frame() const noexcept;
  /// Re-arms SO_RCVTIMEO/SO_SNDTIMEO on the live connection.
  void set_timeout(int timeout_ms);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last parsed frame
};

}  // namespace s2s::svc
