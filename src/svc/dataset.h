// The data a running s2sd serves: one `.s2sb` archive ingested into the
// analysis stores, plus the simulated deployment that provides the
// topology and RIB for AS-path inference.
//
// A Dataset is built once (the topology build is the expensive part) and
// (re)loaded from its archive at startup and on SIGHUP: load() ingests
// into fresh stores and swaps them in only on success, so a failed reload
// keeps serving the previous data. The archive digest (size + CRC32C of
// the raw bytes) is part of every cache key, so a reload that actually
// changed the file implicitly invalidates all cached responses
// (DESIGN.md section 11).
//
// execute() answers one decoded request from the loaded stores. All
// handlers are deterministic: the figure studies run through the
// fixed-shard parallel passes (DESIGN.md section 9) and every other
// handler reads store state in key order, so a response is a pure
// function of (archive bytes, request payload) at any thread count —
// the property the result cache and the byte-identity tests rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/congestion_detect.h"
#include "core/ping_series.h"
#include "core/routing_study.h"
#include "core/timeline.h"
#include "exec/pool.h"
#include "io/binrec.h"
#include "live/incremental.h"
#include "live/watermark.h"
#include "obs/json.h"
#include "simnet/network.h"
#include "svc/protocol.h"

namespace s2s::svc {

struct DatasetConfig {
  std::string archive_path;

  // Provenance of the archive: the generator parameters of the simulated
  // deployment that produced it. Must match, or AS-path inference and
  // pair ids are meaningless.
  std::uint64_t topo_seed = 7;
  std::size_t tier1_count = 4;
  std::size_t transit_count = 18;
  std::size_t stub_count = 70;
  std::size_t server_count = 16;
  /// Crank the congested-link fractions the way the golden-figure test
  /// world does, so small fixtures have congestion to find.
  bool crank_congestion = true;

  // Sampling grids of the archived campaigns.
  double trace_start_day = 0.0;
  std::int64_t trace_interval_s = net::kThreeHours;
  double ping_start_day = 0.0;
  std::int64_t ping_interval_s = net::kFifteenMinutes;

  /// Routing-study qualification; default lowered from the paper's
  /// long-campaign filter so week-scale fixtures have qualifying
  /// timelines.
  core::RoutingStudyConfig routing = [] {
    core::RoutingStudyConfig r;
    r.min_observations = 40;
    return r;
  }();
  core::CongestionDetectConfig detect;
  /// Congestion verdicts require this fraction of the grid to be valid
  /// (scales the paper's ">= 600 of 672" to the archive's actual epochs).
  double detect_min_fraction = 0.6;

  bool prefer_mmap = true;
};

class Dataset {
 public:
  /// Builds the deployment from the config (expensive: topology + RIB).
  explicit Dataset(const DatasetConfig& config);
  /// Borrows an externally owned deployment (tests share one network
  /// across several Dataset instances). `shared_net` must outlive this.
  Dataset(const DatasetConfig& config, const simnet::Network* shared_net);

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Ingests the archive (mmap arm by default) into fresh stores and
  /// swaps them in; on failure the previous stores keep serving.
  bool load(std::string& error);

  bool loaded() const noexcept { return timelines_ != nullptr; }
  /// Cache-key half: splitmix64 over ((sealed size << 32) ^ CRC32C of
  /// the sealed bytes) mixed with the epoch watermark, so two growth
  /// states of the same live shard can never collide in the ResultCache
  /// (a batch archive mixes watermark -1).
  std::uint64_t digest() const noexcept { return digest_; }

  /// True when load() found a valid watermark sidecar: the archive is an
  /// open shard, reads are bounded at the sealed watermark, and verdicts
  /// come from the incremental state.
  bool live() const noexcept { return live_; }
  const live::Watermark& watermark() const noexcept { return watermark_; }
  /// Streaming congestion state; null unless live().
  const live::IncrementalState* live_state() const noexcept {
    return live_state_.get();
  }

  /// Delta pickup: polls the watermark sidecar and, when it advanced,
  /// returns a new Dataset that copies this one's stores and incremental
  /// state and folds in ONLY the newly sealed tail blocks — O(new
  /// records), no SIGHUP, no full reload. Returns null with `error`
  /// empty when the watermark is unchanged (or the dataset is not live),
  /// null with a reason on failure. `this` must stay alive while the
  /// clone serves (they share the deployment network).
  std::shared_ptr<Dataset> clone_advanced(std::string& error) const;
  const DatasetConfig& config() const noexcept { return config_; }
  const io::IngestResult& ingest() const noexcept { return ingest_; }
  std::size_t ping_epochs() const noexcept { return ping_epochs_; }
  const core::TimelineStore& timelines() const { return *timelines_; }
  const core::PingSeriesStore& pings() const { return *pings_; }
  const simnet::Network& net() const { return *net_; }

  struct Response {
    MsgType type = MsgType::kError;
    std::string payload;
  };

  /// Zero-copy archive slice (kArchiveSlice): the response payload as an
  /// owned 16-byte `.s2sb` file header plus raw block spans pointing
  /// into the retained mmap. The spans stay valid for this Dataset's
  /// lifetime — the server pins its dataset snapshot on the connection's
  /// output queue until the bytes are flushed.
  struct ArchiveSlice {
    bool ok = false;
    std::string error;       ///< reason when !ok
    std::string file_header; ///< owned FileHeader bytes
    std::vector<std::string_view> blocks;  ///< raw block bytes, in order
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;  ///< file_header + blocks total
  };

  /// Blocks whose [first_time_s, last_time_s] intersects [t0_s, t1_s],
  /// sliced out of the mmap'd archive by the footer index without
  /// decoding or copying. Fails (ok = false) when the archive was not
  /// ingested through the mmap arm with a valid footer — text archives
  /// and damaged footers fall back to an error response, never a copy.
  ArchiveSlice archive_slice(std::int64_t t0_s, std::int64_t t1_s) const;

  /// True when load() retained the mmap'd image (binary archive, valid
  /// footer) — the precondition for archive_slice().
  bool mmap_resident() const noexcept { return mmap_ != nullptr; }

  /// Answers one request (kPairRtt .. kFigureDigest, kPingEcho). The
  /// figure studies run on `pool` when given. kServerStats is the
  /// server's job (it owns the cache and connection state) and returns
  /// an internal error here.
  Response execute(MsgType type, std::string_view payload,
                   exec::ThreadPool* pool) const;

  struct PairKey {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint8_t family = 4;
  };
  /// Sorted (src, dst, family) keys present in each store — the
  /// discovery surface tools and the bench build workloads from.
  std::vector<PairKey> trace_pairs() const;
  std::vector<PairKey> ping_pairs() const;

  /// Emits the "dataset" stats object body (caller opens/closes it).
  void summary_json(obs::json::Writer& w) const;

 private:
  Response pair_rtt(const PairQuery& q) const;
  Response path_prevalence(const PairQuery& q) const;
  Response congestion_verdict(const PairQuery& q) const;
  Response dualstack_delta(const DualStackQuery& q) const;
  Response figure_digest(const FigureQuery& q, exec::ThreadPool* pool) const;

  bool load_live(const live::Watermark& wm, std::string& error);
  live::IncrementalConfig incremental_config() const;

  DatasetConfig config_;
  std::unique_ptr<simnet::Network> owned_net_;
  const simnet::Network* net_ = nullptr;
  std::unique_ptr<core::TimelineStore> timelines_;
  std::unique_ptr<core::PingSeriesStore> pings_;
  /// Retained mmap of the archive for zero-copy slicing; null when the
  /// archive is text, footerless, or was read through the stream arm.
  std::shared_ptr<const io::BinRecordMmapReader> mmap_;
  std::uint64_t digest_ = 0;
  /// Raw halves of the digest, kept so clone_advanced() can continue the
  /// CRC over just the appended bytes instead of rereading the file.
  std::uint64_t digest_size_ = 0;
  std::uint32_t digest_crc_ = 0;
  io::IngestResult ingest_;
  std::size_t ping_epochs_ = 0;
  bool live_ = false;
  live::Watermark watermark_;
  std::shared_ptr<const live::IncrementalState> live_state_;
};

/// The simulated deployment a DatasetConfig describes (topology seed and
/// sizes, congestion crank). Dataset, the fixture writer, and the live
/// feeder all build their network through this, so every consumer of one
/// config sees the same world.
simnet::NetworkConfig dataset_net_config(const DatasetConfig& cfg);

/// Deterministic measurement pairs for fixtures: the dual-stack mesh of
/// the topology in server-id order, capped at `cap` pairs.
std::vector<std::pair<topology::ServerId, topology::ServerId>>
fixture_pairs(const topology::Topology& topo, std::size_t cap);

struct FixtureParams {
  double trace_days = 14.0;
  double ping_days = 7.0;
  std::size_t max_trace_pairs = 12;
  std::size_t max_ping_pairs = 48;
  std::uint64_t trace_seed = 11;
  std::uint64_t ping_seed = 31;
};

/// Writes a self-contained `.s2sb` fixture archive (a traceroute and a
/// ping campaign over the same deployment and time base) that a Dataset
/// built from the same DatasetConfig serves. The trace pairs are a
/// prefix of the ping pairs, so every traced pair also has a ping
/// series. Deterministic for a given (config, params). The file is
/// committed atomically (tmp + fsync + rename), so a crash mid-write
/// never leaves a half-written archive under the final name.
bool write_fixture_archive(const std::string& path, const DatasetConfig& cfg,
                           const FixtureParams& params, std::string& error);

/// One-line archive-health diagnostic for strict startup: empty when the
/// ingest saw a fully intact archive, otherwise the reason serving it
/// would silently drop data (torn tail, corrupt blocks, damaged footer,
/// zero records). s2sd refuses to start on a non-empty diagnostic;
/// `s2s_recconv repair` fixes what this reports. With `live` true (the
/// archive is an open shard and the ingest was bounded at its sealed
/// watermark) an empty shard is healthy — records arrive later — and
/// the footer is legitimately absent.
std::string archive_damage(const io::IngestResult& ingest, bool live);
inline std::string archive_damage(const io::IngestResult& ingest) {
  return archive_damage(ingest, false);
}

}  // namespace s2s::svc
