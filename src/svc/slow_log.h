// Slow-query log: one structured JSON line per over-threshold request.
//
// The windowed p99 says *that* the tail moved; the slow-query log says
// *which requests* moved it. Any request whose end-to-end latency
// (admission to response-queued) exceeds the configured threshold emits
// one line through obs::Log at kWarn:
//
//   slow_query {"trace_id":"0x00...2a","type":"figure_digest",
//     "total_us":5123,"queue_us":40,"cache_us":2,"exec_us":5050,
//     "encode_us":20,"write_us":11,"cache":"miss","admission":"admitted",
//     "response":"ok"}
//
// Two bounds keep a melting server from drowning in its own diagnosis
// (DESIGN.md section 13):
//   * rate limit — at most max_per_interval lines per interval_ms;
//     excess entries are counted as suppressed, and the first line of
//     the next interval reports how many were dropped;
//   * memory bound — the last max_entries entries are retained in a
//     ring for the shutdown RunReport / tests, never more.
//
// The clock is injectable (monotonic ms) so the rate-limit window is
// deterministic under test. Thread-safe; the serving path calls emit()
// from the event-loop thread, tests poke it from wherever.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace s2s::svc {

struct SlowLogConfig {
  /// End-to-end threshold in microseconds; <= 0 disables the log.
  std::int64_t threshold_us = 0;
  /// Rate limit: at most this many emitted lines per interval.
  std::uint32_t max_per_interval = 10;
  std::int64_t interval_ms = 1000;
  /// Ring bound on retained entries.
  std::size_t max_entries = 128;
};

/// One over-threshold request, phase-by-phase.
struct SlowQueryEntry {
  std::uint64_t trace_id = 0;  ///< 0 when the client sent no trace context
  std::string type;            ///< protocol type_name
  std::int64_t total_us = 0;   ///< admission to response-queued
  std::int64_t queue_us = 0;   ///< admission to dequeue
  std::int64_t cache_us = 0;
  std::int64_t exec_us = 0;
  std::int64_t encode_us = 0;
  std::int64_t write_us = 0;
  std::string cache_status;    ///< "hit" | "miss" | "bypass" | "none"
  std::string admission;       ///< "admitted" | "shed"
  std::string response;        ///< "ok" | error code

  std::string to_json() const;
};

class SlowQueryLog {
 public:
  using ClockFn = std::function<std::int64_t()>;  ///< monotonic ms

  explicit SlowQueryLog(SlowLogConfig config, ClockFn clock = {});
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const { return config_.threshold_us > 0; }
  std::int64_t threshold_us() const { return config_.threshold_us; }

  /// Records `entry` if the log is enabled and entry.total_us exceeds
  /// the threshold. Returns true when a line was emitted (not rate
  /// limited); the entry is retained in the ring either way.
  bool emit(const SlowQueryEntry& entry);

  /// Retained entries, oldest first (at most max_entries).
  std::vector<SlowQueryEntry> entries() const;

  std::uint64_t emitted() const;
  std::uint64_t suppressed() const;

 private:
  SlowLogConfig config_;
  ClockFn clock_;
  mutable std::mutex mutex_;
  std::deque<SlowQueryEntry> ring_;
  std::int64_t interval_start_ms_ = 0;
  std::uint32_t interval_emitted_ = 0;
  std::uint64_t interval_suppressed_ = 0;  ///< current interval only
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace s2s::svc
