// svc::RetryingClient — the resilient layer over svc::Client
// (DESIGN.md section 12).
//
// svc::Client is deliberately a bare wire client: one connection, one
// blocking call, any failure surfaces as-is. This wrapper adds the
// policy every real consumer of a flaky path wants, in one place:
//
//   timeouts      per-attempt deadline via poll() + SO_RCVTIMEO
//   retries       bounded attempts; every current request type is
//                 read-only, so replays are always safe (idempotency is
//                 a property of the protocol, checked here by assertion
//                 on is_request, not by per-call annotation)
//   backoff       exponential with decorrelated jitter (sleep drawn
//                 uniformly from [base, 3*prev], capped), seeded — so
//                 chaos tests replay identically
//   busy hints    a `busy`/`draining` error frame is not a failure but a
//                 schedule: the client sleeps the server-provided
//                 retry_after_ms (when present) before retrying
//   hedging       optionally, when the primary attempt has been silent
//                 for hedge_delay_ms, a second connection races it; the
//                 first complete frame wins, the loser is closed (safe,
//                 again, because requests are read-only)
//   breaker       after breaker_failures consecutive exhausted calls the
//                 client fails fast for breaker_cooldown_ms, then lets
//                 one probe through (half-open)
//
// Counting discipline: RetryStats separates *failed attempts* (transport
// faults, timeouts, corrupted frames — everything the chaos proxy can
// inject) from *busy reschedules* (server admission control doing its
// job). Chaos tests assert exact equality between ChaosStats ground
// truth and failed_attempts; overload tests assert against the busy
// counters. Mixing the two would make both assertions sloppy.
// The same numbers are mirrored to s2s.svc.retry.* obs counters so any
// tool's RunReport carries them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "stats/rng.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace s2s::svc {

struct RetryPolicy {
  /// Per-attempt response deadline; also the connect/send socket timeout.
  int timeout_ms = 2000;
  /// Additional attempts after the first (0 = fail on first failure).
  int max_retries = 3;
  int backoff_base_ms = 5;
  int backoff_cap_ms = 1000;
  /// Seed for the jitter stream (decorrelated backoff is randomized).
  std::uint64_t jitter_seed = 7;

  /// Race a second connection when the primary is silent this long.
  bool hedge = false;
  int hedge_delay_ms = 150;

  /// Consecutive exhausted calls that open the breaker (0 = disabled).
  int breaker_failures = 0;
  int breaker_cooldown_ms = 1000;

  /// Stamp requests with a trace context (kFlagTraceContext): each call
  /// mints a trace id, each attempt/retry/hedge gets its own span whose
  /// id rides the wire, so the server's spans stitch under ours in one
  /// chrome://tracing export — including which hedge won. Off by
  /// default: only servers advertising "trace_context" in kServerStats
  /// understand the flag.
  bool trace = false;
};

struct RetryStats {
  std::uint64_t calls = 0;           ///< logical call() invocations
  std::uint64_t attempts = 0;        ///< request transmissions (no hedges)
  std::uint64_t retries = 0;         ///< attempts after the first per call
  std::uint64_t failed_attempts = 0; ///< transport fault/timeout/bad frame
  std::uint64_t timeouts = 0;        ///< subset of failed: deadline expiry
  std::uint64_t reconnects = 0;      ///< connections opened after the first
  std::uint64_t busy_rescheduled = 0;///< busy/draining frames obeyed
  std::uint64_t busy_hint_ms = 0;    ///< sum of honored retry_after_ms
  std::uint64_t hedges = 0;          ///< hedge connections launched
  std::uint64_t hedge_wins = 0;      ///< hedge delivered the frame first
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t giveups = 0;         ///< calls that exhausted retries
};

class RetryingClient {
 public:
  RetryingClient(std::string host, std::uint16_t port, RetryPolicy policy);

  /// One logical request with retries/hedging per the policy. Returns
  /// true when a response frame (kOk or a non-retryable kError, e.g.
  /// bad_request) was obtained; false when retries were exhausted or the
  /// breaker is open, with `error` describing the last failure.
  bool call(MsgType type, std::uint8_t flags, std::string_view payload,
            MsgType* response_type, std::string* response_payload,
            std::string& error);

  const RetryStats& stats() const noexcept { return stats_; }
  bool breaker_open() const noexcept { return breaker_until_ms_ > 0; }

 private:
  bool ensure_connected(Client& client, bool& first_use, std::string& error);
  /// One wire attempt (possibly hedged). Outcomes: 0 = response frame
  /// obtained, 1 = retryable failure, 2 = busy/draining reschedule
  /// (hint_ms filled when the server sent one). `span_name` labels the
  /// attempt's trace span ("attempt" / "retry") when tracing is on.
  int attempt(MsgType type, std::uint8_t flags, std::string_view payload,
              MsgType* response_type, std::string* response_payload,
              int* hint_ms, std::string& error, const char* span_name);
  void sleep_ms(int ms);
  std::int64_t now_ms() const;

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  Client primary_;
  bool ever_connected_ = false;
  stats::Rng rng_;
  RetryStats stats_;
  int consecutive_giveups_ = 0;
  std::int64_t breaker_until_ms_ = 0;  ///< 0 = closed

  obs::Counter obs_attempts_;
  obs::Counter obs_retries_;
  obs::Counter obs_failed_;
  obs::Counter obs_timeouts_;
  obs::Counter obs_reconnects_;
  obs::Counter obs_busy_;
  obs::Counter obs_hedges_;
  obs::Counter obs_hedge_wins_;
  obs::Counter obs_breaker_;
  obs::Counter obs_giveups_;
};

}  // namespace s2s::svc
