#include "svc/retry_client.h"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "obs/trace.h"

namespace s2s::svc {

namespace {

/// Retryable server error codes: admission pushback and transient frame
/// damage. Everything else (bad_request, not_found, internal, ...) is a
/// real answer about the request and must reach the caller.
bool is_reschedule_code(const std::string& code) {
  return code == "busy" || code == "draining";
}

bool is_retryable_frame_code(const std::string& code) {
  return code == "bad_crc" || code == "bad_frame" || code == "oversized";
}

/// Frame-damage codes after which the stream state is untrusted: on
/// `bad_frame` the server closes the connection (no boundary to resync
/// to), and after a recoverable `oversized` it is discarding a phantom
/// payload that would swallow our replay. `bad_crc` keeps the
/// connection — the server skipped exactly one frame.
bool needs_fresh_connection(const std::string& code) {
  return code == "bad_frame" || code == "oversized";
}

}  // namespace

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      rng_(policy.jitter_seed) {
  auto& reg = obs::MetricsRegistry::global();
  obs_attempts_ = reg.counter("s2s.svc.retry.attempts");
  obs_retries_ = reg.counter("s2s.svc.retry.retries");
  obs_failed_ = reg.counter("s2s.svc.retry.failed_attempts");
  obs_timeouts_ = reg.counter("s2s.svc.retry.timeouts");
  obs_reconnects_ = reg.counter("s2s.svc.retry.reconnects");
  obs_busy_ = reg.counter("s2s.svc.retry.busy_rescheduled");
  obs_hedges_ = reg.counter("s2s.svc.retry.hedges");
  obs_hedge_wins_ = reg.counter("s2s.svc.retry.hedge_wins");
  obs_breaker_ = reg.counter("s2s.svc.retry.breaker_fast_fails");
  obs_giveups_ = reg.counter("s2s.svc.retry.giveups");
}

std::int64_t RetryingClient::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RetryingClient::sleep_ms(int ms) {
  if (ms <= 0) return;
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

bool RetryingClient::ensure_connected(Client& client, bool& first_use,
                                      std::string& error) {
  if (client.connected()) return true;
  if (!client.connect(host_, port_, error, policy_.timeout_ms)) return false;
  if (first_use) {
    first_use = false;
  } else {
    ++stats_.reconnects;
    obs_reconnects_.inc();
  }
  return true;
}

int RetryingClient::attempt(MsgType type, std::uint8_t flags,
                            std::string_view payload, MsgType* response_type,
                            std::string* response_payload, int* hint_ms,
                            std::string& error, const char* span_name) {
  ++stats_.attempts;
  obs_attempts_.inc();

  auto& collector = obs::TraceCollector::global();
  const bool tracing = policy_.trace && collector.enabled();
  // The attempt span nests under call()'s rpc span (thread-local chain)
  // and its ids ride the wire, making the server's request span its
  // child in the merged trace. The hedge span must be declared after it
  // so stack (destruction) order matches nesting order.
  std::optional<obs::TraceSpan> attempt_span;
  std::optional<obs::TraceSpan> hedge_span;
  if (tracing) attempt_span.emplace(span_name, collector);

  const auto traced_frame = [&](const obs::TraceSpan& span) {
    std::string traced =
        encode_trace_context({span.trace_id(), span.span_id()});
    traced.append(payload);
    return encode_frame(type, static_cast<std::uint8_t>(
                                  flags | kFlagTraceContext),
                        traced);
  };

  bool first = !ever_connected_;
  if (!ensure_connected(primary_, first, error)) return 1;
  ever_connected_ = true;

  const std::string frame = attempt_span ? traced_frame(*attempt_span)
                                         : encode_frame(type, flags, payload);
  if (!primary_.send_bytes(frame, error)) {
    primary_.close();
    return 1;
  }

  const std::int64_t start = now_ms();
  const std::int64_t deadline = start + policy_.timeout_ms;
  const std::int64_t hedge_at =
      policy_.hedge ? start + policy_.hedge_delay_ms : deadline + 1;
  Client hedge;
  bool hedge_live = false;
  bool hedge_spent = !policy_.hedge;
  bool primary_live = true;

  while (true) {
    // A frame may already be buffered (e.g. pipelined busy responses).
    Client* winner = nullptr;
    if (primary_live && primary_.has_buffered_frame()) winner = &primary_;
    else if (hedge_live && hedge.has_buffered_frame()) winner = &hedge;

    if (winner == nullptr) {
      const std::int64_t now = now_ms();
      if (now >= deadline) {
        ++stats_.timeouts;
        obs_timeouts_.inc();
        error = "attempt timed out after " +
                std::to_string(policy_.timeout_ms) + "ms";
        primary_.close();
        if (hedge_live) hedge.close();
        return 1;
      }
      if (!hedge_spent && now >= hedge_at && primary_live) {
        // Primary has been silent past the hedge delay: race a second
        // connection. A hedge that fails to launch is simply dropped —
        // the primary attempt is still in flight.
        hedge_spent = true;
        ++stats_.hedges;
        obs_hedges_.inc();
        // The hedge gets its own span (child of the attempt) and its own
        // span id on the wire, so the export shows two server request
        // spans racing under one attempt — and which one won.
        const std::string* hedge_frame = &frame;
        std::string hedge_traced;
        if (attempt_span) {
          hedge_span.emplace("hedge", collector);
          hedge_traced = traced_frame(*hedge_span);
          hedge_frame = &hedge_traced;
        }
        std::string hedge_error;
        bool hedge_first = false;  // hedge connections always count
        if (ensure_connected(hedge, hedge_first, hedge_error) &&
            hedge.send_bytes(*hedge_frame, hedge_error)) {
          hedge_live = true;
        } else {
          if (hedge_span) hedge_span->set_note("launch_failed");
          hedge.close();
        }
      }
      pollfd fds[2];
      nfds_t nfds = 0;
      if (primary_live) fds[nfds++] = {primary_.fd(), POLLIN, 0};
      if (hedge_live) fds[nfds++] = {hedge.fd(), POLLIN, 0};
      if (nfds == 0) return 1;  // both sides died; error already set
      std::int64_t wait = deadline - now;
      if (!hedge_spent) wait = std::min(wait, hedge_at - now);
      const int nready =
          ::poll(fds, nfds, static_cast<int>(std::max<std::int64_t>(wait, 1)));
      if (nready <= 0) continue;  // timeout tick or EINTR; loop re-checks
      for (nfds_t i = 0; i < nfds; ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        winner = (primary_live && fds[i].fd == primary_.fd()) ? &primary_
                                                              : &hedge;
        break;
      }
      if (winner == nullptr) continue;
    }

    MsgType rtype;
    std::string rpayload;
    std::string read_error;
    if (!winner->read_frame(&rtype, &rpayload, read_error)) {
      winner->close();
      if (winner == &primary_) {
        primary_live = false;
        error = read_error;
      } else {
        hedge_live = false;
      }
      if (!primary_live && !hedge_live) return 1;
      continue;  // the other leg of the race is still in flight
    }

    if (winner == &hedge) {
      ++stats_.hedge_wins;
      obs_hedge_wins_.inc();
      if (hedge_span) hedge_span->set_note("won");
      primary_.close();
      primary_ = std::move(hedge);
    } else if (hedge_live) {
      if (hedge_span) hedge_span->set_note("lost");
      hedge.close();
    }

    if (rtype == MsgType::kError) {
      const ErrorInfo info = parse_error_payload(rpayload);
      if (is_reschedule_code(info.code)) {
        if (hint_ms != nullptr) *hint_ms = info.retry_after_ms;
        error = "server " + info.code;
        return 2;
      }
      if (is_retryable_frame_code(info.code)) {
        // The request frame arrived damaged in flight (e.g. proxy
        // corruption); the request itself was well-formed, so replay is
        // safe — from a fresh connection when the stream is untrusted.
        error = "server reported " + info.code;
        if (needs_fresh_connection(info.code)) primary_.close();
        return 1;
      }
    }
    if (response_type != nullptr) *response_type = rtype;
    if (response_payload != nullptr) *response_payload = rpayload;
    return 0;
  }
}

bool RetryingClient::call(MsgType type, std::uint8_t flags,
                          std::string_view payload, MsgType* response_type,
                          std::string* response_payload, std::string& error) {
  ++stats_.calls;

  // One trace per logical call: the rpc span mints the trace id every
  // attempt/retry/hedge below shares (and ships to the server).
  auto& collector = obs::TraceCollector::global();
  std::optional<obs::TraceSpan> call_span;
  if (policy_.trace && collector.enabled()) {
    call_span.emplace(std::string("rpc:") + type_name(type), /*trace_id=*/0,
                      /*parent_span_id=*/0, collector);
  }

  if (policy_.breaker_failures > 0 && breaker_until_ms_ > 0) {
    if (now_ms() < breaker_until_ms_) {
      ++stats_.breaker_fast_fails;
      obs_breaker_.inc();
      error = "circuit breaker open";
      return false;
    }
    // Cooldown elapsed: half-open, this call is the probe.
  }

  int prev_backoff = policy_.backoff_base_ms;
  std::string last_error = "no attempts made";
  for (int attempt_no = 0; attempt_no <= policy_.max_retries; ++attempt_no) {
    if (attempt_no > 0) {
      ++stats_.retries;
      obs_retries_.inc();
    }
    int hint = -1;
    std::string attempt_error;
    const int outcome =
        attempt(type, flags, payload, response_type, response_payload, &hint,
                attempt_error, attempt_no == 0 ? "attempt" : "retry");
    if (outcome == 0) {
      consecutive_giveups_ = 0;
      breaker_until_ms_ = 0;
      return true;
    }
    last_error = attempt_error;
    if (outcome == 2) {
      ++stats_.busy_rescheduled;
      obs_busy_.inc();
      if (attempt_no == policy_.max_retries) break;
      if (hint >= 0) {
        stats_.busy_hint_ms += static_cast<std::uint64_t>(hint);
        sleep_ms(hint);
      } else {
        sleep_ms(prev_backoff);
      }
      continue;
    }
    ++stats_.failed_attempts;
    obs_failed_.inc();
    if (attempt_no == policy_.max_retries) break;
    // Decorrelated jitter: draw uniformly from [base, 3*prev], capped.
    const int lo = std::max(policy_.backoff_base_ms, 1);
    const int hi = std::max(lo + 1, prev_backoff * 3);
    int sleep = lo + static_cast<int>(rng_.below(
                         static_cast<std::uint64_t>(hi - lo + 1)));
    sleep = std::min(sleep, policy_.backoff_cap_ms);
    prev_backoff = sleep;
    sleep_ms(sleep);
  }

  ++stats_.giveups;
  obs_giveups_.inc();
  if (policy_.breaker_failures > 0 &&
      ++consecutive_giveups_ >= policy_.breaker_failures) {
    breaker_until_ms_ = now_ms() + policy_.breaker_cooldown_ms;
  }
  error = "retries exhausted: " + last_error;
  return false;
}

}  // namespace s2s::svc
