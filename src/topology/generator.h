// Synthetic Internet-core generator.
//
// Produces a Topology with a tier-1 clique, regional transit providers and
// multihomed stub networks, Gao-Rexford relationships, geographically
// embedded PoPs/backbones, interconnection links at shared cities (private
// cross-connects and public IXP fabrics), a dual-stack overlay, an address
// plan with announced and deliberately unannounced infrastructure space,
// and a measurement-server deployment that follows the paper's country mix.
//
// Generation is deterministic for a given config (including seed).
#pragma once

#include <cstdint>

#include "stats/rng.h"
#include "topology/topology.h"

namespace s2s::topology {

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // --- AS population ---
  int tier1_count = 12;
  int transit_count = 80;
  int stub_count = 400;

  // --- PoP footprints ---
  int tier1_min_pops = 18, tier1_max_pops = 32;
  int transit_min_pops = 3, transit_max_pops = 10;
  int stub_min_pops = 1, stub_max_pops = 3;

  // --- connectivity ---
  int transit_min_providers = 2, transit_max_providers = 3;
  int stub_min_providers = 2, stub_max_providers = 4;
  /// Probability that two transit ASes sharing a city peer (p2p).
  double transit_peer_prob = 0.45;
  /// Probability that two stubs co-present at an IXP city peer there.
  double stub_ixp_peer_prob = 0.05;
  /// Number of parallel interconnection links for tier1-tier1 adjacencies.
  int tier1_parallel_links_min = 3, tier1_parallel_links_max = 5;
  /// Probability a p2p link in an IXP city rides the public fabric.
  double public_ixp_link_prob = 0.6;

  // --- IPv6 overlay ---
  double ipv6_as_fraction = 0.90;        ///< non-tier1 ASes that deploy v6
  double ipv6_adjacency_fraction = 0.93; ///< v6-capable adjacencies enabled

  // --- traceroute realism ---
  /// Fraction of routers that never answer traceroute probes.
  double silent_router_fraction = 0.045;
  /// Fraction of IXP LAN prefixes that are not announced in BGP.
  double unannounced_ixp_fraction = 0.25;
  /// Fraction of internal infrastructure /24s left unannounced.
  double unannounced_internal_fraction = 0.002;

  // --- fiber model ---
  double path_stretch_min = 1.15, path_stretch_max = 1.55;
  double switch_delay_ms = 0.15;  ///< per-link forwarding/serialization cost

  // --- measurement deployment ---
  int server_count = 220;
  double server_dual_stack_fraction = 0.97;
};

/// Generates the full topology; the result passes Topology::validate().
Topology generate(const GeneratorConfig& config);

}  // namespace s2s::topology
