#include "topology/cities.h"

#include <array>

namespace s2s::topology {

namespace {

// name, country, continent, lat, lon, utc_offset, server_weight, has_ixp
// Coordinates are approximate city centers; offsets are standard time.
constexpr double kUsWeight = 1.75;  // 14 cities * 1.75 = 24.5, ~39% of the ~63 total
const std::array<CityInfo, 88> kCities = {{
    // --- United States (~39% of server weight) ---
    {{"New York", "US", "NA", {40.71, -74.01}, -5.0}, kUsWeight, true},
    {{"Ashburn", "US", "NA", {39.04, -77.49}, -5.0}, kUsWeight, true},
    {{"Chicago", "US", "NA", {41.88, -87.63}, -6.0}, kUsWeight, true},
    {{"Dallas", "US", "NA", {32.78, -96.80}, -6.0}, kUsWeight, true},
    {{"Miami", "US", "NA", {25.76, -80.19}, -5.0}, kUsWeight, true},
    {{"Atlanta", "US", "NA", {33.75, -84.39}, -5.0}, kUsWeight, false},
    {{"Houston", "US", "NA", {29.76, -95.37}, -6.0}, kUsWeight, false},
    {{"Denver", "US", "NA", {39.74, -104.99}, -7.0}, kUsWeight, false},
    {{"Phoenix", "US", "NA", {33.45, -112.07}, -7.0}, kUsWeight, false},
    {{"Los Angeles", "US", "NA", {34.05, -118.24}, -8.0}, kUsWeight, true},
    {{"San Jose", "US", "NA", {37.34, -121.89}, -8.0}, kUsWeight, true},
    {{"Seattle", "US", "NA", {47.61, -122.33}, -8.0}, kUsWeight, true},
    {{"Boston", "US", "NA", {42.36, -71.06}, -5.0}, kUsWeight, false},
    {{"Washington", "US", "NA", {38.91, -77.04}, -5.0}, kUsWeight, false},
    // --- Australia ---
    {{"Sydney", "AU", "OC", {-33.87, 151.21}, 10.0}, 1.6, true},
    {{"Melbourne", "AU", "OC", {-37.81, 144.96}, 10.0}, 1.4, false},
    {{"Brisbane", "AU", "OC", {-27.47, 153.03}, 10.0}, 1.0, false},
    {{"Perth", "AU", "OC", {-31.95, 115.86}, 8.0}, 0.8, false},
    // --- Germany ---
    {{"Frankfurt", "DE", "EU", {50.11, 8.68}, 1.0}, 1.8, true},
    {{"Berlin", "DE", "EU", {52.52, 13.41}, 1.0}, 1.0, false},
    {{"Munich", "DE", "EU", {48.14, 11.58}, 1.0}, 0.9, false},
    {{"Hamburg", "DE", "EU", {53.55, 9.99}, 1.0}, 0.8, false},
    // --- India ---
    {{"Mumbai", "IN", "AS", {19.08, 72.88}, 5.5}, 1.4, true},
    {{"Delhi", "IN", "AS", {28.70, 77.10}, 5.5}, 1.1, false},
    {{"Chennai", "IN", "AS", {13.08, 80.27}, 5.5}, 0.9, false},
    {{"Bangalore", "IN", "AS", {12.97, 77.59}, 5.5}, 0.8, false},
    // --- Japan ---
    {{"Tokyo", "JP", "AS", {35.68, 139.65}, 9.0}, 2.0, true},
    {{"Osaka", "JP", "AS", {34.69, 135.50}, 9.0}, 1.5, false},
    // --- Canada ---
    {{"Toronto", "CA", "NA", {43.65, -79.38}, -5.0}, 1.1, true},
    {{"Montreal", "CA", "NA", {45.50, -73.57}, -5.0}, 0.8, false},
    {{"Vancouver", "CA", "NA", {49.28, -123.12}, -8.0}, 0.7, false},
    // --- Rest of Europe ---
    {{"London", "GB", "EU", {51.51, -0.13}, 0.0}, 1.8, true},
    {{"Manchester", "GB", "EU", {53.48, -2.24}, 0.0}, 0.6, false},
    {{"Paris", "FR", "EU", {48.86, 2.35}, 1.0}, 1.4, true},
    {{"Marseille", "FR", "EU", {43.30, 5.37}, 1.0}, 0.6, false},
    {{"Amsterdam", "NL", "EU", {52.37, 4.90}, 1.0}, 1.5, true},
    {{"Brussels", "BE", "EU", {50.85, 4.35}, 1.0}, 0.5, false},
    {{"Madrid", "ES", "EU", {40.42, -3.70}, 1.0}, 0.8, true},
    {{"Barcelona", "ES", "EU", {41.39, 2.17}, 1.0}, 0.5, false},
    {{"Rome", "IT", "EU", {41.90, 12.50}, 1.0}, 0.6, false},
    {{"Milan", "IT", "EU", {45.46, 9.19}, 1.0}, 0.9, true},
    {{"Vienna", "AT", "EU", {48.21, 16.37}, 1.0}, 0.6, true},
    {{"Zurich", "CH", "EU", {47.38, 8.54}, 1.0}, 0.7, false},
    {{"Stockholm", "SE", "EU", {59.33, 18.07}, 1.0}, 0.8, true},
    {{"Oslo", "NO", "EU", {59.91, 10.75}, 1.0}, 0.5, false},
    {{"Copenhagen", "DK", "EU", {55.68, 12.57}, 1.0}, 0.5, false},
    {{"Helsinki", "FI", "EU", {60.17, 24.94}, 2.0}, 0.5, false},
    {{"Warsaw", "PL", "EU", {52.23, 21.01}, 1.0}, 0.7, true},
    {{"Prague", "CZ", "EU", {50.08, 14.44}, 1.0}, 0.6, true},
    {{"Budapest", "HU", "EU", {47.50, 19.04}, 1.0}, 0.5, false},
    {{"Bucharest", "RO", "EU", {44.43, 26.10}, 2.0}, 0.5, false},
    {{"Sofia", "BG", "EU", {42.70, 23.32}, 2.0}, 0.4, false},
    {{"Athens", "GR", "EU", {37.98, 23.73}, 2.0}, 0.4, false},
    {{"Istanbul", "TR", "EU", {41.01, 28.98}, 3.0}, 0.8, false},
    {{"Moscow", "RU", "EU", {55.76, 37.62}, 3.0}, 1.0, true},
    {{"Kyiv", "UA", "EU", {50.45, 30.52}, 2.0}, 0.5, false},
    {{"Dublin", "IE", "EU", {53.35, -6.26}, 0.0}, 0.6, false},
    {{"Lisbon", "PT", "EU", {38.72, -9.14}, 0.0}, 0.5, false},
    // --- Rest of Asia ---
    {{"Hong Kong", "HK", "AS", {22.32, 114.17}, 8.0}, 1.4, true},
    {{"Singapore", "SG", "AS", {1.35, 103.82}, 8.0}, 1.4, true},
    {{"Seoul", "KR", "AS", {37.57, 126.98}, 9.0}, 1.1, true},
    {{"Taipei", "TW", "AS", {25.03, 121.57}, 8.0}, 0.8, false},
    {{"Beijing", "CN", "AS", {39.90, 116.41}, 8.0}, 0.8, false},
    {{"Shanghai", "CN", "AS", {31.23, 121.47}, 8.0}, 0.8, false},
    {{"Bangkok", "TH", "AS", {13.76, 100.50}, 7.0}, 0.7, false},
    {{"Kuala Lumpur", "MY", "AS", {3.14, 101.69}, 8.0}, 0.6, false},
    {{"Jakarta", "ID", "AS", {-6.21, 106.85}, 7.0}, 0.7, false},
    {{"Manila", "PH", "AS", {14.60, 120.98}, 8.0}, 0.6, false},
    {{"Hanoi", "VN", "AS", {21.03, 105.85}, 7.0}, 0.5, false},
    {{"Dubai", "AE", "AS", {25.20, 55.27}, 4.0}, 0.7, false},
    {{"Tel Aviv", "IL", "AS", {32.09, 34.78}, 2.0}, 0.6, false},
    {{"Riyadh", "SA", "AS", {24.71, 46.68}, 3.0}, 0.4, false},
    {{"Doha", "QA", "AS", {25.29, 51.53}, 3.0}, 0.3, false},
    // --- Africa ---
    {{"Johannesburg", "ZA", "AF", {-26.20, 28.05}, 2.0}, 0.7, true},
    {{"Cape Town", "ZA", "AF", {-33.92, 18.42}, 2.0}, 0.4, false},
    {{"Nairobi", "KE", "AF", {-1.29, 36.82}, 3.0}, 0.4, false},
    {{"Lagos", "NG", "AF", {6.52, 3.38}, 1.0}, 0.4, false},
    {{"Cairo", "EG", "AF", {30.04, 31.24}, 2.0}, 0.5, false},
    {{"Casablanca", "MA", "AF", {33.57, -7.59}, 0.0}, 0.3, false},
    // --- South / Central America ---
    {{"Sao Paulo", "BR", "SA", {-23.56, -46.64}, -3.0}, 1.2, true},
    {{"Rio de Janeiro", "BR", "SA", {-22.91, -43.17}, -3.0}, 0.6, false},
    {{"Buenos Aires", "AR", "SA", {-34.60, -58.38}, -3.0}, 0.7, true},
    {{"Santiago", "CL", "SA", {-33.45, -70.67}, -4.0}, 0.5, false},
    {{"Lima", "PE", "SA", {-12.05, -77.04}, -5.0}, 0.4, false},
    {{"Bogota", "CO", "SA", {4.71, -74.07}, -5.0}, 0.4, false},
    {{"Mexico City", "MX", "NA", {19.43, -99.13}, -6.0}, 0.8, false},
    {{"Panama City", "PA", "NA", {8.98, -79.52}, -5.0}, 0.3, false},
    // --- New Zealand ---
    {{"Auckland", "NZ", "OC", {-36.85, 174.76}, 12.0}, 0.5, false},
}};

}  // namespace

std::span<const CityInfo> world_cities() { return kCities; }

}  // namespace s2s::topology
