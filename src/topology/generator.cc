#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "topology/cities.h"

namespace s2s::topology {

namespace {

using stats::Rng;

/// Weighted sampling without replacement over city indexes.
class CitySampler {
 public:
  CitySampler(std::span<const CityInfo> cities, Rng& rng)
      : cities_(cities), rng_(rng) {}

  /// Draws one city index by server weight, optionally restricted by a
  /// predicate; returns kInvalidId when nothing matches.
  template <typename Pred>
  CityId draw(Pred&& pred) {
    double total = 0.0;
    for (std::size_t i = 0; i < cities_.size(); ++i) {
      if (pred(static_cast<CityId>(i))) total += cities_[i].server_weight;
    }
    if (total <= 0.0) return kInvalidId;
    double target = rng_.uniform() * total;
    for (std::size_t i = 0; i < cities_.size(); ++i) {
      if (!pred(static_cast<CityId>(i))) continue;
      target -= cities_[i].server_weight;
      if (target <= 0.0) return static_cast<CityId>(i);
    }
    return kInvalidId;
  }

  CityId draw_any() {
    return draw([](CityId) { return true; });
  }

 private:
  std::span<const CityInfo> cities_;
  Rng& rng_;
};

/// Sequential address allocation per AS / per IXP, following the
/// conventions described in generator.h.
class AddressPlan {
 public:
  explicit AddressPlan(Topology& topo) : topo_(topo) {}

  /// Registers AS `id` and appends its announced prefixes.
  void register_as(AsId id, bool ipv6) {
    const std::uint32_t block = id + 1;
    const net::IPv4Addr base4(0x01000000u + block * 0x10000u);
    topo_.prefixes4.push_back(
        {net::Prefix4(base4, 16), topo_.ases[id].asn, true});
    if (ipv6) {
      const auto base6 = net::IPv6Addr::from_halves(
          0x2001000000000000ULL | (std::uint64_t{block} << 16), 0);
      topo_.prefixes6.push_back(
          {net::Prefix6(base6, 48), topo_.ases[id].asn, true});
    }
    state_.emplace(id, State{base4.value(), 0x2001000000000000ULL |
                                                (std::uint64_t{block} << 16)});
  }

  /// Registers an IXP LAN; `announced` controls whether the paper's
  /// "missing AS-level data" error mode triggers for its addresses.
  void register_ixp(std::uint32_t ixp_index, net::Asn ixp_asn,
                    bool announced) {
    const net::IPv4Addr base4(0xB0000000u + ixp_index * 0x10000u);
    topo_.prefixes4.push_back({net::Prefix4(base4, 16), ixp_asn, announced});
    const std::uint64_t hi =
        0x200107f800000000ULL | (std::uint64_t{ixp_index} << 16);
    topo_.prefixes6.push_back(
        {net::Prefix6(net::IPv6Addr::from_halves(hi, 0), 48), ixp_asn,
         announced});
    ixp_state_.emplace(ixp_index, State{base4.value(), hi});
  }

  /// Lazily creates the AS's unannounced infrastructure block.
  void ensure_unannounced_block(AsId id, bool ipv6) {
    if (unannounced_.contains(id)) return;
    const std::uint32_t block = id + 1;
    const net::IPv4Addr base4(0x40000000u + block * 0x10000u);
    topo_.prefixes4.push_back(
        {net::Prefix4(base4, 16), topo_.ases[id].asn, false});
    const std::uint64_t hi =
        0x2001100000000000ULL | (std::uint64_t{block} << 16);
    if (ipv6) {
      topo_.prefixes6.push_back(
          {net::Prefix6(net::IPv6Addr::from_halves(hi, 0), 48),
           topo_.ases[id].asn, false});
    }
    unannounced_.emplace(id, State{base4.value(), hi});
  }

  struct Pair {
    net::IPv4Addr a4, b4;
    net::IPv6Addr a6, b6;
  };

  /// Two consecutive addresses from the AS's announced space.
  Pair link_pair_from_as(AsId id) { return next_pair(state_.at(id)); }
  /// Two consecutive addresses from the AS's unannounced infra space.
  Pair link_pair_unannounced(AsId id, bool ipv6) {
    ensure_unannounced_block(id, ipv6);
    return next_pair(unannounced_.at(id));
  }
  /// Two consecutive addresses from an IXP LAN.
  Pair link_pair_from_ixp(std::uint32_t ixp_index) {
    return next_pair(ixp_state_.at(ixp_index));
  }

  /// One host address from the AS's announced space (servers).
  std::pair<net::IPv4Addr, net::IPv6Addr> host_from_as(AsId id) {
    State& s = state_.at(id);
    ++s.counter;
    return {net::IPv4Addr(s.base4 + s.counter),
            net::IPv6Addr::from_halves(s.base6_hi, s.counter)};
  }

 private:
  struct State {
    std::uint32_t base4;
    std::uint64_t base6_hi;
    std::uint32_t counter = 0;
  };

  Pair next_pair(State& s) {
    const std::uint32_t a = ++s.counter;
    const std::uint32_t b = ++s.counter;
    return {net::IPv4Addr(s.base4 + a), net::IPv4Addr(s.base4 + b),
            net::IPv6Addr::from_halves(s.base6_hi, a),
            net::IPv6Addr::from_halves(s.base6_hi, b)};
  }

  Topology& topo_;
  std::unordered_map<AsId, State> state_;
  std::unordered_map<AsId, State> unannounced_;
  std::unordered_map<std::uint32_t, State> ixp_state_;
};

class Generator {
 public:
  explicit Generator(const GeneratorConfig& config)
      : config_(config), rng_(config.seed), plan_(topo_) {}

  Topology run() {
    load_cities();
    create_ases();
    create_relationships();
    assign_ipv6();
    create_routers();
    register_address_space();
    create_backbones();
    create_interconnections();
    place_servers();
    topo_.reindex();
    topo_.validate();
    return std::move(topo_);
  }

 private:
  // ---- phase 1: cities ------------------------------------------------
  void load_cities() {
    const auto all = world_cities();
    topo_.cities.reserve(all.size());
    for (const auto& info : all) {
      topo_.cities.push_back(info.city);
      if (info.has_ixp) {
        ixp_city_index_.emplace(static_cast<CityId>(topo_.cities.size() - 1),
                                static_cast<std::uint32_t>(ixp_city_index_.size()));
      }
    }
    infos_ = all;
  }

  double city_distance_km(CityId a, CityId b) const {
    return net::great_circle_km(topo_.cities[a].location,
                                topo_.cities[b].location);
  }

  // ---- phase 2: AS population -----------------------------------------
  void create_ases() {
    CitySampler sampler(infos_, rng_);

    // Global hub cities every tier-1 must reach so the clique always has
    // shared interconnection sites: Ashburn, Frankfurt, and one Asian hub.
    const CityId ashburn = city_by_name("Ashburn");
    const CityId frankfurt = city_by_name("Frankfurt");
    const CityId asia_hubs[] = {city_by_name("Tokyo"), city_by_name("Singapore"),
                                city_by_name("Hong Kong")};

    for (int i = 0; i < config_.tier1_count; ++i) {
      AsNode as;
      as.asn = net::Asn(10 + static_cast<std::uint32_t>(i));
      as.tier = Tier::kTier1;
      std::set<CityId> pops = {ashburn, frankfurt,
                               asia_hubs[rng_.below(3)]};
      const int target = config_.tier1_min_pops +
                         static_cast<int>(rng_.below(static_cast<std::uint64_t>(
                             config_.tier1_max_pops - config_.tier1_min_pops + 1)));
      while (static_cast<int>(pops.size()) < target) {
        const CityId c = sampler.draw_any();
        if (c != kInvalidId) pops.insert(c);
      }
      as.pop_cities.assign(pops.begin(), pops.end());
      topo_.ases.push_back(std::move(as));
    }

    for (int i = 0; i < config_.transit_count; ++i) {
      AsNode as;
      as.asn = net::Asn(200 + static_cast<std::uint32_t>(i));
      as.tier = Tier::kTransit;
      // Regional operator: home continent drawn from the city weights.
      const CityId home = sampler.draw_any();
      const std::string continent = topo_.cities[home].continent;
      std::set<CityId> pops = {home};
      const int target = config_.transit_min_pops +
                         static_cast<int>(rng_.below(static_cast<std::uint64_t>(
                             config_.transit_max_pops - config_.transit_min_pops + 1)));
      int guard = 0;
      while (static_cast<int>(pops.size()) < target && guard++ < 200) {
        const CityId c = sampler.draw([&](CityId id) {
          return topo_.cities[id].continent == continent;
        });
        if (c != kInvalidId) pops.insert(c);
      }
      // ~15% of transits also reach one global hub out of region.
      if (rng_.chance(0.35)) pops.insert(rng_.chance(0.5) ? ashburn : frankfurt);
      as.pop_cities.assign(pops.begin(), pops.end());
      topo_.ases.push_back(std::move(as));
    }

    for (int i = 0; i < config_.stub_count; ++i) {
      AsNode as;
      as.asn = net::Asn(5000 + static_cast<std::uint32_t>(i));
      as.tier = Tier::kStub;
      const CityId home = sampler.draw_any();
      std::set<CityId> pops = {home};
      const int extra = static_cast<int>(rng_.below(static_cast<std::uint64_t>(
          config_.stub_max_pops - config_.stub_min_pops + 1)));
      const std::string continent = topo_.cities[home].continent;
      int guard = 0;
      while (static_cast<int>(pops.size()) < 1 + extra && guard++ < 100) {
        const CityId c = sampler.draw([&](CityId id) {
          return topo_.cities[id].continent == continent;
        });
        if (c != kInvalidId) pops.insert(c);
      }
      as.pop_cities.assign(pops.begin(), pops.end());
      topo_.ases.push_back(std::move(as));
    }
  }

  CityId city_by_name(std::string_view name) const {
    for (std::size_t i = 0; i < topo_.cities.size(); ++i) {
      if (topo_.cities[i].name == name) return static_cast<CityId>(i);
    }
    throw std::logic_error("unknown city in generator");
  }

  // ---- phase 3: relationships ------------------------------------------
  bool share_city(AsId x, AsId y) const {
    const auto& a = topo_.ases[x].pop_cities;
    const auto& b = topo_.ases[y].pop_cities;
    std::vector<CityId> shared;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(shared));
    return !shared.empty();
  }

  AdjacencyId add_adjacency(AsId a, AsId b, Relationship rel) {
    Adjacency adj;
    adj.a = a;
    adj.b = b;
    adj.rel = rel;
    topo_.adjacencies.push_back(adj);
    const auto id = static_cast<AdjacencyId>(topo_.adjacencies.size() - 1);
    topo_.ases[a].adjacencies.push_back(id);
    topo_.ases[b].adjacencies.push_back(id);
    adjacency_set_.insert(pair_key(a, b));
    return id;
  }

  bool adjacent(AsId a, AsId b) const {
    return adjacency_set_.contains(pair_key(a, b));
  }

  static std::uint64_t pair_key(AsId x, AsId y) {
    if (x > y) std::swap(x, y);
    return (std::uint64_t{x} << 32) | y;
  }

  void create_relationships() {
    const auto t1_end = static_cast<AsId>(config_.tier1_count);
    const auto tr_end =
        static_cast<AsId>(config_.tier1_count + config_.transit_count);
    const auto all_end = static_cast<AsId>(topo_.ases.size());

    // Tier-1 clique (p2p).
    for (AsId i = 0; i < t1_end; ++i) {
      for (AsId j = i + 1; j < t1_end; ++j) {
        add_adjacency(i, j, Relationship::kPeerToPeer);
      }
    }

    // Transit providers: 1-3 tier-1 uplinks sharing a city; regional
    // operators with no tier-1 in footprint backhaul to the nearest hub.
    for (AsId t = t1_end; t < tr_end; ++t) {
      const int got = pick_providers(t, 0, t1_end,
                                     config_.transit_min_providers,
                                     config_.transit_max_providers);
      if (got == 0) attach_to_nearest(t, 0, t1_end);
    }

    // Transit-transit peering where footprints overlap.
    for (AsId i = t1_end; i < tr_end; ++i) {
      for (AsId j = i + 1; j < tr_end; ++j) {
        if (!adjacent(i, j) && share_city(i, j) &&
            rng_.chance(config_.transit_peer_prob)) {
          add_adjacency(i, j, Relationship::kPeerToPeer);
        }
      }
    }

    // Stubs: multihomed to transits (preferred) or tier-1s.
    for (AsId s = tr_end; s < all_end; ++s) {
      const int picked = pick_providers(s, t1_end, tr_end,
                                        config_.stub_min_providers,
                                        config_.stub_max_providers);
      if (picked == 0) {
        // No transit shares a city: backhaul to the nearest transit PoP by
        // adding that city to the stub's footprint, as customers do.
        attach_to_nearest(s, t1_end, tr_end);
      } else if (rng_.chance(0.15)) {
        // Some stubs also buy one tier-1 uplink directly.
        pick_providers(s, 0, t1_end, 1, 1);
      }
    }

    // Stub-stub public peering at IXP cities (std::map: iteration order
    // must be deterministic because it feeds the RNG).
    std::map<CityId, std::vector<AsId>> stubs_at_ixp;
    for (AsId s = tr_end; s < all_end; ++s) {
      for (CityId c : topo_.ases[s].pop_cities) {
        if (ixp_city_index_.contains(c)) stubs_at_ixp[c].push_back(s);
      }
    }
    for (const auto& [city, members] : stubs_at_ixp) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (!adjacent(members[i], members[j]) &&
              rng_.chance(config_.stub_ixp_peer_prob)) {
            add_adjacency(members[i], members[j], Relationship::kPeerToPeer);
          }
        }
      }
    }
  }

  /// Picks up to [min_n, max_n] providers for `customer` from the AS id
  /// range [lo, hi) that share a city; returns how many were attached.
  int pick_providers(AsId customer, AsId lo, AsId hi, int min_n, int max_n) {
    std::vector<AsId> candidates;
    for (AsId p = lo; p < hi; ++p) {
      if (p != customer && !adjacent(customer, p) && share_city(customer, p)) {
        candidates.push_back(p);
      }
    }
    const int want =
        min_n + static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(max_n - min_n + 1)));
    int attached = 0;
    while (attached < want && !candidates.empty()) {
      const auto idx = rng_.below(candidates.size());
      add_adjacency(customer, candidates[idx],
                    Relationship::kCustomerToProvider);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
      ++attached;
    }
    return attached;
  }

  /// Backhauls `customer` to the nearest PoP of any AS in [lo, hi): adds
  /// that city to the customer's footprint and buys transit there.
  void attach_to_nearest(AsId customer, AsId lo, AsId hi) {
    const CityId home = topo_.ases[customer].pop_cities.front();
    double best = 1e18;
    AsId best_as = kInvalidId;
    CityId best_city = kInvalidId;
    for (AsId p = lo; p < hi; ++p) {
      for (CityId c : topo_.ases[p].pop_cities) {
        const double d = city_distance_km(home, c);
        if (d < best) {
          best = d;
          best_as = p;
          best_city = c;
        }
      }
    }
    if (best_as == kInvalidId) throw std::logic_error("no provider ASes");
    auto& pops = topo_.ases[customer].pop_cities;
    pops.insert(std::lower_bound(pops.begin(), pops.end(), best_city),
                best_city);
    pops.erase(std::unique(pops.begin(), pops.end()), pops.end());
    add_adjacency(customer, best_as, Relationship::kCustomerToProvider);
  }

  // ---- phase 4: IPv6 overlay -------------------------------------------
  void assign_ipv6() {
    for (AsNode& as : topo_.ases) {
      as.ipv6_enabled =
          as.tier == Tier::kTier1 || rng_.chance(config_.ipv6_as_fraction);
    }
    for (Adjacency& adj : topo_.adjacencies) {
      adj.ipv6 = topo_.ases[adj.a].ipv6_enabled &&
                 topo_.ases[adj.b].ipv6_enabled &&
                 rng_.chance(config_.ipv6_adjacency_fraction);
    }
  }

  // ---- phase 5: routers --------------------------------------------------
  void create_routers() {
    for (AsId i = 0; i < topo_.ases.size(); ++i) {
      AsNode& as = topo_.ases[i];
      as.routers.reserve(as.pop_cities.size());
      for (CityId c : as.pop_cities) {
        Router r;
        r.owner = i;
        r.city = c;
        r.icmp_response_rate =
            rng_.chance(config_.silent_router_fraction) ? 0.0 : 1.0;
        topo_.routers.push_back(r);
        as.routers.push_back(static_cast<RouterId>(topo_.routers.size() - 1));
      }
    }
  }

  // ---- phase 6: address space ---------------------------------------------
  void register_address_space() {
    for (AsId i = 0; i < topo_.ases.size(); ++i) {
      plan_.register_as(i, topo_.ases[i].ipv6_enabled);
    }
    for (const auto& [city, index] : ixp_city_index_) {
      const net::Asn ixp_asn(64500 + index);
      const bool announced = !rng_.chance(config_.unannounced_ixp_fraction);
      plan_.register_ixp(index, ixp_asn, announced);
    }
  }

  // ---- phase 7: intra-AS backbones ----------------------------------------
  double draw_stretch() {
    return rng_.uniform(config_.path_stretch_min, config_.path_stretch_max);
  }

  LinkId add_internal_link(AsId as_id, RouterId ra, RouterId rb) {
    Link link;
    link.scope = LinkScope::kInternal;
    link.ipv6 = topo_.ases[as_id].ipv6_enabled;
    const auto& ca = topo_.cities[topo_.routers[ra].city];
    const auto& cb = topo_.cities[topo_.routers[rb].city];
    link.delay_ms = net::fiber_delay_ms(ca.location, cb.location,
                                        draw_stretch()) +
                    config_.switch_delay_ms;
    const bool unannounced =
        rng_.chance(config_.unannounced_internal_fraction);
    const auto pair = unannounced
                          ? plan_.link_pair_unannounced(as_id, link.ipv6)
                          : plan_.link_pair_from_as(as_id);
    link.end_a = {ra, pair.a4,
                  link.ipv6 ? std::optional(pair.a6) : std::nullopt};
    link.end_b = {rb, pair.b4,
                  link.ipv6 ? std::optional(pair.b6) : std::nullopt};
    topo_.links.push_back(link);
    return static_cast<LinkId>(topo_.links.size() - 1);
  }

  void create_backbones() {
    for (AsId i = 0; i < topo_.ases.size(); ++i) {
      const AsNode& as = topo_.ases[i];
      const std::size_t n = as.routers.size();
      if (n < 2) continue;
      std::set<std::pair<RouterId, RouterId>> added;
      auto connect = [&](RouterId a, RouterId b) {
        if (a == b) return;
        const std::pair<RouterId, RouterId> key = std::minmax(a, b);
        if (!added.insert(key).second) return;
        add_internal_link(i, a, b);
      };
      // Hub: the PoP minimizing total distance to the others.
      std::size_t hub = 0;
      double best = 1e18;
      for (std::size_t a = 0; a < n; ++a) {
        double total = 0.0;
        for (std::size_t b = 0; b < n; ++b) {
          total += city_distance_km(as.pop_cities[a], as.pop_cities[b]);
        }
        if (total < best) {
          best = total;
          hub = a;
        }
      }
      for (std::size_t a = 0; a < n; ++a) connect(as.routers[hub], as.routers[a]);
      // Ring by longitude for geographic diversity.
      if (n >= 4) {
        std::vector<std::size_t> order(n);
        for (std::size_t a = 0; a < n; ++a) order[a] = a;
        std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
          return topo_.cities[as.pop_cities[x]].location.lon_deg <
                 topo_.cities[as.pop_cities[y]].location.lon_deg;
        });
        for (std::size_t a = 0; a < n; ++a) {
          connect(as.routers[order[a]], as.routers[order[(a + 1) % n]]);
        }
      }
      // A few random shortcuts on large backbones.
      for (std::size_t k = 0; k < n / 4; ++k) {
        connect(as.routers[rng_.below(n)], as.routers[rng_.below(n)]);
      }
    }
  }

  // ---- phase 8: interconnection links ---------------------------------------
  void create_interconnections() {
    for (AdjacencyId id = 0; id < topo_.adjacencies.size(); ++id) {
      Adjacency& adj = topo_.adjacencies[id];
      std::vector<CityId> shared;
      std::set_intersection(topo_.ases[adj.a].pop_cities.begin(),
                            topo_.ases[adj.a].pop_cities.end(),
                            topo_.ases[adj.b].pop_cities.begin(),
                            topo_.ases[adj.b].pop_cities.end(),
                            std::back_inserter(shared));
      if (shared.empty()) {
        throw std::logic_error("adjacency without shared city");
      }
      const bool tier1_pair = topo_.ases[adj.a].tier == Tier::kTier1 &&
                              topo_.ases[adj.b].tier == Tier::kTier1;
      std::size_t link_count = 1;
      if (tier1_pair) {
        const auto lo =
            static_cast<std::size_t>(config_.tier1_parallel_links_min);
        const auto hi =
            static_cast<std::size_t>(config_.tier1_parallel_links_max);
        link_count = std::min(shared.size(), lo + rng_.below(hi - lo + 1));
      }
      // Choose `link_count` distinct shared cities.
      for (std::size_t k = shared.size(); k > link_count; --k) {
        shared.erase(shared.begin() +
                     static_cast<std::ptrdiff_t>(rng_.below(shared.size())));
      }
      for (CityId city : shared) {
        adj.links.push_back(add_interconnection_link(id, city));
      }
    }
  }

  LinkId add_interconnection_link(AdjacencyId adj_id, CityId city) {
    const Adjacency& adj = topo_.adjacencies[adj_id];
    Link link;
    link.scope = LinkScope::kInterconnection;
    link.adjacency = adj_id;
    link.city = city;
    link.ipv6 = adj.ipv6;
    link.delay_ms = config_.switch_delay_ms + rng_.uniform(0.02, 0.4);

    const bool at_ixp = ixp_city_index_.contains(city);
    const bool public_fabric = adj.rel == Relationship::kPeerToPeer &&
                               at_ixp &&
                               rng_.chance(config_.public_ixp_link_prob);
    link.facility = public_fabric ? FacilityKind::kPublicIxp
                                  : FacilityKind::kPrivateInterconnect;

    AddressPlan::Pair pair;
    if (public_fabric) {
      pair = plan_.link_pair_from_ixp(ixp_city_index_.at(city));
    } else if (adj.rel == Relationship::kCustomerToProvider) {
      // Convention: the provider assigns the point-to-point addresses
      // (paper Figure 8c relies on this).
      pair = plan_.link_pair_from_as(adj.b);
    } else {
      pair = plan_.link_pair_from_as(rng_.chance(0.5) ? adj.a : adj.b);
    }

    const RouterId ra = *topo_.router_at(adj.a, city);
    const RouterId rb = *topo_.router_at(adj.b, city);
    link.end_a = {ra, pair.a4, link.ipv6 ? std::optional(pair.a6) : std::nullopt};
    link.end_b = {rb, pair.b4, link.ipv6 ? std::optional(pair.b6) : std::nullopt};
    topo_.links.push_back(link);
    return static_cast<LinkId>(topo_.links.size() - 1);
  }

  // ---- phase 9: measurement servers ------------------------------------------
  void place_servers() {
    // One server per AS, stubs preferred; mirrors "one server per cluster".
    std::vector<AsId> hosts;
    const auto t1_end = static_cast<AsId>(config_.tier1_count);
    for (AsId i = t1_end; i < topo_.ases.size(); ++i) hosts.push_back(i);
    // Weight hosting ASes by their home-city server weight.
    std::vector<double> weight(hosts.size());
    for (std::size_t k = 0; k < hosts.size(); ++k) {
      const CityId home = topo_.ases[hosts[k]].pop_cities.front();
      weight[k] = infos_[home].server_weight;
    }
    const int want = std::min<int>(config_.server_count,
                                   static_cast<int>(hosts.size()));
    for (int placed = 0; placed < want; ++placed) {
      double total = 0.0;
      for (double w : weight) total += w;
      if (total <= 0.0) break;
      double target = rng_.uniform() * total;
      std::size_t pick = 0;
      for (std::size_t k = 0; k < hosts.size(); ++k) {
        target -= weight[k];
        if (target <= 0.0) {
          pick = k;
          break;
        }
      }
      const AsId as_id = hosts[pick];
      weight[pick] = 0.0;  // without replacement

      const AsNode& as = topo_.ases[as_id];
      const auto pop_idx = rng_.below(as.pop_cities.size());
      Server server;
      server.as_id = as_id;
      server.city = as.pop_cities[pop_idx];
      server.attachment = as.routers[pop_idx];
      const auto [a4, a6] = plan_.host_from_as(as_id);
      server.addr4 = a4;
      const auto [g4, g6] = plan_.host_from_as(as_id);
      server.gateway_addr4 = g4;
      if (as.ipv6_enabled && rng_.chance(config_.server_dual_stack_fraction)) {
        server.addr6 = a6;
        server.gateway_addr6 = g6;
      }
      topo_.servers.push_back(server);
    }
  }

  GeneratorConfig config_;
  Rng rng_;
  Topology topo_;
  AddressPlan plan_;
  std::span<const CityInfo> infos_;
  std::map<CityId, std::uint32_t> ixp_city_index_;
  std::unordered_set<std::uint64_t> adjacency_set_;
};

}  // namespace

Topology generate(const GeneratorConfig& config) {
  return Generator(config).run();
}

}  // namespace s2s::topology
