// Built-in world city table used for PoP and server placement.
//
// The mix follows the paper's deployment (Section 2.1): servers in over 70
// countries, ~39% in the USA, with Australia, Germany, India, Japan and
// Canada the next five. `server_weight` encodes that distribution.
#pragma once

#include <span>

#include "net/geo.h"

namespace s2s::topology {

struct CityInfo {
  net::City city;
  /// Relative likelihood that a measurement server is placed here.
  double server_weight = 1.0;
  /// True for cities hosting a major public IXP fabric in the model.
  bool has_ixp = false;
};

/// The full built-in table (static storage, never empty).
std::span<const CityInfo> world_cities();

}  // namespace s2s::topology
