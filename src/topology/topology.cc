#include "topology/topology.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace s2s::topology {

namespace {
std::uint64_t pair_key(AsId x, AsId y) {
  if (x > y) std::swap(x, y);
  return (std::uint64_t{x} << 32) | y;
}
}  // namespace

std::optional<AsId> Topology::find_as(net::Asn asn) const {
  const auto it = asn_index_.find(asn.value());
  if (it == asn_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<RouterId> Topology::router_at(AsId as_id, CityId city) const {
  const AsNode& node = ases.at(as_id);
  const auto it =
      std::lower_bound(node.pop_cities.begin(), node.pop_cities.end(), city);
  if (it == node.pop_cities.end() || *it != city) return std::nullopt;
  return node.routers[static_cast<std::size_t>(it - node.pop_cities.begin())];
}

std::optional<AdjacencyId> Topology::find_adjacency(AsId x, AsId y) const {
  const auto it = adjacency_index_.find(pair_key(x, y));
  if (it == adjacency_index_.end()) return std::nullopt;
  return it->second;
}

const LinkEnd& Topology::far_end(const Link& link, RouterId router) const {
  return link.end_a.router == router ? link.end_b : link.end_a;
}

const LinkEnd& Topology::near_end(const Link& link, RouterId router) const {
  return link.end_a.router == router ? link.end_a : link.end_b;
}

int Topology::role_of(AdjacencyId id, AsId x) const {
  const Adjacency& adj = adjacencies.at(id);
  if (adj.rel == Relationship::kPeerToPeer) return 0;
  return adj.a == x ? -1 : +1;
}

void Topology::reindex() {
  asn_index_.clear();
  asn_index_.reserve(ases.size());
  for (AsId i = 0; i < ases.size(); ++i) {
    asn_index_.emplace(ases[i].asn.value(), i);
  }
  adjacency_index_.clear();
  adjacency_index_.reserve(adjacencies.size());
  for (AdjacencyId i = 0; i < adjacencies.size(); ++i) {
    adjacency_index_.emplace(pair_key(adjacencies[i].a, adjacencies[i].b), i);
  }
}

void Topology::validate() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("Topology::validate: " + what);
  };
  for (const AsNode& as : ases) {
    if (!as.asn.known()) fail("AS with unknown ASN");
    if (as.pop_cities.size() != as.routers.size()) {
      fail("pop_cities/routers size mismatch for " + as.asn.to_string());
    }
    if (!std::is_sorted(as.pop_cities.begin(), as.pop_cities.end())) {
      fail("unsorted pop_cities for " + as.asn.to_string());
    }
    for (CityId c : as.pop_cities) {
      if (c >= cities.size()) fail("city index out of range");
    }
    for (RouterId r : as.routers) {
      if (r >= routers.size()) fail("router index out of range");
    }
    for (AdjacencyId a : as.adjacencies) {
      if (a >= adjacencies.size()) fail("adjacency index out of range");
    }
  }
  for (const Adjacency& adj : adjacencies) {
    if (adj.a >= ases.size() || adj.b >= ases.size()) {
      fail("adjacency endpoint out of range");
    }
    if (adj.a == adj.b) fail("self adjacency");
    if (adj.links.empty()) fail("adjacency without links");
    for (LinkId l : adj.links) {
      if (l >= links.size()) fail("adjacency link out of range");
      if (links[l].scope != LinkScope::kInterconnection) {
        fail("adjacency references internal link");
      }
    }
  }
  std::unordered_set<std::uint32_t> seen4;
  for (const Link& link : links) {
    if (link.end_a.router >= routers.size() ||
        link.end_b.router >= routers.size()) {
      fail("link endpoint out of range");
    }
    if (link.delay_ms < 0.0) fail("negative link delay");
    for (const LinkEnd* end : {&link.end_a, &link.end_b}) {
      if (!seen4.insert(end->addr4.value()).second) {
        fail("duplicate interface IPv4 address " + end->addr4.to_string());
      }
      if (link.ipv6 && !end->addr6.has_value()) {
        fail("dual-stack link missing IPv6 address");
      }
    }
    if (link.scope == LinkScope::kInterconnection &&
        link.adjacency == kInvalidId) {
      fail("interconnection link without adjacency");
    }
  }
  for (const Server& server : servers) {
    if (server.as_id >= ases.size()) fail("server AS out of range");
    if (server.attachment >= routers.size()) {
      fail("server attachment out of range");
    }
    if (!seen4.insert(server.addr4.value()).second) {
      fail("duplicate server IPv4 address " + server.addr4.to_string());
    }
  }
}

}  // namespace s2s::topology
