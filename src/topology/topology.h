// Data model for the simulated Internet core.
//
// The topology is three-layered, mirroring what the paper's traceroutes
// traverse:
//   * AS layer:      autonomous systems with Gao-Rexford business
//                    relationships (customer-to-provider, peer-to-peer)
//                    and an adjacency per related AS pair;
//   * router layer:  one backbone router per (AS, PoP city), intra-AS
//                    backbone links, and per-adjacency interconnection
//                    links pinned to a shared city and facility kind
//                    (private interconnect or public IXP fabric);
//   * address layer: every link end carries an IPv4 (/31-style) and,
//                    when the link is dual-stack, an IPv6 address drawn
//                    from an AS's announced space or from unannounced
//                    infrastructure space (IXP LANs), which is what makes
//                    the paper's IP-to-AS error modes reproducible.
//
// Topology objects are plain data; generation lives in generator.h and
// policy routing in routing/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/asn.h"
#include "net/geo.h"
#include "net/ip.h"
#include "net/prefix.h"

namespace s2s::topology {

/// Index types (positions into the Topology vectors).
using AsId = std::uint32_t;
using CityId = std::uint32_t;
using RouterId = std::uint32_t;
using LinkId = std::uint32_t;
using AdjacencyId = std::uint32_t;
using ServerId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = ~std::uint32_t{0};

/// Commercial role of an AS in the hierarchy.
enum class Tier : std::uint8_t {
  kTier1,    ///< transit-free clique member
  kTransit,  ///< regional/national transit provider
  kStub,     ///< edge network (eyeball, enterprise, hosting)
};

/// Business relationship of an adjacency, read as "how `a` sees `b`".
enum class Relationship : std::uint8_t {
  kCustomerToProvider,  ///< a is the customer, b the provider
  kPeerToPeer,          ///< settlement-free peers
};

/// Where an interconnection is established.
enum class FacilityKind : std::uint8_t {
  kPrivateInterconnect,  ///< private cross-connect in a colocation facility
  kPublicIxp,            ///< shared IXP switching fabric
};

/// Whether a link is inside one AS or between two ASes.
enum class LinkScope : std::uint8_t { kInternal, kInterconnection };

struct AsNode {
  net::Asn asn;
  Tier tier = Tier::kStub;
  bool ipv6_enabled = true;
  std::vector<CityId> pop_cities;      ///< cities with a PoP (sorted, unique)
  std::vector<RouterId> routers;       ///< one per PoP city, same order
  std::vector<AdjacencyId> adjacencies;
};

/// AS-level adjacency between two related ASes; owns one or more
/// router-level interconnection links (parallel links in different cities).
struct Adjacency {
  AsId a = kInvalidId;  ///< for c2p: the customer side
  AsId b = kInvalidId;  ///< for c2p: the provider side
  Relationship rel = Relationship::kPeerToPeer;
  bool ipv6 = false;  ///< adjacency exists in the IPv6 routing plane too
  std::vector<LinkId> links;
};

struct Router {
  AsId owner = kInvalidId;
  CityId city = kInvalidId;
  /// Probability this router answers traceroute probes (models the paper's
  /// 28-33% of traceroutes containing unresponsive hops).
  double icmp_response_rate = 1.0;
};

/// One end of a link: the interface addresses a traceroute reports when a
/// probe *arrives* at `router` over this link.
struct LinkEnd {
  RouterId router = kInvalidId;
  net::IPv4Addr addr4;
  std::optional<net::IPv6Addr> addr6;  ///< absent on IPv4-only links
};

struct Link {
  LinkScope scope = LinkScope::kInternal;
  /// Set for interconnection links; kInvalidId for internal ones.
  AdjacencyId adjacency = kInvalidId;
  FacilityKind facility = FacilityKind::kPrivateInterconnect;
  CityId city = kInvalidId;  ///< city of the facility (interconnection) or
                             ///< kInvalidId for long-haul internal links
  LinkEnd end_a;
  LinkEnd end_b;
  double delay_ms = 0.0;  ///< one-way propagation + switching delay
  bool ipv6 = false;      ///< carries IPv6 (dual-stack link)
  /// Index into the congestion-profile table, or kInvalidId.
  std::uint32_t congestion_profile = kInvalidId;
};

/// A measurement server (one per cluster, as in the paper).
struct Server {
  AsId as_id = kInvalidId;
  CityId city = kInvalidId;
  RouterId attachment = kInvalidId;  ///< first-hop router
  net::IPv4Addr addr4;
  std::optional<net::IPv6Addr> addr6;
  /// Ingress interface of the attachment router facing the server; this is
  /// the address a traceroute reports for its first hop.
  net::IPv4Addr gateway_addr4;
  std::optional<net::IPv6Addr> gateway_addr6;
  bool dual_stack() const { return addr6.has_value(); }
};

/// An announced (or deliberately unannounced) prefix with its origin AS.
struct PrefixOrigin4 {
  net::Prefix4 prefix;
  net::Asn origin;
  bool announced = true;
};
struct PrefixOrigin6 {
  net::Prefix6 prefix;
  net::Asn origin;
  bool announced = true;
};

class Topology {
 public:
  std::vector<net::City> cities;
  std::vector<AsNode> ases;
  std::vector<Adjacency> adjacencies;
  std::vector<Router> routers;
  std::vector<Link> links;
  std::vector<Server> servers;
  std::vector<PrefixOrigin4> prefixes4;
  std::vector<PrefixOrigin6> prefixes6;

  /// ASN -> AsId lookup.
  std::optional<AsId> find_as(net::Asn asn) const;
  /// Router of `as_id` in `city`, if that AS has a PoP there.
  std::optional<RouterId> router_at(AsId as_id, CityId city) const;
  /// The adjacency between two ASes, if any.
  std::optional<AdjacencyId> find_adjacency(AsId x, AsId y) const;
  /// The other end of a link relative to `router`.
  const LinkEnd& far_end(const Link& link, RouterId router) const;
  const LinkEnd& near_end(const Link& link, RouterId router) const;

  /// Relationship of `x` toward `y` over adjacency `id` ("x is customer",
  /// "x is provider", or peer), as a signed code: -1 customer, 0 peer,
  /// +1 provider.
  int role_of(AdjacencyId id, AsId x) const;

  /// Rebuilds the internal lookup indexes after direct mutation.
  void reindex();

  /// Consistency checks (index ranges, sorted PoPs, address uniqueness);
  /// throws std::logic_error with a message on the first violation.
  void validate() const;

 private:
  std::unordered_map<std::uint32_t, AsId> asn_index_;
  std::unordered_map<std::uint64_t, AdjacencyId> adjacency_index_;
};

}  // namespace s2s::topology
