#include "net/timebase.h"

#include <cstdio>

namespace s2s::net {

std::string SimTime::to_string() const {
  const std::int64_t day = seconds_ / 86400;
  const std::int64_t rem = ((seconds_ % 86400) + 86400) % 86400;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "D%03lld %02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem % 3600) / 60));
  return buf;
}

}  // namespace s2s::net
