#include "net/prefix.h"

#include <charconv>

namespace s2s::net {

namespace {

std::optional<int> parse_length(std::string_view text, int max) {
  int length = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), length);
  if (ec != std::errc{} || ptr != text.data() + text.size() || length < 0 ||
      length > max) {
    return std::nullopt;
  }
  return length;
}

}  // namespace

std::optional<Prefix4> Prefix4::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv4Addr::parse(text.substr(0, slash));
  auto length = parse_length(text.substr(slash + 1), 32);
  if (!addr || !length) return std::nullopt;
  Prefix4 prefix(*addr, *length);
  if (prefix.address() != *addr) return std::nullopt;  // host bits set
  return prefix;
}

std::string Prefix4::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

Prefix6::Prefix6(const IPv6Addr& addr, int length) noexcept
    : length_(static_cast<std::uint8_t>(length)) {
  IPv6Addr::Bytes bytes = addr.bytes();
  for (int bit = length; bit < 128; ++bit) {
    bytes[static_cast<std::size_t>(bit / 8)] &=
        static_cast<std::uint8_t>(~(1u << (7 - bit % 8)));
  }
  addr_ = IPv6Addr(bytes);
}

bool Prefix6::contains(const IPv6Addr& a) const noexcept {
  for (int bit = 0; bit < length_; ++bit) {
    if (address_bit(a, bit) != address_bit(addr_, bit)) return false;
  }
  return true;
}

std::optional<Prefix6> Prefix6::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv6Addr::parse(text.substr(0, slash));
  auto length = parse_length(text.substr(slash + 1), 128);
  if (!addr || !length) return std::nullopt;
  Prefix6 prefix(*addr, *length);
  if (prefix.address() != *addr) return std::nullopt;  // host bits set
  return prefix;
}

std::string Prefix6::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace s2s::net
