#include "net/geo.h"

#include <cmath>

namespace s2s::net {

namespace {
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}

double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double c_rtt_ms(const GeoPoint& a, const GeoPoint& b) noexcept {
  return 2.0 * great_circle_km(a, b) / kSpeedOfLightKmPerMs;
}

double fiber_delay_ms(const GeoPoint& a, const GeoPoint& b,
                      double path_stretch) noexcept {
  return great_circle_km(a, b) * path_stretch / kFiberSpeedKmPerMs;
}

}  // namespace s2s::net
