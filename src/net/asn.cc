#include "net/asn.h"

#include <ostream>

namespace s2s::net {

std::string Asn::to_string() const {
  return known() ? "AS" + std::to_string(value_) : std::string("AS?");
}

std::string to_string(const AsPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += path[i].to_string();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Asn asn) {
  return os << asn.to_string();
}

}  // namespace s2s::net
