// CIDR prefixes for IPv4 and IPv6, used by the BGP RIB and address plan.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.h"

namespace s2s::net {

/// An IPv4 CIDR prefix, e.g. 192.0.2.0/24. The host bits are kept zeroed.
class Prefix4 {
 public:
  constexpr Prefix4() noexcept = default;
  /// Builds the prefix, masking away host bits. `length` must be in [0, 32].
  constexpr Prefix4(IPv4Addr addr, int length) noexcept
      : addr_(IPv4Addr(addr.value() & mask(length))),
        length_(static_cast<std::uint8_t>(length)) {}

  constexpr IPv4Addr address() const noexcept { return addr_; }
  constexpr int length() const noexcept { return length_; }

  /// True iff `a` falls inside this prefix.
  constexpr bool contains(IPv4Addr a) const noexcept {
    return (a.value() & mask(length_)) == addr_.value();
  }
  /// True iff `other` is equal to or more specific than this prefix.
  constexpr bool contains(const Prefix4& other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// Parse "a.b.c.d/len"; nullopt on malformed input or nonzero host bits.
  static std::optional<Prefix4> parse(std::string_view text);

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix4&,
                                    const Prefix4&) noexcept = default;

 private:
  static constexpr std::uint32_t mask(int length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  IPv4Addr addr_;
  std::uint8_t length_ = 0;
};

/// An IPv6 CIDR prefix, e.g. 2001:db8::/32. Host bits are kept zeroed.
class Prefix6 {
 public:
  constexpr Prefix6() noexcept = default;
  /// Builds the prefix, masking away host bits. `length` must be in [0, 128].
  Prefix6(const IPv6Addr& addr, int length) noexcept;

  const IPv6Addr& address() const noexcept { return addr_; }
  int length() const noexcept { return length_; }

  bool contains(const IPv6Addr& a) const noexcept;
  bool contains(const Prefix6& other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// Parse "hex::/len"; nullopt on malformed input or nonzero host bits.
  static std::optional<Prefix6> parse(std::string_view text);

  std::string to_string() const;

  friend auto operator<=>(const Prefix6&, const Prefix6&) noexcept = default;

 private:
  IPv6Addr addr_;
  std::uint8_t length_ = 0;
};

/// Returns bit `index` (0 = most significant) of the address.
constexpr bool address_bit(IPv4Addr a, int index) noexcept {
  return (a.value() >> (31 - index)) & 1u;
}
inline bool address_bit(const IPv6Addr& a, int index) noexcept {
  const auto byte = a.bytes()[static_cast<std::size_t>(index / 8)];
  return (byte >> (7 - index % 8)) & 1u;
}

}  // namespace s2s::net
