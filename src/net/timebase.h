// Simulation time: a strongly-typed wall-clock with helpers for the
// measurement cadences used in the paper (3-hour, 30-minute, 15-minute bins)
// and for local time-of-day (drives the diurnal congestion phase).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace s2s::net {

/// A point in simulated time, counted in seconds from the campaign origin
/// (the paper's origin is 2014-01-01 00:00 UTC; the simulator treats it as
/// an opaque zero point).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t seconds) noexcept
      : seconds_(seconds) {}

  static constexpr SimTime from_hours(double hours) noexcept {
    return SimTime(static_cast<std::int64_t>(hours * 3600.0));
  }
  static constexpr SimTime from_days(double days) noexcept {
    return from_hours(days * 24.0);
  }

  constexpr std::int64_t seconds() const noexcept { return seconds_; }
  constexpr double hours() const noexcept { return seconds_ / 3600.0; }
  constexpr double days() const noexcept { return seconds_ / 86400.0; }

  /// UTC hour-of-day in [0, 24).
  constexpr double utc_hour_of_day() const noexcept {
    const std::int64_t s = ((seconds_ % 86400) + 86400) % 86400;
    return s / 3600.0;
  }
  /// Local hour-of-day in [0, 24) at the given UTC offset.
  constexpr double local_hour_of_day(double utc_offset_hours) const noexcept {
    double h = utc_hour_of_day() + utc_offset_hours;
    while (h >= 24.0) h -= 24.0;
    while (h < 0.0) h += 24.0;
    return h;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;
  friend constexpr SimTime operator+(SimTime t, std::int64_t s) noexcept {
    return SimTime(t.seconds_ + s);
  }
  friend constexpr std::int64_t operator-(SimTime a, SimTime b) noexcept {
    return a.seconds_ - b.seconds_;
  }

  /// "D012 03:30" rendering (day index, HH:MM), handy in logs and examples.
  std::string to_string() const;

 private:
  std::int64_t seconds_ = 0;
};

/// Measurement cadences from the paper.
inline constexpr std::int64_t kThreeHours = 3 * 3600;
inline constexpr std::int64_t kThirtyMinutes = 30 * 60;
inline constexpr std::int64_t kFifteenMinutes = 15 * 60;
inline constexpr std::int64_t kOneDay = 86400;

/// Index of `t` on a sampling grid anchored at `start_day` (nearest bin).
/// Every consumer of a campaign grid (stores, fault accounting) must use
/// the same rounding so their epoch bookkeeping agrees.
inline std::int64_t grid_epoch(SimTime t, double start_day,
                               std::int64_t interval_s) {
  const double rel_s =
      static_cast<double>(t.seconds()) - start_day * 86400.0;
  return std::llround(rel_s / static_cast<double>(interval_s));
}

}  // namespace s2s::net
