#include "net/ip.h"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <vector>

namespace s2s::net {

std::string_view to_string(Family f) noexcept {
  return f == Family::kIPv4 ? "IPv4" : "IPv6";
}

namespace {

// Parse a decimal integer in [0, max]; advances `text` past the digits.
std::optional<unsigned> parse_decimal(std::string_view& text, unsigned max) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > max) return std::nullopt;
  // Reject leading zeros like "01" (ambiguous octal in some tools).
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

std::optional<unsigned> parse_hex16(std::string_view group) {
  if (group.empty() || group.size() > 4) return std::nullopt;
  unsigned value = 0;
  auto [ptr, ec] =
      std::from_chars(group.data(), group.data() + group.size(), value, 16);
  if (ec != std::errc{} || ptr != group.data() + group.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto part = parse_decimal(text, 255);
    if (!part) return std::nullopt;
    value = (value << 8) | *part;
  }
  if (!text.empty()) return std::nullopt;
  return IPv4Addr(value);
}

std::string IPv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<IPv6Addr> IPv6Addr::parse(std::string_view text) {
  // Split on "::" if present.
  std::vector<unsigned> head;
  std::vector<unsigned> tail;
  auto gap = text.find("::");
  std::string_view head_text = text;
  std::string_view tail_text;
  bool has_gap = gap != std::string_view::npos;
  if (has_gap) {
    head_text = text.substr(0, gap);
    tail_text = text.substr(gap + 2);
    if (tail_text.find("::") != std::string_view::npos) return std::nullopt;
  }

  auto parse_groups = [](std::string_view part,
                         std::vector<unsigned>& out) -> bool {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (true) {
      auto colon = part.find(':', pos);
      std::string_view group = part.substr(
          pos, colon == std::string_view::npos ? colon : colon - pos);
      auto value = parse_hex16(group);
      if (!value) return false;
      out.push_back(*value);
      if (colon == std::string_view::npos) return true;
      pos = colon + 1;
    }
  };

  if (!parse_groups(head_text, head) || !parse_groups(tail_text, tail)) {
    return std::nullopt;
  }
  const std::size_t total = head.size() + tail.size();
  if (has_gap ? total > 7 : total != 8) return std::nullopt;

  Bytes bytes{};
  std::size_t i = 0;
  for (unsigned g : head) {
    bytes[i++] = static_cast<std::uint8_t>(g >> 8);
    bytes[i++] = static_cast<std::uint8_t>(g & 0xff);
  }
  i = 16 - 2 * tail.size();
  for (unsigned g : tail) {
    bytes[i++] = static_cast<std::uint8_t>(g >> 8);
    bytes[i++] = static_cast<std::uint8_t>(g & 0xff);
  }
  return IPv6Addr(bytes);
}

std::string IPv6Addr::to_string() const {
  unsigned groups[8];
  for (int i = 0; i < 8; ++i) {
    groups[i] = (unsigned{bytes_[static_cast<std::size_t>(2 * i)]} << 8) |
                bytes_[static_cast<std::size_t>(2 * i + 1)];
  }
  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    if (i > 0 && !(best_start >= 0 && i == best_start + best_len)) out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  return out;
}

std::optional<IPAddr> IPAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    if (auto v6 = IPv6Addr::parse(text)) return IPAddr(*v6);
    return std::nullopt;
  }
  if (auto v4 = IPv4Addr::parse(text)) return IPAddr(*v4);
  return std::nullopt;
}

std::string IPAddr::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

std::ostream& operator<<(std::ostream& os, IPv4Addr a) {
  return os << a.to_string();
}
std::ostream& operator<<(std::ostream& os, const IPv6Addr& a) {
  return os << a.to_string();
}
std::ostream& operator<<(std::ostream& os, const IPAddr& a) {
  return os << a.to_string();
}

}  // namespace s2s::net
