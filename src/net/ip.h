// IP address value types (IPv4 and IPv6) used throughout the s2s library.
//
// These are small, trivially-copyable value types with total ordering so they
// can key associative containers, plus text parsing/formatting compatible
// with the conventional dotted-quad and RFC 5952 notations.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace s2s::net {

/// Which IP protocol family a measurement or address belongs to.
enum class Family : std::uint8_t { kIPv4 = 4, kIPv6 = 6 };

/// Human-readable name ("IPv4" / "IPv6").
std::string_view to_string(Family f) noexcept;

/// An IPv4 address stored in host byte order.
class IPv4Addr {
 public:
  constexpr IPv4Addr() noexcept = default;
  constexpr explicit IPv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr IPv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// The 32-bit value in host byte order.
  constexpr std::uint32_t value() const noexcept { return value_; }

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<IPv4Addr> parse(std::string_view text);

  /// Dotted-quad rendering, e.g. "192.0.2.17".
  std::string to_string() const;

  friend constexpr auto operator<=>(IPv4Addr, IPv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv6 address stored as 16 bytes in network order.
class IPv6Addr {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr IPv6Addr() noexcept : bytes_{} {}
  constexpr explicit IPv6Addr(const Bytes& bytes) noexcept : bytes_(bytes) {}

  /// Build from the high and low 64-bit halves (host byte order halves).
  static constexpr IPv6Addr from_halves(std::uint64_t hi,
                                        std::uint64_t lo) noexcept {
    Bytes b{};
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      b[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return IPv6Addr(b);
  }

  constexpr const Bytes& bytes() const noexcept { return bytes_; }

  /// High 64 bits (host order).
  constexpr std::uint64_t hi() const noexcept { return half(0); }
  /// Low 64 bits (host order).
  constexpr std::uint64_t lo() const noexcept { return half(8); }

  /// Parse RFC 4291 text (with "::" compression); nullopt on malformed input.
  static std::optional<IPv6Addr> parse(std::string_view text);

  /// RFC 5952 canonical text (lower case, longest zero run compressed).
  std::string to_string() const;

  friend constexpr auto operator<=>(const IPv6Addr&,
                                    const IPv6Addr&) noexcept = default;

 private:
  constexpr std::uint64_t half(std::size_t offset) const noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | bytes_[offset + i];
    return v;
  }

  Bytes bytes_;
};

/// A protocol-agnostic address: either IPv4 or IPv6.
class IPAddr {
 public:
  constexpr IPAddr() noexcept : rep_(IPv4Addr{}) {}
  constexpr IPAddr(IPv4Addr v4) noexcept : rep_(v4) {}  // NOLINT(google-explicit-constructor)
  constexpr IPAddr(IPv6Addr v6) noexcept : rep_(v6) {}  // NOLINT(google-explicit-constructor)

  constexpr Family family() const noexcept {
    return std::holds_alternative<IPv4Addr>(rep_) ? Family::kIPv4
                                                  : Family::kIPv6;
  }
  constexpr bool is_v4() const noexcept { return family() == Family::kIPv4; }
  constexpr bool is_v6() const noexcept { return family() == Family::kIPv6; }

  constexpr const IPv4Addr& v4() const { return std::get<IPv4Addr>(rep_); }
  constexpr const IPv6Addr& v6() const { return std::get<IPv6Addr>(rep_); }

  /// Parse either family; nullopt on malformed input.
  static std::optional<IPAddr> parse(std::string_view text);

  std::string to_string() const;

  friend constexpr auto operator<=>(const IPAddr&,
                                    const IPAddr&) noexcept = default;

 private:
  std::variant<IPv4Addr, IPv6Addr> rep_;
};

std::ostream& operator<<(std::ostream& os, IPv4Addr a);
std::ostream& operator<<(std::ostream& os, const IPv6Addr& a);
std::ostream& operator<<(std::ostream& os, const IPAddr& a);

}  // namespace s2s::net

namespace std {
template <>
struct hash<s2s::net::IPv4Addr> {
  size_t operator()(s2s::net::IPv4Addr a) const noexcept {
    return hash<uint32_t>{}(a.value());
  }
};
template <>
struct hash<s2s::net::IPv6Addr> {
  size_t operator()(const s2s::net::IPv6Addr& a) const noexcept {
    // Mix the halves; constants from boost::hash_combine.
    size_t h = hash<uint64_t>{}(a.hi());
    h ^= hash<uint64_t>{}(a.lo()) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};
template <>
struct hash<s2s::net::IPAddr> {
  size_t operator()(const s2s::net::IPAddr& a) const noexcept {
    return a.is_v4() ? hash<s2s::net::IPv4Addr>{}(a.v4())
                     : hash<s2s::net::IPv6Addr>{}(a.v6());
  }
};
}  // namespace std
