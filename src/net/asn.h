// Autonomous-system numbers and AS paths.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace s2s::net {

/// A strongly-typed autonomous-system number. Value 0 means "unknown".
class Asn {
 public:
  constexpr Asn() noexcept = default;
  constexpr explicit Asn(std::uint32_t value) noexcept : value_(value) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr bool known() const noexcept { return value_ != 0; }

  /// "AS64500" (or "AS?" when unknown).
  std::string to_string() const;

  friend constexpr auto operator<=>(Asn, Asn) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// Sentinel for hops whose origin AS could not be determined.
inline constexpr Asn kUnknownAsn{};

/// An AS-level path: consecutive duplicate ASNs are collapsed by the
/// inference layer, so each element is a distinct AS-level hop.
using AsPath = std::vector<Asn>;

/// "AS1 AS2 AS3" rendering of a path.
std::string to_string(const AsPath& path);

std::ostream& operator<<(std::ostream& os, Asn asn);

}  // namespace s2s::net

namespace std {
template <>
struct hash<s2s::net::Asn> {
  size_t operator()(s2s::net::Asn a) const noexcept {
    return hash<uint32_t>{}(a.value());
  }
};
}  // namespace std
