// Geographic coordinates, great-circle distances, and speed-of-light bounds.
//
// The paper's Section 6 defines cRTT as "the time it takes for a packet
// traveling at the speed of light in free space to traverse the round-trip
// distance between the endpoint pair"; inflation = median RTT / cRTT.
#pragma once

#include <compare>
#include <string>

namespace s2s::net {

/// Speed of light in vacuum, km per millisecond.
inline constexpr double kSpeedOfLightKmPerMs = 299.792458;

/// Propagation speed in optical fiber (refractive index ~1.468), km/ms.
inline constexpr double kFiberSpeedKmPerMs = kSpeedOfLightKmPerMs / 1.468;

/// Mean Earth radius in km (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// A point on the Earth's surface (degrees).
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr auto operator<=>(const GeoPoint&,
                                    const GeoPoint&) noexcept = default;
};

/// Great-circle (haversine) distance in km between two points.
double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Speed-of-light-in-vacuum round-trip time in ms between two points
/// (the paper's cRTT).
double c_rtt_ms(const GeoPoint& a, const GeoPoint& b) noexcept;

/// One-way propagation delay in ms along a fiber of great-circle length
/// between the points, with a path-stretch factor (cable routes are not
/// geodesics; 1.0 means geodesic fiber).
double fiber_delay_ms(const GeoPoint& a, const GeoPoint& b,
                      double path_stretch = 1.0) noexcept;

/// A city with a name, location, country and continent code; used for PoP
/// placement and for the paper's per-region breakdowns (US–US,
/// transcontinental, Asia, Europe).
struct City {
  std::string name;
  std::string country;    // ISO-3166 alpha-2, e.g. "US", "JP"
  std::string continent;  // "NA", "SA", "EU", "AS", "OC", "AF"
  GeoPoint location;
  /// UTC offset in hours, used to phase diurnal congestion by local time.
  double utc_offset_hours = 0.0;
};

}  // namespace s2s::net
