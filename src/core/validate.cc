#include "core/validate.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "core/congestion_detect.h"
#include "core/localize.h"
#include "core/ping_series.h"
#include "core/segment_series.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "probe/campaign.h"
#include "simnet/network.h"

namespace s2s::core {

using simnet::EventKind;
using simnet::EventScheduleConfig;
using simnet::GroundTruthEntry;
using simnet::GroundTruthLedger;
using simnet::PairKey;
using topology::LinkId;
using topology::ServerId;

namespace {

/// FNV-1a 64-bit of the scenario name: a stable per-scenario stream tag,
/// so renumbering the matrix never changes an existing scenario's draws.
std::uint64_t fnv64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::int64_t overlap_s(const GroundTruthEntry& e, std::int64_t w0,
                       std::int64_t w1) {
  return std::min(e.t1, w1) - std::max(e.t0, w0);
}

/// Obs handles for the validation stage.
struct ValidateObs {
  obs::Counter scenarios;
  obs::Counter events;
  obs::Counter assessed;
  obs::Counter true_positives;
  obs::Counter false_positives;
  obs::Counter false_negatives;
  obs::Counter localizations;

  static ValidateObs make() {
    auto& reg = obs::MetricsRegistry::global();
    ValidateObs o;
    o.scenarios = reg.counter("s2s.validate.scenarios");
    o.events = reg.counter("s2s.validate.events");
    o.assessed = reg.counter("s2s.validate.pairs_assessed");
    o.true_positives = reg.counter("s2s.validate.true_positives");
    o.false_positives = reg.counter("s2s.validate.false_positives");
    o.false_negatives = reg.counter("s2s.validate.false_negatives");
    o.localizations = reg.counter("s2s.validate.localizations");
    return o;
  }
};

bool links_share_router(const topology::Link& a, const topology::Link& b) {
  return a.end_a.router == b.end_a.router ||
         a.end_a.router == b.end_b.router ||
         a.end_b.router == b.end_a.router ||
         a.end_b.router == b.end_b.router;
}

bool link_matches(const topology::Topology& topo, LinkId got, LinkId want,
                  int tolerance_hops) {
  if (got == want) return true;
  if (tolerance_hops < 1) return false;
  return links_share_router(topo.links[got], topo.links[want]);
}

void write_kinds(obs::json::Writer& w,
                 const std::map<std::string, KindScore>& kinds) {
  w.begin_object();
  for (const auto& [name, ks] : kinds) {
    w.key(name).begin_object();
    w.key("entries").value(static_cast<std::uint64_t>(ks.entries));
    w.key("detected").value(static_cast<std::uint64_t>(ks.detected));
    w.key("localized").value(static_cast<std::uint64_t>(ks.localized));
    w.key("truth_pairs").value(static_cast<std::uint64_t>(ks.truth_pairs));
    w.key("flagged_pairs").value(
        static_cast<std::uint64_t>(ks.flagged_pairs));
    w.key("entry_recall").value(ks.entry_recall());
    w.key("pair_recall").value(ks.pair_recall());
    w.end_object();
  }
  w.end_object();
}

std::optional<std::map<std::string, KindScore>> parse_kinds(
    const obs::json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  std::map<std::string, KindScore> out;
  for (const auto& [name, item] : v.object) {
    if (!item.is_object()) return std::nullopt;
    KindScore ks;
    const auto* entries = item.find("entries");
    const auto* detected = item.find("detected");
    const auto* localized = item.find("localized");
    const auto* truth = item.find("truth_pairs");
    const auto* flagged = item.find("flagged_pairs");
    if (!entries || !detected || !localized || !truth || !flagged) {
      return std::nullopt;
    }
    ks.entries = static_cast<std::size_t>(entries->as_u64());
    ks.detected = static_cast<std::size_t>(detected->as_u64());
    ks.localized = static_cast<std::size_t>(localized->as_u64());
    ks.truth_pairs = static_cast<std::size_t>(truth->as_u64());
    ks.flagged_pairs = static_cast<std::size_t>(flagged->as_u64());
    out.emplace(name, ks);
  }
  return out;
}

}  // namespace

std::string ValidationStudy::to_json() const {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema_version").value(schema_version);
  w.key("seed").value(seed);
  w.key("full_matrix").value(full_matrix);
  w.key("scenarios").begin_array();
  for (const ScenarioScore& s : scenarios) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("primary_kind").value(s.primary_kind);
    w.key("with_diurnal").value(s.with_diurnal);
    w.key("magnitude_scale").value(s.magnitude_scale);
    w.key("events").value(static_cast<std::uint64_t>(s.events));
    w.key("assessed_pairs").value(
        static_cast<std::uint64_t>(s.assessed_pairs));
    w.key("truth_pairs").value(static_cast<std::uint64_t>(s.truth_pairs));
    w.key("ambiguous_pairs").value(
        static_cast<std::uint64_t>(s.ambiguous_pairs));
    w.key("flagged_pairs").value(
        static_cast<std::uint64_t>(s.flagged_pairs));
    w.key("true_positives").value(
        static_cast<std::uint64_t>(s.true_positives));
    w.key("false_positives").value(
        static_cast<std::uint64_t>(s.false_positives));
    w.key("false_negatives").value(
        static_cast<std::uint64_t>(s.false_negatives));
    w.key("precision").value(s.precision);
    w.key("recall").value(s.recall);
    w.key("fp_rate").value(s.fp_rate);
    w.key("localizations").value(
        static_cast<std::uint64_t>(s.localizations));
    w.key("localizations_correct").value(
        static_cast<std::uint64_t>(s.localizations_correct));
    w.key("localization_accuracy").value(s.localization_accuracy);
    w.key("kinds");
    write_kinds(w, s.kinds);
    w.end_object();
  }
  w.end_array();
  w.key("kinds");
  write_kinds(w, kinds);
  w.key("diurnal_recall").value(diurnal_recall);
  w.key("maintenance_fp_rate").value(maintenance_fp_rate);
  w.end_object();
  return w.str();
}

std::optional<ValidationStudy> ValidationStudy::parse(
    std::string_view json_text) {
  const auto doc = obs::json::parse(json_text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* version = doc->find("schema_version");
  if (!version || !version->is_number() ||
      version->as_i64() != kValidationSchemaVersion) {
    return std::nullopt;
  }
  ValidationStudy out;
  const auto* seed = doc->find("seed");
  const auto* full = doc->find("full_matrix");
  const auto* scenarios = doc->find("scenarios");
  const auto* kinds = doc->find("kinds");
  const auto* diurnal = doc->find("diurnal_recall");
  const auto* trap = doc->find("maintenance_fp_rate");
  if (!seed || !seed->is_number() || !full || !full->is_bool() ||
      !scenarios || !scenarios->is_array() || !kinds || !diurnal ||
      !diurnal->is_number() || !trap || !trap->is_number()) {
    return std::nullopt;
  }
  out.seed = seed->as_u64();
  out.full_matrix = full->boolean;
  out.diurnal_recall = diurnal->number;
  out.maintenance_fp_rate = trap->number;
  auto parsed_kinds = parse_kinds(*kinds);
  if (!parsed_kinds) return std::nullopt;
  out.kinds = std::move(*parsed_kinds);
  for (const auto& item : scenarios->array) {
    if (!item.is_object()) return std::nullopt;
    ScenarioScore s;
    const auto* name = item.find("name");
    const auto* primary = item.find("primary_kind");
    if (!name || !name->is_string() || !primary || !primary->is_string()) {
      return std::nullopt;
    }
    s.name = name->string;
    s.primary_kind = primary->string;
    auto u64 = [&](const char* field, std::size_t& into) {
      const auto* v = item.find(field);
      if (!v || !v->is_number()) return false;
      into = static_cast<std::size_t>(v->as_u64());
      return true;
    };
    auto f64 = [&](const char* field, double& into) {
      const auto* v = item.find(field);
      if (!v || !v->is_number()) return false;
      into = v->number;
      return true;
    };
    const auto* with_diurnal = item.find("with_diurnal");
    if (!with_diurnal || !with_diurnal->is_bool()) return std::nullopt;
    s.with_diurnal = with_diurnal->boolean;
    if (!f64("magnitude_scale", s.magnitude_scale) ||
        !u64("events", s.events) ||
        !u64("assessed_pairs", s.assessed_pairs) ||
        !u64("truth_pairs", s.truth_pairs) ||
        !u64("ambiguous_pairs", s.ambiguous_pairs) ||
        !u64("flagged_pairs", s.flagged_pairs) ||
        !u64("true_positives", s.true_positives) ||
        !u64("false_positives", s.false_positives) ||
        !u64("false_negatives", s.false_negatives) ||
        !f64("precision", s.precision) || !f64("recall", s.recall) ||
        !f64("fp_rate", s.fp_rate) ||
        !u64("localizations", s.localizations) ||
        !u64("localizations_correct", s.localizations_correct) ||
        !f64("localization_accuracy", s.localization_accuracy)) {
      return std::nullopt;
    }
    const auto* scenario_kinds = item.find("kinds");
    if (!scenario_kinds) return std::nullopt;
    auto parsed = parse_kinds(*scenario_kinds);
    if (!parsed) return std::nullopt;
    s.kinds = std::move(*parsed);
    out.scenarios.push_back(std::move(s));
  }
  return out;
}

GateResult check_gates(const ValidationStudy& study,
                       const GateConfig& config) {
  GateResult out;
  char buf[160];
  if (study.diurnal_recall < config.min_diurnal_recall) {
    std::snprintf(buf, sizeof buf,
                  "diurnal recall %.3f below floor %.3f",
                  study.diurnal_recall, config.min_diurnal_recall);
    out.violations.emplace_back(buf);
  }
  if (study.maintenance_fp_rate > config.max_maintenance_fp_rate) {
    std::snprintf(buf, sizeof buf,
                  "maintenance false-positive rate %.3f above ceiling %.3f",
                  study.maintenance_fp_rate,
                  config.max_maintenance_fp_rate);
    out.violations.emplace_back(buf);
  }
  out.pass = out.violations.empty();
  return out;
}

std::vector<ScenarioSpec> make_scenario_matrix(bool full) {
  std::vector<ScenarioSpec> out;
  auto add = [&](std::string name, EventKind primary, bool with_diurnal,
                 double scale, int flash, int cascades, int bloats,
                 int maints) {
    ScenarioSpec spec;
    spec.name = std::move(name);
    spec.primary = primary;
    spec.with_diurnal = with_diurnal;
    spec.events.magnitude_scale = scale;
    spec.events.flash_crowds = flash;
    spec.events.cascades = cascades;
    spec.events.bufferbloats = bloats;
    spec.events.maintenances = maints;
    out.push_back(std::move(spec));
  };
  // Fast subset: one scenario per kind, the diurnal baseline, and the
  // maintenance trap — what the default test lane and the CI gate run.
  add("diurnal_base", EventKind::kDiurnalModel, true, 1.0, 0, 0, 0, 0);
  add("flash_high", EventKind::kFlashCrowd, false, 1.5, 3, 0, 0, 0);
  add("cascade_high", EventKind::kLinkFailureCascade, false, 1.5, 0, 2, 0, 0);
  add("bloat_high", EventKind::kBufferbloat, false, 1.5, 0, 0, 2, 0);
  add("maintenance_trap", EventKind::kMaintenance, false, 1.0, 0, 0, 0, 3);
  add("flash_diurnal", EventKind::kFlashCrowd, true, 1.0, 2, 0, 0, 0);
  if (!full) return out;
  // Full matrix: low-magnitude arms, diurnal overlap per kind, and a
  // mixed kitchen-sink scenario.
  add("flash_low", EventKind::kFlashCrowd, false, 0.7, 3, 0, 0, 0);
  add("cascade_low", EventKind::kLinkFailureCascade, false, 0.7, 0, 2, 0, 0);
  add("bloat_low", EventKind::kBufferbloat, false, 0.7, 0, 0, 2, 0);
  add("cascade_diurnal", EventKind::kLinkFailureCascade, true, 1.0, 0, 2, 0,
      0);
  add("bloat_diurnal", EventKind::kBufferbloat, true, 1.0, 0, 0, 2, 0);
  add("maintenance_diurnal", EventKind::kMaintenance, true, 1.0, 0, 0, 0, 3);
  add("mixed_all", EventKind::kDiurnalModel, true, 1.0, 1, 1, 1, 1);
  return out;
}

ScenarioScore run_scenario(const ScenarioSpec& spec,
                           const HarnessOptions& opt) {
  const ValidateObs vobs = ValidateObs::make();
  ScenarioScore score;
  score.name = spec.name;
  score.primary_kind = std::string(simnet::event_kind_name(spec.primary));
  score.with_diurnal = spec.with_diurnal;
  score.magnitude_scale = spec.events.magnitude_scale;

  // --- deployment -----------------------------------------------------
  // A compact topology so the whole matrix fits in the default test lane;
  // shapes (not absolute counts) are what the scores depend on.
  simnet::NetworkConfig net_cfg;
  net_cfg.topology.seed = opt.seed;
  net_cfg.topology.tier1_count = 4;
  net_cfg.topology.transit_count = 18;
  net_cfg.topology.stub_count = 70;
  net_cfg.topology.server_count = opt.servers;
  // Keep routing churn out of the detector's input: outages add broadband
  // RTT steps that are neither ground truth nor detector error.
  net_cfg.dynamics.mean_outages_per_adjacency = 0.3;
  if (spec.with_diurnal) {
    // Crank the diurnal model so congested links land on probed paths,
    // and make every episode cover the campaign (assessable truth).
    net_cfg.congestion.internal_fraction = 0.10;
    net_cfg.congestion.private_interconnect_fraction = 0.15;
    net_cfg.congestion.public_ixp_fraction = 0.02;
    net_cfg.congestion.permanent_prob = 1.0;
    net_cfg.congestion.bursty_fraction = 0.0;
  } else {
    // Clean background: the event overlay is the only congestion.
    net_cfg.congestion.internal_fraction = 0.0;
    net_cfg.congestion.private_interconnect_fraction = 0.0;
    net_cfg.congestion.public_ixp_fraction = 0.0;
    net_cfg.congestion.bursty_fraction = 0.0;
  }
  simnet::Network net(net_cfg);

  std::vector<ServerId> dual;
  for (ServerId s = 0; s < net.topo().servers.size(); ++s) {
    if (net.topo().servers[s].dual_stack()) dual.push_back(s);
  }
  std::vector<std::pair<ServerId, ServerId>> unordered;
  {
    std::vector<std::pair<ServerId, ServerId>> all;
    for (std::size_t i = 0; i < dual.size(); ++i) {
      for (std::size_t j = i + 1; j < dual.size(); ++j) {
        all.emplace_back(dual[i], dual[j]);
      }
    }
    stats::Rng rng(opt.seed * 7919 + 1);
    const double keep = all.empty()
                            ? 0.0
                            : static_cast<double>(opt.pairs) /
                                  static_cast<double>(all.size());
    for (const auto& p : all) {
      if (rng.uniform() < keep) unordered.push_back(p);
    }
    if (unordered.empty() && !all.empty()) unordered.push_back(all.front());
  }
  std::vector<std::pair<ServerId, ServerId>> ordered(unordered);
  for (const auto& [a, b] : unordered) ordered.emplace_back(b, a);
  std::sort(ordered.begin(), ordered.end());
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  net.prepare(ordered);

  // --- event schedule + ground truth ----------------------------------
  const double start_day = 100.0;
  const auto w0 = static_cast<std::int64_t>(start_day * 86400.0);
  const auto w1 = w0 + static_cast<std::int64_t>(opt.days * 86400.0);

  // Target links probes actually cross, most-crossed first, so events are
  // observable. Midpoint resolution is representative: outages are rare
  // here by config.
  const auto crossed = simnet::links_crossed(
      net, ordered, net::Family::kIPv4, net::SimTime((w0 + w1) / 2));
  std::vector<LinkId> candidates;
  candidates.reserve(crossed.size());
  for (const auto& [link, count] : crossed) candidates.push_back(link);

  EventScheduleConfig ev_cfg = spec.events;
  ev_cfg.start_day = start_day;
  ev_cfg.days = opt.days;
  const simnet::EventSchedule schedule(
      net.topo(), ev_cfg, candidates,
      stats::Rng(opt.seed * 0x9e3779b97f4a7c15ULL ^ fnv64(spec.name)));

  GroundTruthLedger ledger = schedule.ledger();
  simnet::append_congestion_ground_truth(
      ledger, net.congestion(), start_day, opt.days,
      opt.matcher.min_diurnal_amplitude_ms,
      opt.matcher.min_diurnal_active_fraction);
  // Sub-floor diurnal exposure is ambiguous: flagging it is not wrong,
  // missing it is not wrong either — those pairs leave the score.
  GroundTruthLedger gray_ledger;
  simnet::append_congestion_ground_truth(gray_ledger, net.congestion(),
                                         start_day, opt.days,
                                         /*min_amplitude_ms=*/0.0,
                                         /*min_active_fraction=*/0.0);
  simnet::resolve_affected_pairs(ledger, net, ordered);
  simnet::resolve_affected_pairs(gray_ledger, net, ordered);
  score.events = ledger.entries.size();
  vobs.events.inc(ledger.entries.size());

  // --- ping campaign + survey -----------------------------------------
  probe::PingCampaignConfig ping_cfg;
  ping_cfg.start_day = start_day;
  ping_cfg.days = opt.days;
  ping_cfg.seed = opt.seed * 31 + (fnv64(spec.name) | 1);
  // Host downtime is a separate axis; keep it near zero so sample counts
  // (and with them assessability) stay stable across scenarios.
  ping_cfg.downtime.monthly_window_prob = 0.02;
  ping_cfg.events = &schedule;
  probe::PingCampaign pings(net, ping_cfg, unordered);
  PingSeriesStore store(start_day, net::kFifteenMinutes, pings.epochs());
  pings.run([&](const probe::PingRecord& r) { store.add(r); });

  CongestionDetectConfig detect_cfg;
  detect_cfg.min_samples =
      static_cast<std::size_t>(0.88 * static_cast<double>(pings.epochs()));
  const CongestionSurvey survey =
      survey_congestion(store, detect_cfg, opt.pool);

  // --- match verdicts against the ledger ------------------------------
  std::set<PairKey> assessed;
  store.for_each([&](ServerId src, ServerId dst, net::Family family,
                     const PingSeriesStore::Series& series) {
    if (series.valid >= detect_cfg.min_samples) {
      assessed.insert({src, dst, family});
    }
  });

  auto scoreable = [&](const GroundTruthEntry& e) {
    return e.inflates_rtt &&
           overlap_s(e, w0, w1) >=
               static_cast<std::int64_t>(opt.matcher.min_overlap_s);
  };
  std::set<PairKey> truth;
  for (const GroundTruthEntry& e : ledger.entries) {
    if (!scoreable(e)) continue;
    for (const PairKey& p : e.affected) {
      if (assessed.count(p) > 0) truth.insert(p);
    }
  }
  std::set<PairKey> gray;
  for (const GroundTruthEntry& e : gray_ledger.entries) {
    if (!e.inflates_rtt) continue;
    for (const PairKey& p : e.affected) {
      if (assessed.count(p) > 0 && truth.count(p) == 0) gray.insert(p);
    }
  }
  std::set<PairKey> flagged;
  for (const FlaggedPair& f : survey.flagged) {
    flagged.insert({f.src, f.dst, f.family});
  }

  score.assessed_pairs = assessed.size();
  score.truth_pairs = truth.size();
  score.ambiguous_pairs = gray.size();
  score.flagged_pairs = flagged.size();
  for (const PairKey& p : flagged) {
    if (truth.count(p) > 0) {
      ++score.true_positives;
    } else if (gray.count(p) == 0) {
      ++score.false_positives;
    }
  }
  for (const PairKey& p : truth) {
    if (flagged.count(p) == 0) ++score.false_negatives;
  }
  const std::size_t positives =
      score.true_positives + score.false_positives;
  score.precision =
      positives == 0 ? 1.0
                     : static_cast<double>(score.true_positives) /
                           static_cast<double>(positives);
  const std::size_t truth_seen =
      score.true_positives + score.false_negatives;
  score.recall = truth_seen == 0
                     ? 1.0
                     : static_cast<double>(score.true_positives) /
                           static_cast<double>(truth_seen);
  const std::size_t clean =
      score.assessed_pairs - score.truth_pairs - score.ambiguous_pairs;
  score.fp_rate = clean == 0
                      ? 0.0
                      : static_cast<double>(score.false_positives) /
                            static_cast<double>(clean);
  vobs.assessed.inc(score.assessed_pairs);
  vobs.true_positives.inc(score.true_positives);
  vobs.false_positives.inc(score.false_positives);
  vobs.false_negatives.inc(score.false_negatives);

  // Per-kind tallies over scoreable entries.
  for (const GroundTruthEntry& e : ledger.entries) {
    if (!scoreable(e)) continue;
    std::size_t pairs = 0, hits = 0;
    for (const PairKey& p : e.affected) {
      if (assessed.count(p) == 0) continue;
      ++pairs;
      if (flagged.count(p) > 0) ++hits;
    }
    if (pairs == 0) continue;  // invisible to the campaign
    KindScore& ks = score.kinds[std::string(simnet::event_kind_name(e.kind))];
    ++ks.entries;
    ks.truth_pairs += pairs;
    ks.flagged_pairs += hits;
    if (hits > 0) ++ks.detected;
  }

  // --- follow-up traceroutes + localization ---------------------------
  if (!flagged.empty()) {
    std::vector<std::pair<ServerId, ServerId>> followup_pairs;
    for (const PairKey& p : flagged) {
      followup_pairs.emplace_back(p.src, p.dst);
    }
    std::sort(followup_pairs.begin(), followup_pairs.end());
    followup_pairs.erase(
        std::unique(followup_pairs.begin(), followup_pairs.end()),
        followup_pairs.end());

    // Concurrent with the ping week, so transient events are still live
    // when the follow-up looks for them.
    probe::TracerouteCampaignConfig follow_cfg;
    follow_cfg.start_day = start_day;
    follow_cfg.days = opt.days;
    follow_cfg.interval_s = net::kThirtyMinutes;
    follow_cfg.paris_switch_day = 0.0;
    follow_cfg.seed = opt.seed * 31 + (fnv64(spec.name) | 1) + 37;
    follow_cfg.downtime.monthly_window_prob = 0.02;
    follow_cfg.traceroute.stop_early_prob = 0.1;
    follow_cfg.events = &schedule;
    probe::TracerouteCampaign followup(net, follow_cfg, followup_pairs);
    SegmentSeriesStore segments(start_day, net::kThirtyMinutes,
                                followup.epochs());
    followup.run([&](const probe::TracerouteRecord& r) { segments.add(r); });

    LocalizeConfig loc_cfg;
    loc_cfg.min_traces = static_cast<std::size_t>(
        0.3 * static_cast<double>(followup.epochs()));
    const LocalizeResult localization =
        localize_congestion(segments, net.rib(), loc_cfg, opt.pool);

    // Interface address -> link index for matching localized hop pairs
    // back to ground-truth links.
    std::map<net::IPAddr, LinkId> addr_to_link;
    for (LinkId id = 0; id < net.topo().links.size(); ++id) {
      const auto& link = net.topo().links[id];
      addr_to_link.emplace(link.end_a.addr4, id);
      addr_to_link.emplace(link.end_b.addr4, id);
      if (link.end_a.addr6) addr_to_link.emplace(*link.end_a.addr6, id);
      if (link.end_b.addr6) addr_to_link.emplace(*link.end_b.addr6, id);
    }
    std::set<std::size_t> localized_entries;
    for (const CongestedSegmentObs& obs : localization.segments) {
      ++score.localizations;
      std::optional<LinkId> got;
      if (obs.far_addr) {
        if (const auto it = addr_to_link.find(*obs.far_addr);
            it != addr_to_link.end()) {
          got = it->second;
        }
      }
      if (!got && obs.near_addr) {
        if (const auto it = addr_to_link.find(*obs.near_addr);
            it != addr_to_link.end()) {
          got = it->second;
        }
      }
      if (!got) continue;
      const PairKey pair{obs.src, obs.dst, obs.family};
      bool correct = false;
      for (std::size_t i = 0; i < ledger.entries.size(); ++i) {
        const GroundTruthEntry& e = ledger.entries[i];
        if (!scoreable(e)) continue;
        if (std::find(e.affected.begin(), e.affected.end(), pair) ==
            e.affected.end()) {
          continue;
        }
        if (link_matches(net.topo(), *got, e.link,
                         opt.matcher.link_tolerance_hops)) {
          correct = true;
          localized_entries.insert(i);
        }
      }
      if (correct) ++score.localizations_correct;
    }
    for (const std::size_t i : localized_entries) {
      ++score.kinds[std::string(
                        simnet::event_kind_name(ledger.entries[i].kind))]
            .localized;
    }
  }
  score.localization_accuracy =
      score.localizations == 0
          ? 1.0
          : static_cast<double>(score.localizations_correct) /
                static_cast<double>(score.localizations);
  vobs.localizations.inc(score.localizations);
  vobs.scenarios.inc();
  obs::logf(obs::LogLevel::kInfo,
            "validate %s: truth %zu flagged %zu tp %zu fp %zu fn %zu "
            "loc %zu/%zu",
            score.name.c_str(), score.truth_pairs, score.flagged_pairs,
            score.true_positives, score.false_positives,
            score.false_negatives, score.localizations_correct,
            score.localizations);
  return score;
}

ValidationStudy run_matrix(std::span<const ScenarioSpec> specs,
                           const HarnessOptions& opt) {
  ValidationStudy study;
  study.seed = opt.seed;
  for (const ScenarioSpec& spec : specs) {
    study.scenarios.push_back(run_scenario(spec, opt));
  }
  for (const ScenarioScore& s : study.scenarios) {
    for (const auto& [name, ks] : s.kinds) {
      KindScore& agg = study.kinds[name];
      agg.entries += ks.entries;
      agg.detected += ks.detected;
      agg.localized += ks.localized;
      agg.truth_pairs += ks.truth_pairs;
      agg.flagged_pairs += ks.flagged_pairs;
    }
    if (s.primary_kind ==
            simnet::event_kind_name(EventKind::kMaintenance) &&
        !s.with_diurnal) {
      study.maintenance_fp_rate =
          std::max(study.maintenance_fp_rate, s.fp_rate);
    }
  }
  const auto diurnal = study.kinds.find(
      std::string(simnet::event_kind_name(EventKind::kDiurnalModel)));
  study.diurnal_recall =
      diurnal == study.kinds.end() ? 1.0 : diurnal->second.pair_recall();
  return study;
}

}  // namespace s2s::core
