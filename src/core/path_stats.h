// Per-timeline AS-path bucket statistics (paper Section 4.2).
//
// Every timeline's RTT samples are grouped by the AS path that produced
// them; each bucket gets a lifetime (observation count x sampling
// interval), a prevalence (fraction of observations), and RTT percentiles.
// The "best" path of a timeline is the bucket minimizing the chosen
// criterion (10th percentile baseline, 90th percentile, or standard
// deviation — the paper's main text uses the first two and mentions the
// third as a robustness check).
#pragma once

#include <cstdint>
#include <vector>

#include "core/timeline.h"

namespace s2s::core {

enum class BestPathCriterion : std::uint8_t { kP10, kP90, kStddev };

struct PathBucket {
  std::uint32_t path_id = 0;     ///< global (interner) id
  std::size_t count = 0;         ///< observations on this path
  double lifetime_hours = 0.0;   ///< count x sampling interval
  double prevalence = 0.0;       ///< count / timeline observations
  double p10 = 0.0;              ///< baseline RTT (ms)
  double p90 = 0.0;              ///< spike-inclusive RTT (ms)
  double stddev = 0.0;
};

struct TimelineAnalysis {
  std::vector<PathBucket> buckets;   ///< one per unique AS path
  std::size_t observations = 0;
  std::size_t changes = 0;           ///< time-consecutive path switches

  /// Index of the best bucket under the criterion (0 if empty).
  std::size_t best(BestPathCriterion criterion) const;
  /// Bucket with the longest lifetime (the paper's "popular" path).
  std::size_t most_prevalent() const;
};

/// Computes the buckets of one timeline. `interval_hours` is the campaign
/// sampling interval (3 h long-term, 0.5 h short-term).
TimelineAnalysis analyze_timeline(const TraceTimeline& timeline,
                                  double interval_hours);

}  // namespace s2s::core
