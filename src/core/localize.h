// Congested-segment localization (paper Section 5.2).
//
// For every flagged pair with a static IP-level path (and, optionally, a
// symmetric AS-level path), we re-verify the diurnal signal on the
// end-to-end series, then walk the segments front to back and mark the
// first whose RTT series correlates with the end-to-end series at
// Pearson rho >= 0.5. The congested IP-IP link is the hop pair
// (addr[k-1], addr[k]) at that segment boundary.
#pragma once

#include <optional>
#include <vector>

#include "bgp/rib.h"
#include "core/segment_series.h"
#include "exec/pool.h"
#include "stats/pearson.h"

namespace s2s::core {

struct LocalizeConfig {
  double rho_threshold = stats::kPearsonThreshold;  // 0.5
  double diurnal_ratio_threshold = 0.3;
  /// Exclude pairs whose forward/reverse AS-level paths differ.
  bool require_symmetric_as_paths = true;
  std::size_t min_traces = 100;
  /// A segment row must cover at least this fraction of epochs.
  double min_row_coverage = 0.5;
};

struct CongestedSegmentObs {
  topology::ServerId src = topology::kInvalidId;
  topology::ServerId dst = topology::kInvalidId;
  net::Family family = net::Family::kIPv4;
  std::size_t segment_index = 0;
  /// The congested link's near/far addresses; near is empty when the
  /// congestion localizes to the first hop (inside the source site).
  std::optional<net::IPAddr> near_addr;
  std::optional<net::IPAddr> far_addr;
  double rho = 0.0;
  double diurnal_ratio = 0.0;
  /// Busy-vs-idle overhead estimate from the end-to-end series (p90-p10).
  double overhead_ms = 0.0;
};

struct LocalizeResult {
  std::vector<CongestedSegmentObs> segments;
  std::size_t pairs_considered = 0;
  std::size_t pairs_static = 0;
  std::size_t pairs_symmetric = 0;
  std::size_t pairs_persistent = 0;  ///< diurnal signal still present
  std::size_t pairs_localized = 0;
};

/// Infers the AS-level sequence of a hop-address list (collapse duplicate
/// ASNs, unknowns collapse to a single gap token).
net::AsPath as_sequence_of_hops(
    const std::vector<std::optional<net::IPAddr>>& hops, const bgp::Rib& rib);

/// Localizes over every pair in the store. With a pool, pairs run in
/// kAnalysisShards fixed shards merged in shard order, so the result is
/// byte-identical at any thread count (DESIGN.md section 9); pool ==
/// nullptr runs the shards inline. Workers read the whole store (the
/// reverse-direction lookup crosses shards), which is safe: the store is
/// const throughout.
LocalizeResult localize_congestion(const SegmentSeriesStore& store,
                                   const bgp::Rib& rib,
                                   const LocalizeConfig& config = {},
                                   exec::ThreadPool* pool = nullptr);

}  // namespace s2s::core
