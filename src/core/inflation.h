// RTT inflation over the speed-of-light bound (paper Section 6,
// Figure 10b).
//
// inflation = median observed RTT / cRTT, where cRTT is the round-trip
// time of light in free space over the great-circle distance between the
// (ground-truth) server locations. Reported for all pairs, US-US pairs,
// and pairs on the paper's transcontinental country list (US<->DE, AU,
// IN, JP).
#pragma once

#include <vector>

#include "core/timeline.h"
#include "topology/topology.h"

namespace s2s::core {

struct InflationStudy {
  struct Group {
    std::vector<double> v4;  ///< per pair
    std::vector<double> v6;
    std::vector<double>& of(net::Family f) {
      return f == net::Family::kIPv4 ? v4 : v6;
    }
  };
  Group all;
  Group us_us;
  Group transcontinental;
  std::size_t skipped_short = 0;  ///< pairs closer than the cRTT floor
};

struct InflationConfig {
  /// Pairs with cRTT below this are skipped (same-metro pairs divide by
  /// almost zero).
  double min_crtt_ms = 2.0;
  std::size_t min_observations = 50;
};

InflationStudy run_inflation_study(const TimelineStore& store,
                                   const topology::Topology& topo,
                                   const InflationConfig& config = {});

}  // namespace s2s::core
