// Data-quality accounting shared by every analysis stage.
//
// The paper's pipeline survived 16 months of real-world dirt: maintenance
// gaps, ~25% incomplete traceroutes, false loops and truncated logs
// (Sections 2 and 4.1). The analysis stores therefore never assume a
// clean, in-order, deduplicated record stream; instead each one validates
// records on arrival and accounts for everything it drops, reorders or
// flags, so an analysis can report "insufficient data" rather than
// silently corrupt its statistics. The counters here are the common
// currency of that accounting: every streaming store owns a
// DataQualityReport, and stage-level surveys merge them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "probe/records.h"

namespace s2s::core {

/// Per-fault-class counters; one per store/stage, merged for reporting.
struct DataQualityReport {
  std::size_t invalid_rtt = 0;     ///< NaN/negative/absurd RTT, dropped
  std::size_t duplicates_dropped = 0;  ///< exact re-delivery, dropped
  std::size_t reordered = 0;       ///< accepted behind a later epoch
  std::size_t out_of_grid = 0;     ///< timestamp off the campaign grid
  std::size_t insufficient_epochs = 0;  ///< missing epochs in dropped series
  std::size_t insufficient_series = 0;  ///< pairs below the min-sample bar
  std::size_t interpolated_samples = 0;  ///< gap-filled slots in assessed series
  /// Binary-ingest (.s2sb) blocks skipped for CRC/structure damage. Block
  /// granularity, not records: the text-format analog is malformed lines.
  std::size_t corrupt_blocks = 0;

  /// Records affected by any fault class (insufficient series excluded:
  /// those are series-level, not record-level).
  std::size_t records_affected() const noexcept {
    return invalid_rtt + duplicates_dropped + reordered + out_of_grid;
  }

  DataQualityReport& merge(const DataQualityReport& o) noexcept {
    invalid_rtt += o.invalid_rtt;
    duplicates_dropped += o.duplicates_dropped;
    reordered += o.reordered;
    out_of_grid += o.out_of_grid;
    insufficient_epochs += o.insufficient_epochs;
    insufficient_series += o.insufficient_series;
    interpolated_samples += o.interpolated_samples;
    corrupt_blocks += o.corrupt_blocks;
    return *this;
  }

  std::string to_string() const;

  /// Name -> count form for RunReport::data_quality merging.
  std::map<std::string, std::size_t> as_map() const;
};

/// Live obs mirrors of a streaming store's ingest path: the same events
/// the DataQualityReport tallies, delegated to MetricsRegistry counters
/// as they happen (plus an accepted-record counter and RTT histogram),
/// so a mid-run snapshot sees store health without touching the store.
/// Metric names follow "s2s.<subsystem>.<event>".
struct IngestObs {
  obs::Counter records;            ///< accepted into the store
  obs::Counter drop_invalid_rtt;
  obs::Counter drop_duplicates;
  obs::Counter drop_out_of_grid;
  obs::Counter reordered;          ///< accepted, but behind the watermark
  obs::Histogram rtt_ms;           ///< accepted end-to-end RTTs

  /// Resolves handles "s2s.<subsystem>.*" in the global registry.
  static IngestObs make(std::string_view subsystem);
};

/// True iff every RTT in the record is finite, non-negative and below
/// probe::kMaxPlausibleRttMs, and the timestamp is in range.
bool valid_record(const probe::TracerouteRecord& r);
bool valid_record(const probe::PingRecord& r);

/// Content fingerprint for duplicate detection (FNV-1a over every field
/// that distinguishes one measurement from another).
std::uint64_t fingerprint(const probe::TracerouteRecord& r);
std::uint64_t fingerprint(const probe::PingRecord& r);

/// Sliding window of recently seen record fingerprints. Re-delivered
/// records in long campaign streams arrive close to the original (dup
/// ACK-style retransmissions, log replays), so a bounded window catches
/// them in O(1) without retaining the whole stream.
class DedupWindow {
 public:
  explicit DedupWindow(std::size_t capacity = 4096)
      : ring_(capacity, 0), capacity_(capacity) {}

  /// True iff `fp` was seen within the window; otherwise records it.
  bool seen_or_insert(std::uint64_t fp) {
    if (set_.contains(fp)) return true;
    if (size_ == capacity_) {
      set_.erase(ring_[head_]);
    } else {
      ++size_;
    }
    ring_[head_] = fp;
    set_.insert(fp);
    head_ = (head_ + 1) % capacity_;
    return false;
  }

 private:
  std::vector<std::uint64_t> ring_;
  std::unordered_set<std::uint64_t> set_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace s2s::core
