#include "core/segment_series.h"

#include <algorithm>
#include <cmath>

namespace s2s::core {

namespace {

std::uint16_t to_tenths(double ms) {
  return static_cast<std::uint16_t>(
      std::min(6553.0, std::max(0.0, ms)) * 10.0);
}

}  // namespace

void SegmentSeriesStore::add(const probe::TracerouteRecord& record) {
  if (dedup_.seen_or_insert(fingerprint(record))) {
    ++quality_.duplicates_dropped;
    obs_.drop_duplicates.inc();
    return;
  }
  const std::int64_t epoch =
      net::grid_epoch(record.time, start_day_, interval_s_);
  if (epoch < 0 || static_cast<std::size_t>(epoch) >= epochs_) {
    ++quality_.out_of_grid;
    obs_.drop_out_of_grid.inc();
    return;
  }
  if (epoch < last_epoch_seen_) {
    ++quality_.reordered;
    obs_.reordered.inc();
  }
  last_epoch_seen_ = std::max(last_epoch_seen_, epoch);
  if (!valid_record(record)) {
    ++quality_.invalid_rtt;
    obs_.drop_invalid_rtt.inc();
    return;
  }
  if (!record.complete || record.hops.empty()) return;
  obs_.records.inc();
  obs_.rtt_ms.record(record.end_to_end_rtt_ms());
  const auto e = static_cast<std::size_t>(epoch);

  PairSeries& series = series_[key(record.src, record.dst, record.family)];
  // The final hop is the destination; segments cover the router hops.
  const std::size_t hops = record.hops.size() - 1;
  if (series.traces == 0) {
    series.src_addr = record.src_addr;
    series.dst_addr = record.dst_addr;
    series.hop_addrs.resize(hops);
    series.hop_rtt.assign(hops, std::vector<std::uint16_t>(epochs_, kMissing));
    series.end_rtt.assign(epochs_, kMissing);
  } else if (series.hop_addrs.size() != hops) {
    series.ip_static = false;
  }
  ++series.traces;
  if (!series.ip_static) return;

  for (std::size_t i = 0; i < hops; ++i) {
    const auto& hop = record.hops[i];
    if (!hop.addr) continue;  // unresponsive: wildcard, no disagreement
    if (!series.hop_addrs[i]) {
      series.hop_addrs[i] = hop.addr;
    } else if (*series.hop_addrs[i] != *hop.addr) {
      series.ip_static = false;
      return;
    }
    series.hop_rtt[i][e] = to_tenths(hop.rtt_ms);
  }
  series.end_rtt[e] = to_tenths(record.hops.back().rtt_ms);
}

const SegmentSeriesStore::PairSeries* SegmentSeriesStore::find(
    topology::ServerId src, topology::ServerId dst, net::Family family) const {
  const auto it = series_.find(key(src, dst, family));
  return it == series_.end() ? nullptr : &it->second;
}

void SegmentSeriesStore::for_each(
    const std::function<void(topology::ServerId, topology::ServerId,
                             net::Family, const PairSeries&)>& fn) const {
  for (const auto& [k, series] : series_) {
    fn(static_cast<topology::ServerId>(k >> 24),
       static_cast<topology::ServerId>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? net::Family::kIPv6 : net::Family::kIPv4, series);
  }
}

void SegmentSeriesStore::for_each_shard(
    std::size_t shard, std::size_t n_shards,
    const std::function<void(topology::ServerId, topology::ServerId,
                             net::Family, const PairSeries&)>& fn) const {
  std::vector<std::pair<std::uint64_t, const PairSeries*>> keys;
  for (const auto& [k, series] : series_) {
    if (k % n_shards == shard) keys.emplace_back(k, &series);
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [k, series] : keys) {
    fn(static_cast<topology::ServerId>(k >> 24),
       static_cast<topology::ServerId>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? net::Family::kIPv6 : net::Family::kIPv4, *series);
  }
}

std::vector<double> SegmentSeriesStore::row_ms_interpolated(
    const std::vector<std::uint16_t>& row) {
  std::vector<double> out;
  std::size_t valid = 0;
  for (auto v : row) valid += v != kMissing;
  if (valid == 0) return out;
  out.resize(row.size());
  std::ptrdiff_t prev = -1;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == kMissing) continue;
    out[i] = row[i] / 10.0;
    const double left =
        prev >= 0 ? out[static_cast<std::size_t>(prev)] : out[i];
    for (std::ptrdiff_t j = prev + 1; j < static_cast<std::ptrdiff_t>(i);
         ++j) {
      const double frac =
          prev < 0 ? 1.0
                   : static_cast<double>(j - prev) /
                         static_cast<double>(static_cast<std::ptrdiff_t>(i) -
                                             prev);
      out[static_cast<std::size_t>(j)] = left + frac * (out[i] - left);
    }
    prev = static_cast<std::ptrdiff_t>(i);
  }
  for (std::size_t i = static_cast<std::size_t>(prev) + 1; i < row.size();
       ++i) {
    out[i] = out[static_cast<std::size_t>(prev)];
  }
  return out;
}

}  // namespace s2s::core
