// AS-path inference from traceroute (paper Sections 2.1 and 4.1).
//
// Each hop IP is mapped to the origin AS of the longest matching announced
// prefix (bgp::Rib). Unresponsive hops and unmapped addresses become gaps;
// a gap is imputed at AS level when the hops on both sides map to the same
// ASN (the paper's imputation rule). Consecutive duplicate ASNs collapse,
// yielding the AS-level path. Traceroutes whose collapsed path visits the
// same AS twice (an AS loop, a classic-traceroute artifact) are flagged so
// the analyses can exclude them, as the paper does.
#pragma once

#include "bgp/rib.h"
#include "net/asn.h"
#include "probe/records.h"

namespace s2s::core {

/// Data-quality class of one traceroute (paper Table 1). Priority order:
/// an unresponsive hop wins over an unmapped address.
enum class TraceQuality : std::uint8_t {
  kCompleteAsLevel,  ///< every hop responsive and mapped
  kMissingAsLevel,   ///< some hop's address has no IP-to-ASN mapping
  kMissingIpLevel,   ///< some hop did not respond
};

struct InferredPath {
  net::AsPath as_path;  ///< collapsed path; kUnknownAsn marks residual gaps
  TraceQuality quality = TraceQuality::kCompleteAsLevel;
  bool has_as_loop = false;  ///< a known ASN repeats non-consecutively
  bool imputed = false;      ///< at least one gap was filled by imputation
};

class AsPathInferrer {
 public:
  explicit AsPathInferrer(const bgp::Rib& rib) : rib_(rib) {}

  /// Infers the AS path of a (complete or partial) traceroute. `src_asn`
  /// is the probing server's own AS (the operator knows it), used to
  /// anchor the first hop.
  InferredPath infer(const probe::TracerouteRecord& record,
                     net::Asn src_asn) const;

 private:
  const bgp::Rib& rib_;
};

}  // namespace s2s::core
