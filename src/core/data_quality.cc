#include "core/data_quality.h"

#include <bit>
#include <cmath>

namespace s2s::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

bool valid_rtt(double ms) {
  return std::isfinite(ms) && ms >= 0.0 && ms <= probe::kMaxPlausibleRttMs;
}

bool valid_time(net::SimTime t) {
  return t.seconds() >= 0 && t.seconds() <= probe::kMaxTimestampS;
}

}  // namespace

IngestObs IngestObs::make(std::string_view subsystem) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "s2s." + std::string(subsystem) + ".";
  IngestObs o;
  o.records = reg.counter(prefix + "records");
  o.drop_invalid_rtt = reg.counter(prefix + "drop_invalid_rtt");
  o.drop_duplicates = reg.counter(prefix + "drop_duplicates");
  o.drop_out_of_grid = reg.counter(prefix + "drop_out_of_grid");
  o.reordered = reg.counter(prefix + "reordered");
  o.rtt_ms = reg.histogram(prefix + "rtt_ms",
                           obs::MetricsRegistry::rtt_ms_bounds());
  return o;
}

std::map<std::string, std::size_t> DataQualityReport::as_map() const {
  return {{"invalid_rtt", invalid_rtt},
          {"duplicates_dropped", duplicates_dropped},
          {"reordered", reordered},
          {"out_of_grid", out_of_grid},
          {"insufficient_epochs", insufficient_epochs},
          {"insufficient_series", insufficient_series},
          {"interpolated_samples", interpolated_samples},
          {"corrupt_blocks", corrupt_blocks}};
}

std::string DataQualityReport::to_string() const {
  std::string out = "invalid_rtt=" + std::to_string(invalid_rtt);
  out += " duplicates_dropped=" + std::to_string(duplicates_dropped);
  out += " reordered=" + std::to_string(reordered);
  out += " out_of_grid=" + std::to_string(out_of_grid);
  out += " insufficient_epochs=" + std::to_string(insufficient_epochs);
  out += " insufficient_series=" + std::to_string(insufficient_series);
  out += " interpolated_samples=" + std::to_string(interpolated_samples);
  out += " corrupt_blocks=" + std::to_string(corrupt_blocks);
  return out;
}

bool valid_record(const probe::TracerouteRecord& r) {
  if (!valid_time(r.time)) return false;
  for (const auto& hop : r.hops) {
    if (!valid_rtt(hop.rtt_ms)) return false;
  }
  return true;
}

bool valid_record(const probe::PingRecord& r) {
  return valid_time(r.time) && valid_rtt(r.rtt_ms);
}

std::uint64_t fingerprint(const probe::TracerouteRecord& r) {
  std::uint64_t h = kFnvOffset;
  mix(h, 'T');
  mix(h, r.src);
  mix(h, r.dst);
  mix(h, static_cast<std::uint64_t>(r.family));
  mix(h, static_cast<std::uint64_t>(r.time.seconds()));
  mix(h, static_cast<std::uint64_t>(r.method));
  mix(h, r.complete ? 1 : 0);
  mix(h, r.hops.size());
  for (const auto& hop : r.hops) {
    if (hop.addr) {
      mix(h, std::hash<net::IPAddr>{}(*hop.addr));
    } else {
      mix(h, 0x2a);
    }
    mix_double(h, hop.rtt_ms);
  }
  return h;
}

std::uint64_t fingerprint(const probe::PingRecord& r) {
  std::uint64_t h = kFnvOffset;
  mix(h, 'P');
  mix(h, r.src);
  mix(h, r.dst);
  mix(h, static_cast<std::uint64_t>(r.family));
  mix(h, static_cast<std::uint64_t>(r.time.seconds()));
  mix(h, r.success ? 1 : 0);
  mix_double(h, r.rtt_ms);
  return h;
}

}  // namespace s2s::core
