// Routing-change detection via AS-path edit distance (paper Section 4.1).
//
// AS paths are treated as token strings (one token per AS hop) and
// compared with Levenshtein distance; any nonzero distance between
// time-consecutive observations of a timeline is a routing change,
// stamped at the later observation's epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/timeline.h"
#include "net/asn.h"

namespace s2s::core {

/// Levenshtein distance over ASN tokens (insert/delete/substitute = 1).
int edit_distance(const net::AsPath& a, const net::AsPath& b);

struct ChangeEvent {
  std::uint16_t epoch = 0;       ///< epoch of the *new* path
  std::uint32_t from_path = 0;   ///< global path id before the change
  std::uint32_t to_path = 0;     ///< global path id after
  int distance = 0;              ///< edit distance between the two
};

/// All change events of a timeline, in time order.
std::vector<ChangeEvent> detect_changes(const TraceTimeline& timeline,
                                        const PathInterner& interner);

/// Just the count (no allocation); equals detect_changes().size().
std::size_t count_changes(const TraceTimeline& timeline);

}  // namespace s2s::core
