// Consistent-congestion detection (paper Section 5.1).
//
// A server pair is flagged when (a) its RTT variation (95th minus 5th
// percentile) exceeds 10 ms and (b) the fraction of signal power at the
// 1/day frequency is at least 0.3 (the paper's empirically chosen
// threshold, footnote 2).
#pragma once

#include <span>
#include <vector>

#include "core/ping_series.h"
#include "exec/pool.h"
#include "stats/fft.h"

namespace s2s::core {

struct CongestionDetectConfig {
  double variation_threshold_ms = 10.0;
  double diurnal_ratio_threshold = stats::kDiurnalRatioThreshold;  // 0.3
  /// Minimum valid samples per series (paper: >= 600 of 672).
  std::size_t min_samples = 600;
};

struct SeriesVerdict {
  std::size_t samples = 0;          ///< samples offered
  std::size_t invalid_samples = 0;  ///< non-finite inputs, ignored
  /// Raw-grid slots that were missing and gap-filled before assessment.
  /// assess_series() sees only the interpolated series, so the survey
  /// fills this in from the raw store — the spectral estimate's verdict
  /// always says how much of its input was manufactured.
  std::size_t missing_samples = 0;
  /// Too few usable samples to judge; all flags stay false. An explicit
  /// "insufficient data" verdict, never a NaN statistic.
  bool insufficient = false;
  double variation_ms = 0.0;   ///< p95 - p5
  double diurnal_ratio = 0.0;  ///< PSD fraction at 1/day
  bool high_variation = false;
  bool strong_diurnal = false;

  bool consistent_congestion() const {
    return high_variation && strong_diurnal;
  }
};

/// Assesses one (gap-free) RTT series in ms. Non-finite samples are
/// filtered out (and counted) instead of poisoning the percentiles and
/// the spectral estimate.
SeriesVerdict assess_series(std::span<const double> rtt_ms,
                            double samples_per_day,
                            const CongestionDetectConfig& config = {});

/// A flagged pair from the survey.
struct FlaggedPair {
  topology::ServerId src;
  topology::ServerId dst;
  net::Family family;
  SeriesVerdict verdict;
};

/// Section 5.1 aggregates over a full ping campaign.
struct CongestionSurvey {
  struct PerFamily {
    std::size_t pairs_total = 0;       ///< series in the store
    std::size_t pairs_assessed = 0;    ///< enough samples
    std::size_t high_variation = 0;    ///< variation > 10 ms
    std::size_t consistent = 0;        ///< variation + strong diurnal
  };
  PerFamily v4, v6;
  std::vector<FlaggedPair> flagged;  ///< the pairs with consistent congestion
  /// Store-level counters plus the survey's own accounting: pairs skipped
  /// for lack of samples (insufficient_series, with their missing epochs
  /// in insufficient_epochs) and the gap-filled slots behind every
  /// assessed verdict (interpolated_samples) — a survey result always
  /// says how much data it was NOT based on.
  DataQualityReport quality;

  PerFamily& of(net::Family f) {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
  const PerFamily& of(net::Family f) const {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
};

/// Surveys every pair in the store. With a pool, pairs are processed in
/// kAnalysisShards fixed shards whose partial aggregates merge in shard
/// order, so the result is byte-identical at any thread count (DESIGN.md
/// section 9); pool == nullptr runs the shards inline.
CongestionSurvey survey_congestion(const PingSeriesStore& store,
                                   const CongestionDetectConfig& config = {},
                                   exec::ThreadPool* pool = nullptr);

}  // namespace s2s::core
