// Fixed-grid RTT series from ping campaigns (paper Section 5.1).
//
// One uint16 slot per epoch per (src, dst, family); missing samples are
// kMissing and can be interpolated before spectral analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/data_quality.h"
#include "net/timebase.h"
#include "probe/records.h"

namespace s2s::core {

class PingSeriesStore {
 public:
  static constexpr std::uint16_t kMissing = 0xFFFF;

  PingSeriesStore(double start_day, std::int64_t interval_s,
                  std::size_t epochs)
      : start_day_(start_day), interval_s_(interval_s), epochs_(epochs) {}

  /// Grow-copy: a deep copy re-gridded to `new_epochs` slots (clamped to
  /// at least other's grid); the added slots start missing. Live delta
  /// pickup builds the next snapshot's store from the current one
  /// without replaying the sealed prefix (DESIGN.md section 16).
  PingSeriesStore(const PingSeriesStore& other, std::size_t new_epochs);

  /// Streaming sink for PingCampaign. Slots are first-write-wins:
  /// duplicates and invalid samples are dropped and tallied in quality();
  /// late arrivals land in their correct slot regardless of order.
  void add(const probe::PingRecord& record);

  struct Series {
    std::vector<std::uint16_t> rtt_tenths;  ///< size = epochs; kMissing gaps
    std::size_t valid = 0;                  ///< populated slots
  };

  const Series* find(topology::ServerId src, topology::ServerId dst,
                     net::Family family) const;

  void for_each(const std::function<void(topology::ServerId,
                                         topology::ServerId, net::Family,
                                         const Series&)>& fn) const;

  /// Visits the pairs whose key falls in `shard` (key % n_shards), in
  /// ascending key order. Shards partition the store: over all shards of
  /// one n_shards every pair is visited exactly once, and the visit order
  /// within a shard is independent of hash-map layout — the store half of
  /// the deterministic-merge contract (DESIGN.md section 9). Read-only, so
  /// distinct shards may run on distinct threads concurrently.
  void for_each_shard(std::size_t shard, std::size_t n_shards,
                      const std::function<void(topology::ServerId,
                                               topology::ServerId, net::Family,
                                               const Series&)>& fn) const;

  std::size_t pair_count() const noexcept { return series_.size(); }
  std::size_t epochs() const noexcept { return epochs_; }
  const DataQualityReport& quality() const noexcept { return quality_; }
  double samples_per_day() const {
    return 86400.0 / static_cast<double>(interval_s_);
  }

  /// Gap-filled copy in ms (linear interpolation; edge gaps copy the
  /// nearest valid sample). Empty when the series has no valid samples.
  static std::vector<double> to_ms_interpolated(const Series& series);

 private:
  static std::uint64_t key(topology::ServerId src, topology::ServerId dst,
                           net::Family family) {
    return (std::uint64_t{src} << 24) | (std::uint64_t{dst} << 4) |
           (family == net::Family::kIPv6 ? 1u : 0u);
  }

  double start_day_;
  std::int64_t interval_s_;
  std::size_t epochs_;
  IngestObs obs_ = IngestObs::make("ping_store");
  DataQualityReport quality_;
  DedupWindow dedup_;
  std::int64_t last_epoch_seen_ = -1;
  std::unordered_map<std::uint64_t, Series> series_;
};

}  // namespace s2s::core
