#include "core/link_classify.h"

namespace s2s::core {

IxpDirectory IxpDirectory::from_topology(const topology::Topology& topo,
                                         std::uint32_t min_ixp_asn) {
  IxpDirectory dir;
  for (const auto& entry : topo.prefixes4) {
    if (entry.origin.value() >= min_ixp_asn) dir.add(entry.prefix);
  }
  for (const auto& entry : topo.prefixes6) {
    if (entry.origin.value() >= min_ixp_asn) dir.add(entry.prefix);
  }
  return dir;
}

bool IxpDirectory::contains(const net::IPAddr& addr) const {
  if (addr.is_v4()) {
    for (const auto& p : prefixes4_) {
      if (p.contains(addr.v4())) return true;
    }
    return false;
  }
  for (const auto& p : prefixes6_) {
    if (p.contains(addr.v6())) return true;
  }
  return false;
}

LinkClassification LinkClassifier::classify(
    const std::optional<net::IPAddr>& near,
    const std::optional<net::IPAddr>& far) const {
  LinkClassification out;
  if (!near || !far) return out;  // cannot resolve the link endpoints
  out.owner_near = ownership_.owner(*near);
  out.owner_far = ownership_.owner(*far);
  out.public_ixp = ixps_.contains(*near) || ixps_.contains(*far);
  if (!out.owner_near || !out.owner_far) return out;

  if (*out.owner_near == *out.owner_far) {
    out.kind = LinkKind::kInternal;
    return out;
  }
  out.kind = LinkKind::kInterconnection;
  const auto rel = relationships_.rel(*out.owner_near, *out.owner_far);
  if (!rel) {
    out.rel = InterconnRel::kUnknown;
  } else if (*rel == bgp::Rel::kPeer) {
    out.rel = InterconnRel::kP2P;
  } else {
    out.rel = InterconnRel::kC2P;
  }
  return out;
}

}  // namespace s2s::core
