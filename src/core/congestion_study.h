// Aggregation of the congestion analysis (paper Sections 5.3 and 5.4):
// unique congested IP-IP links, their classification tallies, crossing-pair
// weights, and the overhead samples behind Figure 9's density curves.
#pragma once

#include <map>
#include <vector>

#include "core/link_classify.h"
#include "core/localize.h"
#include "topology/topology.h"

namespace s2s::core {

struct CongestionStudy {
  struct LinkInfo {
    std::optional<net::IPAddr> near;
    std::optional<net::IPAddr> far;
    LinkClassification cls;
    std::size_t crossing_pairs = 0;  ///< server pairs marking this link
    double overhead_ms = 0.0;        ///< mean across marking pairs
  };
  std::vector<LinkInfo> links;

  // Section 5.3 tallies over unique links:
  std::size_t internal = 0;
  std::size_t interconnection = 0;
  std::size_t unknown = 0;
  std::size_t p2p = 0;
  std::size_t c2p = 0;
  std::size_t public_ixp = 0;
  std::size_t private_interconnect = 0;
  // Crossing-pair-weighted tallies ("interconnection links are more
  // popular" when weighted):
  std::size_t internal_weighted = 0;
  std::size_t interconnection_weighted = 0;

  // Figure 9 overhead samples (per link):
  std::vector<double> overhead_internal;
  std::vector<double> overhead_interconnection;
  std::vector<double> overhead_us_internal;
  std::vector<double> overhead_us_interconnection;
};

/// Merges localized congested segments into unique links and classifies
/// them. `topo` supplies server geography for the US-US breakdown only.
CongestionStudy build_congestion_study(
    const std::vector<CongestedSegmentObs>& segments,
    const LinkClassifier& classifier, const topology::Topology& topo);

}  // namespace s2s::core
