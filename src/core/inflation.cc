#include "core/inflation.h"

#include <algorithm>
#include <string>

#include "net/geo.h"
#include "stats/summary.h"

namespace s2s::core {

namespace {

bool is_transcontinental(const std::string& a, const std::string& b) {
  // The paper's list: US<->{Germany, Australia, India, Japan}.
  static const char* kFar[] = {"DE", "AU", "IN", "JP"};
  const auto matches = [&](const std::string& us, const std::string& far) {
    if (us != "US") return false;
    for (const char* code : kFar) {
      if (far == code) return true;
    }
    return false;
  };
  return matches(a, b) || matches(b, a);
}

}  // namespace

InflationStudy run_inflation_study(const TimelineStore& store,
                                   const topology::Topology& topo,
                                   const InflationConfig& config) {
  InflationStudy study;
  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const TraceTimeline& timeline) {
    if (timeline.obs.size() < config.min_observations) return;
    const auto& src_city = topo.cities[topo.servers[s].city];
    const auto& dst_city = topo.cities[topo.servers[d].city];
    const double crtt = net::c_rtt_ms(src_city.location, dst_city.location);
    if (crtt < config.min_crtt_ms) {
      ++study.skipped_short;
      return;
    }
    std::vector<double> rtts;
    rtts.reserve(timeline.obs.size());
    for (const auto& o : timeline.obs) rtts.push_back(o.rtt_ms());
    const double inflation = stats::median(rtts) / crtt;

    study.all.of(fam).push_back(inflation);
    if (src_city.country == "US" && dst_city.country == "US") {
      study.us_us.of(fam).push_back(inflation);
    }
    if (is_transcontinental(src_city.country, dst_city.country)) {
      study.transcontinental.of(fam).push_back(inflation);
    }
  });
  return study;
}

}  // namespace s2s::core
