#include "core/as_path_infer.h"

#include <unordered_set>

namespace s2s::core {

InferredPath AsPathInferrer::infer(const probe::TracerouteRecord& record,
                                   net::Asn src_asn) const {
  InferredPath out;

  // Token per hop: the mapped ASN, or kUnknownAsn for a gap. Track the two
  // gap causes separately for the Table 1 quality class.
  bool any_unresponsive = false;
  bool any_unmapped = false;
  std::vector<net::Asn> tokens;
  tokens.reserve(record.hops.size() + 1);
  tokens.push_back(src_asn);  // the probing host itself
  for (const auto& hop : record.hops) {
    if (!hop.addr) {
      any_unresponsive = true;
      tokens.push_back(net::kUnknownAsn);
      continue;
    }
    const auto asn = rib_.origin(*hop.addr);
    if (!asn) {
      any_unmapped = true;
      tokens.push_back(net::kUnknownAsn);
    } else {
      tokens.push_back(*asn);
    }
  }

  out.quality = any_unresponsive ? TraceQuality::kMissingIpLevel
               : any_unmapped    ? TraceQuality::kMissingAsLevel
                                 : TraceQuality::kCompleteAsLevel;

  // Impute gap runs whose flanking ASNs agree.
  for (std::size_t i = 0; i < tokens.size();) {
    if (tokens[i].known()) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < tokens.size() && !tokens[j].known()) ++j;
    if (i > 0 && j < tokens.size() && tokens[i - 1] == tokens[j]) {
      for (std::size_t k = i; k < j; ++k) tokens[k] = tokens[j];
      out.imputed = true;
    }
    i = j;
  }

  // Collapse consecutive duplicates (runs of kUnknownAsn also collapse to
  // one gap marker).
  for (const net::Asn& asn : tokens) {
    if (out.as_path.empty() || out.as_path.back() != asn) {
      out.as_path.push_back(asn);
    }
  }

  // AS loop: a known ASN re-appears after the path left it.
  std::unordered_set<std::uint32_t> seen;
  for (const net::Asn& asn : out.as_path) {
    if (!asn.known()) continue;
    if (!seen.insert(asn.value()).second) {
      out.has_as_loop = true;
      break;
    }
  }
  return out;
}

}  // namespace s2s::core
