// Aggregation of the long-term routing analysis (paper Section 4.2):
// one pass over a TimelineStore producing the raw series behind
// Figures 2a, 2b, 3a, 3b, 4, 5 and 6.
#pragma once

#include <cstddef>
#include <vector>

#include "core/path_stats.h"
#include "core/timeline.h"
#include "exec/pool.h"

namespace s2s::core {

struct RoutingStudyConfig {
  /// Timelines with fewer observations are skipped (the paper restricts
  /// itself to pairs with >= 400 days of data out of 485).
  std::size_t min_observations = 100;
  /// Figure 6 thresholds (ms of RTT increase over the best path).
  std::vector<double> suboptimal_thresholds_ms = {20.0, 50.0, 100.0};
};

struct RoutingStudy {
  struct PerFamily {
    // Per qualifying timeline:
    std::vector<double> unique_paths;        ///< Fig 2a
    std::vector<double> changes;             ///< Fig 3b
    std::vector<double> popular_prevalence;  ///< Fig 3a
    /// Fig 6: per timeline, per threshold index, the summed prevalence of
    /// sub-optimal paths whose baseline-RTT penalty is >= the threshold.
    std::vector<std::vector<double>> suboptimal_prevalence;

    // Per sub-optimal path bucket across all timelines (Figs 4 and 5):
    std::vector<double> lifetime_hours_p10;  ///< x-values, Fig 4
    std::vector<double> delta_p10_ms;        ///< y-values, Fig 4
    std::vector<double> lifetime_hours_p90;  ///< x-values, Fig 5
    std::vector<double> delta_p90_ms;        ///< y-values, Fig 5
    /// Robustness variant (paper Section 4.2 last paragraph): increase in
    /// RTT standard deviation over the lowest-stddev path.
    std::vector<double> delta_stddev_ms;

    std::size_t timelines = 0;
  };
  PerFamily v4, v6;

  /// Fig 2b: unique (forward, reverse) AS-path pairs per server pair.
  std::vector<double> path_pairs_v4;
  std::vector<double> path_pairs_v6;

  PerFamily& of(net::Family f) {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
  const PerFamily& of(net::Family f) const {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
};

/// Runs the routing study. With a pool, the per-timeline qualify pass
/// (the bucket scan) runs in kAnalysisShards fixed shards whose partial
/// aggregates merge in shard order, so the result is byte-identical at
/// any thread count (DESIGN.md section 9); the pairwise pass 2 is
/// index-bound and stays serial. pool == nullptr runs the shards inline.
RoutingStudy run_routing_study(const TimelineStore& store,
                               const RoutingStudyConfig& config = {},
                               exec::ThreadPool* pool = nullptr);

}  // namespace s2s::core
