// Detector validation harness: precision/recall against event ground
// truth (ROADMAP "Scenario diversity").
//
// The FFT diurnal detector (congestion_detect.h) and the localization
// pass (localize.h) were built for the paper's consistent-congestion
// signal. This stage measures what they actually do when campaigns carry
// congestion they should flag but were not designed for — flash crowds,
// failure cascades, bufferbloat — and benign dynamics they should ignore
// (maintenance loss windows), following Genin & Splett's congestion
// typology and Fontugne et al.'s ground-truth scoring (PAPERS.md).
//
// A scenario = one simulated deployment + one EventSchedule (+ optionally
// the diurnal CongestionModel cranked up), a one-week ping campaign, the
// survey, and for flagged pairs a follow-up traceroute campaign plus
// localization. Verdicts are matched against the GroundTruthLedger with
// configurable time/link tolerance; scores roll up into a versioned JSON
// ValidationStudy whose aggregates CI gates on (diurnal recall,
// maintenance false-positive rate). Everything is seed-deterministic and
// thread-width-independent, so the study is byte-identical at any
// S2S_THREADS — the same contract the analysis passes already honor
// (DESIGN.md section 9). Observability: `s2s.validate.*` counters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exec/pool.h"
#include "simnet/events.h"

namespace s2s::core {

/// Tolerance semantics for matching detector output to ledger entries.
struct MatcherConfig {
  /// An entry only enters the positive class when it overlaps the
  /// campaign window at least this long (shorter clips are not fairly
  /// detectable at 15-minute sampling).
  double min_overlap_s = 2.0 * 3600.0;
  /// Localization slack: 0 = the exact ground-truth link, 1 = that link
  /// or any link sharing a router with it (one hop of slack).
  int link_tolerance_hops = 1;
  /// Detectability floor for diurnal-model ground truth: profiles below
  /// this one-way amplitude are excluded from the positive class, and
  /// pairs that see only sub-floor congestion are scored as neither true
  /// nor false positives (ambiguous, not a detector error either way).
  double min_diurnal_amplitude_ms = 15.0;
  /// Diurnal profiles must be active at least this fraction of the window.
  double min_diurnal_active_fraction = 0.7;
};

/// One event kind's detection tally within a scenario or study.
struct KindScore {
  std::size_t entries = 0;    ///< scoreable ledger entries of this kind
  std::size_t detected = 0;   ///< entries with >= 1 affected pair flagged
  std::size_t localized = 0;  ///< entries hit by a correct localization
  std::size_t truth_pairs = 0;    ///< assessable affected pairs
  std::size_t flagged_pairs = 0;  ///< of those, flagged by the survey

  double entry_recall() const {
    return entries == 0 ? 1.0
                        : static_cast<double>(detected) /
                              static_cast<double>(entries);
  }
  double pair_recall() const {
    return truth_pairs == 0 ? 1.0
                            : static_cast<double>(flagged_pairs) /
                                  static_cast<double>(truth_pairs);
  }
};

/// Scores of one scenario run. Pair-level sets are over ordered
/// (src, dst, family) series, the unit the survey judges.
struct ScenarioScore {
  std::string name;
  std::string primary_kind;  ///< event_kind_name of the scenario's subject
  bool with_diurnal = false;
  double magnitude_scale = 1.0;

  std::size_t events = 0;          ///< ledger entries emitted
  std::size_t assessed_pairs = 0;  ///< series with enough samples
  std::size_t truth_pairs = 0;     ///< assessable pairs in the positive class
  std::size_t ambiguous_pairs = 0; ///< sub-floor exposure, excluded
  std::size_t flagged_pairs = 0;   ///< survey verdicts
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double precision = 1.0;  ///< TP / (TP + FP); 1 when nothing flagged
  double recall = 1.0;     ///< TP / (TP + FN); 1 when no truth
  /// FP / (assessed - truth - ambiguous): how often clean series get
  /// flagged — the number the maintenance trap scenario gates on.
  double fp_rate = 0.0;

  std::size_t localizations = 0;          ///< segments the pass reported
  std::size_t localizations_correct = 0;  ///< within link tolerance
  double localization_accuracy = 1.0;     ///< 1 when nothing localized

  /// Per-kind tallies over this scenario's inflating entries.
  std::map<std::string, KindScore> kinds;
};

inline constexpr int kValidationSchemaVersion = 1;

/// The versioned study artifact `tools/s2s_validate` emits. Contains no
/// wall-clock fields, so equal runs serialize byte-identically.
struct ValidationStudy {
  int schema_version = kValidationSchemaVersion;
  std::uint64_t seed = 0;
  bool full_matrix = false;
  std::vector<ScenarioScore> scenarios;

  /// Aggregates across scenarios (sum of per-kind tallies).
  std::map<std::string, KindScore> kinds;
  /// Pair-level recall over diurnal-model ground truth — the CI floor.
  double diurnal_recall = 1.0;
  /// Worst fp_rate over maintenance-trap scenarios — the CI ceiling.
  double maintenance_fp_rate = 0.0;

  std::string to_json() const;
  static std::optional<ValidationStudy> parse(std::string_view json_text);
};

/// CI floors; check_gates reports every violation, not just the first.
struct GateConfig {
  double min_diurnal_recall = 0.9;
  double max_maintenance_fp_rate = 0.1;
};

struct GateResult {
  bool pass = true;
  std::vector<std::string> violations;
};

GateResult check_gates(const ValidationStudy& study,
                       const GateConfig& config = {});

/// One cell of the scenario matrix: which events to overlay, at what
/// magnitude, with or without the diurnal model underneath.
struct ScenarioSpec {
  std::string name;
  simnet::EventKind primary = simnet::EventKind::kDiurnalModel;
  bool with_diurnal = false;
  /// Counts and magnitude_scale; start_day/days are filled by the
  /// harness from its campaign window.
  simnet::EventScheduleConfig events;
};

/// The seeded scenario matrix: `full` covers event kind x {low, high}
/// magnitude x {with, without} diurnal plus baselines; the fast subset
/// keeps one scenario per kind plus the baseline and the trap (what the
/// default test lane and the CI gate run).
std::vector<ScenarioSpec> make_scenario_matrix(bool full);

struct HarnessOptions {
  std::uint64_t seed = 42;
  int servers = 20;
  int pairs = 24;     ///< unordered pairs sampled from the dual-stack mesh
  double days = 7.0;  ///< ping campaign length (15-minute epochs)
  MatcherConfig matcher;
  exec::ThreadPool* pool = nullptr;  ///< analysis passes; nullptr = inline
};

/// Runs one scenario end to end: deployment, event schedule, ledger,
/// ping campaign, survey, follow-up + localization, scoring.
ScenarioScore run_scenario(const ScenarioSpec& spec,
                           const HarnessOptions& opt);

/// Runs every scenario and rolls up the aggregates.
ValidationStudy run_matrix(std::span<const ScenarioSpec> specs,
                           const HarnessOptions& opt);

}  // namespace s2s::core
