#include "core/path_stats.h"

#include <algorithm>
#include <limits>

#include "stats/summary.h"

namespace s2s::core {

std::size_t TimelineAnalysis::best(BestPathCriterion criterion) const {
  std::size_t best_idx = 0;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double v = criterion == BestPathCriterion::kP10    ? buckets[i].p10
                     : criterion == BestPathCriterion::kP90 ? buckets[i].p90
                                                            : buckets[i].stddev;
    if (v < best_value) {
      best_value = v;
      best_idx = i;
    }
  }
  return best_idx;
}

std::size_t TimelineAnalysis::most_prevalent() const {
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    if (buckets[i].count > buckets[best_idx].count) best_idx = i;
  }
  return best_idx;
}

TimelineAnalysis analyze_timeline(const TraceTimeline& timeline,
                                  double interval_hours) {
  TimelineAnalysis out;
  out.observations = timeline.obs.size();
  if (timeline.obs.empty()) return out;

  // Gather RTTs per local path index.
  std::vector<std::vector<double>> rtts(timeline.local_paths.size());
  std::uint32_t prev_path = timeline.global_path(timeline.obs.front());
  for (std::size_t i = 0; i < timeline.obs.size(); ++i) {
    const Observation& o = timeline.obs[i];
    rtts[o.path].push_back(o.rtt_ms());
    const std::uint32_t cur = timeline.global_path(o);
    if (i > 0 && cur != prev_path) ++out.changes;
    prev_path = cur;
  }

  out.buckets.reserve(rtts.size());
  for (std::size_t local = 0; local < rtts.size(); ++local) {
    PathBucket bucket;
    bucket.path_id = timeline.local_paths[local];
    bucket.count = rtts[local].size();
    bucket.lifetime_hours = static_cast<double>(bucket.count) * interval_hours;
    bucket.prevalence = static_cast<double>(bucket.count) /
                        static_cast<double>(out.observations);
    const auto sorted = stats::sorted(rtts[local]);
    bucket.p10 = stats::quantile_sorted(sorted, 0.10);
    bucket.p90 = stats::quantile_sorted(sorted, 0.90);
    bucket.stddev = stats::stddev(rtts[local]);
    out.buckets.push_back(bucket);
  }
  return out;
}

}  // namespace s2s::core
