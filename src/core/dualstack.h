// IPv4 vs IPv6 comparison (paper Section 6, Figure 10a).
//
// For every (src, dst) pair and every epoch measured over both protocols
// at the same time, we take RTTv4 - RTTv6; the "Same AS-paths" variant
// keeps only samples whose inferred AS path is identical (at AS level)
// over both protocols. Dual-stack opportunity statistics (how often
// switching protocol saves >= 10/50 ms) come from the same pass.
#pragma once

#include <cstdint>
#include <vector>

#include "core/timeline.h"
#include "exec/pool.h"
#include "stats/binned_ecdf.h"

namespace s2s::core {

struct DualStackStudy {
  stats::BinnedEcdf diff_all{-300.0, 300.0, 6000};        ///< per sample
  stats::BinnedEcdf diff_same_path{-300.0, 300.0, 6000};  ///< per sample
  std::size_t pairs_matched = 0;     ///< pairs with >= 1 matched sample
  std::uint64_t samples_matched = 0;
  std::uint64_t samples_same_path = 0;
  /// Per-pair median of RTTv4 - RTTv6 (for per-pair opportunity stats).
  std::vector<double> pair_median_diff;
  /// Upstream store counters plus any non-finite diff samples skipped
  /// here (invalid_rtt), so Figure 10 statistics are never NaN-poisoned.
  DataQualityReport quality;
};

/// Matches every dual-stack pair in the store. With a pool, the v6
/// timelines are processed in kAnalysisShards fixed shards whose partial
/// aggregates (BinnedEcdf counts, per-pair medians) merge in shard order,
/// so the result is byte-identical at any thread count (DESIGN.md
/// section 9); pool == nullptr runs the shards inline.
DualStackStudy run_dualstack_study(const TimelineStore& store,
                                   exec::ThreadPool* pool = nullptr);

}  // namespace s2s::core
