// Congested-link classification (paper Section 5.3).
//
// With router owners inferred, an IP-IP link is internal when both ends
// belong to the same AS, and an interconnection otherwise; interconnection
// links are further split into p2p / c2p by the AS-relationship table, and
// into public-IXP / private by whether an address sits in a known IXP
// peering-LAN prefix (IXP LANs are public knowledge, e.g. PeeringDB).
#pragma once

#include <optional>
#include <vector>

#include "bgp/relationships.h"
#include "bgp/rib.h"
#include "core/localize.h"
#include "core/ownership.h"
#include "net/prefix.h"
#include "topology/topology.h"

namespace s2s::core {

/// Known IXP peering-LAN prefixes (the analysis-side directory).
class IxpDirectory {
 public:
  /// All IXP LAN prefixes from the topology's address plan (announced or
  /// not — operators publish their LANs regardless).
  static IxpDirectory from_topology(const topology::Topology& topo,
                                    std::uint32_t min_ixp_asn = 64500);

  void add(const net::Prefix4& prefix) { prefixes4_.push_back(prefix); }
  void add(const net::Prefix6& prefix) { prefixes6_.push_back(prefix); }

  bool contains(const net::IPAddr& addr) const;
  std::size_t size() const {
    return prefixes4_.size() + prefixes6_.size();
  }

 private:
  std::vector<net::Prefix4> prefixes4_;
  std::vector<net::Prefix6> prefixes6_;
};

enum class LinkKind : std::uint8_t { kInternal, kInterconnection, kUnknown };
enum class InterconnRel : std::uint8_t { kP2P, kC2P, kUnknown };

struct LinkClassification {
  LinkKind kind = LinkKind::kUnknown;
  InterconnRel rel = InterconnRel::kUnknown;
  bool public_ixp = false;
  std::optional<net::Asn> owner_near;
  std::optional<net::Asn> owner_far;
};

class LinkClassifier {
 public:
  LinkClassifier(const OwnershipInference& ownership,
                 const bgp::RelationshipTable& relationships,
                 const IxpDirectory& ixps)
      : ownership_(ownership), relationships_(relationships), ixps_(ixps) {}

  /// Classifies the link between two hop addresses. `near` may be empty
  /// (congestion at the first segment) -> kUnknown.
  LinkClassification classify(const std::optional<net::IPAddr>& near,
                              const std::optional<net::IPAddr>& far) const;

 private:
  const OwnershipInference& ownership_;
  const bgp::RelationshipTable& relationships_;
  const IxpDirectory& ixps_;
};

}  // namespace s2s::core
