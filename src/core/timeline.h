// Trace timelines: the compact per-(src, dst, family) time series every
// routing analysis consumes (paper Section 4.1: "the set of all
// traceroutes from one server to another ... a trace timeline").
//
// TimelineStore is a streaming sink for traceroute campaigns: each record
// is AS-path-inferred on arrival and reduced to 6 bytes (epoch, RTT in
// tenths of ms, local path index), so 16-month full-mesh campaigns fit in
// memory. Table 1 accounting (completeness / data quality / AS loops)
// happens in the same pass.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/as_path_infer.h"
#include "core/data_quality.h"
#include "net/timebase.h"
#include "probe/records.h"
#include "topology/topology.h"

namespace s2s::core {

/// Interns AS paths globally; ids are dense and stable.
class PathInterner {
 public:
  std::uint32_t intern(const net::AsPath& path);
  const net::AsPath& path(std::uint32_t id) const { return paths_.at(id); }
  std::size_t size() const noexcept { return paths_.size(); }

 private:
  struct Hash {
    std::size_t operator()(const net::AsPath& p) const {
      std::size_t h = p.size();
      for (const auto& asn : p) {
        h ^= asn.value() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<net::AsPath, std::uint32_t, Hash> index_;
  std::vector<net::AsPath> paths_;
};

/// One completed traceroute, compacted.
struct Observation {
  std::uint16_t epoch = 0;       ///< index on the campaign's sampling grid
  std::uint16_t rtt_tenths = 0;  ///< end-to-end RTT in 0.1 ms units
  std::uint16_t path = 0;        ///< index into TraceTimeline::local_paths

  double rtt_ms() const { return rtt_tenths / 10.0; }
};

struct TraceTimeline {
  std::vector<Observation> obs;             ///< time-ordered
  std::vector<std::uint32_t> local_paths;   ///< local index -> global path id

  std::uint32_t global_path(const Observation& o) const {
    return local_paths[o.path];
  }
  std::size_t unique_paths() const { return local_paths.size(); }
};

/// Paper Table 1 bookkeeping, per protocol.
struct Table1Counts {
  struct PerFamily {
    std::size_t collected = 0;    ///< records delivered by the campaign
    std::size_t complete = 0;     ///< destination reached
    std::size_t as_loops = 0;     ///< complete but AS-loop artifact (excluded)
    // Quality classes among complete, loop-free traceroutes:
    std::size_t complete_as = 0;
    std::size_t missing_as = 0;
    std::size_t missing_ip = 0;
  };
  PerFamily v4, v6;

  PerFamily& of(net::Family f) {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
  const PerFamily& of(net::Family f) const {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
};

struct TimelineStoreConfig {
  double start_day = 0.0;                      ///< campaign origin
  std::int64_t interval_s = net::kThreeHours;  ///< sampling grid
};

class TimelineStore {
 public:
  TimelineStore(const topology::Topology& topo, const bgp::Rib& rib,
                const TimelineStoreConfig& config)
      : topo_(topo), inferrer_(rib), config_(config) {}

  /// Streaming sink: validate, infer, account, and (for complete,
  /// loop-free traceroutes) insert into the pair's timeline in epoch
  /// order. Duplicates, invalid RTTs and off-grid timestamps are dropped
  /// and tallied in quality(); late arrivals are accepted, re-sorted and
  /// tallied, so change detection never sees artificial path flaps.
  void add(const probe::TracerouteRecord& record);

  const TraceTimeline* find(topology::ServerId src, topology::ServerId dst,
                            net::Family family) const;

  /// Iterates timelines as fn(src, dst, family, timeline).
  void for_each(const std::function<void(topology::ServerId,
                                         topology::ServerId, net::Family,
                                         const TraceTimeline&)>& fn) const;

  /// Visits the timelines whose key falls in `shard` (key % n_shards), in
  /// ascending key order — hash-layout-independent, so shard outputs merge
  /// deterministically (DESIGN.md section 9). Read-only; distinct shards
  /// are safe to run concurrently.
  void for_each_shard(std::size_t shard, std::size_t n_shards,
                      const std::function<void(topology::ServerId,
                                               topology::ServerId, net::Family,
                                               const TraceTimeline&)>& fn)
      const;

  const PathInterner& interner() const noexcept { return interner_; }
  const Table1Counts& table1() const noexcept { return table1_; }
  const DataQualityReport& quality() const noexcept { return quality_; }
  std::size_t timeline_count() const noexcept { return timelines_.size(); }
  std::uint16_t max_epoch() const noexcept { return max_epoch_; }
  double interval_hours() const {
    return static_cast<double>(config_.interval_s) / 3600.0;
  }

 private:
  static std::uint64_t key(topology::ServerId src, topology::ServerId dst,
                           net::Family family) {
    return (std::uint64_t{src} << 24) | (std::uint64_t{dst} << 4) |
           (family == net::Family::kIPv6 ? 1u : 0u);
  }

  const topology::Topology& topo_;
  AsPathInferrer inferrer_;
  TimelineStoreConfig config_;
  IngestObs obs_ = IngestObs::make("timeline");
  PathInterner interner_;
  Table1Counts table1_;
  DataQualityReport quality_;
  DedupWindow dedup_;
  std::int64_t last_epoch_seen_ = -1;  ///< stream arrival order watermark
  std::unordered_map<std::uint64_t, TraceTimeline> timelines_;
  std::uint16_t max_epoch_ = 0;
};

}  // namespace s2s::core
