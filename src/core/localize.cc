#include "core/localize.h"

#include <algorithm>

#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/fft.h"
#include "stats/summary.h"

namespace s2s::core {

net::AsPath as_sequence_of_hops(
    const std::vector<std::optional<net::IPAddr>>& hops,
    const bgp::Rib& rib) {
  // Map, impute gaps flanked by the same AS, then drop residual unknown
  // tokens: unresponsive routers sit at different positions in the two
  // directions, and keeping them would fail the symmetry check for paths
  // that are symmetric at AS level.
  std::vector<net::Asn> tokens;
  tokens.reserve(hops.size());
  for (const auto& addr : hops) {
    net::Asn asn = net::kUnknownAsn;
    if (addr) {
      if (const auto mapped = rib.origin(*addr)) asn = *mapped;
    }
    tokens.push_back(asn);
  }
  for (std::size_t i = 0; i < tokens.size();) {
    if (tokens[i].known()) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < tokens.size() && !tokens[j].known()) ++j;
    if (i > 0 && j < tokens.size() && tokens[i - 1] == tokens[j]) {
      for (std::size_t k = i; k < j; ++k) tokens[k] = tokens[j];
    }
    i = j;
  }
  net::AsPath path;
  for (const net::Asn& asn : tokens) {
    if (!asn.known()) continue;
    if (path.empty() || path.back() != asn) path.push_back(asn);
  }
  return path;
}

LocalizeResult localize_congestion(const SegmentSeriesStore& store,
                                   const bgp::Rib& rib,
                                   const LocalizeConfig& config,
                                   exec::ThreadPool* pool) {
  const obs::TraceSpan stage_span("analysis.congestion.localize");
  const obs::Counter localized =
      obs::MetricsRegistry::global().counter("s2s.congestion.pairs_localized");

  LocalizeResult result;
  exec::sharded_reduce<LocalizeResult>(
      pool, exec::kAnalysisShards, "analysis.congestion.localize.shard",
      [&](std::size_t shard, LocalizeResult& partial) {
        store.for_each_shard(
            shard, exec::kAnalysisShards,
            [&](topology::ServerId src, topology::ServerId dst,
                net::Family fam,
                const SegmentSeriesStore::PairSeries& series) {
              ++partial.pairs_considered;
              if (!series.ip_static || series.traces < config.min_traces) {
                return;
              }
              ++partial.pairs_static;

              if (config.require_symmetric_as_paths) {
                // Reverse-direction lookup crosses shard boundaries; the
                // store is const, so concurrent readers are safe.
                const auto* rev = store.find(dst, src, fam);
                if (rev == nullptr || !rev->ip_static) return;
                // Anchor both sequences with the endpoint host addresses:
                // the last router before the destination frequently
                // answers from neighbor-assigned space, hiding the
                // terminal AS at hop level.
                auto with_endpoints =
                    [&](const SegmentSeriesStore::PairSeries& ps) {
                      std::vector<std::optional<net::IPAddr>> hops;
                      hops.reserve(ps.hop_addrs.size() + 2);
                      hops.emplace_back(ps.src_addr);
                      hops.insert(hops.end(), ps.hop_addrs.begin(),
                                  ps.hop_addrs.end());
                      hops.emplace_back(ps.dst_addr);
                      return as_sequence_of_hops(hops, rib);
                    };
                auto fwd_as = with_endpoints(series);
                auto rev_as = with_endpoints(*rev);
                std::reverse(rev_as.begin(), rev_as.end());
                if (fwd_as != rev_as) return;
              }
              ++partial.pairs_symmetric;

              const auto end_series =
                  SegmentSeriesStore::row_ms_interpolated(series.end_rtt);
              if (end_series.empty()) return;
              const auto power = stats::diurnal_power_ratio(
                  end_series, store.samples_per_day());
              if (power.ratio < config.diurnal_ratio_threshold) return;
              ++partial.pairs_persistent;

              const auto end_sorted = stats::sorted(end_series);
              const double overhead =
                  stats::quantile_sorted(end_sorted, 0.90) -
                  stats::quantile_sorted(end_sorted, 0.10);

              for (std::size_t k = 0; k < series.hop_rtt.size(); ++k) {
                std::size_t valid = 0;
                for (auto v : series.hop_rtt[k]) {
                  valid += v != SegmentSeriesStore::kMissing;
                }
                if (static_cast<double>(valid) <
                    config.min_row_coverage *
                        static_cast<double>(store.epochs())) {
                  continue;
                }
                const auto row =
                    SegmentSeriesStore::row_ms_interpolated(series.hop_rtt[k]);
                const double rho = stats::pearson(row, end_series);
                if (rho < config.rho_threshold) continue;

                CongestedSegmentObs obs;
                obs.src = src;
                obs.dst = dst;
                obs.family = fam;
                obs.segment_index = k;
                obs.far_addr = series.hop_addrs[k];
                if (k > 0) obs.near_addr = series.hop_addrs[k - 1];
                obs.rho = rho;
                obs.diurnal_ratio = power.ratio;
                obs.overhead_ms = overhead;
                partial.segments.push_back(std::move(obs));
                ++partial.pairs_localized;
                localized.inc();
                break;  // first matching segment marks the congested link
              }
            });
      },
      [&](const LocalizeResult& partial) {
        result.segments.insert(result.segments.end(), partial.segments.begin(),
                               partial.segments.end());
        result.pairs_considered += partial.pairs_considered;
        result.pairs_static += partial.pairs_static;
        result.pairs_symmetric += partial.pairs_symmetric;
        result.pairs_persistent += partial.pairs_persistent;
        result.pairs_localized += partial.pairs_localized;
      });
  return result;
}

}  // namespace s2s::core
