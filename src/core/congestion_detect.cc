#include "core/congestion_detect.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/summary.h"

namespace s2s::core {

SeriesVerdict assess_series(std::span<const double> rtt_ms,
                            double samples_per_day,
                            const CongestionDetectConfig& config) {
  SeriesVerdict verdict;
  verdict.samples = rtt_ms.size();
  std::vector<double> usable;
  usable.reserve(rtt_ms.size());
  for (const double v : rtt_ms) {
    if (std::isfinite(v)) {
      usable.push_back(v);
    } else {
      ++verdict.invalid_samples;
    }
  }
  if (usable.size() < 2) {
    verdict.insufficient = true;
    return verdict;
  }
  const auto sorted = stats::sorted(usable);
  verdict.variation_ms = stats::quantile_sorted(sorted, 0.95) -
                         stats::quantile_sorted(sorted, 0.05);
  verdict.high_variation =
      verdict.variation_ms > config.variation_threshold_ms;
  verdict.diurnal_ratio =
      stats::diurnal_power_ratio(usable, samples_per_day).ratio;
  verdict.strong_diurnal =
      verdict.diurnal_ratio >= config.diurnal_ratio_threshold;
  return verdict;
}

CongestionSurvey survey_congestion(const PingSeriesStore& store,
                                   const CongestionDetectConfig& config) {
  const obs::TraceSpan stage_span("analysis.congestion.fft_detect");
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter assessed = reg.counter("s2s.congestion.pairs_assessed");
  const obs::Counter flagged = reg.counter("s2s.congestion.pairs_flagged");

  CongestionSurvey survey;
  survey.quality = store.quality();
  store.for_each([&](topology::ServerId src, topology::ServerId dst,
                     net::Family fam, const PingSeriesStore::Series& series) {
    auto& agg = survey.of(fam);
    ++agg.pairs_total;
    if (series.valid < config.min_samples) {
      ++survey.quality.insufficient_epochs;
      return;
    }
    ++agg.pairs_assessed;
    assessed.inc();
    const auto rtts = PingSeriesStore::to_ms_interpolated(series);
    const SeriesVerdict verdict =
        assess_series(rtts, store.samples_per_day(), config);
    if (verdict.insufficient) {
      ++survey.quality.insufficient_epochs;
      return;
    }
    survey.quality.invalid_rtt += verdict.invalid_samples;
    if (verdict.high_variation) ++agg.high_variation;
    if (verdict.consistent_congestion()) {
      ++agg.consistent;
      flagged.inc();
      survey.flagged.push_back({src, dst, fam, verdict});
    }
  });
  return survey;
}

}  // namespace s2s::core
