#include "core/congestion_detect.h"

#include <cmath>

#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/summary.h"

namespace s2s::core {

SeriesVerdict assess_series(std::span<const double> rtt_ms,
                            double samples_per_day,
                            const CongestionDetectConfig& config) {
  SeriesVerdict verdict;
  verdict.samples = rtt_ms.size();
  std::vector<double> usable;
  usable.reserve(rtt_ms.size());
  for (const double v : rtt_ms) {
    if (std::isfinite(v)) {
      usable.push_back(v);
    } else {
      ++verdict.invalid_samples;
    }
  }
  if (usable.size() < 2) {
    verdict.insufficient = true;
    return verdict;
  }
  const auto sorted = stats::sorted(usable);
  verdict.variation_ms = stats::quantile_sorted(sorted, 0.95) -
                         stats::quantile_sorted(sorted, 0.05);
  verdict.high_variation =
      verdict.variation_ms > config.variation_threshold_ms;
  verdict.diurnal_ratio =
      stats::diurnal_power_ratio(usable, samples_per_day).ratio;
  verdict.strong_diurnal =
      verdict.diurnal_ratio >= config.diurnal_ratio_threshold;
  return verdict;
}

namespace {

/// Per-shard survey aggregate; merged in shard order.
struct SurveyPartial {
  CongestionSurvey::PerFamily v4, v6;
  std::vector<FlaggedPair> flagged;
  DataQualityReport quality;  ///< survey-level counters only

  CongestionSurvey::PerFamily& of(net::Family f) {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
};

void merge_family(CongestionSurvey::PerFamily& into,
                  const CongestionSurvey::PerFamily& from) {
  into.pairs_total += from.pairs_total;
  into.pairs_assessed += from.pairs_assessed;
  into.high_variation += from.high_variation;
  into.consistent += from.consistent;
}

}  // namespace

CongestionSurvey survey_congestion(const PingSeriesStore& store,
                                   const CongestionDetectConfig& config,
                                   exec::ThreadPool* pool) {
  const obs::TraceSpan stage_span("analysis.congestion.fft_detect");
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter assessed = reg.counter("s2s.congestion.pairs_assessed");
  const obs::Counter flagged = reg.counter("s2s.congestion.pairs_flagged");

  CongestionSurvey survey;
  survey.quality = store.quality();
  exec::sharded_reduce<SurveyPartial>(
      pool, exec::kAnalysisShards, "analysis.congestion.fft_detect.shard",
      [&](std::size_t shard, SurveyPartial& partial) {
        store.for_each_shard(
            shard, exec::kAnalysisShards,
            [&](topology::ServerId src, topology::ServerId dst,
                net::Family fam, const PingSeriesStore::Series& series) {
              auto& agg = partial.of(fam);
              ++agg.pairs_total;
              // Missing raw slots, counted BEFORE interpolation: the
              // interpolated series is gap-free by construction, so any
              // honest accounting has to look at the grid itself.
              const std::size_t missing =
                  series.rtt_tenths.size() - series.valid;
              if (series.valid < config.min_samples) {
                ++partial.quality.insufficient_series;
                partial.quality.insufficient_epochs += missing;
                return;
              }
              ++agg.pairs_assessed;
              assessed.inc();
              const auto rtts = PingSeriesStore::to_ms_interpolated(series);
              SeriesVerdict verdict =
                  assess_series(rtts, store.samples_per_day(), config);
              verdict.missing_samples = missing;
              if (verdict.insufficient) {
                ++partial.quality.insufficient_series;
                partial.quality.insufficient_epochs += missing;
                return;
              }
              partial.quality.interpolated_samples += missing;
              if (verdict.high_variation) ++agg.high_variation;
              if (verdict.consistent_congestion()) {
                ++agg.consistent;
                flagged.inc();
                partial.flagged.push_back({src, dst, fam, verdict});
              }
            });
      },
      [&](const SurveyPartial& partial) {
        merge_family(survey.v4, partial.v4);
        merge_family(survey.v6, partial.v6);
        survey.flagged.insert(survey.flagged.end(), partial.flagged.begin(),
                              partial.flagged.end());
        survey.quality.merge(partial.quality);
      });
  return survey;
}

}  // namespace s2s::core
