#include "core/routing_study.h"

#include <algorithm>
#include <map>
#include <set>

#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace s2s::core {

namespace {

void analyze_family(const TraceTimeline& timeline, double interval_hours,
                    const RoutingStudyConfig& config,
                    RoutingStudy::PerFamily& out) {
  const TimelineAnalysis analysis =
      analyze_timeline(timeline, interval_hours);
  ++out.timelines;
  out.unique_paths.push_back(static_cast<double>(analysis.buckets.size()));
  out.changes.push_back(static_cast<double>(analysis.changes));
  out.popular_prevalence.push_back(
      analysis.buckets[analysis.most_prevalent()].prevalence);

  if (analysis.buckets.size() < 2) {
    // One AS path: no sub-optimal buckets; Fig 6 prevalence sums are 0.
    out.suboptimal_prevalence.emplace_back(
        config.suboptimal_thresholds_ms.size(), 0.0);
    return;
  }

  const PathBucket& best10 = analysis.buckets[analysis.best(
      BestPathCriterion::kP10)];
  const PathBucket& best90 = analysis.buckets[analysis.best(
      BestPathCriterion::kP90)];
  const PathBucket& best_sd = analysis.buckets[analysis.best(
      BestPathCriterion::kStddev)];

  std::vector<double> prevalence_sums(config.suboptimal_thresholds_ms.size(),
                                      0.0);
  for (const PathBucket& bucket : analysis.buckets) {
    if (bucket.path_id != best10.path_id) {
      const double d10 = bucket.p10 - best10.p10;
      out.lifetime_hours_p10.push_back(bucket.lifetime_hours);
      out.delta_p10_ms.push_back(d10);
      for (std::size_t k = 0; k < config.suboptimal_thresholds_ms.size();
           ++k) {
        if (d10 >= config.suboptimal_thresholds_ms[k]) {
          prevalence_sums[k] += bucket.prevalence;
        }
      }
    }
    if (bucket.path_id != best90.path_id) {
      out.lifetime_hours_p90.push_back(bucket.lifetime_hours);
      out.delta_p90_ms.push_back(bucket.p90 - best90.p90);
    }
    if (bucket.path_id != best_sd.path_id) {
      out.delta_stddev_ms.push_back(bucket.stddev - best_sd.stddev);
    }
  }
  out.suboptimal_prevalence.push_back(std::move(prevalence_sums));
}

void merge_family(RoutingStudy::PerFamily& into,
                  RoutingStudy::PerFamily&& from) {
  auto append = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
  };
  append(into.unique_paths, from.unique_paths);
  append(into.changes, from.changes);
  append(into.popular_prevalence, from.popular_prevalence);
  append(into.suboptimal_prevalence, from.suboptimal_prevalence);
  append(into.lifetime_hours_p10, from.lifetime_hours_p10);
  append(into.delta_p10_ms, from.delta_p10_ms);
  append(into.lifetime_hours_p90, from.lifetime_hours_p90);
  append(into.delta_p90_ms, from.delta_p90_ms);
  append(into.delta_stddev_ms, from.delta_stddev_ms);
  into.timelines += from.timelines;
}

/// Per-shard qualify-pass aggregate.
struct QualifyPartial {
  RoutingStudy::PerFamily v4, v6;

  RoutingStudy::PerFamily& of(net::Family f) {
    return f == net::Family::kIPv4 ? v4 : v6;
  }
};

}  // namespace

RoutingStudy run_routing_study(const TimelineStore& store,
                               const RoutingStudyConfig& config,
                               exec::ThreadPool* pool) {
  const obs::TraceSpan stage_span("analysis.routing_study");
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter timelines_analyzed =
      reg.counter("s2s.routing_study.timelines");

  RoutingStudy study;
  const double interval_hours = store.interval_hours();

  // Pass 1: qualifying timelines, per family (the bucket scan).
  {
    const obs::TraceSpan pass_span("qualify");
    exec::sharded_reduce<QualifyPartial>(
        pool, exec::kAnalysisShards, "analysis.routing_study.qualify.shard",
        [&](std::size_t shard, QualifyPartial& partial) {
          store.for_each_shard(
              shard, exec::kAnalysisShards,
              [&](topology::ServerId, topology::ServerId, net::Family fam,
                  const TraceTimeline& timeline) {
                if (timeline.obs.size() < config.min_observations) return;
                analyze_family(timeline, interval_hours, config,
                               partial.of(fam));
                timelines_analyzed.inc();
              });
        },
        [&](QualifyPartial& partial) {
          merge_family(study.v4, std::move(partial.v4));
          merge_family(study.v6, std::move(partial.v6));
        });
  }

  // Pass 2 (Fig 2b): forward/reverse AS-path pairs per unordered pair.
  // Collect keys first to visit each unordered pair once.
  const obs::TraceSpan pairs_span("path_pairs");
  std::map<std::tuple<topology::ServerId, topology::ServerId, net::Family>,
           const TraceTimeline*>
      index;
  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const TraceTimeline& timeline) {
    index[{s, d, fam}] = &timeline;
  });
  for (const auto& [key, fwd] : index) {
    const auto [s, d, fam] = key;
    if (s >= d) continue;  // visit each unordered pair once
    const auto rit = index.find({d, s, fam});
    if (rit == index.end()) continue;
    const TraceTimeline* rev = rit->second;
    if (fwd->obs.size() < config.min_observations ||
        rev->obs.size() < config.min_observations) {
      continue;
    }
    // Match observations by epoch (both campaigns share the grid).
    std::set<std::uint64_t> combos;
    std::size_t i = 0, j = 0;
    while (i < fwd->obs.size() && j < rev->obs.size()) {
      if (fwd->obs[i].epoch < rev->obs[j].epoch) {
        ++i;
      } else if (fwd->obs[i].epoch > rev->obs[j].epoch) {
        ++j;
      } else {
        combos.insert((std::uint64_t{fwd->global_path(fwd->obs[i])} << 32) |
                      rev->global_path(rev->obs[j]));
        ++i;
        ++j;
      }
    }
    if (combos.empty()) continue;
    auto& out = fam == net::Family::kIPv4 ? study.path_pairs_v4
                                          : study.path_pairs_v6;
    out.push_back(static_cast<double>(combos.size()));
  }

  return study;
}

}  // namespace s2s::core
