#include "core/ping_series.h"

#include <algorithm>
#include <cmath>

namespace s2s::core {

PingSeriesStore::PingSeriesStore(const PingSeriesStore& other,
                                 std::size_t new_epochs)
    : start_day_(other.start_day_),
      interval_s_(other.interval_s_),
      epochs_(std::max(other.epochs_, new_epochs)),
      obs_(other.obs_),
      quality_(other.quality_),
      dedup_(other.dedup_),
      last_epoch_seen_(other.last_epoch_seen_),
      series_(other.series_) {
  for (auto& [k, series] : series_) {
    if (!series.rtt_tenths.empty()) series.rtt_tenths.resize(epochs_, kMissing);
  }
}

void PingSeriesStore::add(const probe::PingRecord& record) {
  if (dedup_.seen_or_insert(fingerprint(record))) {
    ++quality_.duplicates_dropped;
    obs_.drop_duplicates.inc();
    return;
  }
  const std::int64_t epoch =
      net::grid_epoch(record.time, start_day_, interval_s_);
  if (epoch < 0 || static_cast<std::size_t>(epoch) >= epochs_) {
    ++quality_.out_of_grid;
    obs_.drop_out_of_grid.inc();
    return;
  }
  if (epoch < last_epoch_seen_) {
    ++quality_.reordered;
    obs_.reordered.inc();
  }
  last_epoch_seen_ = std::max(last_epoch_seen_, epoch);
  if (!valid_record(record)) {
    ++quality_.invalid_rtt;
    obs_.drop_invalid_rtt.inc();
    return;
  }
  if (!record.success) return;

  Series& series = series_[key(record.src, record.dst, record.family)];
  if (series.rtt_tenths.empty()) series.rtt_tenths.assign(epochs_, kMissing);
  auto& slot = series.rtt_tenths[static_cast<std::size_t>(epoch)];
  // First write wins: a conflicting re-delivery cannot overwrite the
  // sample the analyses already count on.
  if (slot != kMissing) {
    ++quality_.duplicates_dropped;
    obs_.drop_duplicates.inc();
    return;
  }
  obs_.records.inc();
  obs_.rtt_ms.record(record.rtt_ms);
  ++series.valid;
  slot = static_cast<std::uint16_t>(
      std::min(6553.0, std::max(0.0, record.rtt_ms)) * 10.0);
}

const PingSeriesStore::Series* PingSeriesStore::find(
    topology::ServerId src, topology::ServerId dst, net::Family family) const {
  const auto it = series_.find(key(src, dst, family));
  return it == series_.end() ? nullptr : &it->second;
}

void PingSeriesStore::for_each(
    const std::function<void(topology::ServerId, topology::ServerId,
                             net::Family, const Series&)>& fn) const {
  for (const auto& [k, series] : series_) {
    fn(static_cast<topology::ServerId>(k >> 24),
       static_cast<topology::ServerId>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? net::Family::kIPv6 : net::Family::kIPv4, series);
  }
}

void PingSeriesStore::for_each_shard(
    std::size_t shard, std::size_t n_shards,
    const std::function<void(topology::ServerId, topology::ServerId,
                             net::Family, const Series&)>& fn) const {
  std::vector<std::pair<std::uint64_t, const Series*>> keys;
  for (const auto& [k, series] : series_) {
    if (k % n_shards == shard) keys.emplace_back(k, &series);
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [k, series] : keys) {
    fn(static_cast<topology::ServerId>(k >> 24),
       static_cast<topology::ServerId>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? net::Family::kIPv6 : net::Family::kIPv4, *series);
  }
}

std::vector<double> PingSeriesStore::to_ms_interpolated(const Series& series) {
  std::vector<double> out;
  if (series.valid == 0) return out;
  const auto& raw = series.rtt_tenths;
  out.resize(raw.size());
  // Forward fill indexes of previous/next valid samples, then interpolate.
  std::ptrdiff_t prev = -1;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != kMissing) {
      out[i] = raw[i] / 10.0;
      // Fill the gap (prev, i).
      const double left =
          prev >= 0 ? out[static_cast<std::size_t>(prev)] : out[i];
      for (std::ptrdiff_t j = prev + 1; j < static_cast<std::ptrdiff_t>(i);
           ++j) {
        const double frac =
            prev < 0 ? 1.0
                     : static_cast<double>(j - prev) /
                           static_cast<double>(static_cast<std::ptrdiff_t>(i) -
                                               prev);
        out[static_cast<std::size_t>(j)] = left + frac * (out[i] - left);
      }
      prev = static_cast<std::ptrdiff_t>(i);
    }
  }
  // Trailing gap: copy the last valid sample.
  for (std::size_t i = static_cast<std::size_t>(prev) + 1; i < raw.size();
       ++i) {
    out[i] = out[static_cast<std::size_t>(prev)];
  }
  return out;
}

}  // namespace s2s::core
