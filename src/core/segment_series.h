// Per-segment RTT time series from follow-up traceroute campaigns
// (paper Section 5.2).
//
// "We define the path from the vantage point of a traceroute to a given
// hop as a segment" — for every (src, dst, family) we track the hop-IP
// path seen in complete traceroutes and a fixed-grid RTT series per
// segment. Pairs whose IP-level path changes are marked non-static and
// excluded from localization, exactly as the paper requires.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/data_quality.h"
#include "net/ip.h"
#include "net/timebase.h"
#include "probe/records.h"

namespace s2s::core {

class SegmentSeriesStore {
 public:
  static constexpr std::uint16_t kMissing = 0xFFFF;

  SegmentSeriesStore(double start_day, std::int64_t interval_s,
                     std::size_t epochs)
      : start_day_(start_day), interval_s_(interval_s), epochs_(epochs) {}

  /// Streaming sink; only complete traceroutes contribute. Duplicates,
  /// invalid RTTs and off-grid timestamps are dropped and tallied in
  /// quality(); arrival order does not matter (slot-addressed grid).
  void add(const probe::TracerouteRecord& record);

  struct PairSeries {
    /// Endpoint host addresses (known from the first complete traceroute);
    /// they anchor the AS-level symmetry check, since border-router
    /// ingress interfaces often carry the neighbor AS's address space.
    net::IPAddr src_addr;
    net::IPAddr dst_addr;
    /// Canonical hop addresses (unresponsive positions stay empty until a
    /// later traceroute reveals them).
    std::vector<std::optional<net::IPAddr>> hop_addrs;
    bool ip_static = true;  ///< falsified on any hop-address disagreement
    /// RTT series per hop segment [hop][epoch], tenths of ms.
    std::vector<std::vector<std::uint16_t>> hop_rtt;
    /// End-to-end series [epoch], tenths of ms.
    std::vector<std::uint16_t> end_rtt;
    std::size_t traces = 0;
  };

  const PairSeries* find(topology::ServerId src, topology::ServerId dst,
                         net::Family family) const;
  void for_each(const std::function<void(topology::ServerId,
                                         topology::ServerId, net::Family,
                                         const PairSeries&)>& fn) const;

  /// Visits the pairs whose key falls in `shard` (key % n_shards), in
  /// ascending key order — hash-layout-independent, so shard outputs merge
  /// deterministically (DESIGN.md section 9). Read-only; distinct shards
  /// are safe to run concurrently.
  void for_each_shard(std::size_t shard, std::size_t n_shards,
                      const std::function<void(topology::ServerId,
                                               topology::ServerId, net::Family,
                                               const PairSeries&)>& fn) const;

  std::size_t pair_count() const noexcept { return series_.size(); }
  std::size_t epochs() const noexcept { return epochs_; }
  const DataQualityReport& quality() const noexcept { return quality_; }
  double samples_per_day() const {
    return 86400.0 / static_cast<double>(interval_s_);
  }

  /// Gap-filled ms copy of a row (same interpolation as ping series).
  static std::vector<double> row_ms_interpolated(
      const std::vector<std::uint16_t>& row);

 private:
  static std::uint64_t key(topology::ServerId src, topology::ServerId dst,
                           net::Family family) {
    return (std::uint64_t{src} << 24) | (std::uint64_t{dst} << 4) |
           (family == net::Family::kIPv6 ? 1u : 0u);
  }

  double start_day_;
  std::int64_t interval_s_;
  std::size_t epochs_;
  IngestObs obs_ = IngestObs::make("segments");
  DataQualityReport quality_;
  DedupWindow dedup_;
  std::int64_t last_epoch_seen_ = -1;
  std::unordered_map<std::uint64_t, PairSeries> series_;
};

}  // namespace s2s::core
