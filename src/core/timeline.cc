#include "core/timeline.h"

#include <algorithm>
#include <cmath>

namespace s2s::core {

std::uint32_t PathInterner::intern(const net::AsPath& path) {
  const auto it = index_.find(path);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(path);
  index_.emplace(paths_.back(), id);
  return id;
}

void TimelineStore::add(const probe::TracerouteRecord& record) {
  // Quality gate: every record (complete or not) is checked before it can
  // touch the Table 1 accounting, so a garbled or re-delivered stream
  // cannot inflate the paper's completeness statistics.
  if (dedup_.seen_or_insert(fingerprint(record))) {
    ++quality_.duplicates_dropped;
    obs_.drop_duplicates.inc();
    return;
  }
  const std::int64_t grid = net::grid_epoch(record.time, config_.start_day,
                                            config_.interval_s);
  if (grid < 0 || grid > 0xFFFF) {
    ++quality_.out_of_grid;
    obs_.drop_out_of_grid.inc();
    return;
  }
  if (grid < last_epoch_seen_) {
    ++quality_.reordered;
    obs_.reordered.inc();
  }
  last_epoch_seen_ = std::max(last_epoch_seen_, grid);
  if (!valid_record(record)) {
    ++quality_.invalid_rtt;
    obs_.drop_invalid_rtt.inc();
    return;
  }
  obs_.records.inc();
  if (record.complete) obs_.rtt_ms.record(record.end_to_end_rtt_ms());

  auto& counts = table1_.of(record.family);
  ++counts.collected;
  if (!record.complete) return;
  ++counts.complete;

  const net::Asn src_asn = topo_.ases[topo_.servers[record.src].as_id].asn;
  const InferredPath inferred = inferrer_.infer(record, src_asn);
  if (inferred.has_as_loop) {
    ++counts.as_loops;  // excluded from the analyses, as in the paper
    return;
  }
  switch (inferred.quality) {
    case TraceQuality::kCompleteAsLevel: ++counts.complete_as; break;
    case TraceQuality::kMissingAsLevel: ++counts.missing_as; break;
    case TraceQuality::kMissingIpLevel: ++counts.missing_ip; break;
  }

  const auto epoch = static_cast<std::uint16_t>(grid);
  max_epoch_ = std::max(max_epoch_, epoch);

  const std::uint32_t global = interner_.intern(inferred.as_path);
  TraceTimeline& timeline =
      timelines_[key(record.src, record.dst, record.family)];
  auto local_it = std::find(timeline.local_paths.begin(),
                            timeline.local_paths.end(), global);
  std::uint16_t local;
  if (local_it == timeline.local_paths.end()) {
    local = static_cast<std::uint16_t>(timeline.local_paths.size());
    timeline.local_paths.push_back(global);
  } else {
    local = static_cast<std::uint16_t>(local_it - timeline.local_paths.begin());
  }

  Observation obs;
  obs.epoch = epoch;
  obs.rtt_tenths = static_cast<std::uint16_t>(
      std::min(6553.0, std::max(0.0, record.end_to_end_rtt_ms())) * 10.0);
  obs.path = local;
  if (timeline.obs.empty() || timeline.obs.back().epoch <= epoch) {
    timeline.obs.push_back(obs);
  } else {
    // Late arrival: insert in epoch order so the change detector never
    // interprets delivery order as a routing flap.
    const auto pos = std::upper_bound(
        timeline.obs.begin(), timeline.obs.end(), epoch,
        [](std::uint16_t e, const Observation& o) { return e < o.epoch; });
    timeline.obs.insert(pos, obs);
  }
}

const TraceTimeline* TimelineStore::find(topology::ServerId src,
                                         topology::ServerId dst,
                                         net::Family family) const {
  const auto it = timelines_.find(key(src, dst, family));
  return it == timelines_.end() ? nullptr : &it->second;
}

void TimelineStore::for_each(
    const std::function<void(topology::ServerId, topology::ServerId,
                             net::Family, const TraceTimeline&)>& fn) const {
  for (const auto& [k, timeline] : timelines_) {
    fn(static_cast<topology::ServerId>(k >> 24),
       static_cast<topology::ServerId>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? net::Family::kIPv6 : net::Family::kIPv4, timeline);
  }
}

void TimelineStore::for_each_shard(
    std::size_t shard, std::size_t n_shards,
    const std::function<void(topology::ServerId, topology::ServerId,
                             net::Family, const TraceTimeline&)>& fn) const {
  std::vector<std::pair<std::uint64_t, const TraceTimeline*>> keys;
  for (const auto& [k, timeline] : timelines_) {
    if (k % n_shards == shard) keys.emplace_back(k, &timeline);
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [k, timeline] : keys) {
    fn(static_cast<topology::ServerId>(k >> 24),
       static_cast<topology::ServerId>((k >> 4) & 0xFFFFFu),
       (k & 1u) ? net::Family::kIPv6 : net::Family::kIPv4, *timeline);
  }
}

}  // namespace s2s::core
