#include "core/dualstack.h"

#include <cmath>
#include <map>
#include <tuple>

#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/summary.h"

namespace s2s::core {

namespace {

/// Per-shard dual-stack aggregate; default-constructed on the same ECDF
/// grid as DualStackStudy so the partials merge bin-for-bin.
struct DualStackPartial {
  stats::BinnedEcdf diff_all{-300.0, 300.0, 6000};
  stats::BinnedEcdf diff_same_path{-300.0, 300.0, 6000};
  std::size_t pairs_matched = 0;
  std::uint64_t samples_matched = 0;
  std::uint64_t samples_same_path = 0;
  std::vector<double> pair_median_diff;
  std::size_t invalid_diffs = 0;
};

}  // namespace

DualStackStudy run_dualstack_study(const TimelineStore& store,
                                   exec::ThreadPool* pool) {
  const obs::TraceSpan stage_span("analysis.dualstack");
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter samples = reg.counter("s2s.dualstack.samples_matched");
  const obs::Counter pairs = reg.counter("s2s.dualstack.pairs_matched");

  DualStackStudy study;
  study.quality = store.quality();

  // Index v4 timelines serially (one cheap scan); the expensive pairwise
  // matching below then reads the index concurrently.
  std::map<std::pair<topology::ServerId, topology::ServerId>,
           const TraceTimeline*>
      v4_index;
  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const TraceTimeline& timeline) {
    if (fam == net::Family::kIPv4) v4_index[{s, d}] = &timeline;
  });

  exec::sharded_reduce<DualStackPartial>(
      pool, exec::kAnalysisShards, "analysis.dualstack.shard",
      [&](std::size_t shard, DualStackPartial& partial) {
        store.for_each_shard(
            shard, exec::kAnalysisShards,
            [&](topology::ServerId s, topology::ServerId d, net::Family fam,
                const TraceTimeline& v6) {
              if (fam != net::Family::kIPv6) return;
              const auto it = v4_index.find({s, d});
              if (it == v4_index.end()) return;
              const TraceTimeline& v4 = *it->second;

              std::vector<double> diffs;
              std::size_t i = 0, j = 0;
              while (i < v4.obs.size() && j < v6.obs.size()) {
                if (v4.obs[i].epoch < v6.obs[j].epoch) {
                  ++i;
                } else if (v4.obs[i].epoch > v6.obs[j].epoch) {
                  ++j;
                } else {
                  const double diff = v4.obs[i].rtt_ms() - v6.obs[j].rtt_ms();
                  if (!std::isfinite(diff)) {
                    ++partial.invalid_diffs;
                    ++i;
                    ++j;
                    continue;
                  }
                  diffs.push_back(diff);
                  partial.diff_all.add(diff);
                  ++partial.samples_matched;
                  const auto& path4 =
                      store.interner().path(v4.global_path(v4.obs[i]));
                  const auto& path6 =
                      store.interner().path(v6.global_path(v6.obs[j]));
                  if (path4 == path6) {
                    partial.diff_same_path.add(diff);
                    ++partial.samples_same_path;
                  }
                  ++i;
                  ++j;
                }
              }
              if (!diffs.empty()) {
                ++partial.pairs_matched;
                pairs.inc();
                samples.inc(diffs.size());
                partial.pair_median_diff.push_back(stats::median(diffs));
              }
            });
      },
      [&](const DualStackPartial& partial) {
        study.diff_all.merge(partial.diff_all);
        study.diff_same_path.merge(partial.diff_same_path);
        study.pairs_matched += partial.pairs_matched;
        study.samples_matched += partial.samples_matched;
        study.samples_same_path += partial.samples_same_path;
        study.pair_median_diff.insert(study.pair_median_diff.end(),
                                      partial.pair_median_diff.begin(),
                                      partial.pair_median_diff.end());
        study.quality.invalid_rtt += partial.invalid_diffs;
      });

  return study;
}

}  // namespace s2s::core
