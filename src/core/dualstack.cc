#include "core/dualstack.h"

#include <cmath>
#include <map>
#include <tuple>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/summary.h"

namespace s2s::core {

DualStackStudy run_dualstack_study(const TimelineStore& store) {
  const obs::TraceSpan stage_span("analysis.dualstack");
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter samples = reg.counter("s2s.dualstack.samples_matched");
  const obs::Counter pairs = reg.counter("s2s.dualstack.pairs_matched");

  DualStackStudy study;
  study.quality = store.quality();

  // Index v4 timelines, then match v6 ones pairwise.
  std::map<std::pair<topology::ServerId, topology::ServerId>,
           const TraceTimeline*>
      v4_index;
  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const TraceTimeline& timeline) {
    if (fam == net::Family::kIPv4) v4_index[{s, d}] = &timeline;
  });

  store.for_each([&](topology::ServerId s, topology::ServerId d,
                     net::Family fam, const TraceTimeline& v6) {
    if (fam != net::Family::kIPv6) return;
    const auto it = v4_index.find({s, d});
    if (it == v4_index.end()) return;
    const TraceTimeline& v4 = *it->second;

    std::vector<double> diffs;
    std::size_t i = 0, j = 0;
    while (i < v4.obs.size() && j < v6.obs.size()) {
      if (v4.obs[i].epoch < v6.obs[j].epoch) {
        ++i;
      } else if (v4.obs[i].epoch > v6.obs[j].epoch) {
        ++j;
      } else {
        const double diff = v4.obs[i].rtt_ms() - v6.obs[j].rtt_ms();
        if (!std::isfinite(diff)) {
          ++study.quality.invalid_rtt;
          ++i;
          ++j;
          continue;
        }
        diffs.push_back(diff);
        study.diff_all.add(diff);
        ++study.samples_matched;
        const auto& path4 = store.interner().path(v4.global_path(v4.obs[i]));
        const auto& path6 = store.interner().path(v6.global_path(v6.obs[j]));
        if (path4 == path6) {
          study.diff_same_path.add(diff);
          ++study.samples_same_path;
        }
        ++i;
        ++j;
      }
    }
    if (!diffs.empty()) {
      ++study.pairs_matched;
      pairs.inc();
      samples.inc(diffs.size());
      study.pair_median_diff.push_back(stats::median(diffs));
    }
  });

  return study;
}

}  // namespace s2s::core
