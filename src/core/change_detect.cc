#include "core/change_detect.h"

#include <algorithm>

namespace s2s::core {

int edit_distance(const net::AsPath& a, const net::AsPath& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  // Two-row dynamic program.
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<ChangeEvent> detect_changes(const TraceTimeline& timeline,
                                        const PathInterner& interner) {
  std::vector<ChangeEvent> events;
  // Observations sharing an epoch are re-deliveries of the same probe
  // slot; only the first one counts, so a conflicting duplicate cannot
  // manufacture a zero-duration routing flap.
  std::size_t last = 0;
  for (std::size_t i = 1; i < timeline.obs.size(); ++i) {
    if (timeline.obs[i].epoch == timeline.obs[last].epoch) continue;
    const auto from = timeline.global_path(timeline.obs[last]);
    const auto to = timeline.global_path(timeline.obs[i]);
    last = i;
    if (from == to) continue;
    ChangeEvent ev;
    ev.epoch = timeline.obs[i].epoch;
    ev.from_path = from;
    ev.to_path = to;
    ev.distance = edit_distance(interner.path(from), interner.path(to));
    events.push_back(ev);
  }
  return events;
}

std::size_t count_changes(const TraceTimeline& timeline) {
  std::size_t count = 0;
  std::size_t last = 0;
  for (std::size_t i = 1; i < timeline.obs.size(); ++i) {
    if (timeline.obs[i].epoch == timeline.obs[last].epoch) continue;
    count += timeline.global_path(timeline.obs[last]) !=
             timeline.global_path(timeline.obs[i]);
    last = i;
  }
  return count;
}

}  // namespace s2s::core
