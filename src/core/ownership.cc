#include "core/ownership.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace s2s::core {

namespace {

std::size_t addr_hash(const net::IPAddr& a) {
  return std::hash<net::IPAddr>{}(a);
}

}  // namespace

void OwnershipInference::label(const net::IPAddr& addr, net::Asn owner,
                               OwnershipHeuristic heuristic) {
  auto& votes = labels_[addr].votes[owner.value()];
  ++votes[static_cast<std::size_t>(heuristic)];
  switch (heuristic) {
    case OwnershipHeuristic::kFirst: ++stats_.labels_first; break;
    case OwnershipHeuristic::kNoIp2As: ++stats_.labels_noip2as; break;
    case OwnershipHeuristic::kCustomer: ++stats_.labels_customer; break;
    case OwnershipHeuristic::kProvider: ++stats_.labels_provider; break;
    case OwnershipHeuristic::kBack: ++stats_.labels_back; break;
    case OwnershipHeuristic::kForward: ++stats_.labels_forward; break;
  }
}

void OwnershipInference::observe_path(std::span<const net::IPAddr> hops) {
  // Edges and triple windows are deduplicated so repeated observations of
  // the same (static) path do not bias the election counts.
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i + 1 < hops.size()) {
      const auto& x = hops[i];
      const auto& y = hops[i + 1];
      if (x == y) continue;
      auto& out = out_links_[x];
      if (std::find(out.begin(), out.end(), y) == out.end()) {
        out.push_back(y);
        in_links_[y].push_back(x);
        links_.emplace_back(x, y);

        const auto mx = map(x);
        const auto my = map(y);
        // first: both announced by the same AS -> label the earlier hop.
        if (mx && my && *mx == *my) {
          label(x, *mx, OwnershipHeuristic::kFirst);
        }
        // provider: the far side maps to a provider of the near side's AS
        // -> the interface is on the provider's customer-facing router.
        if (mx && my && *mx != *my &&
            relationships_.is_provider_of(*my, *mx)) {
          label(y, *my, OwnershipHeuristic::kProvider);
        }
      }
    }
    if (i >= 1 && i + 1 < hops.size()) {
      const auto& x = hops[i - 1];
      const auto& y = hops[i];
      const auto& z = hops[i + 1];
      const std::uint64_t triple_key =
          (addr_hash(x) * 1000003) ^ (addr_hash(y) * 31) ^ addr_hash(z);
      if (!seen_triples_.insert(triple_key).second) continue;
      const auto mx = map(x);
      const auto my = map(y);
      const auto mz = map(z);
      // noip2as: unmapped hop flanked by the same AS.
      if (!my && mx && mz && *mx == *mz) {
        label(y, *mx, OwnershipHeuristic::kNoIp2As);
      }
      // customer: provider-assigned point-to-point space on the customer's
      // border router.
      if (mx && my && mz && *mx == *my && *my != *mz &&
          relationships_.is_customer_of(*mz, *mx)) {
        label(y, *mz, OwnershipHeuristic::kCustomer);
      }
    }
  }
}

void OwnershipInference::finalize() {
  if (finalized_) return;
  finalized_ = true;
  const obs::TraceSpan stage_span("analysis.congestion.ownership");
  obs::MetricsRegistry::global()
      .counter("s2s.ownership.links_observed")
      .inc(links_.size());

  // back: if >=2 in-neighbors of y carry the same candidate owner ASi,
  // extend that label to unlabeled in-neighbors whose address ASi announces.
  for (const auto& [y, ins] : in_links_) {
    if (ins.size() < 3) continue;
    std::map<std::uint32_t, std::size_t> candidate_counts;
    for (const auto& x : ins) {
      const auto it = labels_.find(x);
      if (it == labels_.end()) continue;
      for (const auto& [asn, votes] : it->second.votes) {
        ++candidate_counts[asn];
      }
    }
    for (const auto& [asn, count] : candidate_counts) {
      if (count < 2) continue;
      for (const auto& x : ins) {
        if (labels_.contains(x)) continue;
        const auto mx = map(x);
        if (mx && mx->value() == asn) {
          label(x, net::Asn(asn), OwnershipHeuristic::kBack);
        }
      }
    }
  }

  // forward: if every out-neighbor of an unlabeled x maps to the same
  // owner-labeled ASj, x likely belongs to ASj's border router set.
  for (const auto& [x, outs] : out_links_) {
    if (labels_.contains(x) || outs.size() < 2) continue;
    std::optional<net::Asn> common;
    bool ok = true;
    for (const auto& y : outs) {
      const auto my = map(y);
      if (!my || !labels_.contains(y)) {
        ok = false;
        break;
      }
      if (!common) {
        common = my;
      } else if (*common != *my) {
        ok = false;
        break;
      }
    }
    if (ok && common) label(x, *common, OwnershipHeuristic::kForward);
  }

  // Election.
  stats_.addresses = labels_.size();
  for (const auto& [addr, set] : labels_) {
    if (set.votes.size() == 1) {
      owners_.emplace(addr, net::Asn(set.votes.begin()->first));
      ++stats_.resolved_single;
      continue;
    }
    // Most frequent (candidate, heuristic) label.
    std::uint32_t best_asn = 0;
    std::size_t best_count = 0;
    OwnershipHeuristic best_heuristic = OwnershipHeuristic::kFirst;
    for (const auto& [asn, votes] : set.votes) {
      for (std::size_t h = 0; h < votes.size(); ++h) {
        if (votes[h] > best_count) {
          best_count = votes[h];
          best_asn = asn;
          best_heuristic = static_cast<OwnershipHeuristic>(h);
        }
      }
    }
    if (best_count > 0 && best_heuristic == OwnershipHeuristic::kFirst) {
      owners_.emplace(addr, net::Asn(best_asn));
      ++stats_.resolved_first;
    } else {
      ++stats_.unresolved;
    }
  }
}

std::optional<net::Asn> OwnershipInference::owner(
    const net::IPAddr& addr) const {
  const auto it = owners_.find(addr);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

}  // namespace s2s::core
