#include "core/congestion_study.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace s2s::core {

namespace {

std::string link_key(const CongestedSegmentObs& obs) {
  std::string key;
  key += obs.near_addr ? obs.near_addr->to_string() : "?";
  key += '|';
  key += obs.far_addr ? obs.far_addr->to_string() : "?";
  return key;
}

}  // namespace

CongestionStudy build_congestion_study(
    const std::vector<CongestedSegmentObs>& segments,
    const LinkClassifier& classifier, const topology::Topology& topo) {
  const obs::TraceSpan stage_span("analysis.congestion.classify");
  const obs::Counter classified =
      obs::MetricsRegistry::global().counter("s2s.congestion.links_classified");

  CongestionStudy study;

  struct Accum {
    CongestedSegmentObs first;
    std::size_t pairs = 0;
    double overhead_sum = 0.0;
    bool us_us = true;  ///< all marking pairs are US-US
  };
  std::map<std::string, Accum> by_link;
  for (const auto& obs : segments) {
    auto& acc = by_link[link_key(obs)];
    if (acc.pairs == 0) acc.first = obs;
    ++acc.pairs;
    acc.overhead_sum += obs.overhead_ms;
    const auto& src_city = topo.cities[topo.servers[obs.src].city];
    const auto& dst_city = topo.cities[topo.servers[obs.dst].city];
    acc.us_us = acc.us_us && src_city.country == "US" &&
                dst_city.country == "US";
  }

  for (const auto& [key, acc] : by_link) {
    CongestionStudy::LinkInfo info;
    info.near = acc.first.near_addr;
    info.far = acc.first.far_addr;
    info.cls = classifier.classify(info.near, info.far);
    info.crossing_pairs = acc.pairs;
    info.overhead_ms = acc.overhead_sum / static_cast<double>(acc.pairs);
    switch (info.cls.kind) {
      case LinkKind::kInternal:
        ++study.internal;
        study.internal_weighted += acc.pairs;
        study.overhead_internal.push_back(info.overhead_ms);
        if (acc.us_us) study.overhead_us_internal.push_back(info.overhead_ms);
        break;
      case LinkKind::kInterconnection:
        ++study.interconnection;
        study.interconnection_weighted += acc.pairs;
        study.overhead_interconnection.push_back(info.overhead_ms);
        if (acc.us_us) {
          study.overhead_us_interconnection.push_back(info.overhead_ms);
        }
        if (info.cls.rel == InterconnRel::kP2P) ++study.p2p;
        if (info.cls.rel == InterconnRel::kC2P) ++study.c2p;
        if (info.cls.public_ixp) {
          ++study.public_ixp;
        } else {
          ++study.private_interconnect;
        }
        break;
      case LinkKind::kUnknown:
        ++study.unknown;
        break;
    }
    study.links.push_back(std::move(info));
    classified.inc();
  }
  return study;
}

}  // namespace s2s::core
