// Router-ownership inference (paper Section 5.3, Figure 8).
//
// Traceroute hop addresses are labeled with *possible* owner ASes using
// six heuristics, then one owner per address is elected:
//   first:    IPx -> IPy, both announced by ASi       => IPx possibly ASi
//   noip2as:  IPx -> IPy -> IPz, x,z in ASi, y unmapped => IPy possibly ASi
//   customer: IPx,IPy in ASi, IPz in ASj, ASj customer of ASi
//                                                     => IPy possibly ASj
//             (a customer interconnects using provider-assigned space)
//   provider: IPx in ASi, IPy in ASj, ASj provider of ASi
//                                                     => IPy possibly ASj
//             (the provider's router interface facing its customer)
//   back:     IPx1-IPy, IPx2-IPy labeled ASi; a third IPx3-IPy whose
//             address ASi announces                    => IPx3 possibly ASi
//   forward:  all links from IPx go to IPy1..IPyk, every IPy* mapped to
//             ASj and owner-labeled                    => IPx possibly ASj
//
// Election: a single candidate wins outright; with multiple candidates,
// the owner is taken from the most frequent label if that label came from
// the `first` heuristic, otherwise the address stays unresolved.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/relationships.h"
#include "bgp/rib.h"
#include "net/ip.h"

namespace s2s::core {

enum class OwnershipHeuristic : std::uint8_t {
  kFirst,
  kNoIp2As,
  kCustomer,
  kProvider,
  kBack,
  kForward,
};

class OwnershipInference {
 public:
  OwnershipInference(const bgp::Rib& rib,
                     const bgp::RelationshipTable& relationships)
      : rib_(rib), relationships_(relationships) {}

  /// Feeds one traceroute's hop addresses, in order. Unresponsive hops
  /// must be skipped by the caller *within contiguous runs only*: pass the
  /// address list with gaps removed but adjacency preserved only across
  /// single responsive runs (use observe_path per gap-free run).
  void observe_path(std::span<const net::IPAddr> hops);

  /// Runs the triple heuristics, the back/forward propagation, and the
  /// election. Call once after all paths are observed.
  void finalize();

  /// Elected owner of an address; nullopt when unresolved.
  std::optional<net::Asn> owner(const net::IPAddr& addr) const;

  struct Stats {
    std::size_t addresses = 0;
    std::size_t labels_first = 0;
    std::size_t labels_noip2as = 0;
    std::size_t labels_customer = 0;
    std::size_t labels_provider = 0;
    std::size_t labels_back = 0;
    std::size_t labels_forward = 0;
    std::size_t resolved_single = 0;   ///< one candidate
    std::size_t resolved_first = 0;    ///< plurality via `first`
    std::size_t unresolved = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct LabelSet {
    /// candidate owner -> (count, per-heuristic counts)
    std::map<std::uint32_t, std::array<std::uint32_t, 6>> votes;
  };

  void label(const net::IPAddr& addr, net::Asn owner,
             OwnershipHeuristic heuristic);
  std::optional<net::Asn> map(const net::IPAddr& addr) const {
    return rib_.origin(addr);
  }

  const bgp::Rib& rib_;
  const bgp::RelationshipTable& relationships_;

  /// Unique directed links observed (x -> y).
  std::vector<std::pair<net::IPAddr, net::IPAddr>> links_;
  std::unordered_map<net::IPAddr, LabelSet> labels_;
  std::unordered_map<net::IPAddr, net::Asn> owners_;
  /// Dedup of observed triple windows to avoid frequency bias.
  std::unordered_map<net::IPAddr, std::vector<net::IPAddr>> out_links_;
  std::unordered_map<net::IPAddr, std::vector<net::IPAddr>> in_links_;
  std::unordered_set<std::uint64_t> seen_triples_;
  Stats stats_;
  bool finalized_ = false;
};

}  // namespace s2s::core
