#include "net/prefix.h"

#include <gtest/gtest.h>

namespace s2s::net {
namespace {

TEST(Prefix4, MasksHostBits) {
  const Prefix4 p(IPv4Addr(192, 0, 2, 200), 24);
  EXPECT_EQ(p.address(), IPv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(Prefix4, Contains) {
  const Prefix4 p(IPv4Addr(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(IPv4Addr(10, 255, 1, 2)));
  EXPECT_FALSE(p.contains(IPv4Addr(11, 0, 0, 0)));
  EXPECT_TRUE(p.contains(Prefix4(IPv4Addr(10, 1, 0, 0), 16)));
  EXPECT_FALSE(p.contains(Prefix4(IPv4Addr(0, 0, 0, 0), 0)));  // less specific
}

TEST(Prefix4, ZeroLengthContainsEverything) {
  const Prefix4 p(IPv4Addr(0), 0);
  EXPECT_TRUE(p.contains(IPv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(p.contains(IPv4Addr(0)));
}

TEST(Prefix4, ParseRejectsHostBitsAndJunk) {
  EXPECT_TRUE(Prefix4::parse("192.0.2.0/24"));
  EXPECT_FALSE(Prefix4::parse("192.0.2.1/24"));  // host bits set
  EXPECT_FALSE(Prefix4::parse("192.0.2.0/33"));
  EXPECT_FALSE(Prefix4::parse("192.0.2.0"));
  EXPECT_FALSE(Prefix4::parse("192.0.2.0/-1"));
  EXPECT_EQ(Prefix4::parse("10.0.0.0/8")->to_string(), "10.0.0.0/8");
}

TEST(Prefix6, MasksHostBits) {
  const auto addr = IPv6Addr::parse("2001:db8::ffff");
  const Prefix6 p(*addr, 32);
  EXPECT_EQ(p.address().to_string(), "2001:db8::");
  EXPECT_EQ(p.length(), 32);
}

TEST(Prefix6, Contains) {
  const Prefix6 p(*IPv6Addr::parse("2001:db8::"), 32);
  EXPECT_TRUE(p.contains(*IPv6Addr::parse("2001:db8:ffff::1")));
  EXPECT_FALSE(p.contains(*IPv6Addr::parse("2001:db9::1")));
  EXPECT_TRUE(p.contains(Prefix6(*IPv6Addr::parse("2001:db8:1::"), 48)));
}

TEST(Prefix6, ParseRoundTrip) {
  const auto p = Prefix6::parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "2001:db8::/32");
  EXPECT_FALSE(Prefix6::parse("2001:db8::1/32"));  // host bits
  EXPECT_FALSE(Prefix6::parse("2001:db8::/129"));
}

TEST(AddressBit, MostSignificantFirst) {
  EXPECT_TRUE(address_bit(IPv4Addr(0x80000000u), 0));
  EXPECT_FALSE(address_bit(IPv4Addr(0x80000000u), 1));
  EXPECT_TRUE(address_bit(IPv4Addr(1), 31));
  const auto v6 = IPv6Addr::from_halves(0x8000000000000000ULL, 1);
  EXPECT_TRUE(address_bit(v6, 0));
  EXPECT_FALSE(address_bit(v6, 1));
  EXPECT_TRUE(address_bit(v6, 127));
}

// Property: for every length, a prefix contains its own address and the
// address with all host bits set, but not the next prefix's base.
class Prefix4Lengths : public ::testing::TestWithParam<int> {};

TEST_P(Prefix4Lengths, BoundaryProperty) {
  const int len = GetParam();
  const Prefix4 p(IPv4Addr(0xAB000000u), len);
  const std::uint32_t base = p.address().value();
  const std::uint32_t span = len >= 32 ? 0u : (len == 0 ? ~0u : (~0u >> len));
  EXPECT_TRUE(p.contains(IPv4Addr(base)));
  EXPECT_TRUE(p.contains(IPv4Addr(base + span)));
  if (len > 0 && base + span != ~0u) {
    EXPECT_FALSE(p.contains(IPv4Addr(base + span + 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, Prefix4Lengths,
                         ::testing::Values(0, 1, 7, 8, 15, 16, 23, 24, 31, 32));

}  // namespace
}  // namespace s2s::net
