#include "faultsim/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/change_detect.h"
#include "core/congestion_detect.h"
#include "core/data_quality.h"
#include "core/dualstack.h"
#include "core/localize.h"
#include "core/ping_series.h"
#include "core/routing_study.h"
#include "core/segment_series.h"
#include "core/timeline.h"
#include "faultsim/block_corruptor.h"
#include "faultsim/line_mangler.h"
#include "io/binrec.h"
#include "probe/campaign.h"

namespace s2s::faultsim {
namespace {

using topology::ServerId;

probe::TracerouteRecord trace_rec(ServerId src, ServerId dst, int epoch) {
  probe::TracerouteRecord r;
  r.src = src;
  r.dst = dst;
  r.family = net::Family::kIPv4;
  r.time = net::SimTime(epoch * net::kThreeHours);
  r.method = probe::TracerouteMethod::kParis;
  r.complete = true;
  r.src_addr = *net::IPAddr::parse("10.0.0.1");
  r.dst_addr = *net::IPAddr::parse("10.9.0.1");
  r.hops.push_back({*net::IPAddr::parse("10.0.0.254"), 1.5});
  r.hops.push_back({*net::IPAddr::parse("10.9.0.1"), 3.0 + epoch});
  return r;
}

probe::PingRecord ping_rec(ServerId src, ServerId dst, int epoch) {
  probe::PingRecord r;
  r.src = src;
  r.dst = dst;
  r.family = net::Family::kIPv4;
  r.time = net::SimTime(epoch * net::kFifteenMinutes);
  r.success = true;
  r.rtt_ms = 20.0 + epoch;
  return r;
}

TEST(FaultInjector, PassthroughIsIdentity) {
  FaultConfig cfg;  // all fault probabilities zero
  std::vector<std::uint64_t> out;
  TraceFaultInjector inj(cfg, [&](const probe::TracerouteRecord& r) {
    out.push_back(core::fingerprint(r));
  });
  std::vector<std::uint64_t> in;
  for (int e = 0; e < 10; ++e) {
    const auto rec = trace_rec(1, 2, e);
    in.push_back(core::fingerprint(rec));
    inj.push(rec);
  }
  inj.flush();
  EXPECT_EQ(out, in);
  const auto& st = inj.stats();
  EXPECT_EQ(st.input, 10u);
  EXPECT_EQ(st.emitted, 10u);
  EXPECT_EQ(st.duplicated + st.held_back + st.reordered + st.invalid_rtt +
                st.skewed + st.churn_dropped + st.burst_dropped,
            0u);
}

TEST(FaultInjector, DeterministicAcrossRuns) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.duplicate_prob = 0.2;
  cfg.reorder_prob = 0.2;
  cfg.reorder_delay_min = 2;
  cfg.reorder_delay_max = 9;
  cfg.invalid_rtt_prob = 0.1;
  cfg.burst_loss_prob = 0.02;
  cfg.burst_length = 3;
  cfg.churn_prob = 0.1;
  cfg.clock_skew_max_s = 300.0;
  cfg.clock_drift_max_s_per_day = 10.0;

  const auto run = [&cfg]() {
    std::vector<std::uint64_t> out;
    TraceFaultInjector inj(cfg, [&](const probe::TracerouteRecord& r) {
      out.push_back(core::fingerprint(r));
    });
    for (int e = 0; e < 40; ++e) {
      for (ServerId s = 0; s < 4; ++s) inj.push(trace_rec(s, s + 10, e));
    }
    inj.flush();
    return std::make_pair(out, inj.stats());
  };
  const auto [out_a, st_a] = run();
  const auto [out_b, st_b] = run();
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(st_a.emitted, st_b.emitted);
  EXPECT_EQ(st_a.duplicated, st_b.duplicated);
  EXPECT_EQ(st_a.reordered, st_b.reordered);
  EXPECT_EQ(st_a.invalid_rtt, st_b.invalid_rtt);
  EXPECT_EQ(st_a.churn_dropped, st_b.churn_dropped);
  EXPECT_EQ(st_a.burst_dropped, st_b.burst_dropped);
}

TEST(FaultInjector, DuplicatesAreEmittedAdjacently) {
  FaultConfig cfg;
  cfg.duplicate_prob = 1.0;
  std::vector<std::uint64_t> out;
  PingFaultInjector inj(cfg, [&](const probe::PingRecord& r) {
    out.push_back(core::fingerprint(r));
  });
  for (int e = 0; e < 20; ++e) inj.push(ping_rec(3, 4, e));
  inj.flush();
  ASSERT_EQ(out.size(), 40u);
  for (std::size_t i = 0; i < out.size(); i += 2) {
    EXPECT_EQ(out[i], out[i + 1]) << "copy not adjacent at " << i;
  }
  EXPECT_EQ(inj.stats().duplicated, 20u);
  EXPECT_EQ(inj.stats().emitted, 40u);
}

TEST(FaultInjector, ReorderBufferHoldsAndFlushDrains) {
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.reorder_prob = 0.4;
  cfg.reorder_delay_min = 50;
  cfg.reorder_delay_max = 80;
  std::size_t emitted_live = 0;
  TraceFaultInjector inj(
      cfg, [&](const probe::TracerouteRecord&) { ++emitted_live; });
  for (int e = 0; e < 200; ++e) inj.push(trace_rec(1, 2, e));
  // Some records must still be in flight before the flush.
  EXPECT_LT(emitted_live, 200u);
  inj.flush();
  const auto& st = inj.stats();
  EXPECT_EQ(st.emitted, 200u);
  EXPECT_GT(st.held_back, 0u);
  // One record per epoch, so every delayed delivery lands behind the
  // watermark and is accounted as reordered.
  EXPECT_GT(st.reordered, 0u);
  EXPECT_LE(st.reordered, st.held_back);
}

TEST(FaultInjector, ChurnIsPermanentPerServer) {
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.churn_prob = 1.0;  // every server dies at some point of the campaign
  cfg.days = 485.0;
  std::vector<std::pair<ServerId, int>> emitted;
  TraceFaultInjector inj(cfg, [&](const probe::TracerouteRecord& r) {
    emitted.emplace_back(r.src, static_cast<int>(r.time.seconds() /
                                                 net::kThreeHours));
  });
  const int epochs = static_cast<int>(485.0 * 86400 / net::kThreeHours);
  for (int e = 0; e < epochs; e += 16) {
    for (ServerId s = 0; s < 3; ++s) inj.push(trace_rec(s, s + 10, e));
  }
  const auto& st = inj.stats();
  EXPECT_GT(st.churn_dropped, 0u);
  EXPECT_EQ(st.emitted + st.churn_dropped, st.input);
  // Once an endpoint dies nothing from it reappears: per server, the
  // emitted epochs form a prefix of the pushed epochs.
  for (ServerId s = 0; s < 3; ++s) {
    int last = -1;
    for (const auto& [src, e] : emitted) {
      if (src != s) continue;
      EXPECT_GT(e, last);
      last = e;
    }
  }
}

TEST(FaultInjector, BurstLossDropsEverythingAtProbabilityOne) {
  FaultConfig cfg;
  cfg.burst_loss_prob = 1.0;
  cfg.burst_length = 4;
  std::size_t emitted = 0;
  PingFaultInjector inj(cfg,
                        [&](const probe::PingRecord&) { ++emitted; });
  for (int e = 0; e < 30; ++e) inj.push(ping_rec(1, 2, e));
  inj.flush();
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(inj.stats().burst_dropped, 30u);
}

TEST(FaultInjector, PoisonedRttsFailValidation) {
  FaultConfig cfg;
  cfg.invalid_rtt_prob = 1.0;
  std::size_t invalid_seen = 0, total = 0;
  TraceFaultInjector inj(cfg, [&](const probe::TracerouteRecord& r) {
    ++total;
    if (!core::valid_record(r)) ++invalid_seen;
  });
  for (int e = 0; e < 25; ++e) inj.push(trace_rec(1, 2, e));
  inj.flush();
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(invalid_seen, 25u);
  EXPECT_EQ(inj.stats().invalid_rtt, 25u);
}

TEST(FaultInjector, ClockSkewIsConstantPerServer) {
  FaultConfig cfg;
  cfg.seed = 31;
  cfg.clock_skew_max_s = 500.0;
  std::vector<std::int64_t> shifts;
  int epoch = 0;
  PingFaultInjector inj(cfg, [&](const probe::PingRecord& r) {
    shifts.push_back(r.time.seconds() -
                     static_cast<std::int64_t>(epoch) * net::kFifteenMinutes);
  });
  for (epoch = 0; epoch < 10; ++epoch) inj.push(ping_rec(5, 6, epoch));
  inj.flush();
  ASSERT_EQ(shifts.size(), 10u);
  for (const auto s : shifts) {
    EXPECT_EQ(s, shifts.front());  // no drift configured
    EXPECT_LE(std::abs(s), 500);
  }
  EXPECT_EQ(inj.stats().skewed, inj.stats().input);
}

TEST(LineMangler, DeterministicAndNeverEmitsNewline) {
  const std::string line = "T\t1\t2\t4\t123\tparis\t1\t1.2.0.5\t1.9.0.7\t*";
  LineMangler a({42, 1.0});
  LineMangler b({42, 1.0});
  for (int i = 0; i < 200; ++i) {
    const auto ma = a.mangle(line);
    EXPECT_EQ(ma, b.mangle(line));
    EXPECT_EQ(ma.find('\n'), std::string::npos);
    EXPECT_EQ(ma.find('\r'), std::string::npos);
  }
  const auto& st = a.stats();
  EXPECT_EQ(st.lines, 200u);
  EXPECT_EQ(st.corrupted, 200u);
  EXPECT_EQ(st.byte_flips + st.truncations + st.field_deletions + st.blanked,
            st.corrupted);
}

// ---------------------------------------------------------------------------
// Chaos integration: a full campaign streamed through the injector into the
// analysis stores must detect EXACTLY the faults that were injected, and
// every analysis stage must keep producing finite statistics.
// ---------------------------------------------------------------------------

simnet::NetworkConfig chaos_net_cfg() {
  simnet::NetworkConfig cfg;
  cfg.topology.seed = 41;
  cfg.topology.tier1_count = 5;
  cfg.topology.transit_count = 25;
  cfg.topology.stub_count = 80;
  cfg.topology.server_count = 30;
  return cfg;
}

template <typename T>
void expect_all_finite(const std::vector<T>& v, const char* what) {
  for (const auto x : v) {
    EXPECT_TRUE(std::isfinite(static_cast<double>(x))) << what;
  }
}

TEST(ChaosCampaign, TracerouteQualityCountersMatchInjectedFaultsExactly) {
  simnet::Network net(chaos_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 20}, {1, 21}, {2, 22}};

  probe::TracerouteCampaignConfig ccfg;
  // Day 1, not day 0: the campaign origin must sit further from t=0 than
  // the worst-case clock error, or a negatively-skewed server produces
  // negative timestamps that the stores reject as invalid while the
  // injector only counted them as skewed.
  ccfg.start_day = 1.0;
  ccfg.days = 4.0;  // 32 three-hour epochs
  ccfg.downtime.monthly_window_prob = 0.0;

  FaultConfig fcfg;
  fcfg.seed = 2024;
  fcfg.duplicate_prob = 0.08;
  fcfg.reorder_prob = 0.05;
  // Exactness preconditions (see DESIGN.md "Fault model & data quality"):
  // the reorder delay must exceed the per-epoch record count (<= 6 pairs
  // x 2 families = 12) so a held record always crosses an epoch boundary,
  // and the clock error must stay under interval/2 so the grid mapping of
  // every record is unchanged by skew.
  fcfg.reorder_delay_min = 16;
  fcfg.reorder_delay_max = 32;
  fcfg.invalid_rtt_prob = 0.06;
  fcfg.burst_loss_prob = 0.01;
  fcfg.burst_length = 5;
  fcfg.churn_prob = 0.4;
  fcfg.clock_skew_max_s = 600.0;       // << 10800 / 2
  fcfg.clock_drift_max_s_per_day = 30.0;
  fcfg.start_day = ccfg.start_day;
  fcfg.days = ccfg.days;
  fcfg.interval_s = ccfg.interval_s;

  probe::TracerouteCampaign campaign(net, ccfg, pairs);
  core::TimelineStore timelines(net.topo(), net.rib(),
                                {ccfg.start_day, net::kThreeHours});
  core::SegmentSeriesStore segments(ccfg.start_day, net::kThreeHours,
                                    campaign.epochs());
  TraceFaultInjector inj(fcfg, [&](const probe::TracerouteRecord& r) {
    timelines.add(r);
    segments.add(r);
  });
  const auto res = campaign.run(inj.as_sink());
  inj.flush();

  const auto& st = inj.stats();
  EXPECT_EQ(st.input, res.records_delivered);
  // Conservation: every input is emitted, duplicated or dropped.
  EXPECT_EQ(st.emitted,
            st.input + st.duplicated - st.churn_dropped - st.burst_dropped);
  // The configuration must actually exercise every fault class.
  EXPECT_GT(st.duplicated, 0u);
  EXPECT_GT(st.reordered, 0u);
  EXPECT_GT(st.invalid_rtt, 0u);
  EXPECT_GT(st.churn_dropped, 0u);
  EXPECT_GT(st.burst_dropped, 0u);
  EXPECT_GT(st.skewed, 0u);

  // Exact agreement between injected and detected faults, per store.
  for (const auto* q : {&timelines.quality(), &segments.quality()}) {
    EXPECT_EQ(q->duplicates_dropped, st.duplicated);
    EXPECT_EQ(q->invalid_rtt, st.invalid_rtt);
    EXPECT_EQ(q->reordered, st.reordered);
    EXPECT_EQ(q->out_of_grid, 0u);
  }
  // Everything emitted is either accepted or accounted for by a counter.
  const auto& t1 = timelines.table1();
  EXPECT_EQ(t1.v4.collected + t1.v6.collected +
                timelines.quality().duplicates_dropped +
                timelines.quality().invalid_rtt +
                timelines.quality().out_of_grid,
            st.emitted);

  // Analyses over the dirty stores: no crashes, no NaN statistics.
  core::RoutingStudyConfig rcfg;
  rcfg.min_observations = 4;
  const auto study = core::run_routing_study(timelines, rcfg);
  for (const auto* fam : {&study.v4, &study.v6}) {
    expect_all_finite(fam->unique_paths, "unique_paths");
    expect_all_finite(fam->changes, "changes");
    expect_all_finite(fam->popular_prevalence, "popular_prevalence");
    expect_all_finite(fam->delta_p10_ms, "delta_p10_ms");
    expect_all_finite(fam->delta_p90_ms, "delta_p90_ms");
  }
  EXPECT_GT(study.v4.timelines, 0u);

  timelines.for_each([&](ServerId, ServerId, net::Family,
                         const core::TraceTimeline& tl) {
    const auto events = core::detect_changes(tl, timelines.interner());
    EXPECT_EQ(events.size(), core::count_changes(tl));
    // Quality-gated timelines stay epoch-sorted even under reordering.
    for (std::size_t i = 1; i < tl.obs.size(); ++i) {
      EXPECT_GE(tl.obs[i].epoch, tl.obs[i - 1].epoch);
    }
  });

  const auto ds = core::run_dualstack_study(timelines);
  expect_all_finite(ds.pair_median_diff, "pair_median_diff");
  // Store slots hold only valid RTTs, so matching cannot surface new
  // non-finite diffs: the study's counter is exactly the store's.
  EXPECT_EQ(ds.quality.invalid_rtt, timelines.quality().invalid_rtt);

  core::LocalizeConfig lcfg;
  lcfg.min_traces = 4;
  lcfg.require_symmetric_as_paths = false;
  const auto loc = core::localize_congestion(segments, net.rib(), lcfg);
  EXPECT_LE(loc.pairs_localized, loc.pairs_considered);
  for (const auto& seg : loc.segments) {
    EXPECT_TRUE(std::isfinite(seg.rho));
    EXPECT_TRUE(std::isfinite(seg.overhead_ms));
  }
}

TEST(ChaosCampaign, PingQualityCountersMatchInjectedFaultsExactly) {
  simnet::Network net(chaos_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 20}, {1, 21}};

  probe::PingCampaignConfig ccfg;
  ccfg.start_day = 1.0;  // clear of t=0 so negative skew stays in range
  ccfg.days = 1.0;       // 96 fifteen-minute epochs
  ccfg.downtime.monthly_window_prob = 0.0;
  ccfg.ping.loss_prob = 0.0;  // every accepted record fills a slot

  FaultConfig fcfg;
  fcfg.seed = 4077;
  fcfg.duplicate_prob = 0.08;
  fcfg.reorder_prob = 0.05;
  fcfg.reorder_delay_min = 12;  // > 4 pairs x 2 families per epoch
  fcfg.reorder_delay_max = 24;
  fcfg.invalid_rtt_prob = 0.06;
  fcfg.clock_skew_max_s = 100.0;  // << 900 / 2
  fcfg.clock_drift_max_s_per_day = 20.0;
  fcfg.start_day = ccfg.start_day;
  fcfg.days = ccfg.days;
  fcfg.interval_s = ccfg.interval_s;

  probe::PingCampaign campaign(net, ccfg, pairs);
  core::PingSeriesStore store(ccfg.start_day, net::kFifteenMinutes,
                              campaign.epochs());
  // A ping can come back success=false even at zero loss (transient
  // routing outage); the store skips those without a quality counter.
  // Shadow that decision so the conservation check below stays exact.
  core::DedupWindow shadow;
  std::size_t failed_skipped = 0;
  PingFaultInjector inj(fcfg, [&](const probe::PingRecord& r) {
    if (!shadow.seen_or_insert(core::fingerprint(r)) &&
        core::valid_record(r) && !r.success) {
      ++failed_skipped;
    }
    store.add(r);
  });
  const auto res = campaign.run(inj.as_sink());
  inj.flush();

  const auto& st = inj.stats();
  EXPECT_EQ(st.input, res.records_delivered);
  EXPECT_EQ(st.emitted, st.input + st.duplicated);
  EXPECT_GT(st.duplicated, 0u);
  EXPECT_GT(st.reordered, 0u);
  EXPECT_GT(st.invalid_rtt, 0u);

  const auto& q = store.quality();
  EXPECT_EQ(q.duplicates_dropped, st.duplicated);
  EXPECT_EQ(q.invalid_rtt, st.invalid_rtt);
  EXPECT_EQ(q.reordered, st.reordered);
  EXPECT_EQ(q.out_of_grid, 0u);

  // With zero ping loss, every emitted record either fills a slot or is
  // tallied by exactly one quality counter.
  std::size_t slots = 0;
  store.for_each([&](ServerId, ServerId, net::Family,
                     const core::PingSeriesStore::Series& s) {
    slots += s.valid;
  });
  EXPECT_EQ(slots + failed_skipped + q.duplicates_dropped + q.invalid_rtt +
                q.out_of_grid,
            st.emitted);

  core::CongestionDetectConfig ccfg2;
  ccfg2.min_samples = 10;
  const auto survey = core::survey_congestion(store, ccfg2);
  EXPECT_GT(survey.v4.pairs_assessed, 0u);
  for (const auto& fp : survey.flagged) {
    EXPECT_TRUE(std::isfinite(fp.verdict.variation_ms));
    EXPECT_TRUE(std::isfinite(fp.verdict.diurnal_ratio));
  }
  // Survey-level quality report includes the store's counters verbatim:
  // invalid RTTs are dropped at ingest, never resurface post-interpolation.
  EXPECT_EQ(survey.quality.invalid_rtt, q.invalid_rtt);
  EXPECT_EQ(survey.quality.duplicates_dropped, q.duplicates_dropped);
  // The survey's own accounting: every pair either passed the min-sample
  // bar (its gap-filled slots land in interpolated_samples) or was
  // dropped as an insufficient series with its missing epochs counted.
  std::size_t pairs_dropped = 0, missing_assessed = 0, missing_dropped = 0;
  store.for_each([&](ServerId, ServerId, net::Family,
                     const core::PingSeriesStore::Series& s) {
    const std::size_t missing = s.rtt_tenths.size() - s.valid;
    if (s.valid < ccfg2.min_samples) {
      ++pairs_dropped;
      missing_dropped += missing;
    } else {
      missing_assessed += missing;
    }
  });
  EXPECT_EQ(survey.quality.insufficient_series, pairs_dropped);
  EXPECT_EQ(survey.quality.insufficient_epochs, missing_dropped);
  EXPECT_EQ(survey.quality.interpolated_samples, missing_assessed);
  for (const auto& fp : survey.flagged) {
    EXPECT_EQ(fp.verdict.invalid_samples, 0u);  // interpolation is finite
    EXPECT_LE(fp.verdict.missing_samples, fp.verdict.samples);
  }
}

// ---------------------------------------------------------------------------
// Binary-archive chaos: the campaign persisted as `.s2sb`, damaged at the
// block layer by BlockCorruptor, must lose exactly the corrupted blocks —
// both reader arms agree with the injector's accounting, and the stores
// fed from the damaged archive still produce finite analyses.
// ---------------------------------------------------------------------------

TEST(ChaosCampaign, BinaryArchiveBlockCorruptionDetectedExactly) {
  simnet::Network net(chaos_net_cfg());
  std::vector<std::pair<ServerId, ServerId>> pairs{{0, 20}, {1, 21}, {2, 22}};

  probe::TracerouteCampaignConfig ccfg;
  ccfg.start_day = 1.0;
  ccfg.days = 3.0;  // 24 three-hour epochs
  ccfg.downtime.monthly_window_prob = 0.0;

  // Persist the clean campaign as a binary archive, one block per epoch
  // (flush on every epoch boundary) so block loss maps to whole epochs.
  std::ostringstream bin_out(std::ios::binary);
  io::BinRecordWriter writer(bin_out);
  std::size_t total = 0;
  probe::TracerouteCampaign campaign(net, ccfg, pairs);
  campaign.run(
      [&](const probe::TracerouteRecord& r) {
        writer.write(r);
        ++total;
      },
      [&](double) { writer.flush_block(); });
  writer.finish();
  const std::string clean = bin_out.str();

  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    BlockCorruptor corruptor(
        BlockCorruptorConfig{.seed = seed, .corrupt_prob = 0.3});
    const std::string damaged = corruptor.mangle(clean);
    const auto& st = corruptor.stats();
    ASSERT_GT(st.blocks, 0u);

    for (const bool use_mmap : {false, true}) {
      core::TimelineStore timelines(net.topo(), net.rib(),
                                    {ccfg.start_day, net::kThreeHours});
      std::size_t records = 0;
      const auto trace_sink = [&](const probe::TracerouteRecord& r) {
        timelines.add(r);
        ++records;
      };
      const auto ping_sink = [](const probe::PingRecord&) {};

      io::BinReadCounters counters;
      if (use_mmap) {
        io::BinRecordMmapReader reader(damaged.data(), damaged.size());
        ASSERT_TRUE(reader.ok());
        reader.read_all(trace_sink, ping_sink);
        counters = reader.counters();
      } else {
        std::istringstream in(damaged, std::ios::binary);
        io::BinRecordReader reader(in);
        ASSERT_TRUE(reader.ok());
        reader.read_all(trace_sink, ping_sink);
        counters = reader.counters();
      }

      // Exact agreement between injected and detected block damage.
      EXPECT_EQ(counters.corrupt_blocks, st.corrupted)
          << "seed=" << seed << " mmap=" << use_mmap;
      EXPECT_EQ(counters.records_read, total - st.records_lost);
      EXPECT_EQ(records, total - st.records_lost);
      EXPECT_EQ(counters.blocks_read, st.blocks - st.corrupted);

      // Whole-epoch loss is invisible to the per-record validators: the
      // surviving records are pristine, so no quality counter may tick.
      const auto& q = timelines.quality();
      EXPECT_EQ(q.duplicates_dropped, 0u);
      EXPECT_EQ(q.invalid_rtt, 0u);
      EXPECT_EQ(q.out_of_grid, 0u);

      // The depleted store still yields a finite routing study.
      core::RoutingStudyConfig rcfg;
      rcfg.min_observations = 4;
      const auto study = core::run_routing_study(timelines, rcfg);
      for (const auto* fam : {&study.v4, &study.v6}) {
        expect_all_finite(fam->unique_paths, "unique_paths");
        expect_all_finite(fam->delta_p90_ms, "delta_p90_ms");
      }
    }
  }
}

}  // namespace
}  // namespace s2s::faultsim
