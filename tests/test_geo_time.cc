#include <gtest/gtest.h>

#include "net/geo.h"
#include "net/timebase.h"

namespace s2s::net {
namespace {

// Reference distances (great-circle, km) with ~1% tolerance.
TEST(Geo, KnownCityDistances) {
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint london{51.51, -0.13};
  const GeoPoint tokyo{35.68, 139.65};
  const GeoPoint sydney{-33.87, 151.21};
  EXPECT_NEAR(great_circle_km(nyc, london), 5570.0, 60.0);
  EXPECT_NEAR(great_circle_km(nyc, tokyo), 10850.0, 120.0);
  EXPECT_NEAR(great_circle_km(london, sydney), 16990.0, 200.0);
}

TEST(Geo, DistanceProperties) {
  const GeoPoint a{12.3, 45.6};
  const GeoPoint b{-33.0, 151.0};
  EXPECT_DOUBLE_EQ(great_circle_km(a, a), 0.0);
  EXPECT_NEAR(great_circle_km(a, b), great_circle_km(b, a), 1e-9);
  EXPECT_GT(great_circle_km(a, b), 0.0);
  // Never exceeds half the Earth's circumference.
  EXPECT_LE(great_circle_km(a, b), 3.14159265358979 * kEarthRadiusKm + 1.0);
}

TEST(Geo, AntipodalIsHalfCircumference) {
  const GeoPoint north{90.0, 0.0};
  const GeoPoint south{-90.0, 0.0};
  EXPECT_NEAR(great_circle_km(north, south),
              3.14159265358979 * kEarthRadiusKm, 1.0);
}

TEST(Geo, CRttMatchesLightSpeed) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 90.0};  // quarter circumference on the equator
  const double dist = great_circle_km(a, b);
  EXPECT_NEAR(c_rtt_ms(a, b), 2.0 * dist / kSpeedOfLightKmPerMs, 1e-9);
  // Fiber is slower than free space, so fiber one-way > half of cRTT.
  EXPECT_GT(fiber_delay_ms(a, b), c_rtt_ms(a, b) / 2.0);
}

TEST(Geo, FiberStretchScalesDelay) {
  const GeoPoint a{40.0, -74.0};
  const GeoPoint b{51.0, 0.0};
  EXPECT_NEAR(fiber_delay_ms(a, b, 1.5), 1.5 * fiber_delay_ms(a, b, 1.0),
              1e-9);
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::from_days(2.0);
  EXPECT_EQ(t.seconds(), 2 * 86400);
  EXPECT_DOUBLE_EQ(t.days(), 2.0);
  EXPECT_DOUBLE_EQ((t + 3600).hours(), 49.0);
  EXPECT_EQ(SimTime::from_hours(5.0) - SimTime::from_hours(2.0), 3 * 3600);
}

TEST(SimTime, HourOfDayWrapsCorrectly) {
  EXPECT_DOUBLE_EQ(SimTime::from_hours(0.0).utc_hour_of_day(), 0.0);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(25.5).utc_hour_of_day(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(47.0).local_hour_of_day(2.0), 1.0);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(1.0).local_hour_of_day(-5.0), 20.0);
  // Offsets beyond a day still land in [0, 24).
  const double h = SimTime::from_hours(3.0).local_hour_of_day(26.0);
  EXPECT_GE(h, 0.0);
  EXPECT_LT(h, 24.0);
  EXPECT_DOUBLE_EQ(h, 5.0);
}

TEST(SimTime, Rendering) {
  EXPECT_EQ(SimTime::from_hours(27.5).to_string(), "D001 03:30");
}

}  // namespace
}  // namespace s2s::net
