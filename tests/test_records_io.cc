#include "io/records_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/timeline.h"
#include "probe/campaign.h"

namespace s2s::io {
namespace {

probe::TracerouteRecord sample_trace() {
  probe::TracerouteRecord rec;
  rec.src = 3;
  rec.dst = 9;
  rec.family = net::Family::kIPv4;
  rec.time = net::SimTime(123456);
  rec.method = probe::TracerouteMethod::kParis;
  rec.complete = true;
  rec.src_addr = *net::IPAddr::parse("1.2.0.5");
  rec.dst_addr = *net::IPAddr::parse("1.9.0.7");
  rec.hops.push_back({*net::IPAddr::parse("1.2.0.99"), 0.512});
  rec.hops.push_back({std::nullopt, 0.0});
  rec.hops.push_back({*net::IPAddr::parse("1.9.0.7"), 42.125});
  return rec;
}

TEST(RecordsIo, TracerouteRoundTrip) {
  const auto rec = sample_trace();
  const auto parsed = parse_traceroute(to_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, rec.src);
  EXPECT_EQ(parsed->dst, rec.dst);
  EXPECT_EQ(parsed->family, rec.family);
  EXPECT_EQ(parsed->time, rec.time);
  EXPECT_EQ(parsed->method, rec.method);
  EXPECT_EQ(parsed->complete, rec.complete);
  EXPECT_EQ(parsed->src_addr, rec.src_addr);
  EXPECT_EQ(parsed->dst_addr, rec.dst_addr);
  ASSERT_EQ(parsed->hops.size(), 3u);
  EXPECT_EQ(*parsed->hops[0].addr, *rec.hops[0].addr);
  EXPECT_NEAR(parsed->hops[0].rtt_ms, 0.512, 1e-9);
  EXPECT_FALSE(parsed->hops[1].addr.has_value());
  EXPECT_NEAR(parsed->hops[2].rtt_ms, 42.125, 1e-9);
}

TEST(RecordsIo, TracerouteV6RoundTrip) {
  auto rec = sample_trace();
  rec.family = net::Family::kIPv6;
  rec.src_addr = *net::IPAddr::parse("2001:db8::1");
  rec.dst_addr = *net::IPAddr::parse("2001:db8::2");
  rec.hops = {{*net::IPAddr::parse("2001:7f8::9"), 7.5}};
  const auto parsed = parse_traceroute(to_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_addr.to_string(), "2001:db8::1");
  EXPECT_EQ(*parsed->hops[0].addr, *net::IPAddr::parse("2001:7f8::9"));
}

TEST(RecordsIo, PingRoundTrip) {
  probe::PingRecord rec;
  rec.src = 1;
  rec.dst = 2;
  rec.family = net::Family::kIPv6;
  rec.time = net::SimTime(999);
  rec.success = true;
  rec.rtt_ms = 83.25;
  const auto parsed = parse_ping(to_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, 1u);
  EXPECT_EQ(parsed->family, net::Family::kIPv6);
  EXPECT_TRUE(parsed->success);
  EXPECT_NEAR(parsed->rtt_ms, 83.25, 1e-9);
}

TEST(RecordsIo, RejectsMalformedLines) {
  EXPECT_FALSE(parse_traceroute(""));
  EXPECT_FALSE(parse_traceroute("T\t1\t2"));
  EXPECT_FALSE(parse_traceroute("P\t1\t2\t4\t0\t1\t5.0"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t0\t1"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t5\t0\t1\t5.0"));  // bad family
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t0\t2\t5.0"));  // bad success flag
  // Truncated hop field (the "@rtt" suffix of the last hop lost).
  auto line = to_line(sample_trace());
  line.resize(line.size() - 7);
  EXPECT_FALSE(parse_traceroute(line));
}

TEST(RecordsIo, WriterReaderStream) {
  std::stringstream buffer;
  RecordWriter writer(buffer);
  writer.write(sample_trace());
  probe::PingRecord ping;
  ping.src = 4;
  ping.dst = 5;
  ping.success = true;
  ping.rtt_ms = 10.0;
  writer.write(ping);
  buffer << "garbage line\n";
  EXPECT_EQ(writer.written(), 2u);

  RecordReader reader(buffer);
  std::size_t traces = 0, pings = 0;
  reader.read_all([&](const probe::TracerouteRecord&) { ++traces; },
                  [&](const probe::PingRecord&) { ++pings; });
  EXPECT_EQ(traces, 1u);
  EXPECT_EQ(pings, 1u);
  EXPECT_EQ(reader.errors(), 1u);
}

TEST(RecordsIo, CampaignRoundTripPreservesAnalysis) {
  // Write a small campaign to text, read it back, and verify the replayed
  // records reproduce the same Table 1 accounting.
  simnet::NetworkConfig cfg;
  cfg.topology.seed = 77;
  cfg.topology.tier1_count = 5;
  cfg.topology.transit_count = 20;
  cfg.topology.stub_count = 60;
  cfg.topology.server_count = 20;
  simnet::Network net(cfg);
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs{
      {0, 5}, {2, 9}, {4, 12}};
  probe::TracerouteCampaignConfig campaign_cfg;
  campaign_cfg.days = 3.0;
  probe::TracerouteCampaign campaign(net, campaign_cfg, pairs);

  std::stringstream buffer;
  RecordWriter writer(buffer);
  core::TimelineStore direct(net.topo(), net.rib(), {0.0, net::kThreeHours});
  campaign.run([&](const probe::TracerouteRecord& r) {
    writer.write(r);
    direct.add(r);
  });

  core::TimelineStore replayed(net.topo(), net.rib(),
                               {0.0, net::kThreeHours});
  RecordReader reader(buffer);
  reader.read_all([&](const probe::TracerouteRecord& r) { replayed.add(r); },
                  [](const probe::PingRecord&) {});
  EXPECT_EQ(reader.errors(), 0u);
  EXPECT_EQ(replayed.table1().v4.collected, direct.table1().v4.collected);
  EXPECT_EQ(replayed.table1().v4.complete_as, direct.table1().v4.complete_as);
  EXPECT_EQ(replayed.table1().v6.missing_ip, direct.table1().v6.missing_ip);
  EXPECT_EQ(replayed.timeline_count(), direct.timeline_count());
}

}  // namespace
}  // namespace s2s::io
