#include "io/records_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/timeline.h"
#include "faultsim/line_mangler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "probe/campaign.h"

namespace s2s::io {
namespace {

probe::TracerouteRecord sample_trace() {
  probe::TracerouteRecord rec;
  rec.src = 3;
  rec.dst = 9;
  rec.family = net::Family::kIPv4;
  rec.time = net::SimTime(123456);
  rec.method = probe::TracerouteMethod::kParis;
  rec.complete = true;
  rec.src_addr = *net::IPAddr::parse("1.2.0.5");
  rec.dst_addr = *net::IPAddr::parse("1.9.0.7");
  rec.hops.push_back({*net::IPAddr::parse("1.2.0.99"), 0.512});
  rec.hops.push_back({std::nullopt, 0.0});
  rec.hops.push_back({*net::IPAddr::parse("1.9.0.7"), 42.125});
  return rec;
}

TEST(RecordsIo, TracerouteRoundTrip) {
  const auto rec = sample_trace();
  const auto parsed = parse_traceroute(to_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, rec.src);
  EXPECT_EQ(parsed->dst, rec.dst);
  EXPECT_EQ(parsed->family, rec.family);
  EXPECT_EQ(parsed->time, rec.time);
  EXPECT_EQ(parsed->method, rec.method);
  EXPECT_EQ(parsed->complete, rec.complete);
  EXPECT_EQ(parsed->src_addr, rec.src_addr);
  EXPECT_EQ(parsed->dst_addr, rec.dst_addr);
  ASSERT_EQ(parsed->hops.size(), 3u);
  EXPECT_EQ(*parsed->hops[0].addr, *rec.hops[0].addr);
  EXPECT_NEAR(parsed->hops[0].rtt_ms, 0.512, 1e-9);
  EXPECT_FALSE(parsed->hops[1].addr.has_value());
  EXPECT_NEAR(parsed->hops[2].rtt_ms, 42.125, 1e-9);
}

TEST(RecordsIo, TracerouteV6RoundTrip) {
  auto rec = sample_trace();
  rec.family = net::Family::kIPv6;
  rec.src_addr = *net::IPAddr::parse("2001:db8::1");
  rec.dst_addr = *net::IPAddr::parse("2001:db8::2");
  rec.hops = {{*net::IPAddr::parse("2001:7f8::9"), 7.5}};
  const auto parsed = parse_traceroute(to_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_addr.to_string(), "2001:db8::1");
  EXPECT_EQ(*parsed->hops[0].addr, *net::IPAddr::parse("2001:7f8::9"));
}

TEST(RecordsIo, PingRoundTrip) {
  probe::PingRecord rec;
  rec.src = 1;
  rec.dst = 2;
  rec.family = net::Family::kIPv6;
  rec.time = net::SimTime(999);
  rec.success = true;
  rec.rtt_ms = 83.25;
  const auto parsed = parse_ping(to_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, 1u);
  EXPECT_EQ(parsed->family, net::Family::kIPv6);
  EXPECT_TRUE(parsed->success);
  EXPECT_NEAR(parsed->rtt_ms, 83.25, 1e-9);
}

TEST(RecordsIo, RejectsMalformedLines) {
  EXPECT_FALSE(parse_traceroute(""));
  EXPECT_FALSE(parse_traceroute("T\t1\t2"));
  EXPECT_FALSE(parse_traceroute("P\t1\t2\t4\t0\t1\t5.0"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t0\t1"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t5\t0\t1\t5.0"));  // bad family
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t0\t2\t5.0"));  // bad success flag
  // Truncated hop field (the "@rtt" suffix of the last hop lost).
  auto line = to_line(sample_trace());
  line.resize(line.size() - 7);
  EXPECT_FALSE(parse_traceroute(line));
}

TEST(RecordsIo, WriterReaderStream) {
  std::stringstream buffer;
  RecordWriter writer(buffer);
  writer.write(sample_trace());
  probe::PingRecord ping;
  ping.src = 4;
  ping.dst = 5;
  ping.success = true;
  ping.rtt_ms = 10.0;
  writer.write(ping);
  buffer << "garbage line\n";
  EXPECT_EQ(writer.written(), 2u);

  RecordReader reader(buffer);
  std::size_t traces = 0, pings = 0;
  reader.read_all([&](const probe::TracerouteRecord&) { ++traces; },
                  [&](const probe::PingRecord&) { ++pings; });
  EXPECT_EQ(traces, 1u);
  EXPECT_EQ(pings, 1u);
  EXPECT_EQ(reader.errors(), 1u);
}

TEST(RecordsIo, CampaignRoundTripPreservesAnalysis) {
  // Write a small campaign to text, read it back, and verify the replayed
  // records reproduce the same Table 1 accounting.
  simnet::NetworkConfig cfg;
  cfg.topology.seed = 77;
  cfg.topology.tier1_count = 5;
  cfg.topology.transit_count = 20;
  cfg.topology.stub_count = 60;
  cfg.topology.server_count = 20;
  simnet::Network net(cfg);
  std::vector<std::pair<topology::ServerId, topology::ServerId>> pairs{
      {0, 5}, {2, 9}, {4, 12}};
  probe::TracerouteCampaignConfig campaign_cfg;
  campaign_cfg.days = 3.0;
  probe::TracerouteCampaign campaign(net, campaign_cfg, pairs);

  std::stringstream buffer;
  RecordWriter writer(buffer);
  core::TimelineStore direct(net.topo(), net.rib(), {0.0, net::kThreeHours});
  campaign.run([&](const probe::TracerouteRecord& r) {
    writer.write(r);
    direct.add(r);
  });

  core::TimelineStore replayed(net.topo(), net.rib(),
                               {0.0, net::kThreeHours});
  RecordReader reader(buffer);
  reader.read_all([&](const probe::TracerouteRecord& r) { replayed.add(r); },
                  [](const probe::PingRecord&) {});
  EXPECT_EQ(reader.errors(), 0u);
  EXPECT_EQ(replayed.table1().v4.collected, direct.table1().v4.collected);
  EXPECT_EQ(replayed.table1().v4.complete_as, direct.table1().v4.complete_as);
  EXPECT_EQ(replayed.table1().v6.missing_ip, direct.table1().v6.missing_ip);
  EXPECT_EQ(replayed.timeline_count(), direct.timeline_count());
}

TEST(RecordsIo, RejectsPathologicalPingNumerics) {
  // Baseline: the well-formed variant parses.
  EXPECT_TRUE(parse_ping("P\t1\t2\t4\t100\t1\t5.0"));
  // RTT: NaN, infinities, negative, implausibly large.
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t100\t1\tnan"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t100\t1\tinf"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t100\t1\t-inf"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t100\t1\t-3.0"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t100\t1\t1e9"));
  // Timestamp: negative or beyond the representable campaign range.
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t-5\t1\t5.0"));
  EXPECT_FALSE(parse_ping("P\t1\t2\t4\t9999999999999\t1\t5.0"));
}

TEST(RecordsIo, RejectsPathologicalTracerouteNumerics) {
  const std::string prefix = "T\t1\t2\t4\t100\tparis\t1\t1.2.0.5\t1.9.0.7\t";
  EXPECT_TRUE(parse_traceroute(prefix + "1.2.0.99@5.0"));
  EXPECT_FALSE(parse_traceroute(prefix + "1.2.0.99@nan"));
  EXPECT_FALSE(parse_traceroute(prefix + "1.2.0.99@inf"));
  EXPECT_FALSE(parse_traceroute(prefix + "1.2.0.99@-1.0"));
  EXPECT_FALSE(parse_traceroute(prefix + "1.2.0.99@1e9"));
  // One bad hop poisons the record even when other hops are fine.
  EXPECT_FALSE(parse_traceroute(prefix + "1.2.0.99@5.0,1.9.0.7@nan"));
  // Timestamp range.
  EXPECT_FALSE(parse_traceroute(
      "T\t1\t2\t4\t-100\tparis\t1\t1.2.0.5\t1.9.0.7\t*"));
  EXPECT_FALSE(parse_traceroute(
      "T\t1\t2\t4\t9999999999999\tparis\t1\t1.2.0.5\t1.9.0.7\t*"));
}

TEST(RecordsIo, ReaderRetainsFirstMalformedLinesWithNumbers) {
  std::stringstream buffer;
  buffer << std::string(500, 'x') << "\n";         // line 1: malformed, long
  buffer << to_line(sample_trace()) << "\n";       // line 2: fine
  buffer << "T\tbroken\n";                         // line 3: malformed
  buffer << "\n";                                  // line 4: empty, no error
  buffer << "P\tnot\ta\tping\n";                   // line 5: malformed
  buffer << to_line(sample_trace()) << "\n";       // line 6: fine

  RecordReader reader(buffer, 2);  // retain at most two samples
  std::size_t traces = 0;
  reader.read_all([&](const probe::TracerouteRecord&) { ++traces; },
                  [](const probe::PingRecord&) {});
  EXPECT_EQ(traces, 2u);
  EXPECT_EQ(reader.lines(), 6u);
  EXPECT_EQ(reader.errors(), 3u);
  ASSERT_EQ(reader.malformed().size(), 2u);  // cap respected
  EXPECT_EQ(reader.malformed()[0].line_number, 1u);
  EXPECT_EQ(reader.malformed()[0].text.size(),
            RecordReader::kMaxSampleLength);  // long line truncated
  EXPECT_EQ(reader.malformed()[1].line_number, 3u);
  EXPECT_EQ(reader.malformed()[1].text, "T\tbroken");
}

TEST(RecordsIo, MalformedRetainedDroppedSplitMirroredToObs) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  obs::set_log_level(obs::LogLevel::kOff);  // silence per-line warns

  std::stringstream buffer;
  for (int i = 0; i < 5; ++i) buffer << "T\tbroken" << i << "\n";
  buffer << to_line(sample_trace()) << "\n";

  RecordReader reader(buffer, 2);  // retain at most two samples
  std::size_t traces = 0;
  reader.read_all([&](const probe::TracerouteRecord&) { ++traces; },
                  [](const probe::PingRecord&) {});
  obs::set_log_level(obs::LogLevel::kInfo);

  EXPECT_EQ(traces, 1u);
  EXPECT_EQ(reader.errors(), 5u);
  EXPECT_EQ(reader.malformed_retained(), 2u);
  EXPECT_EQ(reader.malformed_dropped(), 3u);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("s2s.io.malformed_retained"), 2u);
  EXPECT_EQ(snap.counters.at("s2s.io.malformed_dropped"), 3u);
  EXPECT_EQ(snap.counters.at("s2s.io.records_parsed"), 1u);
}

TEST(RecordsIo, CorruptedLinesNeverCrashAndStayRoundTrippable) {
  // Property test: serialize real records, corrupt them every way the
  // mangler knows, and require that parsing (a) never crashes, (b) when
  // it does accept a corrupted line, re-serializing is a fixed point.
  std::vector<std::string> lines;
  lines.push_back(to_line(sample_trace()));
  {
    auto rec = sample_trace();
    rec.family = net::Family::kIPv6;
    rec.src_addr = *net::IPAddr::parse("2001:db8::1");
    rec.dst_addr = *net::IPAddr::parse("2001:db8::2");
    rec.hops = {{*net::IPAddr::parse("2001:7f8::9"), 7.5},
                {std::nullopt, 0.0}};
    lines.push_back(to_line(rec));
  }
  {
    probe::PingRecord ping;
    ping.src = 4;
    ping.dst = 5;
    ping.time = net::SimTime(7777);
    ping.success = true;
    ping.rtt_ms = 10.125;
    lines.push_back(to_line(ping));
  }

  std::size_t parsed_corrupted = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    faultsim::LineMangler mangler({seed, 1.0});
    for (const auto& line : lines) {
      const auto mangled = mangler.mangle(line);
      if (const auto t = parse_traceroute(mangled)) {
        const auto s1 = to_line(*t);
        const auto again = parse_traceroute(s1);
        ASSERT_TRUE(again.has_value()) << s1;
        EXPECT_EQ(to_line(*again), s1);
        ++parsed_corrupted;
      }
      if (const auto p = parse_ping(mangled)) {
        const auto s1 = to_line(*p);
        const auto again = parse_ping(s1);
        ASSERT_TRUE(again.has_value()) << s1;
        EXPECT_EQ(to_line(*again), s1);
        ++parsed_corrupted;
      }
    }
  }
  // Corruption overwhelmingly yields rejects; survivors are the point of
  // the round-trip check, so make sure some existed (byte flips in an RTT
  // digit, for example, still parse).
  EXPECT_GT(parsed_corrupted, 0u);
}

TEST(RecordsIo, ResumedReaderAgreesWithUninterruptedRead) {
  // Regression for the checkpoint-resume accounting bug: a resumed reader
  // used to copy only the retained samples, so its malformed_dropped()
  // (computed as errors - retained) underflowed and disagreed with the
  // obs mirrors. state()/resume_from() must make the split of a resumed
  // read identical to one uninterrupted pass over the same lines.
  obs::set_log_level(obs::LogLevel::kOff);
  std::string part1, part2;
  for (int i = 0; i < 4; ++i) part1 += "T\tbroken-early" + std::to_string(i) + "\n";
  part1 += to_line(sample_trace()) + "\n";
  for (int i = 0; i < 3; ++i) part2 += "P broken-late" + std::to_string(i) + "\n";
  part2 += to_line(sample_trace()) + "\n";

  const auto drain = [](RecordReader& r, std::istream&) {
    r.read_all([](const probe::TracerouteRecord&) {},
               [](const probe::PingRecord&) {});
  };

  // Uninterrupted reference pass.
  std::stringstream whole(part1 + part2);
  RecordReader reference(whole, 2);
  drain(reference, whole);

  // Interrupted pass: checkpoint after part1, resume in a fresh reader.
  std::stringstream first(part1);
  RecordReader before(first, 2);
  drain(before, first);
  const RecordReader::State checkpoint = before.state();
  EXPECT_EQ(checkpoint.errors, 4u);
  EXPECT_EQ(checkpoint.dropped, 2u);

  auto& reg = obs::MetricsRegistry::global();
  reg.reset();  // simulate a process restart losing the obs registry
  std::stringstream rest(part2);
  RecordReader after(rest, 2);
  after.resume_from(checkpoint, /*replay_metrics=*/true);
  drain(after, rest);
  obs::set_log_level(obs::LogLevel::kInfo);

  EXPECT_EQ(after.lines(), reference.lines());
  EXPECT_EQ(after.errors(), reference.errors());
  EXPECT_EQ(after.malformed_retained(), reference.malformed_retained());
  EXPECT_EQ(after.malformed_dropped(), reference.malformed_dropped());
  // The invariant the old code violated:
  EXPECT_EQ(after.errors(),
            after.malformed_retained() + after.malformed_dropped());

  // Obs mirrors replay the adopted events, so the registry agrees with
  // the reader even though it restarted mid-stream.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("s2s.io.malformed_retained"),
            after.malformed_retained());
  EXPECT_EQ(snap.counters.at("s2s.io.malformed_dropped"),
            after.malformed_dropped());
}

TEST(RecordsIo, ResumeFromPreStateEraSnapshotNeverUnderflows) {
  // A snapshot whose errors exceed retained + dropped (the shape the old
  // separate-counter code produced) must be adopted without underflow:
  // the excess lands on the dropped side and the split still sums.
  RecordReader::State legacy;
  legacy.lines = 100;
  legacy.errors = 9;
  legacy.dropped = 0;  // pre-State checkpoints never recorded this
  legacy.malformed = {{3, "T broken"}, {7, "P broken"}};

  std::stringstream empty;
  RecordReader reader(empty, 10);
  reader.resume_from(legacy);
  EXPECT_EQ(reader.malformed_retained(), 2u);
  EXPECT_EQ(reader.malformed_dropped(), 7u);
  EXPECT_EQ(reader.errors(), 9u);
  reader.read_all([](const probe::TracerouteRecord&) {},
                  [](const probe::PingRecord&) {});
  EXPECT_EQ(reader.errors(),
            reader.malformed_retained() + reader.malformed_dropped());
}

}  // namespace
}  // namespace s2s::io
