#include <gtest/gtest.h>

#include <cmath>

#include "core/congestion_detect.h"
#include "core/localize.h"
#include "core/segment_series.h"
#include "stats/rng.h"

namespace s2s::core {
namespace {

using net::IPAddr;
using net::IPv4Addr;

std::vector<double> diurnal_series(double base, double amplitude,
                                   double noise_sigma, int days,
                                   int per_day, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> out;
  for (int i = 0; i < days * per_day; ++i) {
    const double hour = 24.0 * (i % per_day) / per_day;
    out.push_back(base +
                  amplitude * std::exp(-std::pow(hour - 20.0, 2) / 10.0) +
                  rng.normal(0, noise_sigma));
  }
  return out;
}

TEST(AssessSeries, FlagsDiurnalCongestion) {
  const auto series = diurnal_series(80, 25, 0.5, 7, 96, 1);
  const auto verdict = assess_series(series, 96.0);
  EXPECT_TRUE(verdict.high_variation);
  EXPECT_TRUE(verdict.strong_diurnal);
  EXPECT_TRUE(verdict.consistent_congestion());
  EXPECT_GT(verdict.variation_ms, 10.0);
}

TEST(AssessSeries, QuietSeriesNotFlagged) {
  const auto series = diurnal_series(80, 0.0, 0.5, 7, 96, 2);
  const auto verdict = assess_series(series, 96.0);
  EXPECT_FALSE(verdict.high_variation);
  EXPECT_FALSE(verdict.consistent_congestion());
}

TEST(AssessSeries, NoisyButNotDiurnalFailsRatioTest) {
  stats::Rng rng(3);
  std::vector<double> series;
  for (int i = 0; i < 7 * 96; ++i) series.push_back(80 + rng.normal(0, 15));
  const auto verdict = assess_series(series, 96.0);
  EXPECT_TRUE(verdict.high_variation);
  EXPECT_FALSE(verdict.strong_diurnal);
  EXPECT_FALSE(verdict.consistent_congestion());
}

TEST(AssessSeries, SmallDiurnalBelowVariationThreshold) {
  // Clean diurnal shape but < 10ms swing: strong ratio, not flagged.
  const auto series = diurnal_series(80, 4.0, 0.1, 7, 96, 4);
  const auto verdict = assess_series(series, 96.0);
  EXPECT_TRUE(verdict.strong_diurnal);
  EXPECT_FALSE(verdict.high_variation);
  EXPECT_FALSE(verdict.consistent_congestion());
}

TEST(PingSeriesStore, AccumulatesOnGrid) {
  PingSeriesStore store(0.0, net::kFifteenMinutes, 96);
  probe::PingRecord rec;
  rec.src = 1;
  rec.dst = 2;
  rec.family = net::Family::kIPv4;
  rec.success = true;
  rec.time = net::SimTime(30 * 60);  // epoch 2
  rec.rtt_ms = 42.5;
  store.add(rec);
  rec.success = false;
  rec.time = net::SimTime(45 * 60);
  store.add(rec);  // failed ping ignored
  const auto* series = store.find(1, 2, net::Family::kIPv4);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->valid, 1u);
  EXPECT_EQ(series->rtt_tenths[2], 425);
  EXPECT_EQ(series->rtt_tenths[3], PingSeriesStore::kMissing);
}

TEST(PingSeriesStore, InterpolationFillsGaps) {
  PingSeriesStore::Series series;
  series.rtt_tenths = {PingSeriesStore::kMissing, 100,
                       PingSeriesStore::kMissing, 300,
                       PingSeriesStore::kMissing};
  series.valid = 2;
  const auto ms = PingSeriesStore::to_ms_interpolated(series);
  ASSERT_EQ(ms.size(), 5u);
  EXPECT_DOUBLE_EQ(ms[0], 10.0);  // leading gap copies first valid
  EXPECT_DOUBLE_EQ(ms[1], 10.0);
  EXPECT_DOUBLE_EQ(ms[2], 20.0);  // midpoint of 10 and 30
  EXPECT_DOUBLE_EQ(ms[3], 30.0);
  EXPECT_DOUBLE_EQ(ms[4], 30.0);  // trailing gap copies last valid
}

TEST(SurveyCongestion, CountsPerFamily) {
  const int epochs = 7 * 96;
  PingSeriesStore store(0.0, net::kFifteenMinutes, epochs);
  auto feed = [&](topology::ServerId src, net::Family fam,
                  const std::vector<double>& series) {
    probe::PingRecord rec;
    rec.src = src;
    rec.dst = 99;
    rec.family = fam;
    rec.success = true;
    for (int i = 0; i < epochs; ++i) {
      rec.time = net::SimTime(static_cast<std::int64_t>(i) * 900);
      rec.rtt_ms = series[static_cast<std::size_t>(i)];
      store.add(rec);
    }
  };
  feed(1, net::Family::kIPv4, diurnal_series(80, 25, 0.5, 7, 96, 5));
  feed(2, net::Family::kIPv4, diurnal_series(80, 0, 0.5, 7, 96, 6));
  feed(3, net::Family::kIPv6, diurnal_series(80, 30, 1.0, 7, 96, 7));

  const auto survey = survey_congestion(store);
  EXPECT_EQ(survey.v4.pairs_assessed, 2u);
  EXPECT_EQ(survey.v4.consistent, 1u);
  EXPECT_EQ(survey.v6.consistent, 1u);
  ASSERT_EQ(survey.flagged.size(), 2u);
}

// ---- segment localization ------------------------------------------------

IPAddr addr(int i) {
  return IPAddr(IPv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)));
}
IPAddr rev_addr(int i) {
  return IPAddr(IPv4Addr(10, 0, 1, static_cast<std::uint8_t>(i)));
}

// Builds a symmetric pair of segment series with a diurnal bump injected
// at hop `congested_hop` (and correspondingly in the reverse direction).
void build_store(SegmentSeriesStore& store, int hops, int congested_hop,
                 int days, int per_day, std::uint64_t seed) {
  stats::Rng rng(seed);
  const int epochs = days * per_day;
  for (int e = 0; e < epochs; ++e) {
    const double hour = 24.0 * (e % per_day) / per_day;
    const double bump =
        25.0 * std::exp(-std::pow(hour - 20.0, 2) / 10.0);
    auto make = [&](bool forward) {
      probe::TracerouteRecord rec;
      rec.src = forward ? 1 : 2;
      rec.dst = forward ? 2 : 1;
      rec.family = net::Family::kIPv4;
      rec.complete = true;
      rec.time = net::SimTime(static_cast<std::int64_t>(e) * 1800);
      for (int h = 0; h < hops; ++h) {
        probe::Hop hop;
        const int label = forward ? h : hops - 1 - h;
        hop.addr = forward ? addr(label) : rev_addr(label);
        double rtt = 10.0 * (h + 1) + rng.normal(0, 0.2);
        // Hops at or beyond the congested link carry the bump. In reverse
        // the same physical link sits at index hops-1-congested_hop.
        const int bump_at = forward ? congested_hop : hops - congested_hop;
        if (h >= bump_at) rtt += bump;
        hop.rtt_ms = rtt;
        rec.hops.push_back(hop);
      }
      probe::Hop last;
      last.addr = forward ? addr(99) : rev_addr(99);
      last.rtt_ms = 10.0 * (hops + 1) + bump + rng.normal(0, 0.3);
      rec.hops.push_back(last);
      store.add(rec);
    };
    make(true);
    make(false);
  }
}

TEST(LocalizeCongestion, FindsInjectedSegment) {
  const int days = 14, per_day = 48, hops = 6, congested = 3;
  SegmentSeriesStore store(0.0, 1800, days * per_day);
  build_store(store, hops, congested, days, per_day, 8);

  LocalizeConfig cfg;
  cfg.require_symmetric_as_paths = false;  // synthetic addresses, no RIB
  cfg.min_traces = 10;
  bgp::Rib empty_rib;
  const auto result = localize_congestion(store, empty_rib, cfg);
  EXPECT_EQ(result.pairs_considered, 2u);
  EXPECT_EQ(result.pairs_persistent, 2u);
  ASSERT_EQ(result.segments.size(), 2u);
  for (const auto& seg : result.segments) {
    const bool forward = seg.src == 1;
    EXPECT_EQ(seg.segment_index,
              static_cast<std::size_t>(forward ? congested
                                               : hops - congested));
    EXPECT_GE(seg.rho, 0.5);
    EXPECT_NEAR(seg.overhead_ms, 25.0, 8.0);
  }
}

TEST(LocalizeCongestion, QuietPairNotLocalized) {
  const int days = 14, per_day = 48;
  SegmentSeriesStore store(0.0, 1800, days * per_day);
  stats::Rng rng(9);
  for (int e = 0; e < days * per_day; ++e) {
    probe::TracerouteRecord rec;
    rec.src = 5;
    rec.dst = 6;
    rec.family = net::Family::kIPv4;
    rec.complete = true;
    rec.time = net::SimTime(static_cast<std::int64_t>(e) * 1800);
    for (int h = 0; h < 4; ++h) {
      rec.hops.push_back({addr(h), 10.0 * (h + 1) + rng.normal(0, 0.2)});
    }
    store.add(rec);
  }
  LocalizeConfig cfg;
  cfg.require_symmetric_as_paths = false;
  cfg.min_traces = 10;
  bgp::Rib rib;
  const auto result = localize_congestion(store, rib, cfg);
  EXPECT_TRUE(result.segments.empty());
  EXPECT_EQ(result.pairs_persistent, 0u);
}

TEST(SegmentSeriesStore, DetectsNonStaticPaths) {
  SegmentSeriesStore store(0.0, 1800, 10);
  probe::TracerouteRecord rec;
  rec.src = 1;
  rec.dst = 2;
  rec.family = net::Family::kIPv4;
  rec.complete = true;
  rec.time = net::SimTime(0);
  rec.hops = {{addr(1), 1.0}, {addr(2), 2.0}, {addr(99), 3.0}};
  store.add(rec);
  rec.time = net::SimTime(1800);
  rec.hops = {{addr(1), 1.0}, {addr(7), 2.0}, {addr(99), 3.0}};  // changed
  store.add(rec);
  const auto* series = store.find(1, 2, net::Family::kIPv4);
  ASSERT_NE(series, nullptr);
  EXPECT_FALSE(series->ip_static);
}

TEST(SegmentSeriesStore, UnresponsiveHopsAreWildcards) {
  SegmentSeriesStore store(0.0, 1800, 10);
  probe::TracerouteRecord rec;
  rec.src = 1;
  rec.dst = 2;
  rec.family = net::Family::kIPv4;
  rec.complete = true;
  rec.time = net::SimTime(0);
  rec.hops = {{addr(1), 1.0}, {std::nullopt, 0.0}, {addr(99), 3.0}};
  store.add(rec);
  rec.time = net::SimTime(1800);
  rec.hops = {{addr(1), 1.0}, {addr(2), 2.0}, {addr(99), 3.0}};
  store.add(rec);
  const auto* series = store.find(1, 2, net::Family::kIPv4);
  ASSERT_NE(series, nullptr);
  EXPECT_TRUE(series->ip_static);
  ASSERT_TRUE(series->hop_addrs[1].has_value());  // learned later
  EXPECT_EQ(*series->hop_addrs[1], addr(2));
}

}  // namespace
}  // namespace s2s::core
