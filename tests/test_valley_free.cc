#include "routing/valley_free.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace s2s::routing {
namespace {

using topology::AsId;
using topology::Relationship;
using topology::Topology;

// Hand-built five-AS topology:
//
//        T1a ---p2p--- T1b          (tier-1 clique)
//        /  \            \
//      c2p  c2p          c2p
//      /      \            \
//    M1 --p2p-- M2          M3
//     |                      |
//    c2p                    c2p
//     |                      |
//     S1                    S2
//
// S1's route to S2 must go up via M1 (or M2), across the tier-1 clique,
// and down via M3 — strictly valley-free.
class TinyTopology : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add_as = [&](std::uint32_t asn) {
      topology::AsNode node;
      node.asn = net::Asn(asn);
      node.pop_cities = {0};
      node.routers = {static_cast<topology::RouterId>(topo_.routers.size())};
      topo_.routers.push_back({static_cast<AsId>(topo_.ases.size()), 0, 1.0});
      topo_.ases.push_back(node);
      return static_cast<AsId>(topo_.ases.size() - 1);
    };
    topo_.cities.push_back({"X", "US", "NA", {0, 0}, 0});
    t1a_ = add_as(10);
    t1b_ = add_as(11);
    m1_ = add_as(100);
    m2_ = add_as(101);
    m3_ = add_as(102);
    s1_ = add_as(5000);
    s2_ = add_as(5001);

    auto connect = [&](AsId a, AsId b, Relationship rel) {
      topology::Adjacency adj;
      adj.a = a;
      adj.b = b;
      adj.rel = rel;
      adj.ipv6 = true;
      adj.links = {static_cast<topology::LinkId>(topo_.links.size())};
      topology::Link link;
      link.scope = topology::LinkScope::kInterconnection;
      link.adjacency = static_cast<topology::AdjacencyId>(
          topo_.adjacencies.size());
      link.city = 0;
      link.ipv6 = true;
      link.end_a = {topo_.ases[a].routers[0],
                    net::IPv4Addr(next_addr_++), std::nullopt};
      link.end_b = {topo_.ases[b].routers[0],
                    net::IPv4Addr(next_addr_++), std::nullopt};
      topo_.links.push_back(link);
      topo_.adjacencies.push_back(adj);
      const auto id =
          static_cast<topology::AdjacencyId>(topo_.adjacencies.size() - 1);
      topo_.ases[a].adjacencies.push_back(id);
      topo_.ases[b].adjacencies.push_back(id);
      return id;
    };

    connect(t1a_, t1b_, Relationship::kPeerToPeer);
    connect(m1_, t1a_, Relationship::kCustomerToProvider);
    connect(m2_, t1a_, Relationship::kCustomerToProvider);
    connect(m3_, t1b_, Relationship::kCustomerToProvider);
    m1_m2_ = connect(m1_, m2_, Relationship::kPeerToPeer);
    s1_m1_ = connect(s1_, m1_, Relationship::kCustomerToProvider);
    connect(s2_, m3_, Relationship::kCustomerToProvider);
    topo_.reindex();
  }

  std::vector<AsId> path(AsId src, AsId dst,
                         const AdjacencyMask* failed = nullptr) {
    const ValleyFreeRouter router(topo_);
    const auto table = router.compute(dst, net::Family::kIPv4, failed);
    auto p = router.extract(table, src);
    return p.value_or(std::vector<AsId>{});
  }

  Topology topo_;
  AsId t1a_, t1b_, m1_, m2_, m3_, s1_, s2_;
  topology::AdjacencyId m1_m2_ = 0, s1_m1_ = 0;
  std::uint32_t next_addr_ = 0x01000001;
};

TEST_F(TinyTopology, StubToStubGoesUpAcrossDown) {
  EXPECT_EQ(path(s1_, s2_), (std::vector<AsId>{s1_, m1_, t1a_, t1b_, m3_, s2_}));
}

TEST_F(TinyTopology, CustomerRoutePreferredOverPeer) {
  // From t1a to s1: customer chain t1a -> m1 -> s1.
  EXPECT_EQ(path(t1a_, s1_), (std::vector<AsId>{t1a_, m1_, s1_}));
  // From m2 to s1: peer route via m1 beats provider route via t1a
  // (customer > peer > provider; both are length 2 here, class wins).
  EXPECT_EQ(path(m2_, s1_), (std::vector<AsId>{m2_, m1_, s1_}));
}

TEST_F(TinyTopology, PeerRouteDoesNotTransitPeer) {
  // s2 must not be reachable from m2 via the m1-m2 peer edge then up
  // (peer route only exports customer routes): the valid path is up via
  // t1a, across, down.
  EXPECT_EQ(path(m2_, s2_), (std::vector<AsId>{m2_, t1a_, t1b_, m3_, s2_}));
}

TEST_F(TinyTopology, FailureReroutes) {
  AdjacencyMask failed(topo_.adjacencies.size(), false);
  failed[s1_m1_] = true;  // sever S1's only uplink
  EXPECT_TRUE(path(s2_, s1_, &failed).empty());
  EXPECT_TRUE(path(s1_, s2_, &failed).empty());
}

TEST_F(TinyTopology, PeerEdgeFailureFallsBackToProvider) {
  AdjacencyMask failed(topo_.adjacencies.size(), false);
  failed[m1_m2_] = true;
  // m2 -> s1 now must go via its provider t1a.
  EXPECT_EQ(path(m2_, s1_, &failed), (std::vector<AsId>{m2_, t1a_, m1_, s1_}));
}

TEST_F(TinyTopology, SelfRoute) {
  EXPECT_EQ(path(s1_, s1_), (std::vector<AsId>{s1_}));
}

// Property over generated topologies: every extracted path is valley-free
// (a down or flat move is never followed by an up or another flat move).
class ValleyFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValleyFreeProperty, AllPathsValleyFree) {
  topology::GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.tier1_count = 5;
  cfg.transit_count = 25;
  cfg.stub_count = 80;
  cfg.server_count = 25;
  const Topology topo = topology::generate(cfg);
  const ValleyFreeRouter router(topo);

  std::size_t checked = 0;
  for (const auto& dst_server : topo.servers) {
    const auto table = router.compute(dst_server.as_id, net::Family::kIPv4);
    for (const auto& src_server : topo.servers) {
      const auto p = router.extract(table, src_server.as_id);
      if (!p) continue;
      // Classify each edge: +1 up (to provider), 0 peer, -1 down.
      bool seen_non_up = false;
      for (std::size_t i = 0; i + 1 < p->size(); ++i) {
        const auto adj_id = topo.find_adjacency((*p)[i], (*p)[i + 1]);
        ASSERT_TRUE(adj_id.has_value());
        const int role = topo.role_of(*adj_id, (*p)[i]);
        // role_of: -1 means (*p)[i] is the customer => moving up.
        const bool up = role == -1;
        const bool flat = role == 0;
        if (seen_non_up) {
          EXPECT_FALSE(up) << "valley at position " << i;
          EXPECT_FALSE(flat) << "second flat move at position " << i;
        }
        if (!up) seen_non_up = true;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreeProperty,
                         ::testing::Values(11, 22, 33));

TEST(ValleyFreeRouter, V6PlaneExcludesV4OnlyAdjacencies) {
  topology::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.tier1_count = 5;
  cfg.transit_count = 20;
  cfg.stub_count = 60;
  cfg.server_count = 20;
  cfg.ipv6_adjacency_fraction = 0.5;  // plenty of v4-only adjacencies
  const Topology topo = topology::generate(cfg);
  const ValleyFreeRouter router(topo);
  for (const auto& dst : topo.servers) {
    const auto table = router.compute(dst.as_id, net::Family::kIPv6);
    for (const auto& src : topo.servers) {
      const auto p = router.extract(table, src.as_id);
      if (!p) continue;
      for (std::size_t i = 0; i + 1 < p->size(); ++i) {
        const auto adj_id = topo.find_adjacency((*p)[i], (*p)[i + 1]);
        ASSERT_TRUE(adj_id.has_value());
        EXPECT_TRUE(topo.adjacencies[*adj_id].ipv6);
      }
    }
  }
}

}  // namespace
}  // namespace s2s::routing
