// Tests for the observability layer: metrics registry semantics (bucket
// boundaries, exact concurrent counting, disabled no-op), span nesting in
// the exported chrome trace, log sink capture, and RunReport round-trip.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace s2s::obs {
namespace {

TEST(Json, RoundTripsWriterOutput) {
  json::Writer w;
  w.begin_object();
  w.key("text");
  w.value("line\n\"quoted\"\tand \\ control \x01");
  w.key("num");
  w.value(-12.5);
  w.key("big");
  w.value(std::uint64_t{1} << 53);
  w.key("list");
  w.begin_array();
  w.value(true);
  w.null();
  w.value(0);
  w.end_array();
  w.end_object();

  const auto parsed = json::parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("text")->string, "line\n\"quoted\"\tand \\ control \x01");
  EXPECT_DOUBLE_EQ(parsed->find("num")->number, -12.5);
  EXPECT_EQ(parsed->find("big")->as_u64(), std::uint64_t{1} << 53);
  ASSERT_EQ(parsed->find("list")->array.size(), 3u);
  EXPECT_TRUE(parsed->find("list")->array[1].is_null());
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::parse("").has_value());
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(json::parse("[1 2]").has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json::parse("nan").has_value());
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  // Bounds {1, 10, 100}: four buckets — <=1, (1,10], (10,100], >100.
  const Histogram h = reg.histogram("h", {1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0: bounds are inclusive upper edges
  h.record(1.0001); // bucket 1
  h.record(10.0);   // bucket 1
  h.record(100.0);  // bucket 2
  h.record(100.5);  // overflow
  h.record(1e9);    // overflow

  const auto snap = reg.snapshot();
  const auto& hist = snap.histograms.at("h");
  ASSERT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 2u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_EQ(hist.counts[3], 2u);
  EXPECT_EQ(hist.total, 7u);
  // Quantiles stay within the data's bucket range.
  EXPECT_GE(hist.quantile(0.5), 0.0);
  EXPECT_LE(hist.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.999), 100.0);  // overflow clamps
}

TEST(Metrics, ConcurrentCountersSumExactly) {
  MetricsRegistry reg;
  const Counter counter = reg.counter("n");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counters.at("n"), kThreads * kPerThread);
}

TEST(Metrics, DisabledRegistryAndDefaultHandlesAreNoOps) {
  MetricsRegistry reg;
  const Counter counter = reg.counter("n");
  const Histogram hist = reg.histogram("h", {1.0});
  reg.set_enabled(false);
  counter.inc(100);
  hist.record(5.0);
  reg.set_enabled(true);
  counter.inc();
  EXPECT_EQ(reg.snapshot().counters.at("n"), 1u);
  EXPECT_EQ(reg.snapshot().histograms.at("h").total, 0u);

  const Counter untied;  // default-constructed: must not crash
  untied.inc();
  const Histogram untied_h;
  untied_h.record(1.0);
}

TEST(Metrics, KindMismatchYieldsNoOpHandle) {
  MetricsRegistry reg;
  set_log_level(LogLevel::kOff);
  (void)reg.counter("name");
  const Histogram wrong = reg.histogram("name", {1.0});
  set_log_level(LogLevel::kInfo);
  wrong.record(0.5);  // must be a no-op, not slot corruption
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("name"), 0u);
  EXPECT_FALSE(snap.histograms.contains("name"));
}

TEST(Trace, NestingOrderInExportedChromeJson) {
  TraceCollector collector;
  {
    const TraceSpan outer("outer", collector);
    { const TraceSpan inner1("inner1", collector); }
    { const TraceSpan inner2("inner2", collector); }
  }
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 3u);
  // Children commit before the parent (RAII order).
  EXPECT_EQ(events[0].path, "outer/inner1");
  EXPECT_EQ(events[1].path, "outer/inner2");
  EXPECT_EQ(events[2].path, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_EQ(events[0].depth, 1u);
  // Parent contains the children in time.
  EXPECT_LE(events[2].start_us, events[0].start_us);
  EXPECT_GE(events[2].start_us + events[2].dur_us,
            events[1].start_us + events[1].dur_us);

  // The chrome export parses back and mirrors the same structure.
  const auto doc = json::parse(collector.to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  const auto* trace_events = doc->find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->array.size(), 3u);
  for (const auto& ev : trace_events->array) {
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_EQ(ev.find("cat")->string, "s2s");
    EXPECT_GE(ev.find("dur")->number, 0.0);
  }
  EXPECT_EQ(trace_events->array[0].find("args")->find("path")->string,
            "outer/inner1");
  EXPECT_EQ(trace_events->array[2].find("name")->string, "outer");
}

TEST(Trace, AggregateComputesSelfTimeAndFlamegraphIndents) {
  TraceCollector collector;
  {
    const TraceSpan outer("outer", collector);
    const TraceSpan inner("inner", collector);
  }
  const auto stats = collector.aggregate();
  ASSERT_TRUE(stats.contains("outer"));
  ASSERT_TRUE(stats.contains("outer/inner"));
  EXPECT_GE(stats.at("outer").total_ms, stats.at("outer/inner").total_ms);
  EXPECT_LE(stats.at("outer").self_ms, stats.at("outer").total_ms);

  const auto graph = collector.flamegraph();
  EXPECT_NE(graph.find("outer"), std::string::npos);
  EXPECT_NE(graph.find("  inner"), std::string::npos);
}

TEST(Trace, DisabledCollectorProducesNoEvents) {
  TraceCollector collector;
  collector.set_enabled(false);
  { const TraceSpan span("ghost", collector); }
  EXPECT_TRUE(collector.events().empty());
}

TEST(Log, SinkCapturesLeveledMessagesAndFiltersBelowThreshold) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, std::string_view message) {
    captured.emplace_back(level, std::string(message));
  });
  set_log_level(LogLevel::kWarn);
  logf(LogLevel::kInfo, "filtered %d", 1);
  logf(LogLevel::kWarn, "kept %s", "message");
  log_message(LogLevel::kError, "plain");
  set_log_level(LogLevel::kInfo);
  set_log_sink({});  // restore stderr default

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "kept message");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "plain");
}

TEST(RunReport, RoundTripsThroughJson) {
  MetricsRegistry reg;
  TraceCollector collector;
  reg.counter("s2s.test.records").inc(42);
  reg.gauge("s2s.test.rate").set(12.5);
  reg.histogram("s2s.test.rtt_ms", {1.0, 10.0}).record(3.0);
  {
    const TraceSpan outer("campaign", collector);
    const TraceSpan inner("epoch", collector);
  }

  RunReport report = build_run_report("test_tool", reg, collector);
  report.data_quality["invalid_rtt"] = 7;

  EXPECT_EQ(report.schema_version, kRunReportSchemaVersion);
  EXPECT_EQ(report.tool, "test_tool");
  EXPECT_EQ(report.metric_count(), 3u);
  EXPECT_EQ(report.nested_span_count(), 1u);

  const auto parsed = RunReport::parse(report.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->schema_version, report.schema_version);
  EXPECT_EQ(parsed->tool, "test_tool");
  EXPECT_EQ(parsed->counters.at("s2s.test.records"), 42u);
  EXPECT_DOUBLE_EQ(parsed->gauges.at("s2s.test.rate"), 12.5);
  const auto& hist = parsed->histograms.at("s2s.test.rtt_ms");
  ASSERT_EQ(hist.bounds.size(), 2u);
  ASSERT_EQ(hist.counts.size(), 3u);
  EXPECT_EQ(hist.total, 1u);
  EXPECT_EQ(hist.counts[1], 1u);
  ASSERT_TRUE(parsed->spans.contains("campaign/epoch"));
  EXPECT_EQ(parsed->spans.at("campaign/epoch").depth, 1u);
  EXPECT_EQ(parsed->spans.at("campaign/epoch").count, 1u);
  EXPECT_EQ(parsed->data_quality.at("invalid_rtt"), 7u);
  EXPECT_DOUBLE_EQ(parsed->wall_ms, report.wall_ms);
}

TEST(RunReport, ParseRejectsWrongShape) {
  EXPECT_FALSE(RunReport::parse("not json").has_value());
  EXPECT_FALSE(RunReport::parse("{}").has_value());
  // schema_version of the wrong type.
  EXPECT_FALSE(RunReport::parse(
                   R"({"schema_version":"1","tool":"t","wall_ms":0,)"
                   R"("metrics":{"counters":{},"gauges":{},"histograms":{}},)"
                   R"("spans":{},"data_quality":{}})")
                   .has_value());
}

TEST(RunReport, RegistryResetClearsCountsButKeepsHandles) {
  MetricsRegistry reg;
  const Counter counter = reg.counter("n");
  counter.inc(5);
  reg.reset();
  counter.inc(2);
  EXPECT_EQ(reg.snapshot().counters.at("n"), 2u);
}

}  // namespace
}  // namespace s2s::obs
