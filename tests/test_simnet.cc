#include <gtest/gtest.h>

#include "simnet/congestion.h"
#include "simnet/network.h"
#include "simnet/router_path.h"
#include "topology/generator.h"

namespace s2s::simnet {
namespace {

using topology::ServerId;
using topology::Topology;

NetworkConfig small_network_config(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology.seed = seed;
  cfg.topology.tier1_count = 5;
  cfg.topology.transit_count = 25;
  cfg.topology.stub_count = 80;
  cfg.topology.server_count = 30;
  return cfg;
}

TEST(CongestionProfile, DiurnalPeaksAtBusyHour) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  p.peak_local_hour = 20.0;
  p.sigma_hours = 2.0;
  p.utc_offset_hours = 0.0;
  const double at_peak =
      p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(20.0));
  const double off_peak =
      p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(8.0));
  EXPECT_NEAR(at_peak, 30.0, 1e-9);
  EXPECT_LT(off_peak, 0.01);
  // Circular hour distance: 23:00 is 3 hours from the 20:00 peak, same as
  // 17:00.
  EXPECT_NEAR(p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(23.0)),
              p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(17.0)),
              1e-9);
}

TEST(CongestionProfile, TimeZoneShiftsPeak) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  p.peak_local_hour = 20.0;
  p.utc_offset_hours = 9.0;  // JST: local 20:00 = 11:00 UTC
  EXPECT_NEAR(p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(11.0)),
              30.0, 1e-9);
}

TEST(CongestionProfile, EpisodeGating) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  p.peak_local_hour = 12.0;
  p.episodes = {{0, 86400}};
  EXPECT_GT(p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(12.0)), 29.0);
  EXPECT_DOUBLE_EQ(
      p.delay_ms(net::Family::kIPv4,
                 net::SimTime::from_hours(12.0 + 48.0)),  // outside episode
      0.0);
}

TEST(CongestionProfile, FamilyGating) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  p.peak_local_hour = 12.0;
  p.affects_v6 = false;
  EXPECT_GT(p.delay_ms(net::Family::kIPv4, net::SimTime::from_hours(12.0)), 0.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(net::Family::kIPv6, net::SimTime::from_hours(12.0)),
                   0.0);
}

TEST(CongestionProfile, BurstyIsFlatTopped) {
  CongestionProfile p;
  p.kind = CongestionKind::kBursty;
  p.amplitude_ms = 25.0;
  p.bursts = {{1000, 2000}, {5000, 6000}};
  EXPECT_DOUBLE_EQ(p.delay_ms(net::Family::kIPv4, net::SimTime(1500)), 25.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(net::Family::kIPv4, net::SimTime(2500)), 0.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(net::Family::kIPv4, net::SimTime(5999)), 25.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(net::Family::kIPv4, net::SimTime(999)), 0.0);
}

TEST(CongestionProfile, EpisodeBoundariesAreHalfOpen) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  // One episode aligned exactly to a 15-minute epoch edge: active at the
  // start instant, inactive at the end instant ([start, end) semantics —
  // a probe landing exactly on the closing edge must not see the bump).
  p.episodes = {{4 * 900, 8 * 900}};
  EXPECT_FALSE(p.active_at(net::SimTime(4 * 900 - 1)));
  EXPECT_TRUE(p.active_at(net::SimTime(4 * 900)));
  EXPECT_TRUE(p.active_at(net::SimTime(8 * 900 - 1)));
  EXPECT_FALSE(p.active_at(net::SimTime(8 * 900)));
}

TEST(CongestionProfile, ZeroLengthEpisodeNeverActivates) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  p.peak_local_hour = 0.0;
  p.episodes = {{5000, 5000}};
  // Degenerate [t, t) window: empty by the half-open rule. The episode
  // list is non-empty, so the always-on fallback must not kick in either.
  EXPECT_FALSE(p.active_at(net::SimTime(5000)));
  EXPECT_DOUBLE_EQ(p.delay_ms(net::Family::kIPv4, net::SimTime(5000)), 0.0);
  EXPECT_FALSE(p.active_at(net::SimTime(0)));
}

TEST(CongestionProfile, EpisodePastCampaignEndStillGates) {
  CongestionProfile p;
  p.amplitude_ms = 30.0;
  p.peak_local_hour = 12.0;
  // Window open past the 520-day campaign horizon: probes near the end of
  // the campaign are inside, and the over-run tail is simply never
  // sampled — no wraparound to the campaign start.
  const std::int64_t end = 520 * 86400;
  p.episodes = {{end - 86400, end + 10 * 86400}};
  EXPECT_TRUE(p.active_at(net::SimTime(end - 3600)));
  EXPECT_TRUE(p.active_at(net::SimTime(end + 86400)));
  EXPECT_FALSE(p.active_at(net::SimTime(0)));
  EXPECT_GT(p.delay_ms(net::Family::kIPv4,
                       net::SimTime(end - 86400 / 2)),  // 12:00 of last day
            29.0);
}

TEST(CongestionProfile, EmptyEpisodesMeanWholeCampaign) {
  CongestionProfile always;
  always.amplitude_ms = 30.0;
  // The permanent_prob arm emits an empty episode list = active for the
  // whole campaign; explicit windows restrict it.
  EXPECT_TRUE(always.active_at(net::SimTime(0)));
  EXPECT_TRUE(always.active_at(net::SimTime(519 * 86400)));

  CongestionProfile windowed = always;
  windowed.episodes = {{0, 86400}, {10 * 86400, 11 * 86400}};
  EXPECT_TRUE(windowed.active_at(net::SimTime(3600)));
  EXPECT_FALSE(windowed.active_at(net::SimTime(5 * 86400)));
  EXPECT_TRUE(windowed.active_at(net::SimTime(10 * 86400 + 3600)));
  EXPECT_FALSE(windowed.active_at(net::SimTime(12 * 86400)));
}

TEST(CongestionModel, PermanentOnlyConfigYieldsAlwaysActiveProfiles) {
  Topology topo = topology::generate(small_network_config(33).topology);
  CongestionConfig cfg;
  cfg.internal_fraction = 0.2;
  cfg.private_interconnect_fraction = 0.2;
  cfg.permanent_prob = 1.0;
  cfg.bursty_fraction = 0.0;
  const CongestionModel model(topo, cfg, stats::Rng(4));
  ASSERT_FALSE(model.profiles().empty());
  for (const auto& p : model.profiles()) {
    EXPECT_TRUE(p.episodes.empty());
    EXPECT_TRUE(p.active_at(net::SimTime(0)));
    EXPECT_TRUE(p.active_at(net::SimTime(519 * 86400)));
  }
}

TEST(CongestionModel, AmplitudesWithinRegionalBands) {
  Topology topo = topology::generate(small_network_config(31).topology);
  CongestionConfig cfg;
  cfg.internal_fraction = 0.3;  // dense for statistics
  cfg.private_interconnect_fraction = 0.3;
  cfg.bursty_fraction = 0.0;
  const CongestionModel model(topo, cfg, stats::Rng(1));
  ASSERT_GT(model.profiles().size(), 50u);
  for (const auto& p : model.profiles()) {
    EXPECT_GE(p.amplitude_ms, 10.0);
    EXPECT_LE(p.amplitude_ms, 120.0);
  }
}

TEST(CongestionModel, WritesProfileIndexIntoLinks) {
  Topology topo = topology::generate(small_network_config(32).topology);
  CongestionConfig cfg;
  cfg.internal_fraction = 0.2;
  const CongestionModel model(topo, cfg, stats::Rng(2));
  std::size_t flagged = 0;
  for (topology::LinkId id = 0; id < topo.links.size(); ++id) {
    if (topo.links[id].congestion_profile != topology::kInvalidId) {
      ++flagged;
      EXPECT_EQ(model.profiles()[topo.links[id].congestion_profile].link, id);
    } else {
      EXPECT_DOUBLE_EQ(
          model.queue_delay_ms(id, net::Family::kIPv4,
                               net::SimTime::from_hours(20.0)),
          0.0);
    }
  }
  EXPECT_GT(flagged, 0u);
}

class NetworkFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(small_network_config(33));
    std::vector<ServerId> servers;
    for (ServerId s = 0; s < net_->topo().servers.size(); ++s) {
      servers.push_back(s);
    }
    net_->prepare_full_mesh(servers);
  }
  std::unique_ptr<Network> net_;
};

TEST_F(NetworkFixture, ResolveReturnsContinuousRouterPath) {
  const auto& topo = net_->topo();
  std::size_t resolved = 0;
  for (ServerId a = 0; a < 10; ++a) {
    for (ServerId b = 10; b < 20; ++b) {
      const auto r = net_->resolve(a, b, net::Family::kIPv4, net::SimTime(0));
      if (!r) continue;
      ++resolved;
      ASSERT_FALSE(r->path->hops.empty());
      // First hop is the source's attachment router.
      EXPECT_EQ(r->path->hops.front().router, topo.servers[a].attachment);
      EXPECT_EQ(r->path->hops.back().router, topo.servers[b].attachment);
      // Consecutive hops are joined by the stated link.
      for (std::size_t i = 1; i < r->path->hops.size(); ++i) {
        const auto& hop = r->path->hops[i];
        ASSERT_NE(hop.link, topology::kInvalidId);
        const auto& link = topo.links[hop.link];
        const auto prev = r->path->hops[i - 1].router;
        EXPECT_TRUE((link.end_a.router == prev && link.end_b.router == hop.router) ||
                    (link.end_b.router == prev && link.end_a.router == hop.router));
        // Cumulative delay is strictly increasing.
        EXPECT_GT(hop.cumulative_delay_ms,
                  r->path->hops[i - 1].cumulative_delay_ms);
      }
      // AS path endpoints match server ASes.
      EXPECT_EQ(r->as_path.front(), topo.servers[a].as_id);
      EXPECT_EQ(r->as_path.back(), topo.servers[b].as_id);
    }
  }
  EXPECT_GT(resolved, 50u);
}

TEST_F(NetworkFixture, OneWayIncludesCongestionQueues) {
  // Find a resolvable pair, then compare one_way at a quiet hour vs the
  // same path evaluated with all congested links at their peak. Since
  // profiles vary, we only assert one_way >= propagation delay.
  for (ServerId a = 0; a < 5; ++a) {
    for (ServerId b = 5; b < 10; ++b) {
      const auto r = net_->resolve(a, b, net::Family::kIPv4, net::SimTime(0));
      if (!r) continue;
      const double ow = net_->one_way_ms(*r->path, net::Family::kIPv4,
                                         net::SimTime::from_hours(20.0));
      EXPECT_GE(ow, r->path->total_delay_ms - 1e-9);
    }
  }
}

TEST_F(NetworkFixture, PartialOneWayIsMonotone) {
  const auto r = net_->resolve(0, 15, net::Family::kIPv4, net::SimTime(0));
  if (!r) GTEST_SKIP() << "pair unroutable in this seed";
  double prev = 0.0;
  for (std::size_t i = 0; i < r->path->hops.size(); ++i) {
    const double v = net_->partial_one_way_ms(*r->path, i, net::Family::kIPv4,
                                              net::SimTime(0));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(prev, net_->one_way_ms(*r->path, net::Family::kIPv4,
                                   net::SimTime(0)) + 1e-9);
}

TEST_F(NetworkFixture, SeverityPopulatedForUsedAdjacencies) {
  double max_severity = 0.0;
  for (topology::AdjacencyId id = 0; id < net_->topo().adjacencies.size();
       ++id) {
    max_severity = std::max(max_severity, net_->severity_ms(id));
  }
  EXPECT_GT(max_severity, 0.0);
}

TEST_F(NetworkFixture, ResolveThrowsOnUnpreparedUse) {
  Network fresh(small_network_config(34));
  EXPECT_THROW(fresh.resolve(0, 1, net::Family::kIPv4, net::SimTime(0)),
               std::logic_error);
}

TEST(RouterPathExpander, CachesByCandidateSlot) {
  const NetworkConfig cfg = small_network_config(35);
  Topology topo = topology::generate(cfg.topology);
  RouterPathExpander expander(topo);
  const auto& s0 = topo.servers[0];
  const auto& s1 = topo.servers[1];
  // A trivial one-AS "path" when both servers share an AS is rare; instead
  // expand the same AS pair twice and require pointer equality (cache hit).
  std::vector<topology::AsId> as_path{s0.as_id};
  if (s0.as_id != s1.as_id) as_path = {};  // only valid same-AS
  if (as_path.empty()) GTEST_SKIP() << "servers in different ASes";
  const auto* p1 = expander.expand(0, 1, as_path, net::Family::kIPv4, 0);
  const auto* p2 = expander.expand(0, 1, as_path, net::Family::kIPv4, 0);
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace s2s::simnet
