// Full scenario-matrix validation run (slow lane): every event kind x
// {low, high} magnitude x {with, without} the diurnal model underneath.
// Asserts the study-level floors the harness is meant to guarantee and
// prints the per-kind precision/recall table (the EXPERIMENTS.md source).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/validate.h"
#include "exec/pool.h"

namespace s2s {
namespace {

TEST(ValidationFull, FullMatrixMeetsFloors) {
  exec::ThreadPool pool;
  core::HarnessOptions opt;
  opt.pool = &pool;
  const auto specs = core::make_scenario_matrix(true);
  ASSERT_GE(specs.size(), 12u);

  const core::ValidationStudy study = core::run_matrix(specs, opt);
  ASSERT_EQ(study.scenarios.size(), specs.size());

  std::printf("%-20s %5s %5s %5s %5s  %9s %9s %7s\n", "scenario", "truth",
              "tp", "fp", "fn", "precision", "recall", "fprate");
  for (const auto& s : study.scenarios) {
    std::printf("%-20s %5zu %5zu %5zu %5zu  %9.3f %9.3f %7.3f\n",
                s.name.c_str(), s.truth_pairs, s.true_positives,
                s.false_positives, s.false_negatives, s.precision, s.recall,
                s.fp_rate);
  }
  for (const auto& [name, ks] : study.kinds) {
    std::printf("kind %-22s entries %zu/%zu  pairs %zu/%zu  localized %zu\n",
                name.c_str(), ks.detected, ks.entries, ks.flagged_pairs,
                ks.truth_pairs, ks.localized);
  }

  // The detector's designed-for signal: diurnal entries must be found
  // nearly always at full-matrix scale (pair recall is looser because a
  // congested link's weakest-exposed pairs can sit below threshold).
  ASSERT_TRUE(study.kinds.count("diurnal"));
  EXPECT_GE(study.kinds.at("diurnal").entry_recall(), 0.9);
  EXPECT_GE(study.kinds.at("diurnal").pair_recall(), 0.8);

  // The false-positive trap: loss-only maintenance windows must not be
  // read as congestion in any trap scenario.
  EXPECT_LE(study.maintenance_fp_rate, 0.1);

  // Nothing the survey flags on clean-diurnal scenarios is spurious.
  for (const auto& s : study.scenarios) {
    EXPECT_GE(s.precision, 0.9) << s.name;
    EXPECT_LE(s.fp_rate, 0.1) << s.name;
  }

  // Localization, when it fires, points at (or next to) the true link.
  std::size_t loc = 0, loc_ok = 0;
  for (const auto& s : study.scenarios) {
    loc += s.localizations;
    loc_ok += s.localizations_correct;
  }
  ASSERT_GT(loc, 0u);
  EXPECT_GE(static_cast<double>(loc_ok) / static_cast<double>(loc), 0.9);

  // Every scenario ran against a distinct, honestly-labeled spec.
  std::set<std::string> names;
  for (const auto& s : study.scenarios) names.insert(s.name);
  EXPECT_EQ(names.size(), study.scenarios.size());
}

}  // namespace
}  // namespace s2s
