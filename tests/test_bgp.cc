#include <gtest/gtest.h>

#include "bgp/relationships.h"
#include "bgp/rib.h"
#include "bgp/trie.h"
#include "topology/generator.h"

namespace s2s::bgp {
namespace {

TEST(Trie4, LongestPrefixMatchWins) {
  Trie4 trie;
  trie.insert(*net::Prefix4::parse("10.0.0.0/8"), 100);
  trie.insert(*net::Prefix4::parse("10.1.0.0/16"), 200);
  trie.insert(*net::Prefix4::parse("10.1.2.0/24"), 300);
  EXPECT_EQ(trie.lookup(*net::IPv4Addr::parse("10.1.2.3")), 300u);
  EXPECT_EQ(trie.lookup(*net::IPv4Addr::parse("10.1.3.3")), 200u);
  EXPECT_EQ(trie.lookup(*net::IPv4Addr::parse("10.9.9.9")), 100u);
  EXPECT_FALSE(trie.lookup(*net::IPv4Addr::parse("11.0.0.1")).has_value());
  EXPECT_EQ(trie.size(), 3u);
}

TEST(Trie4, DefaultRouteAndHostRoute) {
  Trie4 trie;
  trie.insert(net::Prefix4(net::IPv4Addr(0), 0), 1);
  trie.insert(net::Prefix4(net::IPv4Addr(1, 2, 3, 4), 32), 2);
  EXPECT_EQ(trie.lookup(net::IPv4Addr(1, 2, 3, 4)), 2u);
  EXPECT_EQ(trie.lookup(net::IPv4Addr(1, 2, 3, 5)), 1u);
}

TEST(Trie4, OverwriteSamePrefix) {
  Trie4 trie;
  trie.insert(*net::Prefix4::parse("10.0.0.0/8"), 1);
  trie.insert(*net::Prefix4::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.lookup(net::IPv4Addr(10, 0, 0, 1)), 2u);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(Trie6, LongestPrefixMatch) {
  Trie6 trie;
  trie.insert(*net::Prefix6::parse("2001:db8::/32"), 10);
  trie.insert(*net::Prefix6::parse("2001:db8:1::/48"), 20);
  EXPECT_EQ(trie.lookup(*net::IPv6Addr::parse("2001:db8:1::5")), 20u);
  EXPECT_EQ(trie.lookup(*net::IPv6Addr::parse("2001:db8:2::5")), 10u);
  EXPECT_FALSE(trie.lookup(*net::IPv6Addr::parse("2001:db9::1")).has_value());
}

TEST(Rib, ExcludesUnannouncedPrefixes) {
  topology::GeneratorConfig cfg;
  cfg.seed = 9;
  cfg.tier1_count = 5;
  cfg.transit_count = 20;
  cfg.stub_count = 60;
  cfg.server_count = 20;
  cfg.unannounced_ixp_fraction = 1.0;  // every IXP LAN hidden
  const auto topo = topology::generate(cfg);
  const Rib rib = Rib::from_topology(topo);
  std::size_t hidden = 0;
  for (const auto& entry : topo.prefixes4) {
    const net::IPv4Addr probe(entry.prefix.address().value() + 1);
    const auto origin = rib.origin(probe);
    if (entry.announced) {
      ASSERT_TRUE(origin.has_value());
    } else {
      // Must not resolve to the hidden prefix's origin via this prefix:
      // either unmapped or covered by a shorter announced prefix (none in
      // our plan, so unmapped).
      EXPECT_FALSE(origin.has_value());
      ++hidden;
    }
  }
  EXPECT_GT(hidden, 0u);
}

TEST(Rib, DispatchesFamilies) {
  Rib rib;
  rib.insert(*net::Prefix4::parse("10.0.0.0/8"), net::Asn(64500));
  rib.insert(*net::Prefix6::parse("2001:db8::/32"), net::Asn(64501));
  EXPECT_EQ(rib.origin(*net::IPAddr::parse("10.1.1.1")), net::Asn(64500));
  EXPECT_EQ(rib.origin(*net::IPAddr::parse("2001:db8::1")), net::Asn(64501));
  EXPECT_FALSE(rib.origin(*net::IPAddr::parse("192.0.2.1")).has_value());
  EXPECT_EQ(rib.size4(), 1u);
  EXPECT_EQ(rib.size6(), 1u);
}

TEST(RelationshipTable, SymmetricViews) {
  RelationshipTable table;
  table.add(net::Asn(1), net::Asn(2), Rel::kCustomer);
  table.add(net::Asn(3), net::Asn(4), Rel::kPeer);
  EXPECT_EQ(table.rel(net::Asn(1), net::Asn(2)), Rel::kCustomer);
  EXPECT_EQ(table.rel(net::Asn(2), net::Asn(1)), Rel::kProvider);
  EXPECT_TRUE(table.are_peers(net::Asn(3), net::Asn(4)));
  EXPECT_TRUE(table.are_peers(net::Asn(4), net::Asn(3)));
  EXPECT_FALSE(table.rel(net::Asn(1), net::Asn(3)).has_value());
  EXPECT_TRUE(table.is_customer_of(net::Asn(1), net::Asn(2)));
  EXPECT_TRUE(table.is_provider_of(net::Asn(2), net::Asn(1)));
}

TEST(RelationshipTable, FromTopologyMatchesGroundTruth) {
  topology::GeneratorConfig cfg;
  cfg.seed = 10;
  cfg.tier1_count = 5;
  cfg.transit_count = 20;
  cfg.stub_count = 60;
  cfg.server_count = 10;
  const auto topo = topology::generate(cfg);
  const auto table = RelationshipTable::from_topology(topo);
  EXPECT_EQ(table.size(), topo.adjacencies.size());
  for (const auto& adj : topo.adjacencies) {
    const auto a = topo.ases[adj.a].asn;
    const auto b = topo.ases[adj.b].asn;
    if (adj.rel == topology::Relationship::kCustomerToProvider) {
      EXPECT_TRUE(table.is_customer_of(a, b));
    } else {
      EXPECT_TRUE(table.are_peers(a, b));
    }
  }
}

TEST(RelationshipTable, PerturbDropsAndFlips) {
  topology::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.tier1_count = 5;
  cfg.transit_count = 20;
  cfg.stub_count = 60;
  cfg.server_count = 10;
  const auto topo = topology::generate(cfg);
  auto table = RelationshipTable::from_topology(topo);
  const std::size_t before = table.size();
  stats::Rng rng(3);
  table.perturb(rng, /*flip_prob=*/0.1, /*drop_prob=*/0.1);
  EXPECT_LT(table.size(), before);
  EXPECT_GT(table.size(), before / 2);
  // Some relationships must now disagree with ground truth.
  std::size_t flipped = 0;
  for (const auto& adj : topo.adjacencies) {
    const auto rel = table.rel(topo.ases[adj.a].asn, topo.ases[adj.b].asn);
    if (!rel) continue;
    const bool truth_c2p =
        adj.rel == topology::Relationship::kCustomerToProvider;
    if (truth_c2p != (*rel == Rel::kCustomer)) ++flipped;
  }
  EXPECT_GT(flipped, 0u);
}

}  // namespace
}  // namespace s2s::bgp
