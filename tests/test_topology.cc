#include "topology/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "bgp/rib.h"

namespace s2s::topology {
namespace {

GeneratorConfig small_config(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.tier1_count = 6;
  cfg.transit_count = 30;
  cfg.stub_count = 120;
  cfg.server_count = 60;
  return cfg;
}

class GeneratedTopology : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { topo_ = generate(small_config(GetParam())); }
  Topology topo_;
};

TEST_P(GeneratedTopology, PassesValidation) {
  EXPECT_NO_THROW(topo_.validate());
  EXPECT_EQ(topo_.ases.size(), 6u + 30u + 120u);
  EXPECT_EQ(topo_.servers.size(), 60u);
}

TEST_P(GeneratedTopology, Tier1CliqueIsComplete) {
  for (AsId i = 0; i < 6; ++i) {
    for (AsId j = i + 1; j < 6; ++j) {
      const auto adj = topo_.find_adjacency(i, j);
      ASSERT_TRUE(adj.has_value()) << i << "," << j;
      EXPECT_EQ(topo_.adjacencies[*adj].rel, Relationship::kPeerToPeer);
    }
  }
}

TEST_P(GeneratedTopology, EveryNonTier1HasAProvider) {
  for (AsId x = 6; x < topo_.ases.size(); ++x) {
    bool has_provider = false;
    for (AdjacencyId a : topo_.ases[x].adjacencies) {
      const auto& adj = topo_.adjacencies[a];
      if (adj.rel == Relationship::kCustomerToProvider && adj.a == x) {
        has_provider = true;
        break;
      }
    }
    EXPECT_TRUE(has_provider) << topo_.ases[x].asn.to_string();
  }
}

TEST_P(GeneratedTopology, InterconnectionLinksSitInSharedCities) {
  for (const auto& adj : topo_.adjacencies) {
    for (LinkId lid : adj.links) {
      const auto& link = topo_.links[lid];
      ASSERT_NE(link.city, kInvalidId);
      EXPECT_TRUE(topo_.router_at(adj.a, link.city).has_value());
      EXPECT_TRUE(topo_.router_at(adj.b, link.city).has_value());
      // Link endpoints are the two ASes' routers in that city.
      const auto owners = std::set<AsId>{
          topo_.routers[link.end_a.router].owner,
          topo_.routers[link.end_b.router].owner};
      EXPECT_EQ(owners, (std::set<AsId>{adj.a, adj.b}));
    }
  }
}

TEST_P(GeneratedTopology, ProviderAssignsC2pAddresses) {
  const auto rib = bgp::Rib::from_topology(topo_);
  std::size_t checked = 0;
  for (const auto& adj : topo_.adjacencies) {
    if (adj.rel != Relationship::kCustomerToProvider) continue;
    const net::Asn provider_asn = topo_.ases[adj.b].asn;
    for (LinkId lid : adj.links) {
      const auto& link = topo_.links[lid];
      for (const auto* end : {&link.end_a, &link.end_b}) {
        const auto origin = rib.origin(end->addr4);
        ASSERT_TRUE(origin.has_value());
        EXPECT_EQ(*origin, provider_asn);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(GeneratedTopology, V6OnlyOnV6Adjacencies) {
  for (const auto& adj : topo_.adjacencies) {
    for (LinkId lid : adj.links) {
      EXPECT_EQ(topo_.links[lid].ipv6, adj.ipv6);
    }
    if (adj.ipv6) {
      EXPECT_TRUE(topo_.ases[adj.a].ipv6_enabled);
      EXPECT_TRUE(topo_.ases[adj.b].ipv6_enabled);
    }
  }
}

TEST_P(GeneratedTopology, ServersResolveInRib) {
  const auto rib = bgp::Rib::from_topology(topo_);
  for (const auto& server : topo_.servers) {
    const auto origin = rib.origin(server.addr4);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, topo_.ases[server.as_id].asn);
    if (server.dual_stack()) {
      const auto origin6 = rib.origin(*server.addr6);
      ASSERT_TRUE(origin6.has_value());
      EXPECT_EQ(*origin6, topo_.ases[server.as_id].asn);
      EXPECT_TRUE(server.gateway_addr6.has_value());
    }
  }
}

TEST_P(GeneratedTopology, ServerAttachmentMatchesCity) {
  for (const auto& server : topo_.servers) {
    const auto& router = topo_.routers[server.attachment];
    EXPECT_EQ(router.owner, server.as_id);
    EXPECT_EQ(router.city, server.city);
  }
}

TEST_P(GeneratedTopology, UnannouncedPrefixesExist) {
  std::size_t unannounced = 0;
  for (const auto& p : topo_.prefixes4) unannounced += !p.announced;
  EXPECT_GT(unannounced, 0u);  // IXP LANs and infra blocks
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedTopology,
                         ::testing::Values(1, 2, 42, 777, 123456));

TEST(Generator, DeterministicForSameSeed) {
  const Topology a = generate(small_config(99));
  const Topology b = generate(small_config(99));
  ASSERT_EQ(a.links.size(), b.links.size());
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].end_a.addr4, b.links[i].end_a.addr4);
    EXPECT_EQ(a.links[i].delay_ms, b.links[i].delay_ms);
  }
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].addr4, b.servers[i].addr4);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Topology a = generate(small_config(1));
  const Topology b = generate(small_config(2));
  bool differs = a.links.size() != b.links.size();
  for (std::size_t i = 0; !differs && i < a.servers.size(); ++i) {
    differs = a.servers[i].addr4 != b.servers[i].addr4;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, ServerCountryMixFollowsWeights) {
  GeneratorConfig cfg = small_config(7);
  cfg.server_count = 200;
  cfg.stub_count = 400;
  const Topology topo = generate(cfg);
  std::size_t us = 0;
  for (const auto& server : topo.servers) {
    us += topo.cities[server.city].country == "US";
  }
  // Paper: ~39% of servers in the US; allow generous sampling slack.
  EXPECT_GT(us, topo.servers.size() / 5);
  EXPECT_LT(us, topo.servers.size() * 11 / 20);
}

TEST(Topology, LookupHelpers) {
  const Topology topo = generate(small_config(3));
  EXPECT_TRUE(topo.find_as(net::Asn(10)).has_value());
  EXPECT_FALSE(topo.find_as(net::Asn(999999)).has_value());
  const auto& adj = topo.adjacencies.front();
  EXPECT_EQ(topo.find_adjacency(adj.a, adj.b),
            topo.find_adjacency(adj.b, adj.a));
  EXPECT_EQ(topo.role_of(0, adj.a),
            adj.rel == Relationship::kPeerToPeer ? 0 : -1);
  const auto& link = topo.links.front();
  EXPECT_EQ(&topo.far_end(link, link.end_a.router), &link.end_b);
  EXPECT_EQ(&topo.near_end(link, link.end_a.router), &link.end_a);
}

}  // namespace
}  // namespace s2s::topology
