// Event-driven congestion scenarios + validation harness (ISSUE 9).
//
// Covers the EventSchedule overlay (flash decay, cascade expansion,
// state-dependent bufferbloat, maintenance as a loss-only trap), the
// GroundTruthLedger round trip, schedule/ledger determinism across
// builds and thread widths, the matcher/scorer, the CI gates, and the
// bursty-arm survey regression the diurnal golden suite never exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/congestion_detect.h"
#include "core/ping_series.h"
#include "core/validate.h"
#include "exec/pool.h"
#include "probe/campaign.h"
#include "simnet/congestion.h"
#include "simnet/events.h"
#include "simnet/network.h"
#include "simnet/router_path.h"
#include "topology/generator.h"

namespace s2s {
namespace {

using core::HarnessOptions;
using core::ScenarioScore;
using core::ScenarioSpec;
using core::ValidationStudy;
using simnet::EventEffect;
using simnet::EventKind;
using simnet::EventSchedule;
using simnet::EventScheduleConfig;
using simnet::GroundTruthLedger;
using simnet::Network;
using simnet::NetworkConfig;
using simnet::PairKey;
using topology::LinkId;
using topology::ServerId;

NetworkConfig tiny_network_config(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology.seed = seed;
  cfg.topology.tier1_count = 4;
  cfg.topology.transit_count = 18;
  cfg.topology.stub_count = 70;
  cfg.topology.server_count = 16;
  return cfg;
}

// -- EventEffect shapes ------------------------------------------------------

TEST(EventEffect, FlashCrowdSharpOnsetExponentialDecay) {
  EventEffect e;
  e.kind = EventKind::kFlashCrowd;
  e.t0 = 1000;
  e.t1 = 1000 + 6 * 3600;
  e.magnitude = 30.0;
  e.tau_s = (e.t1 - e.t0) / 3.0;
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(999)), 0.0);
  // Sharp onset: full magnitude at t0.
  EXPECT_NEAR(e.delay_ms(net::Family::kIPv4, net::SimTime(1000)), 30.0, 1e-9);
  // Exponential decay: one tau later the delay is magnitude / e.
  const auto one_tau = static_cast<std::int64_t>(1000 + e.tau_s);
  EXPECT_NEAR(e.delay_ms(net::Family::kIPv4, net::SimTime(one_tau)),
              30.0 / std::exp(1.0), 0.1);
  // Strictly decreasing within the window; zero past it.
  EXPECT_GT(e.delay_ms(net::Family::kIPv4, net::SimTime(2000)),
            e.delay_ms(net::Family::kIPv4, net::SimTime(4000)));
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(e.t1)), 0.0);
}

TEST(EventEffect, CascadeSpillIsFlat) {
  EventEffect e;
  e.kind = EventKind::kLinkFailureCascade;
  e.t0 = 0;
  e.t1 = 7200;
  e.magnitude = 20.0;
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(0)), 20.0);
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(7199)), 20.0);
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(7200)), 0.0);
}

TEST(EventEffect, MaintenanceBlocksWithoutDelay) {
  EventEffect e;
  e.kind = EventKind::kMaintenance;
  e.t0 = 0;
  e.t1 = 3600;
  e.magnitude = 1.0;  // hard down
  e.blocks = true;
  // The false-positive trap by construction: loss, never RTT inflation.
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(100)), 0.0);
  EXPECT_TRUE(e.blocked(net::Family::kIPv4, net::SimTime(100)));
  EXPECT_FALSE(e.blocked(net::Family::kIPv4, net::SimTime(3600)));
  EXPECT_FALSE(e.blocked(net::Family::kIPv4, net::SimTime(-1)));
}

TEST(EventEffect, PartialLossIsDeterministicPerChunk) {
  EventEffect e;
  e.kind = EventKind::kMaintenance;
  e.link = 7;
  e.t0 = 0;
  e.t1 = 48 * 3600;
  e.magnitude = 0.5;
  e.blocks = true;
  // Same instant, same coin — repeated queries never disagree.
  std::size_t dropped = 0, total = 0;
  for (std::int64_t t = 0; t < e.t1; t += 600) {
    const bool first = e.blocked(net::Family::kIPv4, net::SimTime(t));
    EXPECT_EQ(first, e.blocked(net::Family::kIPv4, net::SimTime(t)));
    // Within one 10-minute chunk the coin cannot change.
    EXPECT_EQ(first, e.blocked(net::Family::kIPv4, net::SimTime(t + 599)));
    ++total;
    if (first) ++dropped;
  }
  // Loss fraction lands near the configured 0.5.
  EXPECT_GT(dropped, total / 4);
  EXPECT_LT(dropped, 3 * total / 4);
}

TEST(EventEffect, BufferbloatDelayFollowsLoadStateNotWallClock) {
  // Build the queue curve via a schedule so the integration runs.
  const auto topo = topology::generate(tiny_network_config(5).topology);
  EventScheduleConfig cfg;
  cfg.start_day = 0.0;
  cfg.days = 2.0;
  cfg.bufferbloats = 1;
  cfg.bloat_hours_min = cfg.bloat_hours_max = 24.0;
  const EventSchedule schedule(topo, cfg, {}, stats::Rng(9));
  ASSERT_EQ(schedule.effects().size(), 1u);
  const EventEffect& e = schedule.effects()[0];
  ASSERT_EQ(e.kind, EventKind::kBufferbloat);
  ASSERT_FALSE(e.queue_ms.empty());
  const auto len = e.t1 - e.t0;
  auto at = [&](double frac) {
    return e.delay_ms(net::Family::kIPv4,
                      net::SimTime(e.t0 + static_cast<std::int64_t>(
                                              frac * static_cast<double>(len))));
  };
  // The queue INTEGRATES load over capacity: while the surge is on
  // (load > 1 up to 70% of the window) delay keeps growing even as wall
  // clock advances, then the under-loaded tail drains it.
  EXPECT_LT(at(0.05), at(0.3));
  EXPECT_LT(at(0.3), at(0.6));
  EXPECT_GT(at(0.7), at(0.95));
  // Peak reaches the drawn magnitude.
  double peak = 0.0;
  for (double f = 0.0; f < 1.0; f += 0.01) peak = std::max(peak, at(f));
  EXPECT_NEAR(peak, e.magnitude, 0.05 * e.magnitude);
  // Zero outside the window.
  EXPECT_DOUBLE_EQ(e.delay_ms(net::Family::kIPv4, net::SimTime(e.t0 - 1)),
                   0.0);
}

// -- EventSchedule construction ---------------------------------------------

TEST(EventSchedule, CascadeExpandsIntoDarkLinkPlusSiblings) {
  const auto topo = topology::generate(tiny_network_config(6).topology);
  EventScheduleConfig cfg;
  cfg.days = 7.0;
  cfg.cascades = 1;
  const EventSchedule schedule(topo, cfg, {}, stats::Rng(11));
  ASSERT_GE(schedule.effects().size(), 2u);
  const EventEffect& dark = schedule.effects()[0];
  EXPECT_EQ(dark.kind, EventKind::kLinkFailureCascade);
  EXPECT_TRUE(dark.blocks);
  std::size_t spills = 0;
  for (std::size_t i = 1; i < schedule.effects().size(); ++i) {
    const EventEffect& spill = schedule.effects()[i];
    EXPECT_EQ(spill.kind, EventKind::kLinkFailureCascade);
    EXPECT_FALSE(spill.blocks);
    EXPECT_NE(spill.link, dark.link);
    // Failover load occupies exactly the failure window.
    EXPECT_EQ(spill.t0, dark.t0);
    EXPECT_EQ(spill.t1, dark.t1);
    EXPECT_GT(spill.magnitude, 0.0);
    ++spills;
  }
  EXPECT_GE(spills, 1u);
  EXPECT_LE(spills, 3u);

  // Ledger: the dark link is not detectable congestion, the spills are.
  const GroundTruthLedger ledger = schedule.ledger();
  ASSERT_EQ(ledger.entries.size(), schedule.effects().size());
  EXPECT_FALSE(ledger.entries[0].inflates_rtt);
  for (std::size_t i = 1; i < ledger.entries.size(); ++i) {
    EXPECT_TRUE(ledger.entries[i].inflates_rtt);
  }
}

TEST(EventSchedule, SameSeedSameScheduleDifferentSeedDiffers) {
  const auto topo = topology::generate(tiny_network_config(7).topology);
  EventScheduleConfig cfg;
  cfg.days = 7.0;
  cfg.flash_crowds = 2;
  cfg.cascades = 1;
  cfg.bufferbloats = 1;
  cfg.maintenances = 2;
  const EventSchedule a(topo, cfg, {}, stats::Rng(21));
  const EventSchedule b(topo, cfg, {}, stats::Rng(21));
  const EventSchedule c(topo, cfg, {}, stats::Rng(22));
  EXPECT_EQ(a.ledger().to_json(), b.ledger().to_json());
  EXPECT_NE(a.ledger().to_json(), c.ledger().to_json());
}

TEST(EventSchedule, PathBlockedFindsFirstBlockedHop) {
  const auto topo = topology::generate(tiny_network_config(8).topology);
  // Find a link that some effect can block; target it explicitly through
  // the candidate list.
  EventScheduleConfig cfg;
  cfg.days = 1.0;
  cfg.maintenances = 1;
  cfg.maintenance_hours_min = cfg.maintenance_hours_max = 24.0;
  const std::vector<LinkId> target{3};
  const EventSchedule schedule(topo, cfg, target, stats::Rng(5));
  ASSERT_EQ(schedule.effects().size(), 1u);
  const EventEffect& e = schedule.effects()[0];
  EXPECT_EQ(e.link, 3u);

  simnet::RouterPath path;
  path.hops.push_back({topology::kInvalidId, 0, 0.0});  // gateway hop
  path.hops.push_back({9, 1, 1.0});
  path.hops.push_back({3, 2, 2.0});
  path.hops.push_back({4, 3, 3.0});
  const net::SimTime mid((e.t0 + e.t1) / 2);
  EXPECT_TRUE(schedule.path_blocked(path, net::Family::kIPv4, mid));
  const auto hop = schedule.first_blocked_hop(path, net::Family::kIPv4, mid);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, 2u);
  // Outside the window nothing blocks.
  EXPECT_FALSE(schedule.path_blocked(path, net::Family::kIPv4,
                                     net::SimTime(e.t1 + 10)));
}

TEST(GroundTruthLedger, JsonRoundTrip) {
  const auto topo = topology::generate(tiny_network_config(9).topology);
  EventScheduleConfig cfg;
  cfg.days = 7.0;
  cfg.flash_crowds = 1;
  cfg.maintenances = 1;
  const EventSchedule schedule(topo, cfg, {}, stats::Rng(13));
  GroundTruthLedger ledger = schedule.ledger();
  ledger.entries[0].affected.push_back({1, 2, net::Family::kIPv4});
  ledger.entries[0].affected.push_back({2, 1, net::Family::kIPv6});

  const std::string json = ledger.to_json();
  const auto parsed = GroundTruthLedger::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), json);  // byte-stable round trip
  ASSERT_EQ(parsed->entries.size(), ledger.entries.size());
  EXPECT_EQ(parsed->entries[0].affected.size(), 2u);
  EXPECT_EQ(parsed->entries[0].affected[1].family, net::Family::kIPv6);

  // Versioning: a bumped schema is rejected, not misread.
  std::string wrong = json;
  const auto pos = wrong.find("\"schema_version\":1");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 18, "\"schema_version\":9");
  EXPECT_FALSE(GroundTruthLedger::parse(wrong).has_value());
}

TEST(GroundTruth, DiurnalEntriesRespectAmplitudeFloor) {
  auto topo = topology::generate(tiny_network_config(10).topology);
  simnet::CongestionConfig cfg;
  cfg.internal_fraction = 0.2;
  cfg.private_interconnect_fraction = 0.2;
  cfg.permanent_prob = 1.0;
  cfg.bursty_fraction = 0.05;  // bursty profiles must stay out
  const simnet::CongestionModel model(topo, cfg, stats::Rng(3));
  GroundTruthLedger ledger;
  simnet::append_congestion_ground_truth(ledger, model, 100.0, 7.0,
                                         /*min_amplitude_ms=*/25.0,
                                         /*min_active_fraction=*/0.7);
  ASSERT_FALSE(ledger.entries.empty());
  for (const auto& e : ledger.entries) {
    EXPECT_EQ(e.kind, EventKind::kDiurnalModel);
    EXPECT_GE(e.magnitude, 25.0);
    EXPECT_TRUE(e.inflates_rtt);
  }
  // Lowering the floor can only add entries.
  GroundTruthLedger all;
  simnet::append_congestion_ground_truth(all, model, 100.0, 7.0, 0.0, 0.0);
  EXPECT_GE(all.entries.size(), ledger.entries.size());
}

// -- determinism across thread widths ---------------------------------------

TEST(Validation, LedgerAndStudyByteIdenticalAcrossThreadWidths) {
  // Mirrors the exec determinism contract: the analysis pool width must
  // not leak into the study or the ledger.
  HarnessOptions opt1;
  opt1.seed = 71;
  opt1.servers = 12;
  opt1.pairs = 10;
  exec::ThreadPool pool1(1);
  opt1.pool = &pool1;

  HarnessOptions opt8 = opt1;
  exec::ThreadPool pool8(8);
  opt8.pool = &pool8;

  const auto specs = core::make_scenario_matrix(false);
  // Two scenarios keep the test fast while still covering the survey and
  // localization passes (diurnal_base flags + localizes).
  const std::vector<ScenarioSpec> subset{specs[0], specs[4]};
  const ValidationStudy a = core::run_matrix(subset, opt1);
  const ValidationStudy b = core::run_matrix(subset, opt8);
  EXPECT_EQ(a.to_json(), b.to_json());
}

// -- matcher / gates ---------------------------------------------------------

TEST(ValidationStudy, JsonRoundTripAndVersionCheck) {
  ValidationStudy study;
  study.seed = 5;
  study.full_matrix = true;
  study.diurnal_recall = 0.95;
  study.maintenance_fp_rate = 0.05;
  ScenarioScore s;
  s.name = "x";
  s.primary_kind = "flash_crowd";
  s.truth_pairs = 3;
  s.flagged_pairs = 2;
  s.true_positives = 2;
  s.false_negatives = 1;
  s.precision = 1.0;
  s.recall = 2.0 / 3.0;
  s.kinds["flash_crowd"] = {3, 2, 1, 9, 6};
  study.scenarios.push_back(s);
  study.kinds["flash_crowd"] = {3, 2, 1, 9, 6};

  const std::string json = study.to_json();
  const auto parsed = ValidationStudy::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), json);
  EXPECT_EQ(parsed->scenarios.size(), 1u);
  EXPECT_EQ(parsed->kinds.at("flash_crowd").truth_pairs, 9u);

  std::string wrong = json;
  const auto pos = wrong.find("\"schema_version\":1");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 18, "\"schema_version\":2");
  EXPECT_FALSE(ValidationStudy::parse(wrong).has_value());
}

TEST(Gates, ReportEveryViolation) {
  ValidationStudy ok;
  ok.diurnal_recall = 0.95;
  ok.maintenance_fp_rate = 0.05;
  EXPECT_TRUE(core::check_gates(ok).pass);

  ValidationStudy bad;
  bad.diurnal_recall = 0.5;
  bad.maintenance_fp_rate = 0.5;
  const auto result = core::check_gates(bad);
  EXPECT_FALSE(result.pass);
  EXPECT_EQ(result.violations.size(), 2u);
}

TEST(Matrix, FastSubsetCoversEveryKindAndTheTrap) {
  const auto fast = core::make_scenario_matrix(false);
  const auto full = core::make_scenario_matrix(true);
  EXPECT_GT(full.size(), fast.size());
  // The fast matrix is a prefix of the full one (stable seeds per name).
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].name, full[i].name);
  }
  std::set<EventKind> kinds;
  bool has_trap = false, has_diurnal_baseline = false;
  for (const auto& spec : fast) {
    kinds.insert(spec.primary);
    if (spec.primary == EventKind::kMaintenance && !spec.with_diurnal) {
      has_trap = true;
    }
    if (spec.primary == EventKind::kDiurnalModel && spec.with_diurnal) {
      has_diurnal_baseline = true;
    }
  }
  EXPECT_TRUE(has_trap);
  EXPECT_TRUE(has_diurnal_baseline);
  EXPECT_EQ(kinds.size(), 5u);
}

// -- mini end-to-end scenarios ----------------------------------------------

TEST(Validation, DiurnalBaselineDetectsAndMaintenanceTrapStaysQuiet) {
  HarnessOptions opt;
  opt.seed = 42;
  opt.servers = 16;
  opt.pairs = 14;
  const auto specs = core::make_scenario_matrix(false);

  const ScenarioScore diurnal = core::run_scenario(specs[0], opt);
  EXPECT_EQ(diurnal.primary_kind, "diurnal");
  EXPECT_GT(diurnal.truth_pairs, 0u);
  EXPECT_GE(diurnal.recall, 0.85);
  EXPECT_GE(diurnal.precision, 0.95);
  // Flagged pairs were followed up and localized onto true links.
  EXPECT_GT(diurnal.localizations, 0u);
  EXPECT_GE(diurnal.localization_accuracy, 0.9);

  const ScenarioScore trap = core::run_scenario(specs[4], opt);
  EXPECT_EQ(trap.primary_kind, "maintenance");
  // Loss windows inflate nothing: the positive class is empty and clean
  // series stay unflagged.
  EXPECT_EQ(trap.truth_pairs, 0u);
  EXPECT_LE(trap.fp_rate, 0.1);
}

// -- bursty arm end-to-end regression (satellite) ----------------------------

// Golden-figure-style: exact verdict counts on a seeded bursty-only
// campaign. The bursty arm adds >10ms variation WITHOUT a diurnal
// pattern, so the survey must count high_variation without flagging
// consistent congestion — the paper's 9.5%-vs-2% distinction (Section
// 5.1). Counts are pinned: any drift in the bursty model, the ping path,
// or the detector shows up here.
TEST(BurstySurvey, SeededCampaignVerdictCounts) {
  NetworkConfig cfg = tiny_network_config(93);
  cfg.congestion.internal_fraction = 0.0;
  cfg.congestion.private_interconnect_fraction = 0.0;
  cfg.congestion.public_ixp_fraction = 0.0;
  cfg.congestion.bursty_fraction = 0.08;  // dense, bursty-only
  cfg.congestion.bursts_per_day = 1.5;
  cfg.congestion.bursty_shared_with_v6_prob = 0.5;  // exercise the v6 arm
  cfg.dynamics.mean_outages_per_adjacency = 0.3;
  Network net(cfg);

  std::vector<ServerId> dual;
  for (ServerId s = 0; s < net.topo().servers.size(); ++s) {
    if (net.topo().servers[s].dual_stack()) dual.push_back(s);
  }
  ASSERT_GE(dual.size(), 8u);
  std::vector<std::pair<ServerId, ServerId>> pairs;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      pairs.emplace_back(dual[i], dual[j]);
    }
  }

  probe::PingCampaignConfig ping_cfg;
  ping_cfg.start_day = 100.0;
  ping_cfg.days = 7.0;
  ping_cfg.seed = 17;
  ping_cfg.downtime.monthly_window_prob = 0.0;
  probe::PingCampaign pings(net, ping_cfg, pairs);
  core::PingSeriesStore store(ping_cfg.start_day, net::kFifteenMinutes,
                              pings.epochs());
  pings.run([&](const probe::PingRecord& r) { store.add(r); });

  core::CongestionDetectConfig detect_cfg;
  detect_cfg.min_samples = static_cast<std::size_t>(
      0.88 * static_cast<double>(pings.epochs()));
  const auto survey = core::survey_congestion(store, detect_cfg);

  // Golden counts for (topology seed 93, ping seed 17). Regenerate by
  // printing the actuals if an INTENTIONAL model change shifts them.
  EXPECT_EQ(survey.v4.pairs_total, 56u);
  EXPECT_EQ(survey.v4.pairs_assessed, 56u);
  EXPECT_EQ(survey.v4.high_variation, 24u);
  EXPECT_EQ(survey.v4.consistent, 0u);
  EXPECT_EQ(survey.v6.pairs_total, 56u);
  EXPECT_EQ(survey.v6.pairs_assessed, 56u);
  EXPECT_EQ(survey.v6.high_variation, 10u);
  EXPECT_EQ(survey.v6.consistent, 0u);
  EXPECT_TRUE(survey.flagged.empty());
}

}  // namespace
}  // namespace s2s
