#include <gtest/gtest.h>

#include <cmath>

#include "stats/binned_ecdf.h"
#include "stats/density.h"
#include "stats/ecdf.h"
#include "stats/heatmap.h"
#include "stats/pearson.h"
#include "stats/rng.h"
#include "stats/summary.h"
#include "stats/welford.h"

namespace s2s::stats {
namespace {

TEST(Summary, QuantileLinearInterpolation) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);   // numpy type-7
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Summary, QuantileSingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 7.0);
}

TEST(Summary, QuantileUnsortedInput) {
  const std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Summary, ThrowsOnEmpty) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
}

TEST(Summary, MomentsMatchHandComputation) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.13809, 1e-4);  // n-1 denominator
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(Summary, SummarizeAllFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p10, 10.9, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(Ecdf, StepFunctionSemantics) {
  const Ecdf e(std::vector<double>{1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.0), 0.75);  // ties included
  EXPECT_DOUBLE_EQ(e.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(e.below(2.0), 0.25);
  EXPECT_DOUBLE_EQ(e.tail_at_least(2.0), 0.75);
}

TEST(Ecdf, QuantileInverse) {
  const Ecdf e(std::vector<double>{10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30.0);
}

TEST(Ecdf, QuantileMatchesSharedInterpolatingConvention) {
  // Regression: the old nearest-rank formula (rank = q * size) returned
  // 3.0 for the median of {1,2,3,4}; the shared convention says 2.5.
  const Ecdf e(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.5);
  // Ecdf::quantile and Summary's quantile() must agree on any input.
  Rng rng(21);
  std::vector<double> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.normal(40, 12));
  const Ecdf big(v);
  for (const double q : {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(big.quantile(q), quantile(v, q)) << "q=" << q;
  }
}

TEST(Ecdf, CurveIsMonotone) {
  Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal(10, 3));
  const Ecdf e(v);
  const auto curve = e.curve(50);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].x, curve[i].x);
    EXPECT_LE(curve[i - 1].f, curve[i].f);
  }
  EXPECT_DOUBLE_EQ(curve.back().f, 1.0);
}

TEST(Pearson, KnownCorrelations) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> neg(x.rbegin(), x.rend());
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
  const std::vector<double> constant{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson(x, std::vector<double>{1, 2}), 0.0);  // size mismatch
}

TEST(Pearson, ShiftAndScaleInvariant) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.normal();
    x.push_back(v);
    y.push_back(5.0 * v + 100.0 + rng.normal(0, 0.01));
  }
  EXPECT_GT(pearson(x, y), 0.999);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 10.0, 20);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 10.0));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) integral += h.density(b) * 0.5;
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, ClampsOutliers) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(9.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Kde, RecoversGaussianShape) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.normal(50.0, 5.0));
  const auto curve = kde(v, 20.0, 80.0, 61);
  ASSERT_FALSE(curve.empty());
  // Peak near the mean.
  const auto peak = std::max_element(
      curve.begin(), curve.end(),
      [](const KdePoint& a, const KdePoint& b) { return a.density < b.density; });
  EXPECT_NEAR(peak->x, 50.0, 2.0);
  // Roughly the normal peak height 1/(sigma*sqrt(2*pi)).
  EXPECT_NEAR(peak->density, 0.0798, 0.015);
}

TEST(DecileHeatmap, PercentagesSumTo100) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.exponential_mean(10.0));
    y.push_back(rng.normal(0, 1));
  }
  const DecileHeatmap map(x, y);
  double total = 0.0;
  for (std::size_t yi = 0; yi < map.y_bins(); ++yi) {
    total += map.row_percent(yi);
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
  EXPECT_EQ(map.total_points(), 2000u);
  // Decile binning: each row holds ~10% of points.
  for (std::size_t yi = 0; yi < map.y_bins(); ++yi) {
    EXPECT_NEAR(map.row_percent(yi), 100.0 / map.y_bins(), 3.0);
  }
}

TEST(DecileHeatmap, MergesDuplicateEdges) {
  // Half the x mass at exactly 3.0 (like the paper's 3-hour lifetime floor).
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i < 50 ? 3.0 : static_cast<double>(i));
    y.push_back(i);
  }
  const DecileHeatmap map(x, y);
  EXPECT_LT(map.x_bins(), 10u);  // duplicate decile edges merged
  const auto& edges = map.x_edges();
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(Rng, DeterministicAndDistinctStreams) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 16; ++i) any_diff |= a2() != c();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(BinnedEcdfMerge, EmptyIntoEmptyStaysEmpty) {
  BinnedEcdf a(0.0, 10.0, 100), b(0.0, 10.0, 100);
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.total(), 0u);
}

TEST(BinnedEcdfMerge, EmptySideIsIdentity) {
  BinnedEcdf a(0.0, 10.0, 100), empty(0.0, 10.0, 100);
  a.add(1.0);
  a.add(9.0);
  const double q50_before = a.quantile(0.5);
  a.merge(empty);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), q50_before);

  BinnedEcdf into_empty(0.0, 10.0, 100);
  into_empty.merge(a);
  EXPECT_EQ(into_empty.total(), 2u);
  EXPECT_DOUBLE_EQ(into_empty.quantile(0.5), a.quantile(0.5));
}

TEST(BinnedEcdfMerge, DisjointRangesMatchBulk) {
  // Two partials covering disjoint value ranges merge to the same curve
  // a single accumulator over all samples produces.
  BinnedEcdf lowhalf(0.0, 100.0, 1000), highhalf(0.0, 100.0, 1000);
  BinnedEcdf bulk(0.0, 100.0, 1000);
  for (int i = 0; i < 50; ++i) {
    const double lo = 0.1 * i, hi = 60.0 + 0.5 * i;
    lowhalf.add(lo);
    highhalf.add(hi);
    bulk.add(lo);
    bulk.add(hi);
  }
  lowhalf.merge(highhalf);
  EXPECT_EQ(lowhalf.total(), bulk.total());
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_DOUBLE_EQ(lowhalf.quantile(q), bulk.quantile(q));
  }
  for (double x : {0.0, 2.5, 59.9, 60.0, 84.9, 100.0}) {
    EXPECT_DOUBLE_EQ(lowhalf.at(x), bulk.at(x));
  }
}

TEST(BinnedEcdfMerge, ClampedOutliersSurviveMerge) {
  BinnedEcdf a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(-100.0);  // clamps into the first bin
  b.add(1e9);     // clamps into the last bin
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(a.at(10.0), 1.0);
}

TEST(BinnedEcdfMerge, GridMismatchThrows) {
  BinnedEcdf a(0.0, 10.0, 100);
  BinnedEcdf wrong_bins(0.0, 10.0, 50);
  BinnedEcdf wrong_range(0.0, 20.0, 100);
  EXPECT_THROW(a.merge(wrong_bins), std::invalid_argument);
  EXPECT_THROW(a.merge(wrong_range), std::invalid_argument);
}

TEST(WelfordMerge, MatchesBulkMoments) {
  Rng rng(5);
  Welford left, right, bulk;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(12.0, 3.0);
    (i < 400 ? left : right).add(x);
    bulk.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-9);
}

TEST(WelfordMerge, EmptyCases) {
  Welford a, b;
  a.merge(b);  // empty ⊕ empty
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);

  Welford filled;
  filled.add(2.0);
  filled.add(4.0);
  filled.merge(b);  // merging empty is a no-op
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 3.0);

  Welford empty;
  empty.merge(filled);  // merging into empty copies
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(empty.variance(), filled.variance());
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.normal(7.0, 2.0));
  EXPECT_NEAR(mean(v), 7.0, 0.05);
  EXPECT_NEAR(stddev(v), 2.0, 0.05);
}

}  // namespace
}  // namespace s2s::stats
